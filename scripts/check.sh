#!/usr/bin/env sh
# Full verification: configure, build, tests, benches. What CI would run.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
