#!/usr/bin/env sh
# Full verification: configure, build, tests, benches, sanitizers, format.
# What CI would run.
set -e

# One base seed feeds every randomized suite and the schedule fuzzer
# (core/config.hpp). Print it on ANY failure: re-exporting the same value
# reproduces the exact sequences and schedules that failed.
INFOPIPE_SEED="${INFOPIPE_SEED:-1}"
export INFOPIPE_SEED
trap 'status=$?; if [ "$status" -ne 0 ]; then
  echo "== FAILED (exit $status) with INFOPIPE_SEED=$INFOPIPE_SEED — re-export it to reproduce ==" >&2
fi' EXIT

# Formatting first (cheap): only when clang-format is available.
if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format check =="
  find src tests bench examples \
      \( -name '*.cpp' -o -name '*.hpp' \) -print |
    xargs clang-format --dry-run --Werror
else
  echo "== clang-format not installed; skipping format check =="
fi

echo "== RelWithDebInfo build + tests + benches (INFOPIPE_SEED=$INFOPIPE_SEED) =="
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done

echo "== pooling=off pass (legacy shared_ptr item path) =="
# The escape hatch must stay a working configuration: the whole suite runs
# again with pooled payload blocks disabled (INFOPIPE_POOLING=off), so both
# item representations keep their identical observable behaviour.
INFOPIPE_POOLING=off ctest --test-dir build --output-on-failure

echo "== batch=off pass (per-item pump cycles) =="
# Same discipline for the batched item path (ARCHITECTURE §15): the kill
# switch must collapse every span-moving pump back to classic one-item
# cycles with bit-identical delivery, across the whole suite.
INFOPIPE_BATCH=off ctest --test-dir build --output-on-failure

echo "== sessions=off pass (per-flow realization fallback) =="
# The session layer's kill switch (ARCHITECTURE §17): with the shared
# engines disabled every open falls back to a full per-flow plan+realize,
# and per-session item streams must stay bit-identical (the session suite
# asserts the digests; the rest of the suite must simply not care).
INFOPIPE_SESSIONS=off ctest --test-dir build --output-on-failure

echo "== elastic=off pass (topology pinned at construction) =="
# The elastic topology's kill switch (ARCHITECTURE §19): with
# INFOPIPE_ELASTIC=off, add_shard/retire_shard refuse and every group keeps
# its construction-time shard count — the whole suite must behave exactly
# as it did before the topology learned to move (the elastic tests pin the
# flag on for their own mechanics, or drive both modes explicitly).
INFOPIPE_ELASTIC=off ctest --test-dir build --output-on-failure

echo "== record=off pass (dormant replay taps) =="
# The recorder's kill switch (ARCHITECTURE §18): install() refuses, the
# taps stay dormant, and the whole suite must behave identically (the
# recording tests skip themselves; nothing else may notice).
INFOPIPE_RECORD=off ctest --test-dir build --output-on-failure

echo "== replay stage: record -> replay smoke + schedule fuzz =="
# The §18 claim end to end: a LIVE two-kernel-thread run of the sharded
# player (mid-flow migration included) is recorded, then replayed on the
# manual lockstep substrate — exit is nonzero unless the per-flow digests
# are bit-identical. Then the fuzzer explores 100 perturbed schedules of
# the lockstep pipeline, asserting none of them moves a digest.
replay_trace="build/sharded_player_trace.bin"
./build/examples/sharded_player --record "$replay_trace"
./build/examples/sharded_player --replay "$replay_trace"
INFOPIPE_FUZZ_SEEDS=100 ./build/tests/replay_test \
  --gtest_filter='ScheduleFuzzer.*'

echo "== elastic replay smoke: record a grow/shrink run -> replay =="
# The §19 claim end to end: the same player, but the mid-flow migration
# lands on a shard added DURING playback and the old home is retired after
# — the trace carries kScale frames and the lockstep replay must re-apply
# them at their recorded instants and still match every digest.
elastic_trace="build/sharded_player_elastic_trace.bin"
./build/examples/sharded_player --record-elastic "$elastic_trace"
./build/examples/sharded_player --replay "$elastic_trace"

echo "== ASan+UBSan build + tests =="
cmake -B build-sanitize -G Ninja -DCMAKE_BUILD_TYPE=Sanitize
cmake --build build-sanitize
ASAN_OPTIONS=detect_stack_use_after_return=0 \
UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-sanitize --output-on-failure

echo "== TSan build + multi-runtime suites =="
# Only the suites that exercise multiple kernel threads: the ip_shard
# channels/groups, the io_bridge poller, the rt substrate they build on,
# the feedback suites (cross-shard loops sample channel atomics and
# post control events between kernel threads), and the ip_balance suite
# (live migration re-binds channels while the far shard runs), the
# ip_mem suite (payload blocks allocated on one shard are released on
# another through the pool's lock-free foreign-return/adoption path), and
# the batch suite (span reservations publish across the shard channel's
# SPSC indices with a single store each), the net suite (SimLink's
# set_bandwidth races a kernel-thread tuner against concurrent sends),
# and the socket suite (SocketTransport runs against the io_bridge poller
# thread and real kernel sockets), and the session suite (open/close churn
# from plain std::threads against live shard engines, plus the socket
# front door), and the replay suite (the recorder's tap sink is fed from
# every shard thread at once; the HB checker joins vector clocks across
# them), and the elastic suite (host kernel threads are started and
# joined mid-run while sibling shards keep streaming items across the
# channels). The remaining suites are single-threaded by construction
# (one ULT scheduler on one kernel thread) and run under ASan above.
cmake -B build-thread -G Ninja -DCMAKE_BUILD_TYPE=Thread
cmake --build build-thread
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-thread -R 'rt_runtime_test|rt_stress_test|io_bridge_test|shard|elastic|feedback|balance|mem_test|batch|net_test|socket_transport_test|session_test|replay_test' \
    --output-on-failure

echo "== multi-process smoke: distributed_player over loopback TCP =="
# Two real OS processes exchange the stream over loopback TCP; the client
# verifies a byte-identical digest against the in-process SimLink
# reference, and the INFOPIPE_NET=sim kill switch must keep working.
./build/examples/distributed_player
INFOPIPE_NET=sim ./build/examples/distributed_player
