// Sharded throughput: the same CPU-bound four-section chain executed on a
// single runtime (baseline) and on ShardGroups of 1, 2 and 4 shards.
//
// Each section carries a spin-work stage, so on a multi-core host the
// sections genuinely overlap once they sit on different kernel threads and
// throughput scales with the shard count (until the cross-shard channel
// hop dominates). On a single-core host the sharded numbers collapse to
// the baseline plus channel overhead — record the host's core count next
// to any archived result.
//
// Accepts --metrics-out=FILE: dumps the merged per-shard registries
// (shard<i>.-prefixed rows plus chan.* channel rows) per shard count.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <chrono>
#include <cstdint>
#include <string>

#include "core/infopipes.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace {

using namespace infopipe;

constexpr std::uint64_t kItems = 2000;
constexpr int kSpins = 2000;

/// CPU-bound stage: an LCG churn per item, heavy enough that compute (not
/// scheduling) dominates a section's cost.
class SpinWork : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

 protected:
  Item convert(Item x) override {
    std::uint64_t acc = x.seq + 1;
    for (int i = 0; i < kSpins; ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    benchmark::DoNotOptimize(acc);
    return x;
  }
};

/// Four sections separated by three passive buffers; every section does
/// the same spin work, so an even 2- or 4-way partition balances.
struct FourStageChain {
  CountingSource src{"src", kItems};
  FreeRunningPump p1{"p1"};
  SpinWork w1{"w1"};
  Buffer b1{"b1", 64};
  FreeRunningPump p2{"p2"};
  SpinWork w2{"w2"};
  Buffer b2{"b2", 64};
  FreeRunningPump p3{"p3"};
  SpinWork w3{"w3"};
  Buffer b3{"b3", 64};
  FreeRunningPump p4{"p4"};
  SpinWork w4{"w4"};
  CountingSink sink{"sink"};
  Pipeline pipe;

  FourStageChain() {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, w1, 0);
    pipe.connect(w1, 0, b1, 0);
    pipe.connect(b1, 0, p2, 0);
    pipe.connect(p2, 0, w2, 0);
    pipe.connect(w2, 0, b2, 0);
    pipe.connect(b2, 0, p3, 0);
    pipe.connect(p3, 0, w3, 0);
    pipe.connect(w3, 0, b3, 0);
    pipe.connect(b3, 0, p4, 0);
    pipe.connect(p4, 0, w4, 0);
    pipe.connect(w4, 0, sink, 0);
  }
};

void BM_SingleRuntimeBaseline(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FourStageChain c;
    rt::Runtime rtm;
    Realization real(rtm, c.pipe);
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    if (c.sink.count() != kItems) {
      state.SkipWithError("baseline lost items");
      return;
    }
    obsbench::capture(rtm, "BM_SingleRuntimeBaseline");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SingleRuntimeBaseline)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardThroughput(benchmark::State& state) {
  const int n_shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FourStageChain c;
    shard::ShardGroup group(n_shards);
    shard::ShardedRealization real(group, c.pipe);
    real.start();
    state.ResumeTiming();
    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    if (c.sink.count() != kItems) {
      state.SkipWithError("sharded run lost items");
      return;
    }
    if (obsbench::enabled()) {
      obsbench::captured()["BM_ShardThroughput/" + std::to_string(n_shards)] =
          real.metrics_snapshot().to_json();
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
  state.counters["shards"] = n_shards;
}
// Real time, not CPU time: the bench thread parks in wait_finished while
// the shard threads do the work.
BENCHMARK(BM_ShardThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Cross-shard item movement, batched vs per-item (ARCHITECTURE §15). No
// spin work: token items through src -> pump -> [cut] -> pump -> sink on 2
// shards, so items/sec measures the movement machinery itself — driver
// cycles, buffer locks, channel pushes — which is exactly what spans
// amortize. max_batch = 1 is the per-item baseline; max_batch = 0 encodes
// "batched pumps (64) but INFOPIPE_BATCH=off", which must collapse onto
// that baseline.

constexpr std::uint64_t kFlowItems = 200000;

void BM_CrossShardBatchedFlow(benchmark::State& state) {
  const auto arg = static_cast<std::size_t>(state.range(0));
  const std::size_t mb = arg == 0 ? 64 : arg;
  config().batching = arg != 0;
  for (auto _ : state) {
    state.PauseTiming();
    CountingSource src{"src", kFlowItems};
    FreeRunningPump p1{PumpSpec{.name = "p1", .max_batch = mb}};
    Buffer buf{"buf", 256};
    FreeRunningPump p2{PumpSpec{.name = "p2", .max_batch = mb}};
    CountingSink sink{"sink"};
    Pipeline pipe;
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, buf, 0);
    pipe.connect(buf, 0, p2, 0);
    pipe.connect(p2, 0, sink, 0);
    shard::ShardGroup group(2);
    shard::ShardedRealization real(group, pipe);
    real.start();
    state.ResumeTiming();
    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    if (sink.count() != kFlowItems) {
      state.SkipWithError("batched flow lost items");
      return;
    }
    if (obsbench::enabled()) {
      obsbench::captured()["BM_CrossShardBatchedFlow/" +
                           std::to_string(arg)] =
          real.metrics_snapshot().to_json();
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kFlowItems));
    state.ResumeTiming();
  }
  state.counters["max_batch"] = static_cast<double>(mb);
  state.counters["batching"] = arg != 0 ? 1 : 0;
  config().batching = true;
}
BENCHMARK(BM_CrossShardBatchedFlow)
    ->Arg(1)   // per-item baseline
    ->Arg(8)
    ->Arg(64)
    ->Arg(0)   // max_batch=64 under the kill switch: must match Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
