// Ablations: the scheduler design choices the paper bakes in (§2.2, §4),
// each disabled in isolation to show what breaks. Measured behaviourally
// (counts and orderings are deterministic under the virtual clock).
//
//  A1  control-overtakes-data: how many queued data items are processed
//      before a control event's handler runs.
//  A2  priority inheritance: whether a mid-priority compute thread can
//      starve a high-priority caller blocked on a low-priority server
//      (classic inversion).
//  A3  dispatch-point preemption: wake-to-run distance, in messages, for a
//      high-priority thread woken by a busy low-priority sender.
#include <cstdio>

#include "core/infopipes.hpp"

#include "bench_obs.hpp"

using namespace infopipe;

namespace {

// ---- A1: control priority over data -----------------------------------------

int data_before_control(bool overtake) {
  rt::RuntimeOptions opt;
  opt.control_overtakes_data = overtake;
  rt::Runtime rt(nullptr, opt);
  int data_seen = 0;
  int data_before = -1;
  const rt::ThreadId t = rt.spawn(
      "sink", rt::kPriorityData, [&](rt::Runtime&, rt::Message m) {
        if (m.cls == rt::MsgClass::kControl) {
          data_before = data_seen;
        } else {
          ++data_seen;
        }
        return rt::CodeResult::kContinue;
      });
  constexpr int kBacklog = 5000;
  for (int i = 0; i < kBacklog; ++i) {
    rt.send(t, rt::Message{i, rt::MsgClass::kData});
  }
  rt.send(t, rt::Message{0, rt::MsgClass::kControl});
  rt.run();
  obsbench::capture(rt, "A1_control_overtakes_data");
  return data_before;
}

// ---- A2: priority inversion ---------------------------------------------------

struct InversionResult {
  int middle_before_reply = 0;  // mid-priority work done while caller waits
};

InversionResult inversion(bool inheritance) {
  rt::RuntimeOptions opt;
  opt.priority_inheritance = inheritance;
  rt::Runtime rt(nullptr, opt);
  InversionResult r;
  bool replied = false;
  const rt::ThreadId server = rt.spawn(
      "server", rt::kPriorityIdle, [&](rt::Runtime& rr, rt::Message m) {
        // The low-priority server needs several scheduling slices to finish
        // (it yields between steps, as a long computation would).
        for (int i = 0; i < 50; ++i) rr.yield();
        rr.reply(m, rt::Message{0, rt::MsgClass::kReply});
        replied = true;
        return rt::CodeResult::kContinue;
      });
  const rt::ThreadId caller = rt.spawn(
      "caller", rt::kPriorityControl, [&](rt::Runtime& rr, rt::Message) {
        (void)rr.call(server, rt::Message{1, rt::MsgClass::kData});
        return rt::CodeResult::kTerminate;
      });
  // A stream of mid-priority work arriving while the call is pending.
  const rt::ThreadId middle = rt.spawn(
      "middle", rt::kPriorityData, [&](rt::Runtime&, rt::Message) {
        if (!replied) ++r.middle_before_reply;
        return rt::CodeResult::kContinue;
      });
  rt.send(caller, rt::Message{});
  for (int i = 0; i < 200; ++i) rt.send(middle, rt::Message{i, rt::MsgClass::kData});
  rt.run();
  obsbench::capture(rt, "A2_priority_inversion");
  return r;
}

// ---- A3: preemption at dispatch points -------------------------------------------

int wake_to_run_distance(bool preemption) {
  rt::RuntimeOptions opt;
  opt.preemption = preemption;
  rt::Runtime rt(nullptr, opt);
  int sent_after_wake = 0;
  bool urgent_ran = false;
  const rt::ThreadId urgent = rt.spawn(
      "urgent", rt::kPriorityTimer, [&](rt::Runtime&, rt::Message) {
        urgent_ran = true;
        return rt::CodeResult::kTerminate;
      });
  const rt::ThreadId sink = rt.spawn(
      "sink", rt::kPriorityIdle,
      [](rt::Runtime&, rt::Message) { return rt::CodeResult::kContinue; });
  const rt::ThreadId busy = rt.spawn(
      "busy", rt::kPriorityData, [&](rt::Runtime& rr, rt::Message) {
        rr.send(urgent, rt::Message{});  // wakes a higher-priority thread
        for (int i = 0; i < 1000; ++i) {
          if (!urgent_ran) ++sent_after_wake;
          rr.send(sink, rt::Message{i, rt::MsgClass::kData});  // dispatch points
        }
        return rt::CodeResult::kTerminate;
      });
  rt.send(busy, rt::Message{});
  rt.run();
  obsbench::capture(rt, "A3_dispatch_preemption");
  return sent_after_wake;
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  std::puts("Ablation A1: data items processed before a control event's");
  std::puts("handler runs (5000-item backlog):");
  std::printf("  control-overtakes-data ON : %d\n",
              data_before_control(true));
  std::printf("  control-overtakes-data OFF: %d   <- stuck behind the queue\n",
              data_before_control(false));

  std::puts("");
  std::puts("Ablation A2: mid-priority messages processed while a HIGH-");
  std::puts("priority caller waits on a LOW-priority server (inversion):");
  std::printf("  priority inheritance ON : %d\n",
              inversion(true).middle_before_reply);
  std::printf("  priority inheritance OFF: %d   <- inversion\n",
              inversion(false).middle_before_reply);

  std::puts("");
  std::puts("Ablation A3: messages a busy thread sends after waking an");
  std::puts("urgent thread, before the urgent thread actually runs:");
  std::printf("  preemption ON : %d\n", wake_to_run_distance(true));
  std::printf("  preemption OFF: %d   <- urgent thread waits out the slice\n",
              wake_to_run_distance(false));

  std::puts("");
  std::puts("expected shape: each OFF column is large where the ON column");
  std::puts("is ~0 — the paper's design choices are each load-bearing.");
  obsbench::write_metrics();
  return 0;
}
