// E7 — pump classes (§3.1): "Clock driven pumps typically operate at a
// constant rate... The second class of pumps adjusts its speed according to
// the state of other pipeline components."
//
// Measured: (1) rate accuracy of a clocked pump across target rates;
// (2) a free-running pump self-pacing against a bounded buffer (its
// throughput must equal the downstream rate, its thread blocking instead of
// spinning); (3) an adaptive pump driven by the fill-level feedback loop:
// convergence time to a producer-rate disturbance.
#include <cstdio>

#include "bench_obs.hpp"

#include "core/infopipes.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"

using namespace infopipe;
using namespace infopipe::fb;

namespace {

void clocked_accuracy() {
  std::puts("E7.1  clocked pump rate accuracy (virtual clock)");
  std::puts("  target Hz | achieved Hz | items");
  for (double hz : {10.0, 30.0, 100.0, 1000.0}) {
    rt::Runtime rt;
    CountingSource src("src", 1000000);
    ClockedPump pump("pump", hz);
    CountingSink sink("sink");
    auto ch = src >> pump >> sink;
    Realization real(rt, ch.pipeline());
    real.start();
    rt.run_until(rt::seconds(10));
    const double achieved = static_cast<double>(sink.count()) / 10.0;
    std::printf("  %8.1f  | %10.2f  | %llu\n", hz, achieved,
                static_cast<unsigned long long>(sink.count()));
    obsbench::capture(rt, "clocked_accuracy");
    real.shutdown();
    rt.run();
  }
}

void freerunning_pacing() {
  std::puts("");
  std::puts("E7.2  free-running pump paced by buffer blocking");
  std::puts("  downstream Hz | producer throughput Hz | producer blocks");
  for (double hz : {20.0, 50.0, 200.0}) {
    rt::Runtime rt;
    CountingSource src("src", 1000000);
    FreeRunningPump fill("fill");  // no rate limit of its own
    Buffer buf("buf", 4, FullPolicy::kBlock, EmptyPolicy::kBlock);
    ClockedPump drain("drain", hz);
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    Realization real(rt, ch.pipeline());
    real.start();
    rt.run_until(rt::seconds(10));
    std::printf("  %10.1f    |       %8.2f         | %llu\n", hz,
                static_cast<double>(fill.items_pumped()) / 10.0,
                static_cast<unsigned long long>(buf.stats().put_blocks));
    obsbench::capture(rt, "freerunning_pacing");
    real.shutdown();
    rt.run();
  }
  std::puts("  expected: producer throughput == downstream rate (+ buffer)");
}

void adaptive_convergence() {
  std::puts("");
  std::puts("E7.3  adaptive pump under fill-level feedback: convergence");
  rt::Runtime rt;
  CountingSource src("src", 10000000);
  AdaptivePump fill("fill", 100.0);
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rt, ch.pipeline());
  auto loop = make_loop(
      real, LoopSpec{.name = "ctl",
                     .period = rt::milliseconds(50),
                     .sensor = fill_fraction("buf"),
                     .setpoint = 0.5,
                     .controller = PIController(-200.0, -400.0, 1.0, 2000.0),
                     .actuator = pump_rate("drain")});
  real.start();
  loop->start();
  rt.run_until(rt::seconds(10));
  std::printf("  settled: drain=%.1f Hz, fill=%.0f%%\n", drain.rate_hz(),
              100.0 * static_cast<double>(buf.fill()) /
                  static_cast<double>(buf.capacity()));

  // Disturbance: producer doubles its rate. Track time until the drain rate
  // is within 5%% of the new producer rate.
  real.post_event_to(fill, Event{kEventQualityHint, 200.0});
  const rt::Time t0 = rt.now();
  rt::Time settled_at = -1;
  for (int step = 1; step <= 400; ++step) {
    rt.run_until(t0 + step * rt::milliseconds(50));
    if (settled_at < 0 && drain.rate_hz() > 190.0 && drain.rate_hz() < 210.0) {
      settled_at = rt.now() - t0;
    }
  }
  std::printf("  after producer 100->200 Hz: drain=%.1f Hz, fill=%.0f%%, "
              "settling time=%.2f s\n",
              drain.rate_hz(),
              100.0 * static_cast<double>(buf.fill()) /
                  static_cast<double>(buf.capacity()),
              settled_at < 0 ? -1.0 : static_cast<double>(settled_at) / 1e9);
  std::puts("  expected: settles within a few seconds, fill returns to 50%");
  obsbench::capture(rt, "adaptive_convergence");
  loop->stop();
  real.shutdown();
  rt.run();
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  clocked_accuracy();
  freerunning_pacing();
  adaptive_convergence();
  obsbench::write_metrics();
  return 0;
}
