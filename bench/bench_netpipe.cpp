// E8 — netpipes and marshalling (§2.4): the cost of crossing the netpipe
// boundary (marshal → transport → unmarshal) relative to a local hand-off,
// and the simulated link's bandwidth/latency behaviour.
//
// Part 1 (google-benchmark, wall clock): middleware overhead per item for a
// local pipeline vs the same pipeline with a netpipe in the middle, plus
// the raw codec cost.
// Part 2 (virtual clock, printed): delivered throughput vs configured
// bandwidth — the link must saturate at the configured rate — and one-way
// latency vs configured propagation delay.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/netpipe.hpp"
#include "net/reliable.hpp"

#include "bench_obs.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

StreamConfig bench_stream(std::uint64_t frames) {
  StreamConfig c;
  c.frames = frames;
  return c;
}

void BM_CodecEncodeDecode(benchmark::State& state) {
  VideoFrame f;
  f.frame_no = 7;
  f.type = FrameType::kP;
  f.compressed_bytes = 4000;
  Item x = Item::of<VideoFrame>(f);
  for (auto _ : state) {
    auto bytes = encode_frame(x);
    Item y = decode_frame(bytes);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_CodecEncodeDecode);

void BM_LocalPipeline(benchmark::State& state) {
  constexpr std::uint64_t kFrames = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rt;
    MpegFileSource src("m.mpg", bench_stream(kFrames));
    FreeRunningPump pump("pump");
    MpegDecoder dec("dec");
    VideoDisplay display("display");
    auto ch = src >> pump >> dec >> display;
    Realization real(rt, ch.pipeline());
    real.start();
    state.ResumeTiming();
    rt.run();
    state.PauseTiming();
    obsbench::capture(rt, "BM_LocalPipeline");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kFrames));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_LocalPipeline)->Unit(benchmark::kMillisecond);

void BM_NetpipePipeline(benchmark::State& state) {
  constexpr std::uint64_t kFrames = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rt;
    MpegFileSource src("m.mpg", bench_stream(kFrames));
    FreeRunningPump pump("pump");
    net::MarshalFilter marshal("marshal", encode_frame, "video");
    net::LinkConfig lc;
    lc.bandwidth_bps = 1e12;  // effectively infinite: isolate CPU overhead
    lc.base_latency = 0;
    // A free-running sender is infinitely fast in virtual time; give the
    // queue room for the whole burst so no packet drops distort the count.
    lc.queue_capacity_bytes = std::size_t{1} << 30;
    net::SimLink link(lc);
    net::NetSender tx("tx", link, "a");
    net::NetReceiver rx("rx", link, "b");
    net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
    MpegDecoder dec("dec");
    VideoDisplay display("display");
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, marshal, 0);
    p.connect(marshal, 0, tx, 0);
    p.connect(rx, 0, unmarshal, 0);
    p.connect(unmarshal, 0, dec, 0);
    p.connect(dec, 0, display, 0);
    Realization real(rt, p);
    real.start();
    state.ResumeTiming();
    rt.run();
    state.PauseTiming();
    obsbench::capture(rt, "BM_NetpipePipeline");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kFrames));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_NetpipePipeline)->Unit(benchmark::kMillisecond);

void print_link_behaviour() {
  std::puts("\nE8.2  simulated link: delivered throughput vs bandwidth");
  std::puts("  configured Mbps | offered Mbps | delivered Mbps");
  for (double bw : {0.5e6, 1e6, 2e6, 8e6}) {
    rt::Runtime rt;
    StreamConfig cfg = bench_stream(900);  // ~0.9 Mbps offered at 30 fps
    MpegFileSource src("m.mpg", cfg);
    ClockedPump pump("pump", cfg.fps);
    net::MarshalFilter marshal("marshal", encode_frame, "video");
    net::LinkConfig lc;
    lc.bandwidth_bps = bw;
    lc.queue_capacity_bytes = 32 * 1024;
    net::SimLink link(lc);
    net::NetSender tx("tx", link, "a");
    net::NetReceiver rx("rx", link, "b");
    net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
    CountingSink sink("sink");
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, marshal, 0);
    p.connect(marshal, 0, tx, 0);
    p.connect(rx, 0, unmarshal, 0);
    p.connect(unmarshal, 0, sink, 0);
    Realization real(rt, p);
    real.start();
    rt.run();
    const double seconds = static_cast<double>(rt.now()) / 1e9;
    const double offered =
        static_cast<double>(link.stats().bytes_sent +
                            /* dropped bytes approx */ 0) * 8 / seconds;
    const double delivered =
        static_cast<double>(link.stats().bytes_sent) * 8 / seconds;
    (void)offered;
    std::printf("  %10.1f     |    ~0.91     | %8.2f   (%llu of %llu pkts)\n",
                bw / 1e6, delivered / 1e6,
                static_cast<unsigned long long>(
                    link.stats().delivered_scheduled),
                static_cast<unsigned long long>(link.stats().sent));
  }

  std::puts("\nE8.3  one-way latency vs configured propagation delay");
  std::puts("  configured ms | measured first-frame ms");
  for (auto lat_ms : {5, 20, 80}) {
    rt::Runtime rt;
    StreamConfig cfg = bench_stream(10);
    MpegFileSource src("m.mpg", cfg);
    ClockedPump pump("pump", cfg.fps);
    net::MarshalFilter marshal("marshal", encode_frame, "video");
    net::LinkConfig lc;
    lc.bandwidth_bps = 1e9;
    lc.base_latency = rt::milliseconds(lat_ms);
    net::SimLink link(lc);
    net::NetSender tx("tx", link, "a");
    net::NetReceiver rx("rx", link, "b");
    net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
    CollectorSink sink("sink");
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, marshal, 0);
    p.connect(marshal, 0, tx, 0);
    p.connect(rx, 0, unmarshal, 0);
    p.connect(unmarshal, 0, sink, 0);
    Realization real(rt, p);
    real.start();
    rt.run();
    const double first_ms =
        static_cast<double>(sink.arrivals().front().at) / 1e6;
    std::printf("  %9d     | %10.3f\n", lat_ms, first_ms);
  }
}

void print_protocol_comparison() {
  std::puts("\nE8.4  two protocols, one lossy network (15% loss): the §2.4");
  std::puts("      trade-off a pluggable netpipe exists to expose");
  std::puts("  protocol    | frames | corrupt | worst frame delay | retransmissions");
  for (bool reliable : {false, true}) {
    rt::Runtime rt;
    StreamConfig cfg = bench_stream(600);
    MpegFileSource src("m.mpg", cfg);
    ClockedPump pump("pump", cfg.fps);
    net::MarshalFilter marshal("marshal", encode_frame, "video");
    net::LinkConfig lc;
    lc.bandwidth_bps = 10e6;
    lc.base_latency = rt::milliseconds(15);
    lc.random_loss = 0.15;
    lc.seed = 5;
    net::SimLink fwd(lc);
    net::LinkConfig ack;
    ack.bandwidth_bps = 10e6;
    ack.base_latency = rt::milliseconds(15);
    net::SimLink rev(ack);
    net::ReliableTransport arq(rt, fwd, rev, rt::milliseconds(70));
    net::Transport& transport = reliable
                                    ? static_cast<net::Transport&>(arq)
                                    : static_cast<net::Transport&>(fwd);
    net::NetSender tx("tx", transport, "a");
    net::NetReceiver rx("rx", transport, "b");
    net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
    MpegDecoder dec("dec");
    VideoDisplay display("display", cfg.fps);
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, marshal, 0);
    p.connect(marshal, 0, tx, 0);
    p.connect(rx, 0, unmarshal, 0);
    p.connect(unmarshal, 0, dec, 0);
    p.connect(dec, 0, display, 0);
    Realization real(rt, p);
    real.start();
    rt.run();

    // Transit latency = arrival - pts (frames leave on the 30 Hz grid).
    const double worst_ms = display.stats().mean_latency_ms;
    std::printf("  %s |  %4llu  |  %4llu   |  mean %7.1f ms   | %llu\n",
                reliable ? "reliable   " : "best-effort",
                static_cast<unsigned long long>(display.stats().displayed),
                static_cast<unsigned long long>(display.stats().corrupt),
                worst_ms,
                static_cast<unsigned long long>(
                    reliable ? arq.stats().retransmissions : 0));
  }
  std::puts("  expected shape: best-effort loses/corrupts frames but keeps");
  std::puts("  delay near the propagation latency; reliable delivers all 600");
  std::puts("  at the cost of RTO-sized delay spikes (and higher mean).");
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_link_behaviour();
  print_protocol_comparison();
  obsbench::write_metrics();
  return 0;
}
