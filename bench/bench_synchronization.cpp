// E9 — what thread transparency saves (§3.2): "inter-thread synchronization
// is based on passing on data items and control events rather than on more
// error-prone low-level primitives such as locks and semaphores."
//
// The comparison the paper implies but never measures: moving items between
// two concurrent stages via
//   (a) the middleware's planned pipeline (user-level threads, one OS
//       thread, buffer hand-off),
//   (b) hand-written OS threads + mutex + condition_variable bounded queue
//       (what an application programmer would write by hand),
//   (c) the degenerate best case: direct function calls in one thread
//       (what the planner produces when no concurrency is needed).
//
// Expected shape: (c) fastest by a wide margin, (a) well ahead of (b) for
// small items because user-level switches are much cheaper than
// futex-mediated OS thread wakeups.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/infopipes.hpp"

namespace {

using namespace infopipe;

constexpr std::uint64_t kItems = 20000;

void BM_MiddlewarePipelineTwoSections(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rt;
    CountingSource src("src", kItems);
    FreeRunningPump fill("fill");
    Buffer buf("buf", 64, FullPolicy::kBlock, EmptyPolicy::kBlock);
    FreeRunningPump drain("drain");
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    Realization real(rt, ch.pipeline());
    real.start();
    state.ResumeTiming();
    rt.run();
    state.PauseTiming();
    obsbench::capture(rt, "BM_MiddlewarePipelineTwoSections");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_MiddlewarePipelineTwoSections)->Unit(benchmark::kMillisecond);

/// The hand-rolled alternative: two OS threads around a bounded queue.
class LockedQueue {
 public:
  explicit LockedQueue(std::size_t cap) : cap_(cap) {}

  void push(Item x) {
    std::unique_lock lk(m_);
    not_full_.wait(lk, [&] { return q_.size() < cap_; });
    q_.push_back(std::move(x));
    not_empty_.notify_one();
  }

  bool pop(Item& out) {
    std::unique_lock lk(m_);
    not_empty_.wait(lk, [&] { return !q_.empty() || done_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard lk(m_);
    done_ = true;
    not_empty_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_, not_empty_;
  std::deque<Item> q_;
  std::size_t cap_;
  bool done_ = false;
};

void BM_HandWrittenOsThreads(benchmark::State& state) {
  for (auto _ : state) {
    LockedQueue q(64);
    std::uint64_t consumed = 0;
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        Item x = Item::token();
        x.seq = i;
        q.push(std::move(x));
      }
      q.close();
    });
    std::thread consumer([&] {
      Item x;
      while (q.pop(x)) ++consumed;
    });
    producer.join();
    consumer.join();
    benchmark::DoNotOptimize(consumed);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
  }
}
BENCHMARK(BM_HandWrittenOsThreads)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // work happens on worker OS threads, not the main one

void BM_SingleThreadDirectCalls(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rt;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    CountingSink sink("sink");
    auto ch = src >> pump >> sink;
    Realization real(rt, ch.pipeline());
    real.start();
    state.ResumeTiming();
    rt.run();
    state.PauseTiming();
    obsbench::capture(rt, "BM_SingleThreadDirectCalls");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SingleThreadDirectCalls)->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
