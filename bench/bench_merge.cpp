// Supplementary: shared-region machinery cost (MergeTee section lock) as a
// function of fan-in, and multicast fan-out cost. Complements E2 for the
// multi-port components of §2.1.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <memory>
#include <vector>

#include "core/infopipes.hpp"

namespace {

using namespace infopipe;

void BM_MergeFanIn(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  constexpr std::uint64_t kPerBranch = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    std::vector<std::unique_ptr<CountingSource>> srcs;
    std::vector<std::unique_ptr<FreeRunningPump>> pumps;
    MergeTee merge("merge", branches);
    CountingSink sink("sink");
    Pipeline p;
    for (int b = 0; b < branches; ++b) {
      srcs.push_back(std::make_unique<CountingSource>(
          "s" + std::to_string(b), kPerBranch));
      pumps.push_back(
          std::make_unique<FreeRunningPump>("p" + std::to_string(b)));
      p.connect(*srcs.back(), 0, *pumps.back(), 0);
      p.connect(*pumps.back(), 0, merge, b);
    }
    p.connect(merge, 0, sink, 0);
    Realization real(rtm, p);
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_MergeFanIn");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kPerBranch) * branches);
    state.ResumeTiming();
  }
  state.counters["branches"] = branches;
}
BENCHMARK(BM_MergeFanIn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MulticastFanOut(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  constexpr std::uint64_t kItems = 4000;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    MulticastTee tee("tee", branches);
    std::vector<std::unique_ptr<CountingSink>> sinks;
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, tee, 0);
    for (int b = 0; b < branches; ++b) {
      sinks.push_back(
          std::make_unique<CountingSink>("k" + std::to_string(b)));
      p.connect(tee, b, *sinks.back(), 0);
    }
    Realization real(rtm, p);
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_MulticastFanOut");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
  state.counters["branches"] = branches;
}
BENCHMARK(BM_MulticastFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
