// E5 — the Figure 1 pipeline, measured. Two experiments on the full
// source → filter → netpipe → decoder → buffer → pump → display chain:
//
//  (1) Adaptation: sweep the congestion bandwidth; compare feedback-
//      controlled dropping against arbitrary network dropping. Reported per
//      row: frames delivered, I-frame survival, corrupt fraction.
//      Expected shape: with feedback, corruption stays near zero and
//      I survival near 100% even deep into congestion; without, both decay
//      with the congestion severity.
//
//  (2) Jitter: the consumer-side buffer + clocked output pump exist to
//      "reduce jitter" (§2.1). Compare display timing with and without
//      them when the network adds jitter. Expected: an order of magnitude
//      less inter-frame deviation with buffer+pump.
//
// Scenario experiment on the virtual clock: numbers are deterministic.
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/netpipe.hpp"

#include "bench_obs.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

struct AdaptResult {
  std::uint64_t displayed = 0;
  std::uint64_t i_shown = 0, i_total = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t net_drops = 0;
};

AdaptResult run_adaptation(double congested_bps, bool feedback) {
  rt::Runtime rt;
  StreamConfig cfg;
  cfg.frames = 900;  // 30 s at 30 fps
  MpegFileSource source("movie.mpg", cfg);
  ClockedPump send_pump("send-pump", cfg.fps);
  FrameDropFilter filter("filter");

  net::MarshalFilter marshal("marshal", encode_frame, "video");
  net::LinkConfig lc;
  lc.bandwidth_bps = 6e6;
  lc.base_latency = rt::milliseconds(30);
  lc.queue_capacity_bytes = 48 * 1024;
  net::SimLink link(lc);
  net::NetSender tx("tx", link, "server");
  net::NetReceiver rx("rx", link, "client");
  net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
  MpegDecoder decoder("decoder");
  Buffer buf("buf", 8, FullPolicy::kDropOldest, EmptyPolicy::kNil);
  ClockedPump play_pump("play", cfg.fps);
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(source, 0, send_pump, 0);
  p.connect(send_pump, 0, filter, 0);
  p.connect(filter, 0, marshal, 0);
  p.connect(marshal, 0, tx, 0);
  p.connect(rx, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  p.connect(decoder, 0, buf, 0);
  p.connect(buf, 0, play_pump, 0);
  p.connect(play_pump, 0, display, 0);
  Realization real(rt, p);
  real.start();

  rt.run_until(rt::seconds(5));
  link.set_bandwidth(congested_bps);
  if (feedback) {
    // Idealized controller reaction (the closed-loop version lives in
    // examples/adaptive_streaming.cpp): pick the drop level that fits.
    // GOP IBBPBBPBBPBB at 30 fps: full ~0.72 Mbps, I+P ~0.48, I ~0.24.
    int level = 0;
    if (congested_bps < 0.24e6) level = 3;
    else if (congested_bps < 0.48e6) level = 2;
    else if (congested_bps < 0.72e6) level = 1;
    real.post_event_to(filter, Event{kEventDropLevel, level});
  }
  rt.run_until(rt::seconds(25));
  link.set_bandwidth(6e6);
  if (feedback) real.post_event_to(filter, Event{kEventDropLevel, 0});
  rt.run_until(rt::seconds(40));
  real.shutdown();
  rt.run();

  AdaptResult r;
  const auto s = display.stats();
  r.displayed = s.displayed;
  r.i_shown = s.per_type[kKindI];
  r.i_total = cfg.frames / cfg.gop.size();  // one I per GOP
  r.corrupt = s.corrupt;
  r.net_drops = link.stats().dropped_congestion;
  obsbench::capture(rt, "adaptation");
  return r;
}

struct JitterResult {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t displayed = 0;
};

JitterResult run_jitter(bool with_buffer_and_pump) {
  rt::Runtime rt;
  StreamConfig cfg;
  cfg.frames = 600;
  MpegFileSource source("movie.mpg", cfg);
  ClockedPump send_pump("send-pump", cfg.fps);
  net::MarshalFilter marshal("marshal", encode_frame, "video");
  net::LinkConfig lc;
  lc.bandwidth_bps = 8e6;
  lc.base_latency = rt::milliseconds(20);
  lc.jitter = rt::milliseconds(25);  // heavy network jitter
  net::SimLink link(lc);
  net::NetSender tx("tx", link, "server");
  net::NetReceiver rx("rx", link, "client");
  net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
  MpegDecoder decoder("decoder");
  Buffer buf("buf", 16, FullPolicy::kBlock, EmptyPolicy::kNil);
  ClockedPump play_pump("play", cfg.fps);
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(source, 0, send_pump, 0);
  p.connect(send_pump, 0, marshal, 0);
  p.connect(marshal, 0, tx, 0);
  p.connect(rx, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  if (with_buffer_and_pump) {
    p.connect(decoder, 0, buf, 0);
    p.connect(buf, 0, play_pump, 0);
    p.connect(play_pump, 0, display, 0);
  } else {
    p.connect(decoder, 0, display, 0);  // frames hit the display as they
                                        // fall out of the network
  }
  Realization real(rt, p);
  real.start();
  rt.run();

  const auto s = display.stats();
  obsbench::capture(rt, "jitter");
  return JitterResult{s.mean_abs_jitter_ms, s.max_abs_jitter_ms, s.displayed};
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  std::puts("E5.1  Adaptation under congestion (Figure 1 pipeline)");
  std::puts("  congestion | feedback | delivered | I survival | corrupt | net drops");
  std::puts("  -----------+----------+-----------+------------+---------+----------");
  for (double bw : {2.0e6, 0.6e6, 0.4e6, 0.26e6}) {
    for (bool fb : {true, false}) {
      const AdaptResult r = run_adaptation(bw, fb);
      std::printf("  %7.1f Mb |   %s    |   %4llu    |   %5.1f%%   | %5.1f%%  |  %llu\n",
                  bw / 1e6, fb ? "on " : "off",
                  static_cast<unsigned long long>(r.displayed),
                  100.0 * static_cast<double>(r.i_shown) /
                      static_cast<double>(r.i_total),
                  100.0 * static_cast<double>(r.corrupt) /
                      static_cast<double>(r.displayed ? r.displayed : 1),
                  static_cast<unsigned long long>(r.net_drops));
    }
  }

  std::puts("");
  std::puts("E5.2  Display jitter with / without consumer-side buffer+pump");
  std::puts("  configuration      | mean |jitter| | max |jitter| | frames");
  for (bool smooth : {true, false}) {
    const JitterResult r = run_jitter(smooth);
    std::printf("  %s |   %7.2f ms  |  %7.2f ms  | %llu\n",
                smooth ? "buffer + pump     " : "straight to screen",
                r.mean_ms, r.max_ms,
                static_cast<unsigned long long>(r.displayed));
  }
  std::puts("");
  std::puts("  expected shape: feedback keeps I survival ~100% and corruption");
  std::puts("  near zero at every congestion level; buffer+pump cut jitter by");
  std::puts("  roughly an order of magnitude.");
  obsbench::write_metrics();
  return 0;
}
