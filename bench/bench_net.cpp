// E9 — real-socket transport (ip_netreal): what crossing a REAL kernel
// socket costs relative to the in-process SimLink, on the same frame path.
//
// Part 1 (google-benchmark, wall clock): delivered items/s for a burst of
// fixed-size frames through (a) loopback TCP between two SocketTransports
// on one runtime and (b) a zero-latency SimLink — the latter is the pure
// middleware-CPU baseline, the delta is syscalls + copies + the io_bridge
// readiness round trip.
// Part 2 (printed): per-frame one-way latency over loopback TCP, one frame
// in flight at a time (no queueing): p50/p99/max. SimLink's latency is a
// configured property, so only the TCP side is measured here.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "rt/io_bridge.hpp"
#include "rt/runtime.hpp"

#include "bench_obs.hpp"

using namespace infopipe;
using namespace infopipe::net;

namespace {

constexpr std::size_t kPayloadBytes = 1024;
constexpr int kBurstItems = 2000;

Item payload_item(std::uint64_t seq) {
  std::vector<std::uint8_t> b(kPayloadBytes,
                              static_cast<std::uint8_t>(seq & 0xFF));
  Item x = Item::of_bytes(b.data(), b.size());
  x.seq = seq;
  x.kind = 1;
  return x;
}

/// Counts kMsgNetDeliver arrivals on a plain ULT.
struct Collector {
  std::uint64_t items = 0;
  bool eos = false;
  rt::ThreadId tid = rt::kNoThread;

  void spawn(rt::Runtime& rtm) {
    tid = rtm.spawn("collect", rt::kPriorityData,
                    [this](rt::Runtime&, rt::Message m) {
                      if (m.type == kMsgNetDeliver) {
                        Item x = m.take<Item>();
                        if (x.is_eos()) {
                          eos = true;
                        } else {
                          ++items;
                        }
                      }
                      return rt::CodeResult::kContinue;
                    });
  }
};

template <typename Pred>
bool drive_until(rt::Runtime& rtm, Pred done,
                 rt::Time budget = rt::seconds(30)) {
  const rt::Time deadline = rtm.now() + budget;
  while (!done()) {
    if (rtm.now() >= deadline) return false;
    rtm.run_until(rtm.now() + rt::milliseconds(1));
  }
  return true;
}

struct TcpRig {
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io{rtm};
  std::unique_ptr<SocketTransport> server;
  std::unique_ptr<SocketTransport> client;

  TcpRig() {
    SocketConfig scfg;
    scfg.port = 0;
    server = SocketTransport::listen(rtm, io, scfg);
    SocketConfig ccfg;
    ccfg.port = server->local_port();
    client = SocketTransport::connect(rtm, io, ccfg);
  }
};

void BM_TcpLoopbackBurst(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TcpRig rig;
    Collector got;
    got.spawn(rig.rtm);
    rig.server->attach_receiver(got.tid);
    state.ResumeTiming();
    for (int i = 0; i < kBurstItems; ++i) {
      rig.client->send(rig.rtm, payload_item(static_cast<std::uint64_t>(i)));
    }
    rig.client->send(rig.rtm, Item::eos());
    const bool ok = drive_until(rig.rtm, [&] { return got.eos; });
    state.PauseTiming();
    obsbench::capture(rig.rtm, "BM_TcpLoopbackBurst");
    if (!ok || got.items != kBurstItems) {
      state.SkipWithError("loopback burst did not complete");
      return;
    }
    state.SetItemsProcessed(state.items_processed() + kBurstItems);
    state.SetBytesProcessed(state.bytes_processed() +
                            kBurstItems * static_cast<std::int64_t>(
                                              kPayloadBytes));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TcpLoopbackBurst)->Unit(benchmark::kMillisecond);

/// Same burst through a zero-latency, effectively-infinite SimLink on a
/// virtual clock: pure middleware CPU, no kernel in the path.
void BM_SimLinkBurst(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;  // SimClock
    LinkConfig lc;
    lc.bandwidth_bps = 1e12;
    lc.base_latency = 0;
    lc.queue_capacity_bytes = std::size_t{1} << 30;
    SimLink link(lc);
    Collector got;
    got.spawn(rtm);
    link.attach_receiver(got.tid);
    state.ResumeTiming();
    for (int i = 0; i < kBurstItems; ++i) {
      link.send(rtm, payload_item(static_cast<std::uint64_t>(i)));
    }
    link.send(rtm, Item::eos());
    rtm.run();
    state.PauseTiming();
    if (got.items != kBurstItems) {
      state.SkipWithError("sim burst did not complete");
      return;
    }
    state.SetItemsProcessed(state.items_processed() + kBurstItems);
    state.SetBytesProcessed(state.bytes_processed() +
                            kBurstItems * static_cast<std::int64_t>(
                                              kPayloadBytes));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SimLinkBurst)->Unit(benchmark::kMillisecond);

void print_frame_latency() {
  std::puts("\nE9.2  loopback TCP per-frame one-way latency (one frame in");
  std::puts("      flight: send -> kMsgNetDeliver on the far runtime)");
  constexpr int kProbes = 1000;
  TcpRig rig;
  Collector got;
  got.spawn(rig.rtm);
  rig.server->attach_receiver(got.tid);
  // Let the connection establish before probing.
  drive_until(rig.rtm, [&] { return rig.server->stats().accepts > 0; });

  std::vector<double> us;
  us.reserve(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    const std::uint64_t want = got.items + 1;
    const rt::Time t0 = rig.rtm.now();
    rig.client->send(rig.rtm, payload_item(static_cast<std::uint64_t>(i)));
    if (!drive_until(rig.rtm, [&] { return got.items >= want; },
                     rt::seconds(5))) {
      std::puts("  probe timed out");
      return;
    }
    us.push_back(static_cast<double>(rig.rtm.now() - t0) / 1e3);
  }
  std::sort(us.begin(), us.end());
  const auto at = [&](double q) {
    return us[static_cast<std::size_t>(q * (us.size() - 1))];
  };
  std::printf("  frames %d, payload %zu B: p50 %.1f us  p99 %.1f us  max "
              "%.1f us\n",
              kProbes, kPayloadBytes, at(0.50), at(0.99), us.back());
  std::puts("  note: the runtime polls readiness in 1 ms run_until slices,");
  std::puts("  so the floor is the slice, not the kernel's loopback time.");
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_frame_latency();
  obsbench::write_metrics();
  return 0;
}
