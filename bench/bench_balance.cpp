// ip_balance overhead and recovery characteristics.
//
// Two questions a deployer asks before turning the rebalancer on:
//
//  1. What does the accounting cost while nothing is wrong?
//     BM_SteadyStateBaseline vs BM_SteadyStateWithAccountant run the same
//     2-shard spin-work flow; the second also runs an autonomous
//     Rebalancer whose policy threshold is set high enough that it only
//     ever samples (no migrations). The delta is the steady-state tax of
//     LoadAccountant::sample() firing at the default period, and the
//     acceptance bar is < 3% of baseline throughput.
//
//  2. How quickly does a skewed placement recover?
//     BM_SkewRecovery builds a deterministic manual-mode group, piles
//     every section onto shard 0 with an explicit migrate_section, feeds
//     the accountant a skewed busy profile, and counts Rebalancer::step()
//     calls until the placement splits again. The measured time is the
//     full sample -> decide -> move_section path, i.e. the cost of one
//     recovery, and the step count is reported as a counter.
//
//  3. What does a whole scale cycle cost while the flow runs?
//     BM_ElasticScaleCycle grows a live 2-shard group by one shard, moves
//     the middle section onto it, then drains and retires the section's
//     old home — all mid-flow, under real kernel threads. The drain_ms
//     counter is the time from evacuate_shard() to retire_shard()
//     returning (quiesce + transfer + resume + thread join), and the run
//     is rejected outright if a single item is lost.
//
// Accepts --metrics-out=FILE: dumps the rebalancer's balance.* registry
// and the merged per-shard registries per scenario.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "balance/rebalancer.hpp"
#include "core/infopipes.hpp"
#include "rt/clock.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace {

using namespace infopipe;

constexpr std::uint64_t kItems = 2000;
constexpr int kSpins = 2000;

/// CPU-bound stage, heavy enough that compute (not scheduling or
/// accounting bookkeeping) dominates a section's cost.
class SpinWork : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

 protected:
  Item convert(Item x) override {
    std::uint64_t acc = x.seq + 1;
    for (int i = 0; i < kSpins; ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    benchmark::DoNotOptimize(acc);
    return x;
  }
};

/// Three sections separated by two passive buffers — enough sections that
/// a 2-shard group has something to move.
struct ThreeStageChain {
  CountingSource src{"src", kItems};
  FreeRunningPump p1{"p1"};
  SpinWork w1{"w1"};
  Buffer b1{"b1", 64};
  FreeRunningPump p2{"p2"};
  SpinWork w2{"w2"};
  Buffer b2{"b2", 64};
  FreeRunningPump p3{"p3"};
  SpinWork w3{"w3"};
  CountingSink sink{"sink"};
  Pipeline pipe;

  ThreeStageChain() {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, w1, 0);
    pipe.connect(w1, 0, b1, 0);
    pipe.connect(b1, 0, p2, 0);
    pipe.connect(p2, 0, w2, 0);
    pipe.connect(w2, 0, b2, 0);
    pipe.connect(b2, 0, p3, 0);
    pipe.connect(p3, 0, w3, 0);
    pipe.connect(w3, 0, sink, 0);
  }
};

void run_steady_state(benchmark::State& state, bool with_accountant) {
  for (auto _ : state) {
    state.PauseTiming();
    ThreeStageChain c;
    shard::ShardGroup group(2);
    shard::ShardedRealization real(group, c.pipe);
    std::unique_ptr<balance::Rebalancer> rb;
    if (with_accountant) {
      balance::Rebalancer::Options opt;
      // Sample at the default cadence but never act: a threshold above
      // 1.0 is unreachable, so this measures pure accounting cost.
      opt.policy.min_imbalance = 2.0;
      rb = std::make_unique<balance::Rebalancer>(real, opt);
    }
    real.start();
    if (rb) rb->launch();
    state.ResumeTiming();
    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    if (rb) rb->stop();
    if (c.sink.count() != kItems) {
      state.SkipWithError("steady-state run lost items");
      return;
    }
    if (obsbench::enabled()) {
      const std::string label = with_accountant ? "BM_SteadyStateWithAccountant"
                                                : "BM_SteadyStateBaseline";
      obsbench::captured()[label] = real.metrics_snapshot().to_json();
      if (rb) {
        obsbench::captured()[label + "/rebalancer"] =
            rb->metrics_snapshot().to_json();
      }
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}

void BM_SteadyStateBaseline(benchmark::State& state) {
  run_steady_state(state, false);
}
BENCHMARK(BM_SteadyStateBaseline)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_SteadyStateWithAccountant(benchmark::State& state) {
  run_steady_state(state, true);
}
BENCHMARK(BM_SteadyStateWithAccountant)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Clock-paced variant for the deterministic manual-mode scenario: with
/// free-running pumps the whole flow drains inside the first lockstep
/// slice, before any skew exists to recover from.
struct ClockedChain {
  CountingSource src{"src", kItems};
  ClockedPump p1{"p1", 400.0};
  SpinWork w1{"w1"};
  Buffer b1{"b1", 64};
  ClockedPump p2{"p2", 400.0};
  SpinWork w2{"w2"};
  Buffer b2{"b2", 64};
  ClockedPump p3{"p3", 400.0};
  SpinWork w3{"w3"};
  CountingSink sink{"sink"};
  Pipeline pipe;

  ClockedChain() {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, w1, 0);
    pipe.connect(w1, 0, b1, 0);
    pipe.connect(b1, 0, p2, 0);
    pipe.connect(p2, 0, w2, 0);
    pipe.connect(w2, 0, b2, 0);
    pipe.connect(b2, 0, p3, 0);
    pipe.connect(p3, 0, w3, 0);
    pipe.connect(w3, 0, sink, 0);
  }
};

void BM_SkewRecovery(benchmark::State& state) {
  std::int64_t total_steps = 0;
  std::int64_t recoveries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ClockedChain c;
    shard::ShardGroup::GroupOptions gopt;
    gopt.manual = true;
    gopt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
    shard::ShardGroup group(2, gopt);
    shard::ShardedRealization real(group, c.pipe);
    real.start();
    group.step_until(rt::milliseconds(100));
    // Induce the skew: pile every section onto shard 0.
    for (std::size_t s = 0; s < 3; ++s) {
      if (real.shard_of_section(s) != 0) real.migrate_section(s, 0);
    }
    balance::Rebalancer rb(real);
    state.ResumeTiming();
    // A busy profile matching the bad placement; the policy needs one
    // primed sample plus the decision sample, so recovery is expected in
    // a handful of steps, not one.
    int steps = 0;
    bool recovered = false;
    for (; steps < 50; ++steps) {
      rb.accountant().note_busy_sample(0, 0.9);
      rb.accountant().note_busy_sample(1, 0.05);
      auto rep = rb.step();
      if (rep && rep->ok()) {
        recovered = true;
        ++steps;
        break;
      }
    }
    state.PauseTiming();
    if (!recovered) {
      state.SkipWithError("skew never recovered");
      return;
    }
    total_steps += steps;
    ++recoveries;
    // Drain the flow so teardown is clean and the move provably lost
    // nothing. Lockstep slices, not one jump: cross-shard channels only
    // make progress when the two shards' virtual clocks advance together.
    for (rt::Time t = rt::milliseconds(200); t <= rt::seconds(60);
         t += rt::milliseconds(100)) {
      group.step_until(t);
      if (c.sink.count() == kItems) break;
    }
    if (c.sink.count() != kItems) {
      state.SkipWithError("skew recovery lost items");
      return;
    }
    obsbench::capture(group.runtime(0), "BM_SkewRecovery");
    if (obsbench::enabled()) {
      obsbench::captured()["BM_SkewRecovery/rebalancer"] =
          rb.metrics_snapshot().to_json();
    }
    state.ResumeTiming();
  }
  if (recoveries > 0) {
    state.counters["steps_to_recover"] =
        static_cast<double>(total_steps) / static_cast<double>(recoveries);
  }
}
BENCHMARK(BM_SkewRecovery)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ElasticScaleCycle(benchmark::State& state) {
  if (!config().elastic) {
    state.SkipWithError("INFOPIPE_ELASTIC=off");
    return;
  }
  std::int64_t cycles = 0;
  std::int64_t drain_ns = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ThreeStageChain c;
    shard::ShardGroup group(2);
    shard::ShardedRealization real(group, c.pipe);
    real.start();
    state.ResumeTiming();

    // Scale up: one more pinned runtime, and the middle section moves
    // onto it while items stream.
    const int added = group.add_shard();
    real.sync_topology();
    const int victim = real.shard_of_section(1);
    real.migrate_section(1, added);

    // Scale down: drain whatever still lives on the old home, then join
    // its kernel thread. This is the latency a deployer pays to shrink.
    const auto t0 = std::chrono::steady_clock::now();
    real.evacuate_shard(victim);
    group.retire_shard(victim);
    const auto t1 = std::chrono::steady_clock::now();
    drain_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count();
    ++cycles;

    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    if (c.sink.count() != kItems) {
      state.SkipWithError("scale cycle lost items");
      return;
    }
    if (obsbench::enabled()) {
      obsbench::captured()["BM_ElasticScaleCycle"] =
          real.metrics_snapshot().to_json();
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
  if (cycles > 0) {
    state.counters["drain_ms"] = static_cast<double>(drain_ns) /
                                 static_cast<double>(cycles) / 1e6;
  }
}
BENCHMARK(BM_ElasticScaleCycle)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
