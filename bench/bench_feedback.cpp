// E12 — feedback endpoints (§3.1): cost and convergence of named-endpoint
// control loops, within one runtime and across a shard cut.
//
// Measured: (1) convergence of a fill-level loop bound by name on a single
// runtime (settling time under virtual time, plus the wall cost of the
// simulation); (2) the same congestion-steering loop across a two-shard cut
// in manual/lockstep mode — the deterministic configuration the tests use —
// reporting settling time, actuation traffic and wall cost; (3) raw sampling
// cost of the sensor readings themselves (buffer probe vs channel atomics)
// and of the cross-shard actuation post.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_obs.hpp"

#include "core/infopipes.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"
#include "shard/sharded_realization.hpp"

using namespace infopipe;
using namespace infopipe::fb;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void in_runtime_convergence() {
  std::puts("E12.1  named-endpoint loop on one runtime (virtual clock)");
  std::puts("  period ms | settling s | steps | wall ms");
  for (const rt::Time period :
       {rt::milliseconds(20), rt::milliseconds(50), rt::milliseconds(200)}) {
    rt::Runtime rtm;
    CountingSource src("src", 10000000);
    ClockedPump fill("fill", 100.0);
    Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
    AdaptivePump drain("drain", 10.0);
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    Realization real(rtm, ch.pipeline());
    auto loop = make_loop(
        real, LoopSpec{.name = "ctl",
                       .period = period,
                       .sensor = fill_fraction("buf"),
                       .setpoint = 0.5,
                       .controller = PIController(-200.0, -400.0, 1.0, 2000.0),
                       .actuator = pump_rate("drain")});
    const auto t0 = std::chrono::steady_clock::now();
    real.start();
    loop->start();
    rt::Time settled_at = -1;
    for (int step = 1; step <= 600; ++step) {
      rtm.run_until(step * rt::milliseconds(50));
      if (settled_at < 0 && drain.rate_hz() > 95.0 && drain.rate_hz() < 105.0) {
        settled_at = rtm.now();
      }
    }
    std::printf("  %7.0f   | %8.2f   | %5d | %7.2f\n",
                static_cast<double>(period) / 1e6,
                settled_at < 0 ? -1.0 : static_cast<double>(settled_at) / 1e9,
                loop->steps(), wall_ms_since(t0));
    obsbench::capture(rtm, "in_runtime_convergence");
    loop->stop();
    real.shutdown();
    rtm.run();
  }
}

void cross_shard_convergence() {
  std::puts("");
  std::puts("E12.2  congestion loop across a 2-shard cut (manual lockstep)");
  std::puts("  slice ms | settling s | actuations | delivered | wall ms");
  for (const rt::Time slice : {rt::milliseconds(50), rt::milliseconds(200)}) {
    shard::ShardGroup::GroupOptions opt;
    opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
    opt.manual = true;
    shard::ShardGroup group(2, std::move(opt));

    CountingSource src("src", 10000000);
    AdaptivePump fill("fill", 300.0);
    Buffer buf("buf", 64, FullPolicy::kBlock, EmptyPolicy::kBlock);
    ClockedPump drain("drain", 100.0);
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    shard::ShardedRealization sr(group, ch.pipeline());

    auto loop = make_loop(
        sr, LoopSpec{.name = "congestion",
                     .period = rt::milliseconds(50),
                     .sensor = fill_fraction("buf"),
                     .setpoint = 0.5,
                     .controller = PIController(200.0, 400.0, 1.0, 2000.0),
                     .actuator = pump_rate("fill")});
    const auto t0 = std::chrono::steady_clock::now();
    sr.start();
    loop->start();
    rt::Time settled_at = -1;
    for (rt::Time t = slice; t <= rt::seconds(30); t += slice) {
      group.step_until(t);
      if (settled_at < 0 && fill.rate_hz() > 95.0 && fill.rate_hz() < 105.0) {
        settled_at = t;
      }
    }
    std::printf("  %6.0f   | %8.2f   | %10d | %9llu | %7.2f\n",
                static_cast<double>(slice) / 1e6,
                settled_at < 0 ? -1.0 : static_cast<double>(settled_at) / 1e9,
                loop->actuations(),
                static_cast<unsigned long long>(sink.count()),
                wall_ms_since(t0));
    loop->stop();
    sr.shutdown();
    group.step_until(rt::seconds(31));
  }
  std::puts("  expected: settles within a few simulated seconds; actuation");
  std::puts("  count ~ settling-window / 50 ms, independent of the slice");
}

void sampling_and_actuation_cost() {
  std::puts("");
  std::puts("E12.3  endpoint primitive costs (1M ops each)");
  constexpr int kN = 1000000;

  {
    rt::Runtime rtm;
    CountingSource src("src", 10);
    AdaptivePump fill("fill", 100.0);
    Buffer buf("buf", 100);
    FreeRunningPump drain("drain");
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    Realization real(rtm, ch.pipeline());
    auto read = resolve_reading(real, fill_fraction("buf"));
    double acc = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kN; ++i) acc += read();
    std::printf("  buffer fill_fraction sample:   %6.1f ns/op (acc=%.0f)\n",
                wall_ms_since(t0) * 1e6 / kN, acc);
    auto act = resolve_actuate(real, pump_rate("fill"));
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kN; ++i) act(100.0);
    std::printf("  in-runtime pump_rate post:     %6.1f ns/op\n",
                wall_ms_since(t0) * 1e6 / kN);
    rtm.run();  // drain the posted control events
    obsbench::capture(rtm, "sampling_cost");
  }

  {
    shard::ShardGroup::GroupOptions opt;
    opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
    opt.manual = true;
    shard::ShardGroup group(2, std::move(opt));
    CountingSource src("src", 10);
    AdaptivePump fill("fill", 100.0);
    Buffer buf("buf", 64);
    FreeRunningPump drain("drain");
    CountingSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    shard::ShardedRealization sr(group, ch.pipeline());
    auto read = resolve_reading(sr, fill_fraction("buf"), 1);
    double acc = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kN; ++i) acc += read();
    std::printf("  channel depth sample:          %6.1f ns/op (acc=%.0f)\n",
                wall_ms_since(t0) * 1e6 / kN, acc);
    // Post in batches and drain: an unbounded external queue would otherwise
    // hold a million pending control events at once.
    auto act = resolve_actuate(sr, pump_rate("fill"));
    t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < 1000; ++b) {
      for (int i = 0; i < 1000; ++i) act(100.0);
      group.step_until(rt::milliseconds(b + 1));
    }
    std::printf("  cross-shard pump_rate post:    %6.1f ns/op (incl. drain)\n",
                wall_ms_since(t0) * 1e6 / kN);
  }
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  in_runtime_convergence();
  cross_shard_convergence();
  sampling_and_actuation_cost();
  obsbench::write_metrics();
  return 0;
}
