// E2 — Figure 9: the eight pipeline configurations between a passive source
// and a passive sink, and what the automatic thread/coroutine allocation
// costs per item in each.
//
// Paper's allocation (§4): configs a,b,c share the pump's single thread;
// d,g,h get a set of two coroutines; e,f a set of three. The benchmark
// prints the planned thread count for every configuration (checked against
// those numbers) and measures the per-item pipeline cost — the expected
// shape is cost growing with the number of coroutine hand-offs per item:
// a/b/c ≈ direct-call cost, d/g/h one hand-off, e/f two.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <array>
#include <memory>

#include "core/infopipes.hpp"

namespace {

using namespace infopipe;

Item take_first(Item a, Item) { return a; }

struct Config {
  const char* label;
  int expected_threads;
  // Builds the two mid components and says on which side of the pump each
  // one goes (true = upstream / pull side).
  std::unique_ptr<Component> x, y;
  bool x_upstream, y_upstream;
};

std::unique_ptr<Component> make(char style) {
  switch (style) {
    case 'c':
      return std::make_unique<DefragmenterConsumer>("x", take_first);
    case 'p':
      return std::make_unique<DefragmenterProducer>("y", take_first);
    case 'a':
      return std::make_unique<DefragmenterActive>("m", take_first);
    default:
      return std::make_unique<IdentityFunction>("f");
  }
}

/// config index 0..7 = Figure 9 a..h.
Config make_config(int idx) {
  switch (idx) {
    case 0:  // a) producer | pump | consumer -> 1 thread
      return {"a:producer/consumer", 1, make('p'), make('c'), true, false};
    case 1:  // b) function | pump | function -> 1 thread
      return {"b:function/function", 1, make('f'), make('f'), true, false};
    case 2:  // c) pump | consumer consumer -> 1 thread
      return {"c:consumer/consumer", 1, make('c'), make('c'), false, false};
    case 3:  // d) pump | active function -> 2 threads
      return {"d:active/function", 2, make('a'), make('f'), false, false};
    case 4:  // e) consumer | pump | producer -> 3 threads
      return {"e:consumer/producer", 3, make('c'), make('p'), true, false};
    case 5:  // f) pump | active active -> 3 threads
      return {"f:active/active", 3, make('a'), make('a'), false, false};
    case 6:  // g) pump | consumer active -> 2 threads
      return {"g:consumer/active", 2, make('c'), make('a'), false, false};
    case 7:  // h) pump | consumer producer -> 2 threads
      return {"h:consumer/producer", 2, make('c'), make('p'), false, false};
    default:
      std::abort();
  }
}

void BM_Fig9Configuration(benchmark::State& state) {
  const int idx = static_cast<int>(state.range(0));
  constexpr std::uint64_t kItems = 4000;
  int planned_threads = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Config cfg = make_config(idx);
    rt::Runtime rtm;
    // Defragmenters halve the flow; feed enough for kItems at the sink.
    CountingSource src("src", kItems * 4);
    FreeRunningPump pump("pump");
    CountingSink sink("sink");
    Pipeline p;
    // Chain: src [>> X][>> Y] >> pump [>> X][>> Y] >> sink, order preserved.
    Component* prev = &src;
    if (cfg.x_upstream) {
      p.connect(*prev, 0, *cfg.x, 0);
      prev = cfg.x.get();
    }
    if (cfg.y_upstream) {
      p.connect(*prev, 0, *cfg.y, 0);
      prev = cfg.y.get();
    }
    p.connect(*prev, 0, pump, 0);
    prev = &pump;
    if (!cfg.x_upstream) {
      p.connect(*prev, 0, *cfg.x, 0);
      prev = cfg.x.get();
    }
    if (!cfg.y_upstream) {
      p.connect(*prev, 0, *cfg.y, 0);
      prev = cfg.y.get();
    }
    p.connect(*prev, 0, sink, 0);

    Realization real(rtm, p);
    planned_threads = static_cast<int>(real.thread_count());
    if (planned_threads != cfg.expected_threads) {
      state.SkipWithError("planner allocation deviates from Figure 9!");
      return;
    }
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_Fig9Configuration");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems * 4));
    state.ResumeTiming();
  }
  state.SetLabel(make_config(idx).label);
  state.counters["threads"] = planned_threads;
}
BENCHMARK(BM_Fig9Configuration)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
