// E10 — composition machinery cost (§2.3): Typespec intersection, the
// connect-time check, and full planning (polarity resolution + Typespec
// propagation + allocation) as a function of pipeline length. Setup-time
// costs, paid once per binding — the expected shape is small and roughly
// linear in pipeline length.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <memory>
#include <vector>

#include "core/infopipes.hpp"
#include "lang/microlang.hpp"

namespace {

using namespace infopipe;

Typespec video_offer() {
  return Typespec{{props::kItemType, std::string("video")},
                  {props::kFormats, StringSet{"mpeg1", "mpeg2", "mpeg4"}},
                  {props::kFrameRate, Range{10, 60}},
                  {props::kWidth, Range{160, 1920}},
                  {props::kHeight, Range{120, 1080}},
                  {props::kLatencyMs, Range{0, 500}}};
}

Typespec video_need() {
  return Typespec{{props::kItemType, std::string("video")},
                  {props::kFormats, StringSet{"mpeg2", "raw"}},
                  {props::kFrameRate, Range{24, 30}},
                  {props::kWidth, Range{320, 640}}};
}

void BM_TypespecIntersect(benchmark::State& state) {
  const Typespec a = video_offer();
  const Typespec b = video_need();
  for (auto _ : state) {
    auto r = a.intersect(b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TypespecIntersect);

void BM_TypespecSubset(benchmark::State& state) {
  const Typespec a = video_need();
  const Typespec b = video_offer();
  for (auto _ : state) {
    bool r = a.subset_of(b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TypespecSubset);

void BM_TypespecMarshalSizeProxy(benchmark::State& state) {
  // to_string is the diagnostic rendering used in composition errors.
  const Typespec a = video_offer();
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_TypespecMarshalSizeProxy);

/// Full compose+plan for a chain of N filters (connect checks included).
void BM_ComposeAndPlan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CountingSource src("src", 1);
    FreeRunningPump pump("pump");
    CountingSink sink("sink");
    std::vector<std::unique_ptr<IdentityFunction>> fns;
    fns.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      fns.push_back(
          std::make_unique<IdentityFunction>("f" + std::to_string(i)));
    }
    state.ResumeTiming();
    Pipeline p;
    p.connect(src, 0, pump, 0);
    Component* prev = &pump;
    for (auto& f : fns) {
      p.connect(*prev, 0, *f, 0);
      prev = f.get();
    }
    p.connect(*prev, 0, sink, 0);
    Plan pl = plan(p);
    benchmark::DoNotOptimize(pl);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ComposeAndPlan)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity(benchmark::oN);

/// Microlanguage: parse + build a textual pipeline description (the other
/// composition front end; cost paid once per configuration load).
void BM_MicroLangParse(benchmark::State& state) {
  lang::MicroLang ml;
  const std::string program = R"(
    let movie  = mpeg_file(demo.mpg, 300, 30)
    let decode = decoder()
    let fill   = freerunning_pump()
    let jitter = buffer(8, block, nil)
    let play   = pump(30)
    let screen = display(30)
    chain movie -> decode -> fill -> jitter -> play -> screen
  )";
  for (auto _ : state) {
    lang::Assembly a = ml.parse(program);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MicroLangParse)->Unit(benchmark::kMicrosecond);

/// Realize+teardown: thread creation cost per pipeline.
void BM_RealizeTeardown(benchmark::State& state) {
  rt::Runtime rt;
  CountingSource src("src", 1);
  FreeRunningPump pump("pump");
  IdentityFunction fn("fn");
  CountingSink sink("sink");
  auto ch = src >> fn >> pump >> sink;
  for (auto _ : state) {
    Realization real(rt, ch.pipeline());
    benchmark::DoNotOptimize(real.thread_count());
  }
  obsbench::capture(rt, "BM_RealizeTeardown");
}
BENCHMARK(BM_RealizeTeardown)->Unit(benchmark::kMicrosecond);

}  // namespace

OBSBENCH_MAIN();
