// E3 — Figures 4, 6, 8: the defragmenter written in every activity style,
// used in push mode and in pull mode. External behaviour is identical (the
// tests assert that); this bench measures what each style/mode combination
// costs per item, isolating the price of the generated glue:
//
//   native passive (consumer-in-push, producer-in-pull)  -> direct call
//   function style                                       -> direct call
//   adapted passive (consumer-in-pull, producer-in-push) -> coroutine
//   active                                               -> coroutine
//
// Expected shape: the four direct combinations cluster together; the
// adapted/active ones pay one coroutine hand-off per item.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <memory>

#include "core/infopipes.hpp"

namespace {

using namespace infopipe;

Item take_first(Item a, Item) { return a; }

enum StyleId { kConsumer, kProducer, kActive, kFunction };
constexpr const char* kStyleName[] = {"consumer", "producer", "active",
                                      "function"};

std::unique_ptr<Component> make_defrag(int style) {
  switch (style) {
    case kConsumer:
      return std::make_unique<DefragmenterConsumer>("defrag", take_first);
    case kProducer:
      return std::make_unique<DefragmenterProducer>("defrag", take_first);
    case kActive:
      return std::make_unique<DefragmenterActive>("defrag", take_first);
    default:
      // Function style cannot defragment (not one-to-one); use identity to
      // give the direct-call baseline.
      return std::make_unique<IdentityFunction>("identity");
  }
}

void BM_StyleMode(benchmark::State& state) {
  const int style = static_cast<int>(state.range(0));
  const bool push_mode = state.range(1) == 1;
  constexpr std::uint64_t kItems = 8000;
  std::size_t threads = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    CountingSink sink("sink");
    std::unique_ptr<Component> mid = make_defrag(style);
    Pipeline p;
    if (push_mode) {
      p.connect(src, 0, pump, 0);
      p.connect(pump, 0, *mid, 0);
      p.connect(*mid, 0, sink, 0);
    } else {
      p.connect(src, 0, *mid, 0);
      p.connect(*mid, 0, pump, 0);
      p.connect(pump, 0, sink, 0);
    }
    Realization real(rtm, p);
    threads = real.thread_count();
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_StyleMode");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
  state.SetLabel(std::string(kStyleName[style]) +
                 (push_mode ? "/push" : "/pull"));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_StyleMode)
    ->ArgsProduct({{kConsumer, kProducer, kActive, kFunction}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
