// E1 — §4: "A context switch between the user level threads takes about
// 1 µs; the time for a mere function call is two orders of magnitude
// shorter. Hence, the approach ... in which threads and coroutines are
// introduced only when necessary is mostly important for pipelines that
// handle many ... small data items."
//
// Reproduced here as the cost ladder the planner navigates:
//   virtual function call                 (direct component invocation)
//   raw user-level context switch         (Context::switch_to round trip)
//   scheduled thread switch               (yield through the scheduler)
//   message send + dispatch               (one rt message)
//   full coroutine data hand-off          (channel push: 2 messages + 2+
//                                          switches, what one adapted
//                                          component costs per item)
//
// The paper's *shape* to check: switch >> call (about two orders of
// magnitude), and the hand-off a small multiple of the raw switch.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include "core/infopipes.hpp"
#include "rt/context.hpp"

namespace {

using namespace infopipe;

// -- baseline: a virtual call through an opaque pointer ------------------------

struct CallIface {
  virtual ~CallIface() = default;
  virtual std::uint64_t apply(std::uint64_t x) = 0;
};
struct CallImpl final : CallIface {
  std::uint64_t apply(std::uint64_t x) override { return x * 2654435761u + 1; }
};

void BM_VirtualFunctionCall(benchmark::State& state) {
  CallImpl impl;
  CallIface* iface = &impl;
  benchmark::DoNotOptimize(iface);
  std::uint64_t acc = 1;
  for (auto _ : state) {
    acc = iface->apply(acc);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_VirtualFunctionCall);

// -- raw stack switch: ping-pong between two bare contexts ----------------------

struct PingPong {
  rt::Context main_ctx;
  rt::Context co_ctx;
  rt::Stack stack{64 * 1024};
  bool stop = false;

  static void entry(void* arg) {
    auto* self = static_cast<PingPong*>(arg);
    for (;;) {
      rt::Context::switch_to(self->co_ctx, self->main_ctx);
      if (self->stop) {
        // final switch back; never resumed again
        rt::Context::switch_to(self->co_ctx, self->main_ctx);
      }
    }
  }
};

void BM_RawContextSwitchRoundTrip(benchmark::State& state) {
  PingPong pp;
  pp.co_ctx.init(pp.stack.top(), pp.stack.usable_size(), &PingPong::entry,
                 &pp);
  rt::Context::switch_to(pp.main_ctx, pp.co_ctx);  // start the coroutine
  for (auto _ : state) {
    // one round trip = two context switches
    rt::Context::switch_to(pp.main_ctx, pp.co_ctx);
  }
  pp.stop = true;
  rt::Context::switch_to(pp.main_ctx, pp.co_ctx);
}
BENCHMARK(BM_RawContextSwitchRoundTrip);

// -- scheduled switch: two runtime threads yielding to each other ----------------
// Measured over a fixed round count per timed region (items/s in the
// counters gives the per-switch cost).

void BM_ScheduledYield(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    constexpr std::uint64_t kRounds = 2000;
    auto body = [](rt::Runtime& r, rt::Message) -> rt::CodeResult {
      for (std::uint64_t i = 0; i < kRounds; ++i) r.yield();
      return rt::CodeResult::kTerminate;
    };
    rtm.send(rtm.spawn("a", rt::kPriorityData, body), rt::Message{});
    rtm.send(rtm.spawn("b", rt::kPriorityData, body), rt::Message{});
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_ScheduledYield");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(2 * kRounds));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ScheduledYield)->Unit(benchmark::kMicrosecond);

// -- one asynchronous message: send + dispatch ------------------------------------

void BM_MessageSendDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    constexpr std::uint64_t kMsgs = 4000;
    const rt::ThreadId sink = rtm.spawn(
        "sink", rt::kPriorityData,
        [](rt::Runtime&, rt::Message) { return rt::CodeResult::kContinue; });
    const rt::ThreadId src = rtm.spawn(
        "src", rt::kPriorityData,
        [sink](rt::Runtime& r, rt::Message) -> rt::CodeResult {
          for (std::uint64_t i = 0; i < kMsgs; ++i) {
            r.send(sink, rt::Message{1, rt::MsgClass::kData});
          }
          return rt::CodeResult::kTerminate;
        });
    rtm.send(src, rt::Message{});
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_MessageSendDispatch");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kMsgs));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_MessageSendDispatch)->Unit(benchmark::kMicrosecond);

// -- full coroutine hand-off per item ----------------------------------------------

void BM_CoroutineHandoffPerItem(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    constexpr std::uint64_t kItems = 2000;
    rt::Runtime rtm;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    // Active component: forces exactly one coroutine on the push side.
    LambdaActive noop("noop", [](const auto& pull, const auto& push) {
      for (;;) push(pull());
    });
    CountingSink sink("sink");
    auto ch = src >> pump >> noop >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_CoroutineHandoffPerItem");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CoroutineHandoffPerItem)->Unit(benchmark::kMicrosecond);

// -- the same pipeline with zero coroutines (direct calls) --------------------------

void BM_DirectCallPipelinePerItem(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    constexpr std::uint64_t kItems = 2000;
    rt::Runtime rtm;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    IdentityFunction noop("noop");  // function style: direct call
    CountingSink sink("sink");
    auto ch = src >> pump >> noop >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "BM_DirectCallPipelinePerItem");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DirectCallPipelinePerItem)->Unit(benchmark::kMicrosecond);

}  // namespace

OBSBENCH_MAIN();
