// E4 — the headline claim: "allocating a thread for each pipeline component
// would introduce a significant context switching overhead" for small-item
// flows, so the middleware fuses direct-callable components into the pump's
// thread and introduces coroutines only when necessary.
//
// Sweep 1 (depth): a chain of K trivial stages, written either as function
// components (planner fuses: 1 thread) or as active objects (thread per
// stage: K+1 threads). Expected: fused cost per item roughly flat in K;
// thread-per-stage cost grows linearly with K.
//
// Sweep 2 (work): K=8 stages with W ns of real work per stage per item.
// Expected: the relative advantage of fusing shrinks as W grows — the
// crossover the paper implies ("for these applications, and if kernel-level
// threads are used..."): hand-off overhead only matters when items are
// cheap.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <memory>
#include <vector>

#include "core/infopipes.hpp"

namespace {

using namespace infopipe;

/// Busy work standing in for per-stage computation (wall-clock, since the
/// measurement is wall-clock overhead).
std::uint64_t spin(std::uint64_t seed, int rounds) {
  std::uint64_t x = seed | 1;
  for (int i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

void run_chain(benchmark::State& state, int stages, bool thread_per_stage,
               int work_rounds) {
  constexpr std::uint64_t kItems = 4000;
  std::size_t threads = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rt::Runtime rtm;
    CountingSource src("src", kItems);
    FreeRunningPump pump("pump");
    CountingSink sink("sink");
    std::vector<std::unique_ptr<Component>> mids;
    Pipeline p;
    p.connect(src, 0, pump, 0);
    Component* prev = &pump;
    for (int i = 0; i < stages; ++i) {
      if (thread_per_stage) {
        mids.push_back(std::make_unique<LambdaActive>(
            "s" + std::to_string(i),
            [work_rounds](const auto& pull, const auto& push) {
              for (;;) {
                Item x = pull();
                benchmark::DoNotOptimize(spin(x.seq, work_rounds));
                push(std::move(x));
              }
            }));
      } else {
        mids.push_back(std::make_unique<LambdaFunction>(
            "s" + std::to_string(i), [work_rounds](Item x) {
              benchmark::DoNotOptimize(spin(x.seq, work_rounds));
              return x;
            }));
      }
      p.connect(*prev, 0, *mids.back(), 0);
      prev = mids.back().get();
    }
    p.connect(*prev, 0, sink, 0);
    Realization real(rtm, p);
    threads = real.thread_count();
    real.start();
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    obsbench::capture(rtm, "None");
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    state.ResumeTiming();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["stages"] = stages;
  state.counters["work"] = work_rounds;
}

void BM_DepthFused(benchmark::State& state) {
  run_chain(state, static_cast<int>(state.range(0)),
            /*thread_per_stage=*/false, /*work_rounds=*/0);
}
void BM_DepthThreadPerStage(benchmark::State& state) {
  run_chain(state, static_cast<int>(state.range(0)),
            /*thread_per_stage=*/true, /*work_rounds=*/0);
}
BENCHMARK(BM_DepthFused)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepthThreadPerStage)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WorkFused(benchmark::State& state) {
  run_chain(state, /*stages=*/8, /*thread_per_stage=*/false,
            static_cast<int>(state.range(0)));
}
void BM_WorkThreadPerStage(benchmark::State& state) {
  run_chain(state, /*stages=*/8, /*thread_per_stage=*/true,
            static_cast<int>(state.range(0)));
}
BENCHMARK(BM_WorkFused)->Arg(0)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkThreadPerStage)->Arg(0)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
