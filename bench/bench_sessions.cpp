// ip_session scalability: the price of a flow, and how many fit.
//
// The two claims the session layer makes, measured:
//
//  1. Opening a session is a STAMP, not a realization. BM_OpenCloseStamp
//     times open_on()+close() against the shared per-shard engines (a
//     counter increment and two queue pushes); BM_OpenCloseRealize flips
//     the INFOPIPE_SESSIONS kill switch and times the identical call when
//     every open plans and realizes its own solo pipeline — the classic
//     per-flow cost. The ratio between the two is the headline number and
//     the acceptance bar is >= 10x.
//
//  2. Tens of thousands of live flows fit in one process.
//     BM_HoldTenThousandSessions opens 10,000 sessions with staggered
//     cadences over a launched 2-shard group, holds them pumping on real
//     clocks, and reports live count, aggregate item rate and the merged
//     p50/p99 inter-item jitter (|actual - scheduled| per session, from
//     the engines' wait-free histograms). The realization counter stays at
//     n_shards throughout — one plan, stamped 10,000 times.
//
// Accepts --metrics-out=FILE: dumps per-scenario counters.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "rt/clock.hpp"
#include "session/plan.hpp"
#include "session/session.hpp"
#include "session/table.hpp"
#include "shard/shard_group.hpp"

namespace {

using namespace infopipe;
using namespace infopipe::session;

shard::ShardGroup::GroupOptions manual_opts() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  return opt;
}

/// Manual group: open_on/close run to completion inline with no engine
/// threads competing, so the loop times exactly the per-flow admission
/// cost of the selected mode and nothing else.
void open_close_loop(benchmark::State& state) {
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  int shard = 0;
  rt::Time t = 0;
  for (auto _ : state) {
    const SessionId id =
        table.open_on(shard, SessionParams{QosClass::kBronze, 10.0, 64});
    table.close(id);
    // Drive the shard runtimes so each mode also pays its engine-side
    // work: the stamp path drains two queue ops; the realize path
    // dispatches start/shutdown and reclaims the solo flow's threads
    // (without this the manual runtimes never run and memory just grows).
    group.step_until(t += rt::microseconds(10));
    shard ^= 1;
  }
  state.counters["realizations"] = static_cast<double>(table.realizations());
  state.SetItemsProcessed(state.iterations());
}

void BM_OpenCloseStamp(benchmark::State& state) {
  config().sessions = true;
  open_close_loop(state);
}
BENCHMARK(BM_OpenCloseStamp);

void BM_OpenCloseRealize(benchmark::State& state) {
  config().sessions = false;
  open_close_loop(state);
  config().sessions = true;
}
BENCHMARK(BM_OpenCloseRealize);

void BM_HoldTenThousandSessions(benchmark::State& state) {
  constexpr int kSessions = 10000;
  constexpr auto kHold = std::chrono::seconds(3);

  for (auto _ : state) {
    shard::ShardGroup group(2);
    group.launch();
    const auto plan = SharedPlan::analyze(EngineSpec{});
    SessionTable table(group, plan);

    std::vector<SessionId> ids;
    ids.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      SessionParams p;
      p.qos = static_cast<QosClass>(i % kNumClasses);
      // Staggered cadences (0.5 .. 3.65 Hz) so the flows decohere after
      // the first tick instead of firing as one synchronized burst.
      p.rate_hz = 0.5 + 0.35 * static_cast<double>(i % 10);
      p.payload_bytes = 64;
      ids.push_back(table.open_on(i % group.size(), p));
    }

    std::this_thread::sleep_for(kHold);

    const JitterSnapshot j = table.jitter();
    const std::uint64_t items = table.items_total();
    state.counters["live_sessions"] = static_cast<double>(table.live());
    state.counters["realizations"] = static_cast<double>(table.realizations());
    state.counters["items_total"] = static_cast<double>(items);
    state.counters["items_per_sec"] =
        static_cast<double>(items) /
        std::chrono::duration<double>(kHold).count();
    state.counters["jitter_p50_ns"] = static_cast<double>(j.p50_ns);
    state.counters["jitter_p99_ns"] = static_cast<double>(j.p99_ns);
    state.counters["jitter_samples"] = static_cast<double>(j.samples);

    for (SessionId id : ids) table.close(id);
    table.stop();
    group.stop();
  }
}
BENCHMARK(BM_HoldTenThousandSessions)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
