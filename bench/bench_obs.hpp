// Shared --metrics-out support for the benches.
//
// Every bench accepts `--metrics-out=FILE` (or `--metrics-out FILE`). When
// given, each workload captures the final state of its runtime's metrics
// registry, and the bench writes them on exit as JSON lines — one object
// per captured label:
//
//     {"bench":"BM_PumpCycle","metrics":{...MetricsSnapshot::to_json()...}}
//
// Without the flag, capture() is a single predicate test, so normal timing
// runs are not distorted.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "rt/runtime.hpp"

namespace obsbench {

inline std::string& out_path() {
  static std::string path;
  return path;
}

inline std::map<std::string, std::string>& captured() {
  static std::map<std::string, std::string> rows;
  return rows;
}

[[nodiscard]] inline bool enabled() { return !out_path().empty(); }

/// Removes `--metrics-out[=FILE]` from argv (before the benchmark library
/// sees it) and remembers FILE. Updates argc in place.
inline void strip_metrics_flag(int& argc, char** argv) {
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strncmp(argv[r], "--metrics-out=", 14) == 0) {
      out_path() = argv[r] + 14;
    } else if (std::strcmp(argv[r], "--metrics-out") == 0 && r + 1 < argc) {
      out_path() = argv[++r];
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
}

/// Snapshots the runtime's registry under `label` (last capture per label
/// wins — for code inside a benchmark iteration loop, that is the final
/// iteration). No-op unless --metrics-out was given.
inline void capture(infopipe::rt::Runtime& rtm, const char* label) {
  if (!enabled()) return;
  captured()[label] = rtm.metrics().snapshot().to_json();
}

/// Writes all captured snapshots as JSON lines. Call once at the end of
/// main.
inline void write_metrics() {
  if (!enabled()) return;
  std::FILE* f = std::fopen(out_path().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics to %s\n", out_path().c_str());
    return;
  }
  for (const auto& [label, json] : captured()) {
    std::fprintf(f, "{\"bench\":\"%s\",\"metrics\":%s}\n", label.c_str(),
                 json.c_str());
  }
  std::fclose(f);
}

}  // namespace obsbench

/// Drop-in replacement for BENCHMARK_MAIN() that understands --metrics-out.
/// (A macro so it expands where <benchmark/benchmark.h> is included.)
#define OBSBENCH_MAIN()                                                      \
  int main(int argc, char** argv) {                                          \
    obsbench::strip_metrics_flag(argc, argv);                                \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    obsbench::write_metrics();                                               \
    return 0;                                                                \
  }                                                                          \
  static_assert(true, "require a trailing semicolon")
