// Shared --metrics-out support for the benches.
//
// Every bench accepts `--metrics-out=FILE` (or `--metrics-out FILE`). When
// given, each workload captures the final state of its runtime's metrics
// registry, and the bench writes them on exit as JSON lines — one object
// per captured label:
//
//     {"bench":"BM_PumpCycle","metrics":{...MetricsSnapshot::to_json()...}}
//
// Without the flag, capture() is a single predicate test, so normal timing
// runs are not distorted.
// The first line of the file is a `{"host":{...}}` object recording where
// the numbers came from: core count, cpufreq governor, build type, and the
// kill-switch configuration (core/config.hpp) the process ran under — the
// four things that most often explain why two BENCH_*.json files disagree.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "core/config.hpp"
#include "rt/runtime.hpp"

namespace obsbench {

inline std::string& out_path() {
  static std::string path;
  return path;
}

inline std::map<std::string, std::string>& captured() {
  static std::map<std::string, std::string> rows;
  return rows;
}

[[nodiscard]] inline bool enabled() { return !out_path().empty(); }

/// Removes `--metrics-out[=FILE]` from argv (before the benchmark library
/// sees it) and remembers FILE. Updates argc in place.
inline void strip_metrics_flag(int& argc, char** argv) {
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strncmp(argv[r], "--metrics-out=", 14) == 0) {
      out_path() = argv[r] + 14;
    } else if (std::strcmp(argv[r], "--metrics-out") == 0 && r + 1 < argc) {
      out_path() = argv[++r];
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
}

/// Snapshots the runtime's registry under `label` (last capture per label
/// wins — for code inside a benchmark iteration loop, that is the final
/// iteration). No-op unless --metrics-out was given.
inline void capture(infopipe::rt::Runtime& rtm, const char* label) {
  if (!enabled()) return;
  captured()[label] = rtm.metrics().snapshot().to_json();
}

/// The cpufreq governor of cpu0 ("performance", "powersave", …), or
/// "unknown" where sysfs does not expose one (containers, non-Linux).
inline std::string cpu_governor() {
  std::string g = "unknown";
  if (std::FILE* f = std::fopen(
          "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), f) != nullptr) {
      g = buf;
      while (!g.empty() && (g.back() == '\n' || g.back() == ' ')) g.pop_back();
    }
    std::fclose(f);
  }
  return g;
}

/// One JSON object describing the machine and process configuration the
/// numbers were taken under.
inline std::string host_json() {
  const infopipe::InfopipeConfig& c = infopipe::config();
  std::string j = "{";
  j += "\"num_cpus\":" + std::to_string(std::thread::hardware_concurrency());
  j += ",\"governor\":\"" + cpu_governor() + "\"";
#ifdef NDEBUG
  j += ",\"build_type\":\"release\"";
#else
  j += ",\"build_type\":\"debug\"";
#endif
  j += ",\"config\":{";
  j += std::string("\"pooling\":") + (c.pooling ? "true" : "false");
  j += std::string(",\"batching\":") + (c.batching ? "true" : "false");
  j += std::string(",\"inline_payloads\":") +
       (c.inline_payloads ? "true" : "false");
  j += std::string(",\"real_net\":") + (c.real_net ? "true" : "false");
  j += std::string(",\"record\":") + (c.record ? "true" : "false");
  j += std::string(",\"sessions\":") + (c.sessions ? "true" : "false");
  j += ",\"seed\":" + std::to_string(c.seed);
  j += "}}";
  return j;
}

/// Writes the host object, then all captured snapshots, as JSON lines.
/// Call once at the end of main.
inline void write_metrics() {
  if (!enabled()) return;
  std::FILE* f = std::fopen(out_path().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics to %s\n", out_path().c_str());
    return;
  }
  std::fprintf(f, "{\"host\":%s}\n", host_json().c_str());
  for (const auto& [label, json] : captured()) {
    std::fprintf(f, "{\"bench\":\"%s\",\"metrics\":%s}\n", label.c_str(),
                 json.c_str());
  }
  std::fclose(f);
}

}  // namespace obsbench

/// Drop-in replacement for BENCHMARK_MAIN() that understands --metrics-out.
/// (A macro so it expands where <benchmark/benchmark.h> is included.)
#define OBSBENCH_MAIN()                                                      \
  int main(int argc, char** argv) {                                          \
    obsbench::strip_metrics_flag(argc, argv);                                \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    obsbench::write_metrics();                                               \
    return 0;                                                                \
  }                                                                          \
  static_assert(true, "require a trailing semicolon")
