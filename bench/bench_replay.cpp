// ip_replay: what does schedule recording cost the paths it taps?
//
// The dormant rows are the acceptance claim behind INFOPIPE_RECORD=off made
// measurable: with no sink installed a tap is one relaxed atomic load and a
// not-taken branch, so BM_TapDormant should sit within noise of
// BM_TapCompiledOut (the same loop with the tap call absent). BM_TapLive
// prices the other end — a ScheduleRecorder actually appending frames under
// its mutex — which is the cost a RECORDED run pays, never a production one.
//
// BM_ChannelPushPop then measures the real carrier: a ShardChannel ring
// cycle with the taps dormant vs recording, the per-item number to compare
// against bench_shard's batched-movement rows.
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <cstdint>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "replay/recorder.hpp"
#include "rt/runtime.hpp"
#include "shard/channel.hpp"

using namespace infopipe;

namespace {

// A counter the optimizer cannot see through, standing in for the work a
// dispatch loop does around the tap.
std::uint64_t g_work = 0;

void BM_TapCompiledOut(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    g_work += ++i;
    benchmark::DoNotOptimize(g_work);
  }
}
BENCHMARK(BM_TapCompiledOut);

void BM_TapDormant(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    g_work += ++i;
    replay::note_dispatch(&g_work, i, 1);
    benchmark::DoNotOptimize(g_work);
  }
}
BENCHMARK(BM_TapDormant);

void BM_TapLive(benchmark::State& state) {
  replay::ScheduleRecorder rec;
  const bool saved = config().record;
  config().record = true;
  (void)rec.install();
  std::uint64_t i = 0;
  for (auto _ : state) {
    g_work += ++i;
    replay::note_dispatch(&g_work, i, 1);
    benchmark::DoNotOptimize(g_work);
  }
  rec.uninstall();
  config().record = saved;
  state.counters["frames"] =
      static_cast<double>(rec.frames_recorded());
}
BENCHMARK(BM_TapLive);

/// One ring cycle (try_push + try_pop) per iteration; `recording` selects
/// dormant taps (0) or an installed ScheduleRecorder (1).
void BM_ChannelPushPop(benchmark::State& state) {
  rt::Runtime rtm;
  shard::ShardChannel ch("bench.replay", 64);
  ch.bind_producer(rtm, 0);
  ch.bind_consumer(rtm, 1);
  replay::ScheduleRecorder rec;
  const bool saved = config().record;
  if (state.range(0) != 0) {
    config().record = true;
    (void)rec.install();
  }
  for (auto _ : state) {
    Item x = Item::token(1);
    benchmark::DoNotOptimize(ch.try_push(x));
    benchmark::DoNotOptimize(ch.try_pop());
  }
  rec.uninstall();
  config().record = saved;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop)->Arg(0)->Arg(1);

}  // namespace

OBSBENCH_MAIN();
