// ip_mem: allocator traffic of the item path, pooled vs shared_ptr.
//
// Two angles on the same question — what does one data item cost the
// general-purpose allocator?
//
//   * a global operator new/delete counter measures REAL allocator calls
//     during the timed region (both representations pay the same harness
//     overhead, so the per-item delta is the item path's own cost);
//   * the pool's hit/miss metrics give the pooled path's exact answer
//     (a miss is the only acquire that touches a slab or the heap).
//
// Three workloads: a bare make/destroy loop (allocator cost in isolation),
// a single-runtime pumped flow, and a 2-shard flow whose payloads cross a
// ShardChannel cut — the case the consumer-side recycling protocol exists
// for. Each runs per representation (`mode`: 0 = legacy shared_ptr,
// 1 = pooled block, 2 = inline-in-Item), pinned explicitly because the
// small trivially-copyable payloads used here would otherwise all take the
// default inline path and measure nothing. The batched rows
// (BM_CrossShardFlowBatched) re-run the cut flow with span-moving pumps,
// batch on vs off.
//
// On a 1-core host the cross-shard numbers measure overhead, not
// parallelism — record the host's core count next to archived results
// (see BENCH_mem.json).
#include <benchmark/benchmark.h>

#include "bench_obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "mem/pool.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

// ---------------------------------------------------------------------------
// Global allocator call counter. Counts every operator new in the process —
// harness, strings, rings — which is exactly why the benches report per-item
// DELTAS between otherwise identical pooled and legacy runs.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace infopipe;

constexpr std::uint64_t kItems = 20000;

/// CountingSource's shape but with a real (pooled or legacy) payload per
/// item — tokens never touch the allocator, so they cannot measure it.
class PayloadSource : public PassiveSource {
 public:
  PayloadSource(std::string name, std::uint64_t count)
      : PassiveSource(std::move(name)), count_(count) {}

  void reset() noexcept { next_ = 0; }

 protected:
  Item generate() override {
    if (next_ >= count_) return Item::eos();
    Item x = Item::of<std::uint64_t>(next_);
    x.seq = next_++;
    return x;
  }

 private:
  std::uint64_t count_;
  std::uint64_t next_ = 0;
};

void report(benchmark::State& state, std::uint64_t items,
            std::uint64_t allocs, const mem::Pool::Stats* pool) {
  state.SetItemsProcessed(state.items_processed() +
                          static_cast<std::int64_t>(items));
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(items));
  if (pool != nullptr) {
    const double acquires =
        static_cast<double>(pool->hits + pool->misses);
    state.counters["pool_hit_rate"] = benchmark::Counter(
        acquires == 0.0 ? 0.0 : static_cast<double>(pool->hits) / acquires);
    state.counters["pool_misses_per_item"] = benchmark::Counter(
        static_cast<double>(pool->misses) / static_cast<double>(items));
  }
}

// ---------------------------------------------------------------------------
// Bare item make/destroy: the allocator cost of the representation alone.
// Steady state: the pooled path recycles one block forever (0 allocator
// calls per item), the legacy path pays make_shared every time.

void BM_ItemMakeDestroy(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  config().pooling = mode == 1;
  config().inline_payloads = mode == 2;
  mem::Pool pool("bench");
  mem::PoolScope scope(&pool);

  std::uint64_t items = 0;
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Item x = Item::of<std::uint64_t>(items);
    benchmark::DoNotOptimize(x);
    ++items;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  const mem::Pool::Stats s = pool.stats();
  report(state, items, allocs, mode == 1 ? &s : nullptr);
  config().pooling = true;
  config().inline_payloads = true;
}
// mode: 0 = legacy shared_ptr, 1 = pooled block, 2 = inline-in-Item.
BENCHMARK(BM_ItemMakeDestroy)
    ->DenseRange(0, 2)
    ->ArgName("mode")
    ->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Single-runtime flow: source -> pump -> buffer -> pump -> sink, payloads
// allocated by the first section's pump thread and released by the sink on
// the same runtime — the pure owner-recycling path.

struct PumpedChain {
  PayloadSource src{"src", kItems};
  FreeRunningPump p1;
  Buffer buf{"buf", 64};
  FreeRunningPump p2;
  CountingSink sink{"sink"};
  Pipeline pipe;

  explicit PumpedChain(std::size_t max_batch = 1)
      : p1(PumpSpec{.name = "p1", .max_batch = max_batch}),
        p2(PumpSpec{.name = "p2", .max_batch = max_batch}) {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, buf, 0);
    pipe.connect(buf, 0, p2, 0);
    pipe.connect(p2, 0, sink, 0);
  }
};

void BM_SingleRuntimeFlow(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const bool pooled = mode == 1;
  config().pooling = pooled;
  config().inline_payloads = mode == 2;
  for (auto _ : state) {
    state.PauseTiming();
    PumpedChain c;
    rt::Runtime rtm;
    Realization real(rtm, c.pipe);
    real.start();
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    state.ResumeTiming();
    rtm.run();
    state.PauseTiming();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - before;
    if (c.sink.count() != kItems) {
      state.SkipWithError("flow lost items");
      return;
    }
    const mem::Pool::Stats s = rtm.pool().stats();
    report(state, kItems, allocs, pooled ? &s : nullptr);
    obsbench::capture(rtm, mode == 2   ? "BM_SingleRuntimeFlow/inline"
                           : pooled    ? "BM_SingleRuntimeFlow/pooled"
                                       : "BM_SingleRuntimeFlow/legacy");
    state.ResumeTiming();
  }
  config().pooling = true;
  config().inline_payloads = true;
}
// mode: 0 = legacy shared_ptr, 1 = pooled block, 2 = inline-in-Item.
BENCHMARK(BM_SingleRuntimeFlow)
    ->DenseRange(0, 2)
    ->ArgName("mode")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Cross-shard flow: the same chain cut at the buffer onto 2 shards, so
// every payload is allocated on the producer shard and dies on the consumer
// shard — blocks come home through the foreign-return stash / adoption
// path, and the pooled run should STILL be allocator-quiet per item.

void BM_CrossShardFlow(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const bool pooled = mode == 1;
  config().pooling = pooled;
  config().inline_payloads = mode == 2;
  for (auto _ : state) {
    state.PauseTiming();
    PumpedChain c;
    shard::ShardGroup group(2);
    shard::ShardedRealization real(group, c.pipe);
    real.start();
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    state.ResumeTiming();
    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - before;
    if (c.sink.count() != kItems) {
      state.SkipWithError("sharded flow lost items");
      return;
    }
    mem::Pool::Stats agg;
    for (int s = 0; s < group.size(); ++s) {
      const mem::Pool::Stats ps = group.runtime(s).pool().stats();
      agg.hits += ps.hits;
      agg.misses += ps.misses;
      agg.foreign_returned += ps.foreign_returned;
      agg.foreign_adopted += ps.foreign_adopted;
    }
    report(state, kItems, allocs, pooled ? &agg : nullptr);
    if (pooled) {
      state.counters["cross_shard_recycles_per_item"] = benchmark::Counter(
          static_cast<double>(agg.foreign_returned + agg.foreign_adopted) /
          static_cast<double>(kItems));
    }
    if (obsbench::enabled()) {
      obsbench::captured()[mode == 2  ? "BM_CrossShardFlow/inline"
                           : pooled   ? "BM_CrossShardFlow/pooled"
                                      : "BM_CrossShardFlow/legacy"] =
          real.metrics_snapshot().to_json();
    }
    state.ResumeTiming();
  }
  config().pooling = true;
  config().inline_payloads = true;
}
// Real time: the bench thread parks in wait_finished while shard threads
// do the work.
// mode: 0 = legacy shared_ptr, 1 = pooled block, 2 = inline-in-Item.
BENCHMARK(BM_CrossShardFlow)
    ->DenseRange(0, 2)
    ->ArgName("mode")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// The same cut flow with span-moving pumps (max_batch = 32), batch on vs
// off — inline + pooled both enabled, i.e. the full fast path. The off row
// is the identical pipeline under the INFOPIPE_BATCH kill switch, so the
// delta is the per-burst amortization alone.

void BM_CrossShardFlowBatched(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  config().batching = batched;
  for (auto _ : state) {
    state.PauseTiming();
    PumpedChain c(32);
    shard::ShardGroup group(2);
    shard::ShardedRealization real(group, c.pipe);
    real.start();
    state.ResumeTiming();
    real.wait_finished(std::chrono::seconds(120));
    state.PauseTiming();
    if (c.sink.count() != kItems) {
      state.SkipWithError("sharded flow lost items");
      return;
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kItems));
    if (obsbench::enabled()) {
      obsbench::captured()[batched ? "BM_CrossShardFlowBatched/on"
                                   : "BM_CrossShardFlowBatched/off"] =
          real.metrics_snapshot().to_json();
    }
    state.ResumeTiming();
  }
  config().batching = true;
}
BENCHMARK(BM_CrossShardFlowBatched)
    ->Arg(1)
    ->ArgName("batch")
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

OBSBENCH_MAIN();
