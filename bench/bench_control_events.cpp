// E6 — control-event responsiveness (§2.2/§3.2/§4).
//
// "The current design is based on the assumption that control event
// handling does not require much time. Hence ... their handlers are
// executed with higher priority than potentially long-running data
// processing", and control events are delivered even while a component is
// blocked in a push or pull.
//
// Measured: the virtual-clock latency from posting a control event to its
// handler running, in three pipeline states:
//   idle            (pipeline waiting between clocked cycles)
//   busy decoding   (long-running data function in progress; the event must
//                    wait for it — never interrupt it — and run before the
//                    NEXT data function)
//   blocked in push (producer pump blocked on a full buffer)
//
// Expected shape: idle/blocked latency ~0 (next dispatch point); busy
// latency bounded by the remaining decode time, never by the queue of
// pending data items.
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"

#include "bench_obs.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

constexpr int kEvProbe = kEventUser + 1;

class ProbeTarget : public IdentityFunction {
 public:
  using IdentityFunction::IdentityFunction;
  rt::Time handled_at = -1;

  void handle_event(const Event& e) override {
    if (e.type == kEvProbe) handled_at = pipeline_now();
  }
};

/// Latency when the pipeline is idle between clocked cycles.
rt::Time probe_idle() {
  rt::Runtime rt;
  MpegFileSource src("m.mpg", StreamConfig{.frames = 300});
  ProbeTarget target("target");
  ClockedPump pump("pump", 10.0);  // 100 ms period: long idle gaps
  VideoDisplay display("display");
  auto ch = src >> target >> pump >> display;
  Realization real(rt, ch.pipeline());
  real.start();
  rt.run_until(rt::milliseconds(150));  // mid-gap between cycles
  const rt::Time posted = rt.now();
  real.post_event_to(target, Event{kEvProbe});
  rt.run_until(rt::milliseconds(400));
  obsbench::capture(rt, "probe_idle");
  return target.handled_at - posted;
}

/// Latency while a long decode is in progress (the handler must wait until
/// the data function finishes, §3.2, but overtakes all queued data).
rt::Time probe_busy(rt::Time decode_ns_per_kb) {
  rt::Runtime rt;
  StreamConfig cfg;
  cfg.frames = 300;
  MpegFileSource src("m.mpg", cfg);
  MpegDecoder decoder("decoder");
  decoder.set_cost_per_kb(decode_ns_per_kb);  // heavy, long data function
  ProbeTarget target("target");
  FreeRunningPump pump("pump");
  VideoDisplay display("display");
  auto ch = src >> pump >> decoder >> target >> display;
  Realization real(rt, ch.pipeline());
  real.start();
  // Run into the middle of a decode: with ~8 ms per I frame the pipeline is
  // essentially always inside a data function.
  rt.run_until(rt::milliseconds(101));
  const rt::Time posted = rt.now();
  real.post_event_to(target, Event{kEvProbe});
  rt.run_until(rt::seconds(30));
  obsbench::capture(rt, "probe_busy");
  return target.handled_at - posted;
}

/// Latency while the section's thread is blocked pushing into a full buffer.
rt::Time probe_blocked() {
  rt::Runtime rt;
  MpegFileSource src("m.mpg", StreamConfig{.frames = 3000});
  ProbeTarget target("target");
  FreeRunningPump fill("fill");
  Buffer buf("buf", 2, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 2.0);  // glacial consumer: fill blocks hard
  VideoDisplay display("display");
  auto ch = src >> target >> fill >> buf >> drain >> display;
  Realization real(rt, ch.pipeline());
  real.start();
  rt.run_until(rt::milliseconds(700));  // fill is now blocked mid-push
  const rt::Time posted = rt.now();
  real.post_event_to(target, Event{kEvProbe});
  rt.run_until(rt::milliseconds(1400));
  obsbench::capture(rt, "probe_blocked");
  return target.handled_at - posted;
}

void report(const char* label, rt::Time ns) {
  if (ns < 0) {
    std::printf("  %-28s NOT DELIVERED\n", label);
  } else {
    std::printf("  %-28s %10.3f ms\n", label, static_cast<double>(ns) / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  obsbench::strip_metrics_flag(argc, argv);
  std::puts("E6  control-event latency by pipeline state");
  report("idle (between cycles):", probe_idle());
  report("busy (light decode, 1us/kB):", probe_busy(1000));
  report("busy (heavy decode, 1ms/kB):", probe_busy(1000 * 1000));
  report("blocked in push (full buf):", probe_blocked());
  std::puts("");
  std::puts("  expected shape: idle and blocked deliver at the next dispatch");
  std::puts("  point (~0 ms); busy waits for at most one data function, so the");
  std::puts("  latency scales with per-item decode cost, NOT with queue length.");
  obsbench::write_metrics();
  return 0;
}
