// Information items: the unit of data flowing through an Infopipe.
//
// Items are cheap to copy: the payload is shared and immutable once inside
// the pipeline. Sharing matters for components like the paper's MPEG decoder
// (§2.2), which passes decoded frames downstream while still holding them as
// reference frames; the control protocol decides when a shared frame dies,
// and shared ownership here makes that safe by construction.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <utility>

#include "rt/types.hpp"

namespace infopipe {

/// Marker for items with no payload semantics of their own.
enum class ItemSpecial : std::uint8_t {
  kNone,  ///< ordinary data item
  kNil,   ///< "no item available" (empty buffer with the nil policy, §2.3)
  kEos,   ///< end of stream; propagates downstream and stops pumps
};

class Item {
 public:
  /// An invalid/nil item (what a non-blocking pull on an empty buffer
  /// returns).
  static Item nil() noexcept { return Item(ItemSpecial::kNil); }

  /// End-of-stream marker, forwarded through the pipeline when a source is
  /// exhausted.
  static Item eos() noexcept { return Item(ItemSpecial::kEos); }

  /// Default-constructed items are nil.
  Item() noexcept : special_(ItemSpecial::kNil) {}

  /// A data item with a shared, immutable payload.
  template <typename T>
  static Item of(T payload) {
    Item it(ItemSpecial::kNone);
    it.data_ = std::make_shared<const std::any>(std::in_place_type<T>,
                                                std::move(payload));
    return it;
  }

  /// A data item with no payload (pure token; useful in tests and MIDI-like
  /// tiny-message flows where only the metadata matters).
  static Item token(int kind = 0) {
    Item it(ItemSpecial::kNone);
    it.kind = kind;
    return it;
  }

  [[nodiscard]] bool is_nil() const noexcept {
    return special_ == ItemSpecial::kNil;
  }
  [[nodiscard]] bool is_eos() const noexcept {
    return special_ == ItemSpecial::kEos;
  }
  [[nodiscard]] bool is_data() const noexcept {
    return special_ == ItemSpecial::kNone;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return is_data(); }

  /// Typed payload access; nullptr on type mismatch, payload-less or
  /// non-data items.
  template <typename T>
  [[nodiscard]] const T* payload() const noexcept {
    return data_ ? std::any_cast<T>(data_.get()) : nullptr;
  }

  /// Typed payload access; throws std::bad_any_cast on mismatch.
  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = payload<T>();
    if (p == nullptr) throw std::bad_any_cast{};
    return *p;
  }

  /// How many Items currently share this payload (0 for payload-less items).
  /// Used by reference-frame lifetime tests.
  [[nodiscard]] long use_count() const noexcept { return data_.use_count(); }

  // Flow metadata. Each Item copy carries its own metadata; the payload
  // stays shared.
  std::uint64_t seq = 0;       ///< sequence number within the flow
  rt::Time timestamp = 0;      ///< creation/presentation time
  int kind = 0;                ///< application discriminator (frame type…)
  std::size_t size_bytes = 0;  ///< logical wire size; drives netpipe cost

 private:
  explicit Item(ItemSpecial s) noexcept : special_(s) {}

  ItemSpecial special_;
  std::shared_ptr<const std::any> data_;
};

/// Thrown by pull links when the upstream flow has ended; caught by the
/// middleware glue, never by component code. This is what lets component
/// implementations look exactly like the paper's figures (plain
/// `while (running)` loops) without an explicit end-of-stream branch.
struct EndOfStream {};

}  // namespace infopipe
