// Information items: the unit of data flowing through an Infopipe.
//
// Items are cheap to copy: the payload is shared and immutable once inside
// the pipeline. Sharing matters for components like the paper's MPEG decoder
// (§2.2), which passes decoded frames downstream while still holding them as
// reference frames; the control protocol decides when a shared frame dies,
// and shared ownership here makes that safe by construction.
//
// Two payload representations coexist (config().pooling picks at creation):
//   * pooled (default): one intrusive-refcounted block from the current
//     runtime's mem::Pool — one allocation, usually a free-list hit, and
//     the block is recycled when the last Item drops it;
//   * legacy: shared_ptr<const std::any>, two general-allocator hits per
//     item — kept alive so lockstep tests can assert the pooled path is a
//     pure representation change.
// All accessors understand both, so items of either kind can meet in one
// pipeline (e.g. when a test flips the config between stages).
//
// Items MOVE along the hot path — buffer deques, channel rings, pump
// forwarding — and both representations have noexcept moves, which the
// static_asserts at the bottom pin down.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "mem/pool.hpp"
#include "rt/types.hpp"

namespace infopipe {

/// Marker for items with no payload semantics of their own.
enum class ItemSpecial : std::uint8_t {
  kNone,  ///< ordinary data item
  kNil,   ///< "no item available" (empty buffer with the nil policy, §2.3)
  kEos,   ///< end of stream; propagates downstream and stops pumps
};

class Item {
 public:
  /// An invalid/nil item (what a non-blocking pull on an empty buffer
  /// returns).
  static Item nil() noexcept { return Item(ItemSpecial::kNil); }

  /// End-of-stream marker, forwarded through the pipeline when a source is
  /// exhausted.
  static Item eos() noexcept { return Item(ItemSpecial::kEos); }

  /// Default-constructed items are nil.
  Item() noexcept : special_(ItemSpecial::kNil) {}

  Item(const Item&) = default;
  Item& operator=(const Item&) = default;
  Item(Item&&) noexcept = default;
  Item& operator=(Item&&) noexcept = default;
  ~Item() = default;

  /// A data item with a shared, immutable payload. Pooled path: allocated
  /// from the pool of the runtime hosting the calling thread (the global
  /// pool off-runtime).
  template <typename T>
  static Item of(T payload) {
    Item it(ItemSpecial::kNone);
    if (config().pooling) {
      it.block_ = mem::make_typed<T>(std::move(payload));
    } else {
      it.data_ = std::make_shared<const std::any>(std::in_place_type<T>,
                                                  std::move(payload));
    }
    return it;
  }

  /// A data item carrying a raw byte payload (wire messages, serialization
  /// scratch). Pooled path: the bytes live inline in a class-rounded pool
  /// block, so successive messages of similar size reuse storage; legacy
  /// path: stored as a std::vector payload, so either representation
  /// answers both bytes_data() and payload<vector<uint8_t>>() consumers.
  static Item of_bytes(const void* data, std::size_t n) {
    Item it(ItemSpecial::kNone);
    if (config().pooling) {
      it.block_ = mem::make_bytes(data, n);
    } else {
      const auto* p = static_cast<const std::uint8_t*>(data);
      it.data_ = std::make_shared<const std::any>(
          std::in_place_type<std::vector<std::uint8_t>>, p, p + n);
    }
    it.size_bytes = n;
    return it;
  }

  /// A data item with no payload (pure token; useful in tests and MIDI-like
  /// tiny-message flows where only the metadata matters).
  static Item token(int kind = 0) {
    Item it(ItemSpecial::kNone);
    it.kind = kind;
    return it;
  }

  [[nodiscard]] bool is_nil() const noexcept {
    return special_ == ItemSpecial::kNil;
  }
  [[nodiscard]] bool is_eos() const noexcept {
    return special_ == ItemSpecial::kEos;
  }
  [[nodiscard]] bool is_data() const noexcept {
    return special_ == ItemSpecial::kNone;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return is_data(); }

  /// Typed payload access; nullptr on type mismatch, payload-less or
  /// non-data items.
  template <typename T>
  [[nodiscard]] const T* payload() const noexcept {
    if (data_) return std::any_cast<T>(data_.get());
    return block_.get_if<T>();
  }

  /// Typed payload access; throws std::bad_any_cast on mismatch.
  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = payload<T>();
    if (p == nullptr) throw std::bad_any_cast{};
    return *p;
  }

  /// Raw-bytes payload access: valid for of_bytes() items of either
  /// representation, and for legacy vector<uint8_t> payloads. nullptr/0
  /// otherwise.
  [[nodiscard]] const std::uint8_t* bytes_data() const noexcept {
    if (block_.is_bytes()) return block_.bytes();
    if (const auto* v = payload<std::vector<std::uint8_t>>()) {
      return v->data();
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t bytes_size() const noexcept {
    if (block_.is_bytes()) return block_.size();
    if (const auto* v = payload<std::vector<std::uint8_t>>()) {
      return v->size();
    }
    return 0;
  }
  [[nodiscard]] bool has_bytes() const noexcept {
    return block_.is_bytes() ||
           payload<std::vector<std::uint8_t>>() != nullptr;
  }

  /// How many Items currently share this payload (0 for payload-less items).
  /// Used by reference-frame lifetime tests.
  [[nodiscard]] long use_count() const noexcept {
    return data_ ? data_.use_count() : block_.use_count();
  }

  /// True when the payload is a pooled block (diagnostics/tests).
  [[nodiscard]] bool pooled() const noexcept {
    return static_cast<bool>(block_);
  }

  // Flow metadata. Each Item copy carries its own metadata; the payload
  // stays shared.
  std::uint64_t seq = 0;       ///< sequence number within the flow
  rt::Time timestamp = 0;      ///< creation/presentation time
  int kind = 0;                ///< application discriminator (frame type…)
  std::size_t size_bytes = 0;  ///< logical wire size; drives netpipe cost

 private:
  explicit Item(ItemSpecial s) noexcept : special_(s) {}

  ItemSpecial special_;
  std::shared_ptr<const std::any> data_;  ///< legacy representation
  mem::PayloadRef block_;                 ///< pooled representation
};

// The hot path (buffer deques, channel ring slots, pump forwarding) relies
// on items moving without throwing; a copy sneaking in would be a refcount
// round trip per hop.
static_assert(std::is_nothrow_move_constructible_v<Item>);
static_assert(std::is_nothrow_move_assignable_v<Item>);

/// Thrown by pull links when the upstream flow has ended; caught by the
/// middleware glue, never by component code. This is what lets component
/// implementations look exactly like the paper's figures (plain
/// `while (running)` loops) without an explicit end-of-stream branch.
struct EndOfStream {};

}  // namespace infopipe
