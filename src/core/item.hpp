// Information items: the unit of data flowing through an Infopipe.
//
// Items are cheap to copy: the payload is shared and immutable once inside
// the pipeline. Sharing matters for components like the paper's MPEG decoder
// (§2.2), which passes decoded frames downstream while still holding them as
// reference frames; the control protocol decides when a shared frame dies,
// and shared ownership here makes that safe by construction.
//
// Three payload representations coexist (config() picks at creation):
//   * inline (default for small payloads): trivially-copyable payloads no
//     larger than kInlineCapacity (two cache lines) live in a buffer inside
//     the Item itself — no allocation, no refcount, a bounded memcpy on
//     copy. A drained batch of small items is therefore a contiguous,
//     memcpy-friendly run with no allocator traffic at all.
//   * pooled (default otherwise): one intrusive-refcounted block from the
//     current runtime's mem::Pool — one allocation, usually a free-list
//     hit, and the block is recycled when the last Item drops it;
//   * legacy: shared_ptr<const std::any>, two general-allocator hits per
//     item — kept alive so lockstep tests can assert the pooled path is a
//     pure representation change.
// All accessors understand all three, so items of any kind can meet in one
// pipeline (e.g. when a test flips the config between stages). Inline items
// trade the shared-payload property for allocation-freedom: each copy owns
// its bytes (use_count() == 1), which is indistinguishable to consumers of
// an immutable payload.
//
// Items MOVE along the hot path — buffer deques, channel rings, pump
// forwarding — and all representations have noexcept moves, which the
// static_asserts at the bottom pin down. The hand-written copy/move
// members exist only so the inline buffer is copied to its used length
// instead of all kInlineCapacity bytes per hop.
#pragma once

#include <any>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "mem/pool.hpp"
#include "rt/types.hpp"

namespace infopipe {

/// Marker for items with no payload semantics of their own.
enum class ItemSpecial : std::uint8_t {
  kNone,  ///< ordinary data item
  kNil,   ///< "no item available" (empty buffer with the nil policy, §2.3)
  kEos,   ///< end of stream; propagates downstream and stops pumps
};

class Item {
 public:
  /// Payloads up to this size (and trivially copyable) are stored inside
  /// the Item itself when config().inline_payloads is set: two cache lines,
  /// the crossover below which a memcpy beats even a pool free-list hit.
  static constexpr std::size_t kInlineCapacity = 128;

  /// An invalid/nil item (what a non-blocking pull on an empty buffer
  /// returns).
  static Item nil() noexcept { return Item(ItemSpecial::kNil); }

  /// End-of-stream marker, forwarded through the pipeline when a source is
  /// exhausted.
  static Item eos() noexcept { return Item(ItemSpecial::kEos); }

  /// Default-constructed items are nil.
  Item() noexcept : special_(ItemSpecial::kNil) {}

  Item(const Item& o)
      : seq(o.seq),
        timestamp(o.timestamp),
        kind(o.kind),
        size_bytes(o.size_bytes),
        special_(o.special_),
        data_(o.data_),
        block_(o.block_),
        inline_type_(o.inline_type_),
        inline_size_(o.inline_size_),
        inline_bytes_(o.inline_bytes_) {
    if (inline_size_ > 0) std::memcpy(inline_buf_, o.inline_buf_, inline_size_);
  }
  Item& operator=(const Item& o) {
    if (this != &o) {
      seq = o.seq;
      timestamp = o.timestamp;
      kind = o.kind;
      size_bytes = o.size_bytes;
      special_ = o.special_;
      data_ = o.data_;
      block_ = o.block_;
      inline_type_ = o.inline_type_;
      inline_size_ = o.inline_size_;
      inline_bytes_ = o.inline_bytes_;
      if (inline_size_ > 0) {
        std::memcpy(inline_buf_, o.inline_buf_, inline_size_);
      }
    }
    return *this;
  }
  Item(Item&& o) noexcept
      : seq(o.seq),
        timestamp(o.timestamp),
        kind(o.kind),
        size_bytes(o.size_bytes),
        special_(o.special_),
        data_(std::move(o.data_)),
        block_(std::move(o.block_)),
        inline_type_(o.inline_type_),
        inline_size_(o.inline_size_),
        inline_bytes_(o.inline_bytes_) {
    if (inline_size_ > 0) std::memcpy(inline_buf_, o.inline_buf_, inline_size_);
    o.inline_type_ = nullptr;
    o.inline_size_ = 0;
    o.inline_bytes_ = false;
  }
  Item& operator=(Item&& o) noexcept {
    if (this != &o) {
      seq = o.seq;
      timestamp = o.timestamp;
      kind = o.kind;
      size_bytes = o.size_bytes;
      special_ = o.special_;
      data_ = std::move(o.data_);
      block_ = std::move(o.block_);
      inline_type_ = o.inline_type_;
      inline_size_ = o.inline_size_;
      inline_bytes_ = o.inline_bytes_;
      if (inline_size_ > 0) {
        std::memcpy(inline_buf_, o.inline_buf_, inline_size_);
      }
      o.inline_type_ = nullptr;
      o.inline_size_ = 0;
      o.inline_bytes_ = false;
    }
    return *this;
  }
  ~Item() = default;

  /// A data item with an immutable payload. Small trivially-copyable
  /// payloads go inline (see kInlineCapacity); otherwise the pooled path
  /// allocates from the pool of the runtime hosting the calling thread (the
  /// global pool off-runtime).
  template <typename T>
  static Item of(T payload) {
    Item it(ItemSpecial::kNone);
    if constexpr (std::is_trivially_copyable_v<T> &&
                  sizeof(T) <= kInlineCapacity &&
                  alignof(T) <= alignof(std::max_align_t)) {
      if (config().inline_payloads) {
        ::new (static_cast<void*>(it.inline_buf_)) T(std::move(payload));
        it.inline_type_ = &typeid(T);
        it.inline_size_ = static_cast<std::uint16_t>(sizeof(T));
        return it;
      }
    }
    if (config().pooling) {
      it.block_ = mem::make_typed<T>(std::move(payload));
    } else {
      it.data_ = std::make_shared<const std::any>(std::in_place_type<T>,
                                                  std::move(payload));
    }
    return it;
  }

  /// A data item carrying a raw byte payload (wire messages, serialization
  /// scratch). Payloads up to kInlineCapacity live inside the Item itself;
  /// larger ones follow the pooled path (a class-rounded pool block, so
  /// successive messages of similar size reuse storage) or, with pooling
  /// off, the legacy path (a std::vector payload, so old-style
  /// payload<vector<uint8_t>>() consumers still work).
  static Item of_bytes(const void* data, std::size_t n) {
    Item it(ItemSpecial::kNone);
    if (n <= kInlineCapacity && config().inline_payloads) {
      if (n > 0) std::memcpy(it.inline_buf_, data, n);
      it.inline_size_ = static_cast<std::uint16_t>(n);
      it.inline_bytes_ = true;
      it.size_bytes = n;
      return it;
    }
    if (config().pooling) {
      it.block_ = mem::make_bytes(data, n);
    } else {
      const auto* p = static_cast<const std::uint8_t*>(data);
      it.data_ = std::make_shared<const std::any>(
          std::in_place_type<std::vector<std::uint8_t>>, p, p + n);
    }
    it.size_bytes = n;
    return it;
  }

  /// A data item with no payload (pure token; useful in tests and MIDI-like
  /// tiny-message flows where only the metadata matters).
  static Item token(int kind = 0) {
    Item it(ItemSpecial::kNone);
    it.kind = kind;
    return it;
  }

  [[nodiscard]] bool is_nil() const noexcept {
    return special_ == ItemSpecial::kNil;
  }
  [[nodiscard]] bool is_eos() const noexcept {
    return special_ == ItemSpecial::kEos;
  }
  [[nodiscard]] bool is_data() const noexcept {
    return special_ == ItemSpecial::kNone;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return is_data(); }

  /// Typed payload access; nullptr on type mismatch, payload-less or
  /// non-data items.
  template <typename T>
  [[nodiscard]] const T* payload() const noexcept {
    if (inline_type_ != nullptr) {
      if (*inline_type_ == typeid(T)) {
        return std::launder(reinterpret_cast<const T*>(inline_buf_));
      }
      return nullptr;
    }
    if (data_) return std::any_cast<T>(data_.get());
    return block_.get_if<T>();
  }

  /// Typed payload access; throws std::bad_any_cast on mismatch.
  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = payload<T>();
    if (p == nullptr) throw std::bad_any_cast{};
    return *p;
  }

  /// Raw-bytes payload access: valid for of_bytes() items of either
  /// representation, and for legacy vector<uint8_t> payloads. nullptr/0
  /// otherwise.
  [[nodiscard]] const std::uint8_t* bytes_data() const noexcept {
    if (inline_bytes_) {
      return reinterpret_cast<const std::uint8_t*>(inline_buf_);
    }
    if (block_.is_bytes()) return block_.bytes();
    if (const auto* v = payload<std::vector<std::uint8_t>>()) {
      return v->data();
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t bytes_size() const noexcept {
    if (inline_bytes_) return inline_size_;
    if (block_.is_bytes()) return block_.size();
    if (const auto* v = payload<std::vector<std::uint8_t>>()) {
      return v->size();
    }
    return 0;
  }
  [[nodiscard]] bool has_bytes() const noexcept {
    return inline_bytes_ || block_.is_bytes() ||
           payload<std::vector<std::uint8_t>>() != nullptr;
  }

  /// How many Items currently share this payload (0 for payload-less items).
  /// Each copy of an inline item owns its bytes, so the count is 1.
  /// Used by reference-frame lifetime tests.
  [[nodiscard]] long use_count() const noexcept {
    if (inlined()) return 1;
    return data_ ? data_.use_count() : block_.use_count();
  }

  /// True when the payload is a pooled block (diagnostics/tests).
  [[nodiscard]] bool pooled() const noexcept {
    return static_cast<bool>(block_);
  }

  /// True when the payload lives inside the Item (diagnostics/tests).
  [[nodiscard]] bool inlined() const noexcept {
    return inline_type_ != nullptr || inline_bytes_;
  }

  // Flow metadata. Each Item copy carries its own metadata; the payload
  // stays shared.
  std::uint64_t seq = 0;       ///< sequence number within the flow
  rt::Time timestamp = 0;      ///< creation/presentation time
  int kind = 0;                ///< application discriminator (frame type…)
  std::size_t size_bytes = 0;  ///< logical wire size; drives netpipe cost

 private:
  explicit Item(ItemSpecial s) noexcept : special_(s) {}

  ItemSpecial special_;
  std::shared_ptr<const std::any> data_;  ///< legacy representation
  mem::PayloadRef block_;                 ///< pooled representation

  // Inline representation: non-null inline_type_ (typed payload) or set
  // inline_bytes_ (raw bytes) marks the buffer as live; only the first
  // inline_size_ bytes are meaningful (and copied).
  const std::type_info* inline_type_ = nullptr;
  std::uint16_t inline_size_ = 0;
  bool inline_bytes_ = false;
  alignas(std::max_align_t) unsigned char inline_buf_[kInlineCapacity];
};

/// A run of items moving together through the batched path (span-based
/// push/pop/consume APIs of PR 6).
using ItemSpan = std::span<Item>;

// The hot path (buffer deques, channel ring slots, pump forwarding) relies
// on items moving without throwing; a copy sneaking in would be a refcount
// round trip per hop.
static_assert(std::is_nothrow_move_constructible_v<Item>);
static_assert(std::is_nothrow_move_assignable_v<Item>);

/// Thrown by pull links when the upstream flow has ended; caught by the
/// middleware glue, never by component code. This is what lets component
/// implementations look exactly like the paper's figures (plain
/// `while (running)` loops) without an explicit end-of-stream branch.
struct EndOfStream {};

}  // namespace infopipe
