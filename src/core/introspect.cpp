#include "core/introspect.hpp"

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "obs/metrics.hpp"

namespace infopipe {

PlanInfo plan_info_of(const Pipeline& p, const Plan& plan,
                      std::size_t threads) {
  PlanInfo info;
  info.components = p.components().size();
  info.threads = threads;
  info.sections.reserve(plan.sections.size());
  for (const auto& sec : plan.sections) {
    PlanInfo::SectionInfo si;
    si.driver = sec.driver->name();
    si.driver_style = sec.driver->style();
    si.thread_count = sec.thread_count();
    si.members.reserve(sec.members.size());
    for (const auto& h : sec.members) {
      si.members.push_back(PlanInfo::Member{h.comp->name(), h.comp->style(),
                                            h.mode, h.needs_coroutine,
                                            h.shared});
    }
    info.sections.push_back(std::move(si));
  }
  return info;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string flow_json(const BufferStats& b) {
  return "{\"name\":\"" + json_escape(b.name) + "\",\"fill\":" +
         std::to_string(b.fill) + ",\"capacity\":" +
         std::to_string(b.capacity) + ",\"max_fill\":" +
         std::to_string(b.max_fill) + ",\"puts\":" + std::to_string(b.puts) +
         ",\"takes\":" + std::to_string(b.takes) + ",\"drops\":" +
         std::to_string(b.drops) + ",\"nil_returns\":" +
         std::to_string(b.nil_returns) + ",\"put_blocks\":" +
         std::to_string(b.put_blocks) + ",\"take_blocks\":" +
         std::to_string(b.take_blocks) + "}";
}

/// One flow row under `prefix` — shared by buffers and channels so both
/// publish the identical schema.
void publish_flow(const std::string& prefix, const BufferStats& b,
                  obs::MetricsSnapshot& out) {
  out.add_gauge(prefix + ".fill", static_cast<double>(b.fill));
  out.add_gauge(prefix + ".max_fill", static_cast<double>(b.max_fill));
  out.add_counter(prefix + ".puts", b.puts);
  out.add_counter(prefix + ".takes", b.takes);
  out.add_counter(prefix + ".drops", b.drops);
  out.add_counter(prefix + ".nil_returns", b.nil_returns);
  out.add_counter(prefix + ".put_blocks", b.put_blocks);
  out.add_counter(prefix + ".take_blocks", b.take_blocks);
}

}  // namespace

std::size_t PlanInfo::coroutine_count() const {
  std::size_t n = 0;
  for (const SectionInfo& sec : sections) {
    for (const Member& m : sec.members) n += m.coroutine ? 1 : 0;
  }
  return n;
}

const PlanInfo::SectionInfo* PlanInfo::section(std::string_view driver) const {
  for (const SectionInfo& sec : sections) {
    if (sec.driver == driver) return &sec;
  }
  return nullptr;
}

const PlanInfo::Member* PlanInfo::member(std::string_view name) const {
  for (const SectionInfo& sec : sections) {
    for (const Member& m : sec.members) {
      if (m.name == name) return &m;
    }
  }
  return nullptr;
}

const DriverStats* StatsSnapshot::driver(std::string_view name) const {
  for (const DriverStats& d : drivers) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const BufferStats* StatsSnapshot::buffer(std::string_view name) const {
  for (const BufferStats& b : buffers) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

const ChannelStats* StatsSnapshot::channel(std::string_view name) const {
  for (const ChannelStats& c : channels) {
    if (c.flow.name == name) return &c;
  }
  return nullptr;
}

std::string to_string(const PlanInfo& p) {
  std::string out;
  out += "pipeline: " + std::to_string(p.components) + " components, " +
         std::to_string(p.sections.size()) + " sections, " +
         std::to_string(p.threads) + " threads\n";
  for (const PlanInfo::SectionInfo& sec : p.sections) {
    out += "  section driven by '" + sec.driver + "' (" +
           to_string(sec.driver_style) + ", " +
           std::to_string(sec.thread_count) + " thread" +
           (sec.thread_count == 1 ? "" : "s") + ")\n";
    for (const PlanInfo::Member& m : sec.members) {
      out += "    " + m.name + ": " + to_string(m.style) + " in " +
             to_string(m.mode) + " mode, " +
             (m.coroutine ? "coroutine" : "direct call");
      if (m.shared) out += ", shared region";
      out += "\n";
    }
  }
  return out;
}

std::string to_string(const StatsSnapshot& s) {
  std::string out;
  for (const DriverStats& d : s.drivers) {
    out += "  " + d.name + ": " + std::to_string(d.items_pumped) +
           " items pumped" + (d.running ? " (running)" : "") + "\n";
  }
  for (const BufferStats& b : s.buffers) {
    out += "  " + b.name + ": fill " + std::to_string(b.fill) + "/" +
           std::to_string(b.capacity) + ", " + std::to_string(b.puts) +
           " in / " + std::to_string(b.takes) + " out, " +
           std::to_string(b.drops) + " dropped, " +
           std::to_string(b.put_blocks + b.take_blocks) + " blocks\n";
  }
  for (const ChannelStats& c : s.channels) {
    out += "  " + c.flow.name + " (shard " + std::to_string(c.from_shard) +
           " -> " + std::to_string(c.to_shard) + "): fill " +
           std::to_string(c.flow.fill) + "/" +
           std::to_string(c.flow.capacity) + ", " +
           std::to_string(c.flow.puts) + " in / " +
           std::to_string(c.flow.takes) + " out, " +
           std::to_string(c.flow.drops) + " dropped, " +
           std::to_string(c.flow.put_blocks + c.flow.take_blocks) +
           " blocks, " + std::to_string(c.wakeups) + " wakeups\n";
  }
  return out;
}

std::string to_json(const PlanInfo& p) {
  std::string out = "{\"components\":" + std::to_string(p.components) +
                    ",\"threads\":" + std::to_string(p.threads) +
                    ",\"sections\":[";
  bool first_sec = true;
  for (const PlanInfo::SectionInfo& sec : p.sections) {
    if (!first_sec) out += ',';
    first_sec = false;
    out += "{\"driver\":\"" + json_escape(sec.driver) + "\",\"style\":\"" +
           json_escape(to_string(sec.driver_style)) + "\",\"threads\":" +
           std::to_string(sec.thread_count) + ",\"members\":[";
    bool first_m = true;
    for (const PlanInfo::Member& m : sec.members) {
      if (!first_m) out += ',';
      first_m = false;
      out += "{\"name\":\"" + json_escape(m.name) + "\",\"style\":\"" +
             json_escape(to_string(m.style)) + "\",\"mode\":\"" +
             json_escape(to_string(m.mode)) + "\",\"coroutine\":" +
             (m.coroutine ? "true" : "false") + ",\"shared\":" +
             (m.shared ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string to_json(const StatsSnapshot& s) {
  std::string out = "{\"when\":" + std::to_string(s.when) + ",\"drivers\":[";
  bool first = true;
  for (const DriverStats& d : s.drivers) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(d.name) + "\",\"items_pumped\":" +
           std::to_string(d.items_pumped) + ",\"deadline_misses\":" +
           std::to_string(d.deadline_misses) + ",\"running\":" +
           (d.running ? "true" : "false") + "}";
  }
  out += "],\"buffers\":[";
  first = true;
  for (const BufferStats& b : s.buffers) {
    if (!first) out += ',';
    first = false;
    out += flow_json(b);
  }
  out += "],\"channels\":[";
  first = true;
  for (const ChannelStats& c : s.channels) {
    if (!first) out += ',';
    first = false;
    std::string row = flow_json(c.flow);
    row.pop_back();  // reopen the flow object to append the channel facts
    row += ",\"from_shard\":" + std::to_string(c.from_shard) +
           ",\"to_shard\":" + std::to_string(c.to_shard) + ",\"wakeups\":" +
           std::to_string(c.wakeups) + "}";
    out += row;
  }
  out += "]}";
  return out;
}

void publish(const StatsSnapshot& s, obs::MetricsSnapshot& out) {
  for (const DriverStats& d : s.drivers) {
    const std::string p = "pipe.driver." + d.name;
    out.add_counter(p + ".items_pumped", d.items_pumped);
    out.add_counter(p + ".deadline_misses", d.deadline_misses);
    out.add_gauge(p + ".running", d.running ? 1.0 : 0.0);
  }
  for (const BufferStats& b : s.buffers) {
    publish_flow("pipe.buffer." + b.name, b, out);
  }
  for (const ChannelStats& c : s.channels) {
    const std::string p = "chan." + c.flow.name;
    publish_flow(p, c.flow, out);
    out.add_counter(p + ".wakeups", c.wakeups);
  }
}

}  // namespace infopipe
