#include "core/pump.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace infopipe {

namespace {
rt::Time period_from_rate(double rate_hz) {
  if (!(rate_hz > 0.0)) {
    throw std::invalid_argument("pump rate must be positive");
  }
  return static_cast<rt::Time>(std::llround(1e9 / rate_hz));
}
}  // namespace

Item Driver::pull_prev() {
  if (!pull_link_) throw NotWired(name() + ": pull side not wired");
  return pull_link_();
}

void Driver::push_next(Item x) {
  if (!push_link_) throw NotWired(name() + ": push side not wired");
  push_link_(std::move(x));
}

void Pump::cycle() {
  Item x = pull_prev();
  if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
  observe(x);
  ++items_pumped_;
  push_next(std::move(x));
}

ClockedPump::ClockedPump(std::string name, double rate_hz,
                         rt::Priority priority)
    : Pump(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

void ClockedPump::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedPump::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  // If we have fallen behind (long stall), re-anchor instead of firing a
  // burst of catch-up cycles.
  if (next_ < now) next_ = now + period_;
  return fire;
}

FreeRunningPump::FreeRunningPump(std::string name, rt::Priority priority)
    : Pump(std::move(name), priority) {}

AdaptivePump::AdaptivePump(std::string name, double initial_rate_hz,
                           rt::Priority priority)
    : Pump(std::move(name), priority), rate_hz_(initial_rate_hz) {
  (void)period_from_rate(initial_rate_hz);  // validate
}

void AdaptivePump::set_rate(double rate_hz) {
  (void)period_from_rate(rate_hz);  // validate
  rate_hz_ = rate_hz;
}

void AdaptivePump::handle_event(const Event& e) {
  if (e.type == kEventQualityHint) {
    if (const double* r = e.get<double>()) set_rate(*r);
  }
}

void AdaptivePump::prepare(rt::Time now) {
  last_fire_ = now;
  first_ = true;
}

rt::Time AdaptivePump::next_fire(rt::Time now) {
  if (first_) {
    first_ = false;
    last_fire_ = now;
    return now;
  }
  // Rate may change between cycles; pace relative to the last fire so a new
  // rate takes effect immediately.
  const rt::Time fire = last_fire_ + period_from_rate(rate_hz_);
  last_fire_ = std::max(fire, now);
  return fire;
}

void ActiveSource::cycle() {
  Item x = generate();
  if (x.is_eos()) throw EndOfStream{};
  if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
  observe(x);
  ++items_pumped_;
  push_next(std::move(x));
}

ClockedSourceBase::ClockedSourceBase(std::string name, double rate_hz,
                                     rt::Priority priority)
    : ActiveSource(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

void ClockedSourceBase::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedSourceBase::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  if (next_ < now) next_ = now + period_;
  return fire;
}

void ActiveSink::cycle() {
  Item x = pull_prev();
  if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
  observe(x);
  ++items_pumped_;
  consume(std::move(x));
}

ClockedSinkBase::ClockedSinkBase(std::string name, double rate_hz,
                                 rt::Priority priority)
    : ActiveSink(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

void ClockedSinkBase::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedSinkBase::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  if (next_ < now) next_ = now + period_;
  return fire;
}

}  // namespace infopipe
