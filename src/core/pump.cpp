#include "core/pump.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/config.hpp"
#include "core/realization.hpp"

namespace infopipe {

namespace {
rt::Time period_from_rate(double rate_hz) {
  if (!(rate_hz > 0.0)) {
    throw std::invalid_argument("pump rate must be positive");
  }
  return static_cast<rt::Time>(std::llround(1e9 / rate_hz));
}
}  // namespace

Item Driver::pull_prev() {
  if (!pull_link_) throw NotWired(name() + ": pull side not wired");
  return pull_link_();
}

void Driver::push_next(Item x) {
  if (!push_link_) throw NotWired(name() + ": push side not wired");
  push_link_(std::move(x));
}

std::size_t Driver::pull_prev_span(ItemSpan out) {
  if (!pull_span_link_) throw NotWired(name() + ": pull side has no span glue");
  return pull_span_link_(out);
}

void Driver::push_next_span(ItemSpan xs) {
  if (!push_span_link_) throw NotWired(name() + ": push side has no span glue");
  push_span_link_(xs);
}

std::size_t Driver::effective_batch(bool need_pull,
                                    bool need_push) const noexcept {
  if (max_batch_ <= 1 || !config().batching) return 1;
  if (need_pull && !pull_span_link_) return 1;
  if (need_push && !push_span_link_) return 1;
  return max_batch_;
}

ItemSpan Driver::batch_scratch() {
  if (batch_.size() < max_batch_) batch_.resize(max_batch_);
  return ItemSpan(batch_.data(), max_batch_);
}

void Driver::note_batch(std::size_t n) {
  if (Realization* r = realization()) {
    r->obs_hooks().batch_items->record(static_cast<std::int64_t>(n));
  }
}

void Pump::cycle() {
  const std::size_t mb = effective_batch(true, true);
  if (mb <= 1) {
    Item x = pull_prev();
    if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
    observe(x);
    ++items_pumped_;
    push_next(std::move(x));
    return;
  }
  // Batched fire: drain one burst upstream, apply the nil policy exactly as
  // the per-item path would (a skipped nil is never pushed), push the rest
  // downstream in one span. EndOfStream from the pull glue propagates to
  // run_driver untouched — an EOS can end a burst but never hide inside one.
  ItemSpan scratch = batch_scratch();
  const std::size_t n = pull_prev_span(scratch.first(mb));
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch[i].is_nil() && nil_policy() == NilPolicy::kSkipCycle) continue;
    observe(scratch[i]);
    if (kept != i) scratch[kept] = std::move(scratch[i]);
    ++kept;
  }
  if (kept == 0) return;
  items_pumped_ += kept;
  note_batch(kept);
  push_next_span(scratch.first(kept));
}

ClockedPump::ClockedPump(std::string name, double rate_hz,
                         rt::Priority priority)
    : Pump(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

ClockedPump::ClockedPump(const PumpSpec& spec)
    : Pump(spec),
      rate_hz_(spec.rate_hz),
      period_(period_from_rate(spec.rate_hz)) {}

void ClockedPump::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedPump::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  // If we have fallen behind (long stall), re-anchor instead of firing a
  // burst of catch-up cycles.
  if (next_ < now) next_ = now + period_;
  return fire;
}

FreeRunningPump::FreeRunningPump(std::string name, rt::Priority priority)
    : Pump(std::move(name), priority) {}

AdaptivePump::AdaptivePump(std::string name, double initial_rate_hz,
                           rt::Priority priority)
    : Pump(std::move(name), priority), rate_hz_(initial_rate_hz) {
  (void)period_from_rate(initial_rate_hz);  // validate
}

AdaptivePump::AdaptivePump(const PumpSpec& spec)
    : Pump(spec), rate_hz_(spec.rate_hz) {
  (void)period_from_rate(spec.rate_hz);  // validate
}

void AdaptivePump::set_rate(double rate_hz) {
  (void)period_from_rate(rate_hz);  // validate
  rate_hz_ = rate_hz;
}

void AdaptivePump::handle_event(const Event& e) {
  if (e.type == kEventQualityHint) {
    if (const double* r = e.get<double>()) set_rate(*r);
  }
}

void AdaptivePump::prepare(rt::Time now) {
  last_fire_ = now;
  first_ = true;
}

rt::Time AdaptivePump::next_fire(rt::Time now) {
  if (first_) {
    first_ = false;
    last_fire_ = now;
    return now;
  }
  // Rate may change between cycles; pace relative to the last fire so a new
  // rate takes effect immediately.
  const rt::Time fire = last_fire_ + period_from_rate(rate_hz_);
  last_fire_ = std::max(fire, now);
  return fire;
}

void ActiveSource::cycle() {
  Item x = generate();
  if (x.is_eos()) throw EndOfStream{};
  if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
  observe(x);
  ++items_pumped_;
  push_next(std::move(x));
}

ClockedSourceBase::ClockedSourceBase(std::string name, double rate_hz,
                                     rt::Priority priority)
    : ActiveSource(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

void ClockedSourceBase::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedSourceBase::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  if (next_ < now) next_ = now + period_;
  return fire;
}

void ActiveSink::cycle() {
  const std::size_t mb = effective_batch(true, false);
  if (mb <= 1) {
    Item x = pull_prev();
    if (x.is_nil() && nil_policy() == NilPolicy::kSkipCycle) return;
    observe(x);
    ++items_pumped_;
    consume(std::move(x));
    return;
  }
  ItemSpan scratch = batch_scratch();
  const std::size_t n = pull_prev_span(scratch.first(mb));
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch[i].is_nil() && nil_policy() == NilPolicy::kSkipCycle) continue;
    observe(scratch[i]);
    if (kept != i) scratch[kept] = std::move(scratch[i]);
    ++kept;
  }
  if (kept == 0) return;
  items_pumped_ += kept;
  note_batch(kept);
  consume_span(scratch.first(kept));
}

ClockedSinkBase::ClockedSinkBase(std::string name, double rate_hz,
                                 rt::Priority priority)
    : ActiveSink(std::move(name), priority),
      rate_hz_(rate_hz),
      period_(period_from_rate(rate_hz)) {}

void ClockedSinkBase::prepare(rt::Time now) { next_ = now; }

rt::Time ClockedSinkBase::next_fire(rt::Time now) {
  const rt::Time fire = next_;
  next_ += period_;
  if (next_ < now) next_ = now + period_;
  return fire;
}

}  // namespace infopipe
