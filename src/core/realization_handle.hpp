// RealizationHandle: the one control surface over every realized pipeline.
//
// A single-runtime Realization and a ShardedRealization expose the same
// conceptual operations — broadcast a control event, describe what the
// planner decided, snapshot runtime progress — but until this interface
// existed, session/feedback/example code had to branch on the concrete type
// (or be written twice). RealizationHandle is the abstract face: control()
// is THE lifecycle entry point (start/stop/shutdown are spellings of it),
// plan_info() is the planner's decision as data, stats_snapshot() and
// metrics_snapshot() are the progress counters. Anything that merely drives
// a realized pipeline takes a RealizationHandle&.
//
// Threading semantics follow the concrete type: ShardedRealization's
// post_event() is thread-safe (events enqueue onto every shard), while
// Realization's post_event() must run on its owning runtime's thread (use
// post_event_external from outside). control() inherits the same contract.
#pragma once

#include <string>

#include "core/event.hpp"
#include "core/introspect.hpp"
#include "obs/metrics.hpp"

namespace infopipe {

class RealizationHandle {
 public:
  virtual ~RealizationHandle() = default;

  /// THE lifecycle entry point: broadcasts one control event to every
  /// component, in pipeline order per thread. Everything that starts, stops
  /// or tears down a realized pipeline is a spelling of control(): the
  /// start()/stop()/shutdown() members forward here, and raw
  /// post_event(Event{...}) is the same call with the Event spelled out.
  virtual void control(const Event& e) = 0;
  /// Convenience spelling for payload-less lifecycle events
  /// (kEventStart/kEventStop/kEventShutdown/...).
  void control(int event_type) { control(Event{event_type}); }

  /// Broadcasts kEventStart: pumps begin moving data. = control(kEventStart)
  /// (ShardedRealization additionally barriers on every shard's dispatch).
  virtual void start() { control(Event{kEventStart}); }
  /// Broadcasts kEventStop: pumps finish the current item and pause.
  virtual void stop() { control(Event{kEventStop}); }
  /// Broadcasts kEventShutdown: all middleware threads terminate.
  virtual void shutdown() { control(Event{kEventShutdown}); }

  /// Broadcast to every component. Same behaviour as control(); kept as a
  /// named operation because application code posts data-carrying events
  /// (quality hints, sensor reports) through it.
  virtual void post_event(const Event& e) = 0;

  /// What the planner decided, as data: sections, drivers, the mode and
  /// activity style of every hosted component, and where coroutines were
  /// allocated. Immutable for the life of the realization.
  [[nodiscard]] virtual PlanInfo plan_info() const = 0;

  /// Runtime statistics as data: items pumped per driver, buffer and
  /// channel traffic, timestamped by the runtime clock.
  [[nodiscard]] virtual StatsSnapshot stats_snapshot() = 0;

  /// Every registry row the realization's runtime(s) publish.
  [[nodiscard]] virtual obs::MetricsSnapshot metrics_snapshot() = 0;

  /// Human-readable rendering of plan_info(); concrete types may extend it
  /// (ShardedRealization prepends the partition summary).
  [[nodiscard]] virtual std::string describe() const {
    return to_string(plan_info());
  }

  /// Human-readable rendering of stats_snapshot(). Companion to describe()
  /// for a running pipeline.
  [[nodiscard]] std::string stats_report() { return to_string(stats_snapshot()); }

 protected:
  RealizationHandle() = default;
  RealizationHandle(const RealizationHandle&) = default;
  RealizationHandle& operator=(const RealizationHandle&) = default;
};

}  // namespace infopipe
