// Process-wide platform configuration (ipcore).
//
// Every knob here gates a pure representation or mechanism change: the same
// pipeline must deliver the bit-identical item sequence with the knob on or
// off. The off positions are kept alive deliberately — lockstep tests run
// the same pipeline both ways and assert identical sink sequences, which is
// the strongest statement we can make that the optimization is transparent.
#pragma once

#include <cstdint>

namespace infopipe {

struct InfopipeConfig {
  /// Pooled payload blocks (mem::Pool) vs. per-item shared_ptr allocation.
  /// Initialized from the INFOPIPE_POOLING environment variable ("0", "off"
  /// or "false" disable it); tests may flip it directly between pipelines.
  /// Flipping mid-flow is safe — accessors understand both representations —
  /// but items already allocated keep the representation they started with.
  bool pooling = true;

  /// Span-based batched item movement (Driver::max_batch > 1 drains bursts
  /// per fire through put_span/take_span/try_push_span/try_pop_span).
  /// INFOPIPE_BATCH=off forces every pump down the one-item-per-cycle path
  /// regardless of its max_batch — the lockstep escape hatch.
  bool batching = true;

  /// Inline small-payload storage: trivially-copyable payloads no larger
  /// than Item::kInlineCapacity (two cache lines) live inside the Item
  /// itself — no refcount, no pool round trip, memcpy on copy. Disable with
  /// INFOPIPE_INLINE=off; items already created keep their representation.
  bool inline_payloads = true;

  /// Real-socket transports (net::SocketTransport) vs. the in-process
  /// SimLink. INFOPIPE_NET=sim (or off/0/false) is the kill switch: tools
  /// that would run multi-process over loopback TCP — examples/
  /// distributed_player foremost — fall back to a single-process SimLink
  /// run that delivers the byte-identical item stream.
  bool real_net = true;

  /// Schedule recording (replay::ScheduleRecorder, ARCHITECTURE §18):
  /// whether installing the replay tap sink is permitted at all. The taps
  /// themselves cost one relaxed atomic load + branch when no sink is
  /// installed; INFOPIPE_RECORD=off additionally makes
  /// ScheduleRecorder::install() a no-op, so a binary built with recording
  /// support runs with the hot path provably untouched.
  bool record = true;

  /// Shared-plan session stamping (session::SessionTable): thousands of
  /// flows ride a handful of per-shard engine realizations stamped from one
  /// immutable PlanInfo. INFOPIPE_SESSIONS=off is the kill switch: every
  /// open() falls back to a full per-use Pipeline realization on the
  /// session's home shard — the per-session item sequence (payload bytes,
  /// seq, kind) must stay bit-identical either way.
  bool sessions = true;

  /// Elastic shard topology (shard::ShardGroup::add_shard / retire_shard,
  /// ARCHITECTURE §19): whether the group may grow or shrink at runtime and
  /// whether the Rebalancer's scale triggers may fire. INFOPIPE_ELASTIC=off
  /// is the kill switch: add_shard/retire_shard refuse, the Rebalancer never
  /// scales, and the topology is pinned at construction — today's fixed
  /// behavior, with bit-identical per-flow digests.
  bool elastic = true;

  /// Base seed for every randomized test and bench in the tree
  /// (INFOPIPE_SEED, default 1). Suites that roll their own std::mt19937
  /// derive their per-case seeds from this one value, and scripts/check.sh
  /// prints it on failure — so a sanitizer churn failure reproduces with
  /// one env var instead of an archaeology session. Not a kill switch:
  /// changing it changes which schedules are explored, never correctness.
  std::uint64_t seed = 1;
};

/// The mutable singleton. First use reads the environment.
[[nodiscard]] InfopipeConfig& config() noexcept;

}  // namespace infopipe
