// Process-wide platform configuration (ipcore).
//
// One knob today: whether the item path uses the pooled block allocator
// (src/mem/) or the legacy shared_ptr<const any> representation. The legacy
// path is kept alive deliberately — lockstep tests run the same pipeline
// both ways and assert bit-identical item sequences, which is the strongest
// statement we can make that pooling is a pure representation change.
#pragma once

namespace infopipe {

struct InfopipeConfig {
  /// Pooled payload blocks (mem::Pool) vs. per-item shared_ptr allocation.
  /// Initialized from the INFOPIPE_POOLING environment variable ("0", "off"
  /// or "false" disable it); tests may flip it directly between pipelines.
  /// Flipping mid-flow is safe — accessors understand both representations —
  /// but items already allocated keep the representation they started with.
  bool pooling = true;
};

/// The mutable singleton. First use reads the environment.
[[nodiscard]] InfopipeConfig& config() noexcept;

}  // namespace infopipe
