#include "core/typespec.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace infopipe {

std::optional<Range> Range::intersect(const Range& o) const {
  Range r{std::max(lo, o.lo), std::min(hi, o.hi)};
  if (!r.valid()) return std::nullopt;
  return r;
}

namespace {

/// Per-key reconciliation. Returns nullopt on conflict.
std::optional<PropValue> intersect_values(const PropValue& a,
                                          const PropValue& b) {
  // Mixed alternative types never reconcile — a component asking for a Range
  // where another states a scalar is a spec-authoring error surfaced as an
  // incompatibility. One deliberate exception: a Range and a double
  // reconcile when the range contains the scalar (common for QoS: source
  // states 30 fps, sink supports [10,60] fps).
  if (a.index() == b.index()) {
    if (const Range* ra = std::get_if<Range>(&a)) {
      auto r = ra->intersect(std::get<Range>(b));
      if (!r) return std::nullopt;
      return PropValue{*r};
    }
    if (const StringSet* sa = std::get_if<StringSet>(&a)) {
      const StringSet& sb = std::get<StringSet>(b);
      StringSet common;
      std::set_intersection(sa->begin(), sa->end(), sb.begin(), sb.end(),
                            std::inserter(common, common.begin()));
      if (common.empty()) return std::nullopt;
      return PropValue{common};
    }
    if (a == b) return a;
    return std::nullopt;
  }
  const Range* r = std::get_if<Range>(&a);
  const double* d = std::get_if<double>(&b);
  if (r == nullptr) {
    r = std::get_if<Range>(&b);
    d = std::get_if<double>(&a);
  }
  if (r != nullptr && d != nullptr && r->contains(*d)) {
    return PropValue{*d};
  }
  return std::nullopt;
}

/// Is `a` at least as constrained as `b` for one key?
bool value_subset(const PropValue& a, const PropValue& b) {
  if (a.index() == b.index()) {
    if (const Range* ra = std::get_if<Range>(&a)) {
      const Range& rb = std::get<Range>(b);
      return rb.lo <= ra->lo && ra->hi <= rb.hi;
    }
    if (const StringSet* sa = std::get_if<StringSet>(&a)) {
      const StringSet& sb = std::get<StringSet>(b);
      return std::includes(sb.begin(), sb.end(), sa->begin(), sa->end());
    }
    return a == b;
  }
  const double* d = std::get_if<double>(&a);
  const Range* rb = std::get_if<Range>(&b);
  return d != nullptr && rb != nullptr && rb->contains(*d);
}

}  // namespace

std::optional<Typespec> Typespec::intersect(const Typespec& other) const {
  Typespec out = *this;
  for (const auto& [key, bval] : other.props_) {
    auto it = out.props_.find(key);
    if (it == out.props_.end()) {
      out.props_.emplace(key, bval);  // unconstrained here: adopt theirs
      continue;
    }
    auto merged = intersect_values(it->second, bval);
    if (!merged) return std::nullopt;
    it->second = std::move(*merged);
  }
  return out;
}

bool Typespec::subset_of(const Typespec& other) const {
  // Every constraint in `other` must be satisfied by this spec. A key absent
  // from `other` is "don't care"; a key absent *here* but present in `other`
  // means we are less constrained than required, so not a subset.
  for (const auto& [key, bval] : other.props_) {
    auto it = props_.find(key);
    if (it == props_.end()) return false;
    if (!value_subset(it->second, bval)) return false;
  }
  return true;
}

Typespec Typespec::overlay(const Typespec& other) const {
  Typespec out = *this;
  for (const auto& [key, val] : other.props_) out.props_[key] = val;
  return out;
}

std::string to_string(const PropValue& v) {
  std::ostringstream os;
  std::visit(
      [&](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          os << (x ? "true" : "false");
        } else if constexpr (std::is_same_v<T, Range>) {
          os << '[' << x.lo << ", " << x.hi << ']';
        } else if constexpr (std::is_same_v<T, StringSet>) {
          os << '{';
          bool first = true;
          for (const auto& s : x) {
            if (!first) os << ", ";
            os << s;
            first = false;
          }
          os << '}';
        } else {
          os << x;
        }
      },
      v);
  return os.str();
}

std::string Typespec::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [key, val] : props_) {
    if (!first) os << "; ";
    os << key << '=' << infopipe::to_string(val);
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace infopipe
