// Tees: components with more than two ports (§2.1, end of §3.3).
//
// Splitting covers copying items to every output (multicast) and selecting
// an output per item (routing); merging covers arrival-order pass-through
// and combining one item from each input. The paper's rule: a non-buffering
// component may generally have only one passive port — a data-dependent
// routing switch pulled from its outputs would need unbounded implicit
// buffering. The exception is the activity-routed switch, whose out-ports
// are both passive and whose in-port is active ("a pull on either out-port
// triggers an upstream pull and returns the item to the caller. This
// component could not work in push-style").
#pragma once

#include <cstdint>
#include <vector>

#include "core/component.hpp"

namespace infopipe {

/// Base for multi-port components.
class Tee : public Component {
 public:
  [[nodiscard]] Style style() const final { return Style::kTee; }
  [[nodiscard]] int in_port_count() const override { return ins_; }
  [[nodiscard]] int out_port_count() const override { return outs_; }

 protected:
  Tee(std::string name, int ins, int outs)
      : Component(std::move(name)), ins_(ins), outs_(outs) {}

 private:
  int ins_;
  int outs_;
};

/// Copies every incoming item to all outputs. Push-driven: one passive
/// in-port, positive out-ports. Payloads are shared between the copies, so
/// multicast is cheap even for video frames.
class MulticastTee : public Tee {
 public:
  MulticastTee(std::string name, int outs) : Tee(std::move(name), 1, outs) {}

  [[nodiscard]] Polarity in_polarity(int) const override {
    return Polarity::kNegative;
  }
  [[nodiscard]] Polarity out_polarity(int) const override {
    return Polarity::kPositive;
  }
};

/// Routes each incoming item to the output chosen by select(). Push-driven
/// (the paper explains why the pull-style version is unsound).
class RoutingSwitch : public Tee {
 public:
  RoutingSwitch(std::string name, int outs) : Tee(std::move(name), 1, outs) {}

  [[nodiscard]] Polarity in_polarity(int) const override {
    return Polarity::kNegative;
  }
  [[nodiscard]] Polarity out_polarity(int) const override {
    return Polarity::kPositive;
  }

  /// Output port index for this item (0-based). Out-of-range drops the item.
  [[nodiscard]] virtual int select(const Item& x) = 0;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  friend class Wiring;
  std::uint64_t dropped_ = 0;
};

/// Passes items from any input to the single output in arrival order.
/// Push-driven from each input; the middleware serializes the shared
/// downstream chain so only one thread is active in it at a time (§3.2).
/// End-of-stream is forwarded once ALL inputs have ended.
class MergeTee : public Tee {
 public:
  MergeTee(std::string name, int ins) : Tee(std::move(name), ins, 1) {}

  [[nodiscard]] Polarity in_polarity(int) const override {
    return Polarity::kNegative;
  }
  [[nodiscard]] Polarity out_polarity(int) const override {
    return Polarity::kPositive;
  }

 private:
  friend class Wiring;
  friend class Realization;
  int eos_seen_ = 0;  // reset each realization
};

/// Pull-driven merge: one pull on the output pulls one item from EVERY input
/// and combines them (e.g. audio mixing). Ends when any input ends.
class CombineTee : public Tee {
 public:
  CombineTee(std::string name, int ins) : Tee(std::move(name), ins, 1) {}

  [[nodiscard]] Polarity in_polarity(int) const override {
    return Polarity::kPositive;
  }
  [[nodiscard]] Polarity out_polarity(int) const override {
    return Polarity::kNegative;
  }

  /// Combine one item from each input (index = in-port).
  [[nodiscard]] virtual Item combine(std::vector<Item> xs) = 0;

 private:
  friend class Wiring;
};

/// The paper's exception: an activity-routed switch. Both out-ports are
/// passive; a pull on either triggers one upstream pull and hands the item
/// to whichever caller asked. Cannot work push-style (and the planner
/// rejects the attempt).
class BalancingSwitch : public Tee {
 public:
  BalancingSwitch(std::string name, int outs)
      : Tee(std::move(name), 1, outs) {}

  [[nodiscard]] Polarity in_polarity(int) const override {
    return Polarity::kPositive;
  }
  [[nodiscard]] Polarity out_polarity(int) const override {
    return Polarity::kNegative;
  }
};

}  // namespace infopipe
