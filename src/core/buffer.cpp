#include "core/buffer.hpp"

#include <algorithm>

#include "core/realization.hpp"

namespace infopipe {

namespace {
void erase_tid(std::vector<rt::ThreadId>& v, rt::ThreadId tid) {
  v.erase(std::remove(v.begin(), v.end(), tid), v.end());
}
}  // namespace

Buffer::Buffer(std::string name, std::size_t capacity, FullPolicy full,
               EmptyPolicy empty)
    : Component(std::move(name)),
      capacity_(capacity == 0 ? 1 : capacity),
      full_(full),
      empty_(empty) {}

obs::Histogram* Buffer::block_hist(HostContext& host) {
  rt::Runtime& rtm = host.runtime();
  if (obs_owner_ != &rtm) {
    obs_owner_ = &rtm;
    obs_block_ns_ = &rtm.metrics().histogram("core.buffer_block_ns");
  }
  return obs_block_ns_;
}

void Buffer::notify_one(std::vector<rt::ThreadId>& waiters,
                        HostContext& host) {
  if (waiters.empty()) return;
  const rt::ThreadId tid = waiters.front();
  waiters.erase(waiters.begin());
  rt::Message m{detail::kMsgBufNotify, rt::MsgClass::kData};
  m.payload = static_cast<Buffer*>(this);
  host.runtime().send(tid, std::move(m));
}

void Buffer::put(Item x, HostContext& host) {
  if (x.is_eos()) {
    // EOS is a sticky flag, not a queue entry: queued items drain first and
    // every subsequent take observes end-of-stream.
    eos_ = true;
    notify_one(waiting_readers_, host);
    return;
  }
  while (q_.size() >= capacity_) {
    if (full_ == FullPolicy::kDropNewest) {
      ++stats_.drops;
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(), 0,
                   static_cast<std::int64_t>(q_.size()));
      return;
    }
    if (full_ == FullPolicy::kDropOldest) {
      q_.pop_front();
      ++stats_.drops;
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(), 1,
                   static_cast<std::int64_t>(q_.size()));
      continue;
    }
    // FullPolicy::kBlock
    if (host.flow_stopped()) {
      // The section was stopped while this thread was blocked in the push.
      // The item is already in flight — dropping it would lose data across
      // a stop/restart — so accept it with a transient one-slot overflow;
      // the drain recovers on restart.
      break;
    }
    ++stats_.put_blocks;
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 0, static_cast<std::int64_t>(q_.size()));
    const rt::Time t0 = host.runtime().now();
    waiting_writers_.push_back(host.tid());
    Buffer* self = this;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* b = m.get<Buffer*>();
      return m.type == detail::kMsgBufNotify && b != nullptr && *b == self;
    });
    // A control event may have woken us instead of a notification (e.g.
    // STOP or FLUSH); deregister and re-evaluate the condition.
    erase_tid(waiting_writers_, host.tid());
    block_hist(host)->record(host.runtime().now() - t0);
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 0, static_cast<std::int64_t>(q_.size()));
  }
  q_.push_back(std::move(x));
  ++stats_.puts;
  stats_.max_fill = std::max(stats_.max_fill, q_.size());
  notify_one(waiting_readers_, host);
}

Item Buffer::take(HostContext& host) {
  for (;;) {
    if (!q_.empty()) {
      Item x = std::move(q_.front());
      q_.pop_front();
      ++stats_.takes;
      notify_one(waiting_writers_, host);
      return x;
    }
    if (eos_) return Item::eos();
    if (empty_ == EmptyPolicy::kNil) {
      ++stats_.nil_returns;
      return Item::nil();
    }
    if (host.flow_stopped()) throw detail::StopFlow{};
    ++stats_.take_blocks;
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 1, 0);
    const rt::Time t0 = host.runtime().now();
    waiting_readers_.push_back(host.tid());
    Buffer* self = this;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* b = m.get<Buffer*>();
      return m.type == detail::kMsgBufNotify && b != nullptr && *b == self;
    });
    erase_tid(waiting_readers_, host.tid());
    block_hist(host)->record(host.runtime().now() - t0);
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 1, static_cast<std::int64_t>(q_.size()));
  }
}

void Buffer::put_span(ItemSpan xs, HostContext& host) {
  std::size_t i = 0;
  const std::size_t n = xs.size();
  std::size_t queued = 0;
  bool saw_eos = false;
  while (i < n) {
    if (xs[i].is_eos()) {
      // Defensive: pumps end bursts before EOS, but a hand-built span may
      // carry one. Sticky flag, never a queue entry — and nothing follows
      // an EOS in a well-formed flow.
      eos_ = true;
      saw_eos = true;
      break;
    }
    if (q_.size() >= capacity_) {
      if (full_ == FullPolicy::kDropNewest) {
        // One decision for the whole remainder of the burst.
        stats_.drops += n - i;
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(),
                     0, static_cast<std::int64_t>(q_.size()));
        break;
      }
      if (full_ == FullPolicy::kDropOldest) {
        // Keep the newest `capacity_` items of (queue ++ remainder): evict
        // from the queue front first, then drop the span's own prefix when
        // the remainder alone exceeds capacity.
        const std::size_t remainder = n - i;
        std::size_t excess = q_.size() + remainder - capacity_;
        while (excess > 0 && !q_.empty()) {
          q_.pop_front();
          ++stats_.drops;
          --excess;
        }
        if (excess > 0) {  // remainder > capacity_: skip the span prefix
          stats_.drops += excess;
          i += excess;
        }
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(),
                     1, static_cast<std::int64_t>(q_.size()));
        continue;
      }
      // FullPolicy::kBlock
      if (host.flow_stopped()) {
        // Same escape as put(): the burst is already in flight, so accept
        // it past capacity rather than lose items across a stop/restart.
        q_.push_back(std::move(xs[i]));
        ++queued;
        ++i;
        continue;
      }
      ++stats_.put_blocks;
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                   name().c_str(), 0, static_cast<std::int64_t>(q_.size()));
      const rt::Time t0 = host.runtime().now();
      waiting_writers_.push_back(host.tid());
      Buffer* self = this;
      (void)host.wait_interruptible([self](const rt::Message& m) {
        const auto* b = m.get<Buffer*>();
        return m.type == detail::kMsgBufNotify && b != nullptr && *b == self;
      });
      erase_tid(waiting_writers_, host.tid());
      block_hist(host)->record(host.runtime().now() - t0);
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                   name().c_str(), 0, static_cast<std::int64_t>(q_.size()));
      continue;
    }
    q_.push_back(std::move(xs[i]));
    ++queued;
    ++i;
  }
  if (queued > 0 || saw_eos) {
    stats_.puts += queued;
    stats_.max_fill = std::max(stats_.max_fill, q_.size());
    notify_one(waiting_readers_, host);
  }
}

std::size_t Buffer::take_span(ItemSpan out, HostContext& host) {
  for (;;) {
    if (!q_.empty()) {
      const std::size_t n = std::min(out.size(), q_.size());
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::move(q_.front());
        q_.pop_front();
      }
      stats_.takes += n;
      notify_one(waiting_writers_, host);
      return n;
    }
    if (eos_) {
      out[0] = Item::eos();
      return 1;
    }
    if (empty_ == EmptyPolicy::kNil) {
      ++stats_.nil_returns;
      out[0] = Item::nil();
      return 1;
    }
    if (host.flow_stopped()) throw detail::StopFlow{};
    ++stats_.take_blocks;
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 1, 0);
    const rt::Time t0 = host.runtime().now();
    waiting_readers_.push_back(host.tid());
    Buffer* self = this;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* b = m.get<Buffer*>();
      return m.type == detail::kMsgBufNotify && b != nullptr && *b == self;
    });
    erase_tid(waiting_readers_, host.tid());
    block_hist(host)->record(host.runtime().now() - t0);
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 1, static_cast<std::int64_t>(q_.size()));
  }
}

std::deque<Item> Buffer::drain_for_migration() {
  std::deque<Item> out = std::move(q_);
  q_.clear();
  stats_.takes += out.size();
  return out;
}

void Buffer::preload(Item x) {
  q_.push_back(std::move(x));
  ++stats_.puts;
  stats_.max_fill = std::max(stats_.max_fill, q_.size());
}

void Buffer::handle_event(const Event& e) {
  if (e.type == kEventFlush) {
    stats_.drops += q_.size();
    q_.clear();
    // Space became available: wake one blocked writer, if any.
    if (!waiting_writers_.empty() && realization() != nullptr) {
      const rt::ThreadId tid = waiting_writers_.front();
      waiting_writers_.erase(waiting_writers_.begin());
      rt::Message m{detail::kMsgBufNotify, rt::MsgClass::kData};
      m.payload = static_cast<Buffer*>(this);
      realization()->runtime().send(tid, std::move(m));
    }
  }
}

}  // namespace infopipe
