// Realization: turning a planned pipeline into running threads (§4).
//
// The Infopipe platform creates one thread per pump (driver). If a section
// needs no coroutines, the pump's thread calls the pull functions of all
// components upstream, then push with the returned item downstream, and
// returns to the pump. Where the plan requires coroutines, each one is
// implemented by an additional thread of the underlying package, and their
// synchronous interaction ("the activity travels with the data") is built on
// asynchronous messages: a thread blocked in a push or pull is actually
// blocked waiting for either the data reply message OR a control message —
// control events are dispatched even while a component is logically blocked
// (§3.2/§4). Threads that host several directly-called components dispatch
// data and control internally to the respective components.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/buffer.hpp"
#include "core/component.hpp"
#include "core/event.hpp"
#include "core/introspect.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/pump.hpp"
#include "core/realization_handle.hpp"
#include "obs/metrics.hpp"
#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe {

namespace detail {

/// rt message types used by the middleware glue (values allotted in
/// rt/msg_registry.hpp, the one place new subsystems claim ranges).
enum CoreMsgType : int {
  kMsgControl = rt::msg::kCoreControl,      ///< control event dispatch
  kMsgCoPull = rt::msg::kCoreCoPull,        ///< request item from a coroutine
  kMsgCoItem = rt::msg::kCoreCoItem,        ///< item hand-off (either way)
  kMsgCoDone = rt::msg::kCoreCoDone,        ///< coroutine ready for next input
  kMsgBufNotify = rt::msg::kCoreBufNotify,  ///< buffer space/data available
  kMsgTick = rt::msg::kCoreTick,            ///< pump timer tick
  kMsgLockGrant = rt::msg::kCoreLockGrant,  ///< section lock transferred
};

struct ControlDispatch {
  Component* target = nullptr;  ///< nullptr: every component on the thread
  Event event;
};

/// Thrown out of waits when the realization is shutting down; unwinds the
/// component frames on the thread's stack, then the thread terminates.
struct ShutdownSignal {};

/// Thrown out of buffer waits when the section's driver stopped while the
/// thread was blocked; the driver loop treats it as a clean stop.
struct StopFlow {};

/// Per-coroutine state: the component's main function and the bookkeeping of
/// its synchronous hand-off channel (§4: "Infopipe push and pull calls
/// between coroutines ... are mapped to asynchronous inter-thread
/// messages").
struct CoroutineRec {
  Component* comp = nullptr;
  rt::ThreadId tid = rt::kNoThread;
  std::function<void()> main;
  std::optional<rt::Message> initial;  ///< the message that started main
  rt::ThreadId last_requester = rt::kNoThread;
  int pending_pulls = 0;   ///< outstanding kMsgCoPull (pull direction)
  bool owes_done = false;  ///< must send kMsgCoDone (push direction)
  bool finished = false;   ///< saw end-of-stream
};

}  // namespace detail

class Realization;

/// Per-thread execution context created by the realization: knows which
/// components the thread hosts (for control dispatch) and provides the
/// control-responsive wait primitive that all blocking operations
/// (coroutine hand-offs, buffer waits, pump timing) are built on.
class HostContext {
 public:
  using MsgPred = std::function<bool(const rt::Message&)>;

  [[nodiscard]] rt::Runtime& runtime() noexcept;
  [[nodiscard]] rt::ThreadId tid() const noexcept { return tid_; }
  [[nodiscard]] Realization& realization() noexcept { return *real_; }

  /// Blocks until a message matching `pred` arrives. Control events arriving
  /// meanwhile are dispatched to the hosted components (this is how a
  /// component "blocked in a push or pull" still handles control, §3.2).
  /// Throws detail::ShutdownSignal when a shutdown event is dispatched.
  rt::Message wait(const MsgPred& pred);

  /// Like wait(), but also returns (with nullopt) after dispatching any
  /// control event, so the caller can re-check state that the event may have
  /// changed (buffers use this to notice STOP/FLUSH).
  std::optional<rt::Message> wait_interruptible(const MsgPred& pred);

  /// Dispatches all queued control events without blocking.
  void poll_control();

  /// True once kEventShutdown has been dispatched on this thread.
  [[nodiscard]] bool terminate_requested() const noexcept {
    return terminate_;
  }

  /// The driver whose section this thread belongs to (the driver itself for
  /// driver threads, the section's driver for coroutine threads).
  [[nodiscard]] Driver* section_driver() const noexcept { return driver_; }

  /// True when this thread's flow has been stopped (driver not running).
  [[nodiscard]] bool flow_stopped() const noexcept {
    return driver_ != nullptr && !driver_->running_;
  }

  [[nodiscard]] const std::vector<Component*>& hosted() const noexcept {
    return hosted_;
  }

 private:
  friend class Realization;
  friend class Wiring;

  HostContext(Realization& r, rt::ThreadId tid) : real_(&r), tid_(tid) {}

  /// Handles one control message: runs middleware lifecycle side effects
  /// (START/STOP/SHUTDOWN flags) and the targeted components' handlers.
  void dispatch(rt::Message&& m);

  Realization* real_;
  rt::ThreadId tid_;
  std::vector<Component*> hosted_;
  Driver* driver_ = nullptr;
  bool terminate_ = false;
  std::uint64_t tick_gen_ = 0;
};

/// Serializes a shared region (downstream of a MergeTee / upstream of a
/// BalancingSwitch) so only one thread is active in it at a time, while the
/// owner may re-enter (a control handler may run in a component whose data
/// processing is blocked in a push/pull on this very thread — §3.2 allows
/// exactly that).
class SectionLock {
 public:
  void acquire(HostContext& h);
  void release(HostContext& h);
  [[nodiscard]] rt::ThreadId owner() const noexcept { return owner_; }

 private:
  rt::ThreadId owner_ = rt::kNoThread;
  int depth_ = 0;
  std::vector<rt::ThreadId> waiters_;
};

/// A realized pipeline: plans, spawns the threads, generates the glue, and
/// routes control events. Owns nothing of the components themselves — they
/// stay owned by the application and can be realized again after this
/// Realization is destroyed.
class Realization : public RealizationHandle {
 public:
  Realization(rt::Runtime& rt, const Pipeline& p);
  /// Same, but shares ownership of the pipeline: the realization keeps it
  /// alive, so `Realization real(rtm, (a >> b >> c).share());` is safe even
  /// when the Chain temporary is gone. (The reference-taking overload
  /// requires the caller to keep the Pipeline alive — the classic footgun
  /// with `chain.pipeline()` on a discarded Chain.)
  Realization(rt::Runtime& rt, std::shared_ptr<const Pipeline> p);
  ~Realization() override;

  Realization(const Realization&) = delete;
  Realization& operator=(const Realization&) = delete;

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] rt::Runtime& runtime() noexcept { return *rt_; }

  // -- lifecycle (all of these just post events; drive with rt.run()) --------

  /// THE lifecycle entry point: broadcasts one control event to every
  /// component, in pipeline order per thread. Everything that starts,
  /// stops or tears down a realized pipeline is a spelling of control():
  /// the start()/stop()/shutdown() members (inherited from
  /// RealizationHandle) forward here, and raw post_event(Event{...}) is the
  /// same call with the Event spelled out. There is exactly one behaviour
  /// behind all of them.
  void control(const Event& e) override { post_event(e); }
  using RealizationHandle::control;  // the control(int) spelling

  // -- control events (§2.2) ---------------------------------------------------

  /// Broadcast to every component, in pipeline order per thread.
  void post_event(const Event& e) override;
  /// Thread-safe broadcast from OUTSIDE this realization's runtime thread
  /// (built on rt::Runtime::post_external): the event enqueues onto the
  /// owning runtime and is delivered at its dispatch points, so the
  /// deliver-while-blocked semantics (§3.2) are preserved across kernel
  /// threads. The event listener is NOT invoked (it would run on the
  /// foreign caller's thread). This is how a ShardGroup forwards control
  /// events between shards.
  void post_event_external(const Event& e);
  /// Local delivery to one component.
  void post_event_to(Component& c, const Event& e);
  /// Thread-safe targeted delivery from OUTSIDE this realization's runtime
  /// thread: the component→host map is immutable after construction and the
  /// message goes through rt::Runtime::post_external, so a feedback loop on
  /// another shard can steer a component here purely via control events.
  void post_event_to_external(Component& c, const Event& e);
  /// Delayed delivery (used by netpipes to impose network latency on
  /// control events crossing to a remote component, §2.4).
  void post_event_to_after(Component& c, const Event& e, rt::Time delay);
  /// Observer for broadcast events (runs on the caller of post_event).
  void set_event_listener(std::function<void(const Event&)> fn) {
    listener_ = std::move(fn);
  }

  // -- introspection -------------------------------------------------------------

  /// The hosted component with this name, or nullptr. Names are the
  /// application's own; the first match wins when names collide. This is the
  /// lookup behind the feedback toolkit's named sensor/actuator endpoints.
  [[nodiscard]] Component* find_component(std::string_view name) const;

  [[nodiscard]] rt::ThreadId host_thread(const Component& c) const;
  /// Whether this realization hosts the component (a sharded flow has one
  /// realization per shard; the balancer uses this to find which one a
  /// component lives on after migrations).
  [[nodiscard]] bool hosts(const Component& c) const noexcept {
    return host_of_comp_.count(&c) != 0;
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return all_threads_.size();
  }
  /// Drivers currently pumping (running flag set).
  [[nodiscard]] int running_drivers() const;
  /// True once every driver has stopped (STOP or end-of-stream).
  [[nodiscard]] bool finished() const { return running_drivers() == 0; }

  /// What the planner decided, as data: sections, drivers, the mode and
  /// activity style of every hosted component, and where coroutines were
  /// allocated. Tests and tools consume this directly.
  [[nodiscard]] PlanInfo plan_info() const override;

  /// Runtime statistics as data: items pumped per driver, buffer
  /// fill/drops/blocks, timestamped by the runtime clock. Built from pure
  /// reads of counters the middleware only mutates between dispatch points,
  /// so calling it from an event listener while the flow is blocked yields
  /// a consistent picture (fill == puts - takes holds for every buffer).
  [[nodiscard]] StatsSnapshot stats_snapshot() override;

  /// The owning runtime's registry rows (core.*, rt.*, pipe.*; the
  /// realization's collector folds stats_snapshot() in as pipe.* rows).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() override {
    return rt_->metrics().snapshot();
  }

  /// HostContext of the calling user-level thread. Middleware-internal.
  [[nodiscard]] HostContext& current_host();

  /// Hot-path metric handles, resolved once against the runtime's registry
  /// at construction. Middleware-internal (the glue increments these).
  struct ObsHooks {
    obs::Counter* handoffs = nullptr;          ///< core.handoffs
    obs::Histogram* handoff_ns = nullptr;      ///< core.handoff_ns
    obs::Counter* control_dispatched = nullptr;    ///< core.control_dispatched
    obs::Counter* control_while_blocked = nullptr; ///< core.control_while_blocked
    obs::Counter* driver_cycles = nullptr;     ///< core.driver_cycles
    obs::Histogram* batch_items = nullptr;     ///< core.batch_items (span bursts)
  };
  [[nodiscard]] ObsHooks& obs_hooks() noexcept { return obs_; }

 private:
  friend class HostContext;
  friend class Wiring;

  /// Shared downstream/upstream region behind a merge/balancing tee.
  struct SharedTail {
    SectionLock lock;
    PushFn push;  ///< set for merge tails
    PullFn pull;  ///< set for balancing heads
  };

  HostContext& new_host(rt::ThreadId tid);
  void run_driver(HostContext& h, Driver& d);
  rt::CodeResult driver_code(HostContext& h, Driver& d, rt::Message m);
  rt::CodeResult coroutine_code(HostContext& h, detail::CoroutineRec& rec,
                                rt::Message m);
  void unbind_components();

  rt::Runtime* rt_;
  const Pipeline* pipe_;
  std::shared_ptr<const Pipeline> pipe_owner_;  ///< set by the sharing ctor
  Plan plan_;
  ObsHooks obs_;
  obs::MetricsRegistry::CollectorId obs_collector_ = 0;
  std::vector<std::unique_ptr<HostContext>> hosts_;
  std::map<rt::ThreadId, HostContext*> host_by_tid_;
  std::map<const Component*, rt::ThreadId> host_of_comp_;
  std::vector<rt::ThreadId> all_threads_;
  std::vector<std::unique_ptr<detail::CoroutineRec>> coroutines_;
  std::vector<std::unique_ptr<SharedTail>> tails_;
  std::function<void(const Event&)> listener_;
};

}  // namespace infopipe
