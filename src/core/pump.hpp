// Pumps and other drivers (§2.2, §3.1).
//
// "There are pumps to keep the information flowing, pulling items from
// upstream and pushing them downstream." Every activity in a pipeline
// originates from a driver: a pump, an active source, or an active sink.
// Each driver gets one thread that operates the pipeline as far as the next
// passive component up- and downstream; the driver encapsulates all
// interaction with the underlying scheduler (priorities, deadlines,
// reservations) so that the application programmer chooses timing and
// scheduling policies simply by choosing pumps and parameters.
//
// The paper identifies at least two classes: clock-driven pumps operating at
// a constant rate, and pumps that adjust their speed to the state of other
// pipeline components (relying on buffer blocking, or driven by feedback).
// All of those are provided here; new policies are added by deriving a new
// pump — the pump developer deals with scheduling so application programmers
// never do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/component.hpp"
#include "rt/types.hpp"

namespace infopipe {

/// Base for all components that own a thread and drive a pipeline section.
class Driver : public Component {
 public:
  /// Scheduling priority for this driver's thread; messages it sends carry a
  /// constraint with this priority, so the whole coroutine set follows (§4).
  [[nodiscard]] rt::Priority priority() const noexcept { return priority_; }
  void set_priority(rt::Priority p) noexcept { priority_ = p; }

  /// Items moved through this driver so far.
  [[nodiscard]] std::uint64_t items_pumped() const noexcept {
    return items_pumped_;
  }

  /// Estimated (or worst-case) execution time of one cycle, used to make a
  /// CPU reservation at start (§3.1). Zero = no reservation requested.
  void set_cost_estimate(rt::Time per_cycle) noexcept {
    cost_estimate_ = per_cycle;
  }
  [[nodiscard]] rt::Time cost_estimate() const noexcept {
    return cost_estimate_;
  }

  /// Nominal cycle period for reservation purposes; nullopt for drivers
  /// without an intrinsic rate (free-running pumps pace off buffers).
  [[nodiscard]] virtual std::optional<rt::Time> nominal_period() const {
    return std::nullopt;
  }

  /// Cycles that started after their scheduled fire time (the pipeline was
  /// busier than the rate allows). The observability behind §3.1's
  /// "readjust thread scheduling parameters as the pipeline runs".
  [[nodiscard]] std::uint64_t deadline_misses() const noexcept {
    return deadline_misses_;
  }

  /// What to do when a pull yields a nil item (empty buffer, nil policy).
  enum class NilPolicy { kSkipCycle, kForward };
  void set_nil_policy(NilPolicy p) noexcept { nil_policy_ = p; }
  [[nodiscard]] NilPolicy nil_policy() const noexcept { return nil_policy_; }

 protected:
  Driver(std::string name, rt::Priority priority)
      : Component(std::move(name)), priority_(priority) {}

  // -- the driver protocol, executed on the driver's thread -------------------

  /// Called when pumping starts; reset rate state.
  virtual void prepare(rt::Time now) { (void)now; }

  /// Absolute time of the next cycle; return `now` (or anything <= now) to
  /// fire immediately. While waiting, the thread stays responsive to control
  /// events.
  [[nodiscard]] virtual rt::Time next_fire(rt::Time now) = 0;

  /// Move one item. Implemented by the driver kind (pump / source / sink);
  /// throws EndOfStream to end the flow.
  virtual void cycle() = 0;

  /// Observation hook: every item that passes through. Feedback pumps use
  /// this to measure.
  virtual void observe(const Item& x) { (void)x; }

  [[nodiscard]] Item pull_prev();
  void push_next(Item x);
  [[nodiscard]] bool has_push_link() const noexcept {
    return static_cast<bool>(push_link_);
  }

  std::uint64_t items_pumped_ = 0;
  std::uint64_t deadline_misses_ = 0;

 private:
  friend class Wiring;
  friend class Realization;

  rt::Priority priority_;
  NilPolicy nil_policy_ = NilPolicy::kSkipCycle;
  rt::Time cost_estimate_ = 0;
  PullFn pull_link_;
  PushFn push_link_;
};

// ---- Pumps (two active ends) ----------------------------------------------------

/// A pump pulls from upstream and pushes downstream, once per cycle.
class Pump : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kPump; }

 protected:
  using Driver::Driver;
  void cycle() override;
};

/// Clock-driven pump: fires at a constant rate, drift-free (the k-th cycle
/// is scheduled at start + k/rate, not at last + 1/rate).
class ClockedPump : public Pump {
 public:
  ClockedPump(std::string name, double rate_hz,
              rt::Priority priority = rt::kPriorityTimer);

  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }
  [[nodiscard]] std::optional<rt::Time> nominal_period() const override {
    return period_;
  }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

/// Free-running pump: "does not limit its rate at all and relies on buffers
/// to block the thread when a buffer is full or empty" (§3.1).
class FreeRunningPump : public Pump {
 public:
  explicit FreeRunningPump(std::string name,
                           rt::Priority priority = rt::kPriorityData);

 protected:
  [[nodiscard]] rt::Time next_fire(rt::Time now) override { return now; }
};

/// Pump whose rate is adjusted while the pipeline runs — the building block
/// for feedback control (buffer fill levels, producer/consumer clock drift,
/// §3.1). set_rate() may be called from control-event handlers or from a
/// feedback controller.
class AdaptivePump : public Pump {
 public:
  AdaptivePump(std::string name, double initial_rate_hz,
               rt::Priority priority = rt::kPriorityTimer);

  void set_rate(double rate_hz);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

  /// Adaptive pumps also react to kEventQualityHint events whose payload is
  /// a double rate in Hz.
  void handle_event(const Event& e) override;

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time last_fire_ = 0;
  bool first_ = true;
};

// ---- Active endpoints (one active end) ---------------------------------------------

/// A source with its own activity: generates items and pushes them
/// downstream (e.g. a network receiver or a camera).
class ActiveSource : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kActiveSource; }

 protected:
  using Driver::Driver;
  /// Produce the next item; return Item::eos() to end the stream.
  [[nodiscard]] virtual Item generate() = 0;
  void cycle() override;
};

/// A clock-driven active source.
class ClockedSourceBase : public ActiveSource {
 public:
  ClockedSourceBase(std::string name, double rate_hz,
                    rt::Priority priority = rt::kPriorityTimer);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

/// A sink with its own timing control, e.g. "audio devices that have their
/// own timing control can be implemented as a clock-driven active sink".
class ActiveSink : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kActiveSink; }

 protected:
  using Driver::Driver;
  virtual void consume(Item x) = 0;
  /// Notified when end-of-stream reaches this sink.
  virtual void on_eos() {}
  void cycle() override;

 private:
  friend class Realization;
};

/// A clock-driven active sink (the audio-device case from §3.1).
class ClockedSinkBase : public ActiveSink {
 public:
  ClockedSinkBase(std::string name, double rate_hz,
                  rt::Priority priority = rt::kPriorityTimer);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

}  // namespace infopipe
