// Pumps and other drivers (§2.2, §3.1).
//
// "There are pumps to keep the information flowing, pulling items from
// upstream and pushing them downstream." Every activity in a pipeline
// originates from a driver: a pump, an active source, or an active sink.
// Each driver gets one thread that operates the pipeline as far as the next
// passive component up- and downstream; the driver encapsulates all
// interaction with the underlying scheduler (priorities, deadlines,
// reservations) so that the application programmer chooses timing and
// scheduling policies simply by choosing pumps and parameters.
//
// The paper identifies at least two classes: clock-driven pumps operating at
// a constant rate, and pumps that adjust their speed to the state of other
// pipeline components (relying on buffer blocking, or driven by feedback).
// All of those are provided here; new policies are added by deriving a new
// pump — the pump developer deals with scheduling so application programmers
// never do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "rt/types.hpp"

namespace infopipe {

/// Everything that parameterizes a pump in one value (PR 6). The named
/// constructors still exist; the spec form is how batch-aware pumps are
/// declared:
///
///     FreeRunningPump mover(PumpSpec{.name = "mover", .max_batch = 32});
///
/// `max_batch` bounds how many items one fire may drain through the span
/// path; 1 (the default) is the classic one-item-per-cycle pump, bit-
/// identical to every pipeline built before batching existed. Clock-driven
/// pumps default to 1 deliberately — bursting a clocked pump changes its
/// rate semantics, so opting in is an explicit per-pump decision.
/// INFOPIPE_BATCH=off forces every pump back to 1 at run time.
struct PumpSpec {
  std::string name;
  double rate_hz = 0.0;  ///< required by clocked/adaptive pumps, else unused
  rt::Priority priority = rt::kPriorityData;
  std::size_t max_batch = 1;
};

/// Base for all components that own a thread and drive a pipeline section.
class Driver : public Component {
 public:
  /// Scheduling priority for this driver's thread; messages it sends carry a
  /// constraint with this priority, so the whole coroutine set follows (§4).
  [[nodiscard]] rt::Priority priority() const noexcept { return priority_; }
  void set_priority(rt::Priority p) noexcept { priority_ = p; }

  /// Items moved through this driver so far.
  [[nodiscard]] std::uint64_t items_pumped() const noexcept {
    return items_pumped_;
  }

  /// Estimated (or worst-case) execution time of one cycle, used to make a
  /// CPU reservation at start (§3.1). Zero = no reservation requested.
  void set_cost_estimate(rt::Time per_cycle) noexcept {
    cost_estimate_ = per_cycle;
  }
  [[nodiscard]] rt::Time cost_estimate() const noexcept {
    return cost_estimate_;
  }

  /// Nominal cycle period for reservation purposes; nullopt for drivers
  /// without an intrinsic rate (free-running pumps pace off buffers).
  [[nodiscard]] virtual std::optional<rt::Time> nominal_period() const {
    return std::nullopt;
  }

  /// Cycles that started after their scheduled fire time (the pipeline was
  /// busier than the rate allows). The observability behind §3.1's
  /// "readjust thread scheduling parameters as the pipeline runs".
  [[nodiscard]] std::uint64_t deadline_misses() const noexcept {
    return deadline_misses_;
  }

  /// What to do when a pull yields a nil item (empty buffer, nil policy).
  enum class NilPolicy { kSkipCycle, kForward };
  void set_nil_policy(NilPolicy p) noexcept { nil_policy_ = p; }
  [[nodiscard]] NilPolicy nil_policy() const noexcept { return nil_policy_; }

  /// Upper bound on items moved per fire through the batched span path
  /// (PumpSpec::max_batch). 1 = classic per-item cycling. The effective
  /// value also honours the INFOPIPE_BATCH kill switch and falls back to 1
  /// when the wiring found no span-capable chain on either side.
  void set_max_batch(std::size_t n) noexcept { max_batch_ = n == 0 ? 1 : n; }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

 protected:
  Driver(std::string name, rt::Priority priority)
      : Component(std::move(name)), priority_(priority) {}
  explicit Driver(const PumpSpec& spec)
      : Component(spec.name), priority_(spec.priority) {
    set_max_batch(spec.max_batch);
  }

  // -- the driver protocol, executed on the driver's thread -------------------

  /// Called when pumping starts; reset rate state.
  virtual void prepare(rt::Time now) { (void)now; }

  /// Absolute time of the next cycle; return `now` (or anything <= now) to
  /// fire immediately. While waiting, the thread stays responsive to control
  /// events.
  [[nodiscard]] virtual rt::Time next_fire(rt::Time now) = 0;

  /// Move one item. Implemented by the driver kind (pump / source / sink);
  /// throws EndOfStream to end the flow.
  virtual void cycle() = 0;

  /// Observation hook: every item that passes through. Feedback pumps use
  /// this to measure.
  virtual void observe(const Item& x) { (void)x; }

  [[nodiscard]] Item pull_prev();
  void push_next(Item x);
  /// Batched twins: fill `out` from upstream / move a burst downstream.
  /// Only callable when span_links_wired() — the driver cycle checks.
  [[nodiscard]] std::size_t pull_prev_span(ItemSpan out);
  void push_next_span(ItemSpan xs);
  [[nodiscard]] bool has_push_link() const noexcept {
    return static_cast<bool>(push_link_);
  }

  /// How many items the next fire may move: max_batch(), clamped to 1 when
  /// batching is off (INFOPIPE_BATCH) or the chain has no span glue.
  [[nodiscard]] std::size_t effective_batch(bool need_pull,
                                            bool need_push) const noexcept;

  /// Scratch the batched cycle drains into; sized lazily to max_batch().
  [[nodiscard]] ItemSpan batch_scratch();

  /// Record one burst's size into the core.batch_items histogram.
  void note_batch(std::size_t n);

  std::uint64_t items_pumped_ = 0;
  std::uint64_t deadline_misses_ = 0;

 private:
  friend class Wiring;
  friend class Realization;

  rt::Priority priority_;
  NilPolicy nil_policy_ = NilPolicy::kSkipCycle;
  rt::Time cost_estimate_ = 0;
  std::size_t max_batch_ = 1;
  PullFn pull_link_;
  PushFn push_link_;
  PullSpanFn pull_span_link_;
  PushSpanFn push_span_link_;
  std::vector<Item> batch_;
};

// ---- Pumps (two active ends) ----------------------------------------------------

/// A pump pulls from upstream and pushes downstream, once per cycle.
class Pump : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kPump; }

 protected:
  using Driver::Driver;
  void cycle() override;
};

/// Clock-driven pump: fires at a constant rate, drift-free (the k-th cycle
/// is scheduled at start + k/rate, not at last + 1/rate).
class ClockedPump : public Pump {
 public:
  ClockedPump(std::string name, double rate_hz,
              rt::Priority priority = rt::kPriorityTimer);
  /// Spec form; spec.rate_hz must be positive. A clocked pump with
  /// max_batch > 1 drains a burst per tick — an explicit trade of rate
  /// smoothness for throughput (see PumpSpec).
  explicit ClockedPump(const PumpSpec& spec);

  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }
  [[nodiscard]] std::optional<rt::Time> nominal_period() const override {
    return period_;
  }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

/// Free-running pump: "does not limit its rate at all and relies on buffers
/// to block the thread when a buffer is full or empty" (§3.1).
class FreeRunningPump : public Pump {
 public:
  explicit FreeRunningPump(std::string name,
                           rt::Priority priority = rt::kPriorityData);
  explicit FreeRunningPump(const PumpSpec& spec) : Pump(spec) {}

 protected:
  [[nodiscard]] rt::Time next_fire(rt::Time now) override { return now; }
};

/// Pump whose rate is adjusted while the pipeline runs — the building block
/// for feedback control (buffer fill levels, producer/consumer clock drift,
/// §3.1). set_rate() may be called from control-event handlers or from a
/// feedback controller.
class AdaptivePump : public Pump {
 public:
  AdaptivePump(std::string name, double initial_rate_hz,
               rt::Priority priority = rt::kPriorityTimer);
  /// Spec form; spec.rate_hz is the initial rate and must be positive.
  explicit AdaptivePump(const PumpSpec& spec);

  void set_rate(double rate_hz);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

  /// Adaptive pumps also react to kEventQualityHint events whose payload is
  /// a double rate in Hz.
  void handle_event(const Event& e) override;

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time last_fire_ = 0;
  bool first_ = true;
};

// ---- Active endpoints (one active end) ---------------------------------------------

/// A source with its own activity: generates items and pushes them
/// downstream (e.g. a network receiver or a camera).
class ActiveSource : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kActiveSource; }

 protected:
  using Driver::Driver;
  /// Produce the next item; return Item::eos() to end the stream.
  [[nodiscard]] virtual Item generate() = 0;
  void cycle() override;
};

/// A clock-driven active source.
class ClockedSourceBase : public ActiveSource {
 public:
  ClockedSourceBase(std::string name, double rate_hz,
                    rt::Priority priority = rt::kPriorityTimer);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

/// A sink with its own timing control, e.g. "audio devices that have their
/// own timing control can be implemented as a clock-driven active sink".
class ActiveSink : public Driver {
 public:
  [[nodiscard]] Style style() const final { return Style::kActiveSink; }

 protected:
  using Driver::Driver;
  virtual void consume(Item x) = 0;
  /// Notified when end-of-stream reaches this sink.
  virtual void on_eos() {}
  /// Batched path: consume a burst of data items (the cycle has already
  /// applied the nil policy). Default: the per-item adapter.
  virtual void consume_span(ItemSpan xs) {
    for (Item& x : xs) consume(std::move(x));
  }
  void cycle() override;

 private:
  friend class Realization;
};

/// A clock-driven active sink (the audio-device case from §3.1).
class ClockedSinkBase : public ActiveSink {
 public:
  ClockedSinkBase(std::string name, double rate_hz,
                  rt::Priority priority = rt::kPriorityTimer);
  [[nodiscard]] double rate_hz() const noexcept { return rate_hz_; }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;

 private:
  double rate_hz_;
  rt::Time period_;
  rt::Time next_ = 0;
};

}  // namespace infopipe
