#include "core/component.hpp"

#include "core/realization.hpp"

namespace infopipe {

std::string to_string(Style s) {
  switch (s) {
    case Style::kActive: return "active";
    case Style::kConsumer: return "consumer";
    case Style::kProducer: return "producer";
    case Style::kFunction: return "function";
    case Style::kBuffer: return "buffer";
    case Style::kPump: return "pump";
    case Style::kActiveSource: return "active-source";
    case Style::kPassiveSource: return "passive-source";
    case Style::kActiveSink: return "active-sink";
    case Style::kPassiveSink: return "passive-sink";
    case Style::kTee: return "tee";
  }
  return "?";
}

std::string to_string(const Event& e) {
  switch (e.type) {
    case kEventStart: return "START";
    case kEventStop: return "STOP";
    case kEventShutdown: return "SHUTDOWN";
    case kEventEndOfStream: return "EOS";
    case kEventFlush: return "FLUSH";
    case kEventQualityHint: return "QUALITY";
    case kEventWindowResize: return "RESIZE";
    case kEventFrameRelease: return "FRAME-RELEASE";
    case kEventSensorReport: return "SENSOR";
    case kEventReservationDenied: return "RESERVATION-DENIED";
    default: return "user(" + std::to_string(e.type) + ")";
  }
}

int Component::in_port_count() const {
  switch (style()) {
    case Style::kActiveSource:
    case Style::kPassiveSource:
      return 0;
    default:
      return 1;
  }
}

int Component::out_port_count() const {
  switch (style()) {
    case Style::kActiveSink:
    case Style::kPassiveSink:
      return 0;
    default:
      return 1;
  }
}

Polarity Component::in_polarity(int /*port*/) const {
  switch (style()) {
    case Style::kPump:
    case Style::kActiveSink:
      return Polarity::kPositive;  // makes calls to pull
    case Style::kBuffer:
    case Style::kPassiveSink:
      return Polarity::kNegative;  // receives pushes
    default:
      return Polarity::kPolymorphic;  // filters: α→α
  }
}

Polarity Component::out_polarity(int /*port*/) const {
  switch (style()) {
    case Style::kPump:
    case Style::kActiveSource:
      return Polarity::kPositive;  // makes calls to push
    case Style::kBuffer:
    case Style::kPassiveSource:
      return Polarity::kNegative;  // receives pulls
    default:
      return Polarity::kPolymorphic;
  }
}

Typespec Component::input_requirement(int /*port*/) const { return {}; }

Typespec Component::output_offer(int /*port*/) const { return {}; }

Typespec Component::transform_downstream(const Typespec& in, int /*in_port*/,
                                         int out_port) const {
  return in.overlay(output_offer(out_port));
}

void Component::handle_event(const Event& /*e*/) {}

void Component::control_upstream(const Event& e, int in_port) {
  if (realization_ == nullptr ||
      in_port >= static_cast<int>(upstream_neighbor_.size()) ||
      upstream_neighbor_[static_cast<std::size_t>(in_port)] == nullptr) {
    throw NotWired(name() + ": no upstream neighbor on port " +
                   std::to_string(in_port));
  }
  realization_->post_event_to(
      *upstream_neighbor_[static_cast<std::size_t>(in_port)], e);
}

void Component::control_downstream(const Event& e, int out_port) {
  if (realization_ == nullptr ||
      out_port >= static_cast<int>(downstream_neighbor_.size()) ||
      downstream_neighbor_[static_cast<std::size_t>(out_port)] == nullptr) {
    throw NotWired(name() + ": no downstream neighbor on port " +
                   std::to_string(out_port));
  }
  realization_->post_event_to(
      *downstream_neighbor_[static_cast<std::size_t>(out_port)], e);
}

void Component::broadcast(const Event& e) {
  if (realization_ == nullptr) {
    throw NotWired(name() + ": not part of a realized pipeline");
  }
  realization_->post_event(e);
}

rt::Time Component::pipeline_now() const {
  if (realization_ == nullptr) return 0;
  return realization_->runtime().now();
}

Item ActiveComponent::pull_prev() {
  if (!pull_link_) throw NotWired(name() + ": pull side not wired");
  return pull_link_();
}

void ActiveComponent::push_next(Item x) {
  if (!push_link_) throw NotWired(name() + ": push side not wired");
  push_link_(std::move(x));
}

void Consumer::push_next(Item x) {
  if (!push_link_) throw NotWired(name() + ": push side not wired");
  push_link_(std::move(x));
}

Item Producer::pull_prev() {
  if (!pull_link_) throw NotWired(name() + ": pull side not wired");
  return pull_link_();
}

}  // namespace infopipe
