// Buffers: temporary storage that removes rate fluctuations (§2.1).
//
// A buffer has two passive ends and is therefore a *section boundary*: the
// upstream section's driver pushes into it and the downstream section's
// driver pulls out of it, each on its own thread. §2.3: "if a buffer is
// full, the push operation can either be blocked or can drop the pushed
// item. Likewise, if a buffer is empty, a pull operation can either be
// blocked or return a nil item." Blocking is implemented with the
// middleware's high-level communication: the blocked thread stays responsive
// to control events (§3.2) — no locks or condition variables appear here or
// anywhere in component code.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/component.hpp"
#include "rt/types.hpp"

namespace infopipe {

namespace obs {
class Histogram;
}  // namespace obs

class HostContext;

enum class FullPolicy {
  kBlock,       ///< block the pushing thread until space is available
  kDropNewest,  ///< drop the pushed item
  kDropOldest,  ///< drop the oldest queued item to make room
};

enum class EmptyPolicy {
  kBlock,  ///< block the pulling thread until an item arrives
  kNil,    ///< return Item::nil()
};

class Buffer : public Component {
 public:
  Buffer(std::string name, std::size_t capacity,
         FullPolicy full = FullPolicy::kBlock,
         EmptyPolicy empty = EmptyPolicy::kBlock);

  [[nodiscard]] Style style() const override { return Style::kBuffer; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t fill() const noexcept { return q_.size(); }
  [[nodiscard]] FullPolicy full_policy() const noexcept { return full_; }
  [[nodiscard]] EmptyPolicy empty_policy() const noexcept { return empty_; }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t takes = 0;
    std::uint64_t drops = 0;       ///< items lost to the full policy
    std::uint64_t nil_returns = 0; ///< empty pulls under the nil policy
    std::uint64_t put_blocks = 0;  ///< times a pusher had to wait
    std::uint64_t take_blocks = 0; ///< times a puller had to wait
    std::size_t max_fill = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  // -- middleware interface (called by the glue, not by applications) --------

  /// Insert an item, honouring the full policy. An EOS item sets the sticky
  /// end-of-stream flag instead of occupying space.
  void put(Item x, HostContext& host);

  /// Remove an item, honouring the empty policy. Returns Item::eos() once
  /// drained past end-of-stream, Item::nil() on empty under the nil policy.
  [[nodiscard]] Item take(HostContext& host);

  /// Batched put (PR 6): insert a burst with ONE policy/stats decision per
  /// burst instead of one per item. The end state is sequential-equivalent
  /// to per-item puts: kDropNewest drops the part that does not fit,
  /// kDropOldest keeps the newest `capacity` items of (queue ++ xs) — which
  /// may mean dropping a PREFIX of the span itself — and kBlock waits for
  /// space (burst-wise: one put_blocks tick per wait, puts counted once).
  void put_span(ItemSpan xs, HostContext& host);

  /// Batched take (PR 6): move up to out.size() queued items into `out` and
  /// return how many, with one stats decision per burst. A burst never
  /// crosses the end of the queued data into a special: an empty buffer
  /// yields a single Item::eos() (drained past end-of-stream) or
  /// Item::nil() (nil policy) at out[0], exactly like take().
  [[nodiscard]] std::size_t take_span(ItemSpan out, HostContext& host);

  /// Discard queued items (kEventFlush does this).
  void handle_event(const Event& e) override;

  // -- migration hooks (ip_balance; called only while the adjacent sections
  // are quiesced, so no waiter can race) -------------------------------------

  /// Move out every queued item. Counted as takes so the documented
  /// `fill == puts - takes` invariant survives the migration.
  [[nodiscard]] std::deque<Item> drain_for_migration();
  /// Insert an item carried over from a collapsed cross-shard channel.
  /// Counted as a put; may exceed capacity transiently (like the stopped-
  /// flow overflow in put()) — the drain recovers once the flow restarts.
  void preload(Item x);
  [[nodiscard]] bool saw_eos() const noexcept { return eos_; }
  void mark_eos() noexcept { eos_ = true; }

 private:
  void notify_one(std::vector<rt::ThreadId>& waiters, HostContext& host);

  /// Block-time histogram handle, resolved lazily on the (already slow)
  /// block path and re-resolved when the buffer is realized under a
  /// different runtime.
  obs::Histogram* block_hist(HostContext& host);

  std::size_t capacity_;
  FullPolicy full_;
  EmptyPolicy empty_;
  std::deque<Item> q_;
  bool eos_ = false;
  std::vector<rt::ThreadId> waiting_readers_;
  std::vector<rt::ThreadId> waiting_writers_;
  Stats stats_;
  obs::Histogram* obs_block_ns_ = nullptr;
  const void* obs_owner_ = nullptr;  ///< runtime the cached handle belongs to
};

}  // namespace infopipe
