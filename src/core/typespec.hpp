// Typespecs: extensible descriptions of the information flows an Infopipe
// port can support (§2.3 of the paper).
//
// A Typespec is a property map. Properties include the item type, QoS
// parameter ranges, blocking behaviour and control-event capabilities. A
// property that is absent means "don't know" on an offer and "don't care" on
// a requirement — both make the property unconstrained, so absence always
// composes. Components do not carry one fixed Typespec; they *transform*
// Typespecs port-to-port (Component::transform_downstream/upstream), and the
// composition engine propagates and intersects them along the pipeline.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <variant>

namespace infopipe {

/// A closed numeric interval [lo, hi]. Used for QoS parameters such as frame
/// rate or latency, where a component supports a range of values.
struct Range {
  double lo = 0.0;
  double hi = 0.0;

  Range() = default;
  Range(double l, double h) : lo(l), hi(h) {}
  static Range exactly(double v) { return Range{v, v}; }

  [[nodiscard]] bool valid() const { return lo <= hi; }
  [[nodiscard]] bool contains(double v) const { return lo <= v && v <= hi; }

  /// Intersection; nullopt when disjoint.
  [[nodiscard]] std::optional<Range> intersect(const Range& o) const;

  friend bool operator==(const Range&, const Range&) = default;
};

/// A finite set of symbolic alternatives (e.g. supported item formats).
using StringSet = std::set<std::string>;

/// A Typespec property value.
using PropValue = std::variant<bool, std::int64_t, double, std::string, Range,
                               StringSet>;

/// Well-known property keys. The set is open: components may define and
/// transform their own keys; unknown keys still participate in intersection.
namespace props {
inline constexpr const char* kItemType = "item.type";        // string
inline constexpr const char* kFormats = "item.formats";      // StringSet
inline constexpr const char* kFrameRate = "qos.frame_rate";  // Range (Hz)
inline constexpr const char* kLatencyMs = "qos.latency_ms";  // Range
inline constexpr const char* kJitterMs = "qos.jitter_ms";    // Range
inline constexpr const char* kBandwidthKbps = "qos.bandwidth_kbps";  // Range
inline constexpr const char* kWidth = "video.width";         // Range (pixels)
inline constexpr const char* kHeight = "video.height";       // Range
inline constexpr const char* kPushBlocking = "interact.push_blocking";  // bool
inline constexpr const char* kPullBlocking = "interact.pull_blocking";  // bool
inline constexpr const char* kControlIn = "control.accepts";   // StringSet
inline constexpr const char* kControlOut = "control.emits";    // StringSet
/// Changed only by netpipes (§2.4): lets type checking see where a flow is.
inline constexpr const char* kLocation = "flow.location";      // string
/// Set by netpipes whose link is real (ip_netreal): transport kind
/// ("sim", "tcp", "udp") and peer endpoint ("host:port").
inline constexpr const char* kTransport = "flow.transport";    // string
inline constexpr const char* kEndpoint = "flow.endpoint";      // string
}  // namespace props

class Typespec {
 public:
  Typespec() = default;
  Typespec(std::initializer_list<std::pair<const std::string, PropValue>> kv)
      : props_(kv) {}

  // -- property access -------------------------------------------------------

  [[nodiscard]] bool has(const std::string& key) const {
    return props_.count(key) != 0;
  }

  /// Typed read; nullopt when absent ("don't know / don't care") or when the
  /// stored value has a different alternative type.
  template <typename T>
  [[nodiscard]] std::optional<T> get(const std::string& key) const {
    auto it = props_.find(key);
    if (it == props_.end()) return std::nullopt;
    if (const T* v = std::get_if<T>(&it->second)) return *v;
    return std::nullopt;
  }

  Typespec& set(const std::string& key, PropValue v) {
    props_[key] = std::move(v);
    return *this;
  }

  Typespec& erase(const std::string& key) {
    props_.erase(key);
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return props_.size(); }
  [[nodiscard]] bool empty() const { return props_.empty(); }
  [[nodiscard]] const std::map<std::string, PropValue>& properties() const {
    return props_;
  }

  // -- composition algebra -----------------------------------------------------

  /// Intersection of two Typespecs: the flows both sides can support.
  /// Scalars must be equal; Ranges must overlap (result is the overlap);
  /// StringSets must share members (result is the common subset). A key
  /// present on only one side carries over unchanged (absence composes).
  /// Returns nullopt when any shared key is irreconcilable.
  [[nodiscard]] std::optional<Typespec> intersect(const Typespec& other) const;

  /// True when `this` describes a subset of the flows `other` describes:
  /// every constraint in `other` is at least as loose as the corresponding
  /// one here (§2.3: a stage's Typespec "can be a subset of a given"
  /// Typespec).
  [[nodiscard]] bool subset_of(const Typespec& other) const;

  /// True when the two specs have a non-empty intersection.
  [[nodiscard]] bool compatible_with(const Typespec& other) const {
    return intersect(other).has_value();
  }

  /// Copy of this spec with `other`'s keys overlaid (later wins). Used by
  /// components that add or update properties while transforming a spec.
  [[nodiscard]] Typespec overlay(const Typespec& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Typespec&, const Typespec&) = default;

 private:
  std::map<std::string, PropValue> props_;
};

/// Human-readable rendering of one property value (diagnostics, tests).
std::string to_string(const PropValue& v);

}  // namespace infopipe
