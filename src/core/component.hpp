// The Infopipe component model (§2.1, §3.3).
//
// A component developer indicates the chosen activity style by inheriting
// from the appropriate base class and overriding
//   * run()      for an active object       (ActiveComponent),
//   * push()     for a passive consumer     (Consumer),
//   * pull()     for a passive producer     (Producer),
//   * convert()  for a function-style one-to-one component (FunctionComponent),
// plus handle_event() for control events. Independently of how a component
// is written, the middleware decides whether it can be called directly or
// needs a coroutine in the pipeline it ends up in (planner.hpp), and
// generates the glue (realization.cpp). Component code never touches
// threads, locks or condition variables — that is the thread transparency
// the paper is about.
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/item.hpp"
#include "core/polarity.hpp"
#include "core/typespec.hpp"
#include "rt/types.hpp"

namespace infopipe {

class Realization;

/// Activity/role classification used by the composition planner.
enum class Style {
  kActive,         ///< active object with a main function (needs a coroutine)
  kConsumer,       ///< passive, implements push()
  kProducer,       ///< passive, implements pull()
  kFunction,       ///< passive, one-to-one convert(); direct in either mode
  kBuffer,         ///< passive at both ends; section boundary
  kPump,           ///< active at both ends; drives a section
  kActiveSource,   ///< source with its own activity (drives a section)
  kPassiveSource,  ///< source that is pulled; section boundary
  kActiveSink,     ///< sink with its own activity, e.g. an audio device
  kPassiveSink,    ///< sink that is pushed; section boundary
  kTee,            ///< multi-port component; subclass fixes port polarities
};

[[nodiscard]] std::string to_string(Style s);

/// Installed by the middleware: moves an item downstream / fetches one from
/// upstream. Pull links throw EndOfStream when the flow has ended.
using PushFn = std::function<void(Item)>;
using PullFn = std::function<Item()>;

/// Batched twins of the links above (PR 6). A push span moves a burst of
/// items downstream; the callee consumes (moves out of) every element. A
/// pull span fills `out` and returns how many slots it used: either n >= 1
/// data items, or exactly one nil at out[0] when the upstream is empty
/// under the nil policy. End-of-stream is reported by throwing EndOfStream,
/// exactly like PullFn — a span never mixes data with specials, so batch
/// boundaries cannot hide an EOS mid-burst. The Wiring builds span links
/// only for chains every member of which speaks spans natively (buffers,
/// functions, passive endpoints); everywhere else the per-item links remain
/// the only path and pumps fall back transparently.
using PushSpanFn = std::function<void(ItemSpan)>;
using PullSpanFn = std::function<std::size_t(ItemSpan)>;

/// Thrown when component code uses a link the planner has not wired (e.g.
/// calling push_next() on the last component of a pipeline).
class NotWired : public std::logic_error {
 public:
  explicit NotWired(const std::string& what) : std::logic_error(what) {}
};

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual Style style() const = 0;

  // -- ports -----------------------------------------------------------------
  [[nodiscard]] virtual int in_port_count() const;
  [[nodiscard]] virtual int out_port_count() const;
  /// Declared polarity. Mid-pipeline styles are polymorphic (α→α); drivers,
  /// buffers and passive endpoints are fixed. Derived from style() by
  /// default; tees override per port.
  [[nodiscard]] virtual Polarity in_polarity(int port) const;
  [[nodiscard]] virtual Polarity out_polarity(int port) const;

  // -- Typespec protocol (§2.3) -----------------------------------------------
  /// Constraints this component places on the flow arriving at `port`
  /// (formats it can read, QoS it can handle, …). Empty = accepts anything.
  [[nodiscard]] virtual Typespec input_requirement(int port) const;
  /// Properties this component asserts about the flow leaving `port`, used
  /// for sources and for components that add/update properties.
  [[nodiscard]] virtual Typespec output_offer(int port) const;
  /// Transformation of the incoming flow description into the outgoing one
  /// (a decoder turns "mpeg" into "raw-video", a netpipe updates the
  /// location property, …). Default: identity overlaid with output_offer().
  [[nodiscard]] virtual Typespec transform_downstream(const Typespec& in,
                                                      int in_port,
                                                      int out_port) const;

  /// Control-event capabilities (§2.3: "The capability of components to
  /// send or react to these control events is included in the Typespec to
  /// ensure that the resulting pipeline is operational").
  /// Symbolic names of control events this component emits…
  [[nodiscard]] virtual StringSet control_emits() const { return {}; }
  /// …and of control events it NEEDS some other component to emit. The
  /// planner rejects pipelines where a requirement has no emitter.
  [[nodiscard]] virtual StringSet control_requires() const { return {}; }

  // -- control events (§2.2) ----------------------------------------------------
  /// Called by the middleware, never concurrently with this component's data
  /// processing. Delivered even while the hosting thread is blocked in a
  /// push or pull.
  virtual void handle_event(const Event& e);

  /// Called by the middleware when the upstream flow ends, before the
  /// end-of-stream marker moves on. Components with inter-item state (e.g. a
  /// defragmenter holding an unpaired fragment) may emit leftovers here
  /// through their normal output path where the style allows it.
  virtual void flush() {}

  /// Called once this component's pipeline has been realized (threads exist,
  /// host_thread() is valid) and before any data flows. Components that need
  /// to register with external services (e.g. a netpipe receiver attaching
  /// to its transport) hook in here.
  virtual void on_realized() {}

  /// May the platform move this component's section to another shard while
  /// the flow runs? Components bound to external OS resources (netpipe
  /// transports, audio devices, anything built on an rt::IoBridge) return
  /// false; partition() then pins the whole hosting section so the
  /// rebalancer never tries to re-instantiate it elsewhere.
  [[nodiscard]] virtual bool migratable() const { return true; }

  /// True between kEventStart and kEventStop. Active components' main loops
  /// are conventionally `while (running()) { ... }` as in the paper's
  /// figures; also useful for application-level introspection.
  [[nodiscard]] bool running() const noexcept { return running_; }

  // -- helpers available to component code once realized ------------------------
 protected:
  /// Sends a control event to the adjacent component connected to the given
  /// port (local control interaction, e.g. display → resizer window size).
  void control_upstream(const Event& e, int in_port = 0);
  void control_downstream(const Event& e, int out_port = 0);
  /// Broadcasts a control event to every component of the pipeline through
  /// the platform's event service.
  void broadcast(const Event& e);

  /// Pipeline time (virtual or real depending on the runtime's clock).
  [[nodiscard]] rt::Time pipeline_now() const;

  /// The realization this component currently belongs to; nullptr while
  /// unrealized. Components like buffers use it to reach the runtime from
  /// event handlers.
  [[nodiscard]] Realization* realization() const noexcept {
    return realization_;
  }

 private:
  friend class Realization;
  friend class HostContext;
  friend class Wiring;
  friend class SectionLock;

  std::string name_;
  bool running_ = false;
  /// Set while the component is realized in a pipeline.
  Realization* realization_ = nullptr;
  /// Serializes access when the component sits in a shared (merge/balance)
  /// region; nullptr otherwise.
  class SectionLock* shared_lock_ = nullptr;
  /// Adjacent components, filled in at realization (for local control).
  std::vector<Component*> upstream_neighbor_;
  std::vector<Component*> downstream_neighbor_;
};

// ---- The four mid-pipeline activity styles (§3.3) -----------------------------

/// Active object: a main function with its own (co)thread. "The programmer
/// can freely mix statements for sending and receiving data items as is most
/// convenient" — the paper's Figure 5/6 style.
class ActiveComponent : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kActive; }

 protected:
  /// The component's main function. Runs on a coroutine; pull_prev() and
  /// push_next() suspend it transparently. Ends by returning (after STOP) or
  /// by letting EndOfStream propagate out of a pull_prev() call.
  virtual void run() = 0;

  [[nodiscard]] Item pull_prev();
  void push_next(Item x);

 private:
  friend class Wiring;
  friend class Realization;
  PullFn pull_link_;
  PushFn push_link_;
};

/// Passive consumer: implements push(); may emit any number of items per
/// input via push_next() (Figure 4a).
class Consumer : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kConsumer; }

 protected:
  friend class Wiring;
  virtual void push(Item x) = 0;
  void push_next(Item x);

 private:
  friend class Realization;
  PushFn push_link_;
};

/// Passive producer: implements pull(); may consume any number of upstream
/// items per output via pull_prev() (Figure 4b).
class Producer : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kProducer; }

 protected:
  friend class Wiring;
  [[nodiscard]] virtual Item pull() = 0;
  [[nodiscard]] Item pull_prev();

 private:
  friend class Realization;
  PullFn pull_link_;
};

/// Function-style component: exactly one output per input. Usable directly
/// in push as well as pull mode; the glue is trivial (§3.3):
///   void push(item x) { next->push(fct(x)); }
///   item pull()       { return fct(prev->pull()); }
class FunctionComponent : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kFunction; }

 protected:
  friend class Wiring;
  [[nodiscard]] virtual Item convert(Item x) = 0;

  /// Batched path: transform every data item of `xs` in place (1:1,
  /// order-preserving); nils pass through untouched, exactly as the
  /// per-item glue leaves them. The default is the automatic per-item
  /// adapter — existing filters work unchanged under batching. Override
  /// (or derive from BatchFilter) to amortize per-item overhead across the
  /// burst.
  virtual void convert_span(ItemSpan xs) {
    for (Item& x : xs) {
      if (x.is_data()) x = convert(std::move(x));
    }
  }
};

/// A function-style component whose NATIVE interface is the span: derive
/// from this when the whole point of the component is burst processing
/// (vectorized transforms, amortized encode scratch). The per-item
/// convert() is the automatic adapter — a BatchFilter dropped into a
/// non-batched chain (or with INFOPIPE_BATCH=off) behaves identically,
/// one-item spans included.
class BatchFilter : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

 protected:
  friend class Wiring;
  void convert_span(ItemSpan xs) override = 0;

  [[nodiscard]] Item convert(Item x) final {
    convert_span(ItemSpan(&x, 1));
    return x;
  }
};

// ---- Passive endpoints ----------------------------------------------------------

/// A source that is pulled by the downstream section's driver. Return
/// Item::eos() once exhausted (the middleware turns that into end-of-stream
/// propagation).
class PassiveSource : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kPassiveSource; }
  [[nodiscard]] int in_port_count() const override { return 0; }

 protected:
  friend class Wiring;
  [[nodiscard]] virtual Item generate() = 0;

  /// Batched path: fill `out` with data items and return how many, or
  /// report "no data" with a single special at out[0] (nil under a nil
  /// policy) or a return of 0 / a single EOS (exhausted — the glue turns
  /// either into EndOfStream). The default adapter loops generate() until
  /// the burst is full or a special appears, so every source batches
  /// without an override; a special hit mid-burst is stashed and returned
  /// as its own one-item burst on the next call (a span never mixes data
  /// and specials). Sources that can produce runs cheaper than a virtual
  /// call per item (CountingSource, ChannelSource) override this.
  virtual std::size_t generate_span(ItemSpan out) {
    if (has_pending_) {
      has_pending_ = false;
      out[0] = std::move(pending_);
      return 1;
    }
    std::size_t n = 0;
    while (n < out.size()) {
      Item x = generate();
      if (!x.is_data()) {
        if (n == 0) {
          out[0] = std::move(x);
          return 1;
        }
        pending_ = std::move(x);
        has_pending_ = true;
        break;
      }
      out[n++] = std::move(x);
    }
    return n;
  }

 private:
  /// Special (nil/EOS) produced by generate() mid-burst, held for the next
  /// generate_span call. Only the batched path touches it: the per-item
  /// glue calls generate() directly.
  Item pending_;
  bool has_pending_ = false;
};

/// A sink that is pushed into by the upstream section's driver.
class PassiveSink : public Component {
 public:
  using Component::Component;
  [[nodiscard]] Style style() const override { return Style::kPassiveSink; }
  [[nodiscard]] int out_port_count() const override { return 0; }

 protected:
  friend class Wiring;
  virtual void consume(Item x) = 0;
  /// Notified when end-of-stream reaches this sink.
  virtual void on_eos() {}

  /// Batched path: consume a burst. The default per-item adapter mirrors
  /// the per-item glue exactly — nils are skipped, EOS routes to on_eos().
  /// Sinks with a bulk fast path (ChannelSink) override this.
  virtual void consume_span(ItemSpan xs) {
    for (Item& x : xs) {
      if (x.is_eos()) {
        on_eos();
        continue;
      }
      if (x.is_nil()) continue;
      consume(std::move(x));
    }
  }
};

}  // namespace infopipe
