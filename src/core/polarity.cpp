#include "core/polarity.hpp"

namespace infopipe {

std::string to_string(Polarity p) {
  switch (p) {
    case Polarity::kPositive:
      return "+";
    case Polarity::kNegative:
      return "-";
    case Polarity::kPolymorphic:
      return "a";
  }
  return "?";
}

std::string to_string(FlowMode m) {
  return m == FlowMode::kPush ? "push" : "pull";
}

}  // namespace infopipe
