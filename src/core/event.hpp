// Control events (§2.2, §3.2).
//
// Besides data items, Infopipe components exchange control messages: local
// interaction between adjacent components (e.g. a display telling a resizer
// about a new window size, or a downstream component releasing a decoder's
// shared reference frame) and global broadcast events (user commands such as
// START/STOP). Control handlers run with higher priority than data
// processing; events arriving while a component processes data are queued
// and delivered as soon as the data function finishes — but they ARE
// delivered while a component is blocked in a push or pull.
#pragma once

#include <any>
#include <string>
#include <utility>

namespace infopipe {

/// Well-known event types. Application events start at kEventUser.
enum EventType : int {
  kEventStart = 1,       ///< start pumping (broadcast)
  kEventStop = 2,        ///< stop pumping (broadcast)
  kEventShutdown = 3,    ///< tear the realization down (broadcast)
  kEventEndOfStream = 4, ///< a pump saw EOS from its source section
  kEventFlush = 5,       ///< drop buffered data (broadcast)
  kEventQualityHint = 6, ///< feedback: adjust quality (payload-defined)
  kEventWindowResize = 7,///< display geometry changed (local upstream)
  kEventFrameRelease = 8,///< shared reference frame no longer needed
  kEventSensorReport = 9,///< feedback sensor reading (payload: double)
  kEventReservationDenied = 10, ///< a pump's CPU reservation was rejected
  kEventUser = 1000,
};

struct Event {
  int type = 0;
  std::any payload;

  Event() = default;
  explicit Event(int t) : type(t) {}
  Event(int t, std::any p) : type(t), payload(std::move(p)) {}

  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    return std::any_cast<T>(&payload);
  }
};

[[nodiscard]] std::string to_string(const Event& e);

}  // namespace infopipe
