// Pipeline composition (§2.3, §4).
//
// A Pipeline is the static connection graph of components. Connections are
// checked as they are made — "if the components were not compatible, the
// composition operator >> would throw an exception" — and again globally
// when the pipeline is realized (planner.hpp), where polymorphic polarities
// are resolved by induction and Typespecs are propagated end to end.
//
// The paper's setup style works verbatim:
//     mpeg_file source("test.mpg");
//     mpeg_decoder decode;
//     clocked_pump pump(30);
//     video_display sink;
//     source >> decode >> pump >> sink;
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/component.hpp"

namespace infopipe {

/// Thrown on illegal compositions: same-polarity connection, occupied port,
/// incompatible Typespecs, sections without a driver, etc.
class CompositionError : public std::runtime_error {
 public:
  explicit CompositionError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Edge {
  Component* from = nullptr;
  int out_port = 0;
  Component* to = nullptr;
  int in_port = 0;
};

class Pipeline {
 public:
  Pipeline() = default;

  /// Connects `from`'s out-port to `to`'s in-port. Registers both
  /// components. Throws CompositionError on port misuse, same fixed
  /// polarity, or statically incompatible Typespecs.
  void connect(Component& from, int out_port, Component& to, int in_port);
  void connect(Component& from, Component& to) { connect(from, 0, to, 0); }

  /// Registers a component without connecting it yet (useful before
  /// explicit multi-port connect calls).
  void add(Component& c);

  [[nodiscard]] const std::vector<Component*>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// The unique edge leaving / entering the given port; nullptr when
  /// unconnected.
  [[nodiscard]] const Edge* edge_from(const Component& c, int out_port) const;
  [[nodiscard]] const Edge* edge_into(const Component& c, int in_port) const;

  /// User preference restriction (§2.3: source/sink-supplied ranges "can be
  /// restricted by the user to indicate preferences"): intersected with the
  /// flow arriving at the given in-port during planning. A preference the
  /// flow cannot satisfy fails the composition with a diagnostic.
  void restrict(Component& c, int in_port, Typespec preference);

  [[nodiscard]] const Typespec* restriction(const Component& c,
                                            int in_port) const;

  // -- restructuring (between realizations) ------------------------------------
  // Pipelines are static while realized; restructuring is stop → edit →
  // re-realize (components are reusable across realizations). These editing
  // operations support that workflow.

  /// Removes the connection leaving the given port. Returns false when no
  /// such edge exists.
  bool disconnect(Component& from, int out_port);

  /// Removes a component and all its connections from the graph.
  void remove(Component& c);

  /// Splices `replacement` into every position `old` occupied (ports are
  /// carried over one-to-one; port counts must match). Throws
  /// CompositionError on arity mismatch.
  void replace(Component& old, Component& replacement);

 private:
  std::vector<Component*> components_;
  std::vector<Edge> edges_;
  std::map<std::pair<const Component*, int>, Typespec> restrictions_;
};

/// Fluent chain builder returned by operator>> so that
/// `a >> b >> c` composes into one Pipeline.
class Chain {
 public:
  Chain(Component& a, Component& b);

  Chain& operator>>(Component& next);

  /// The pipeline being built (shared; keep the Chain or copy the pipeline
  /// reference before realizing).
  [[nodiscard]] Pipeline& pipeline() noexcept { return *pipe_; }
  [[nodiscard]] std::shared_ptr<Pipeline> share() const noexcept {
    return pipe_;
  }

 private:
  std::shared_ptr<Pipeline> pipe_;
  Component* last_;
};

Chain operator>>(Component& a, Component& b);

}  // namespace infopipe
