// Ready-made generic components: lambda adapters, test sources and sinks,
// rate/jitter instrumentation. These are part of the public toolkit (§2.1:
// "our framework provides a set of basic components").
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/component.hpp"
#include "core/pump.hpp"

namespace infopipe {

/// Function-style component from a lambda: Item -> Item (one-to-one).
class LambdaFunction : public FunctionComponent {
 public:
  LambdaFunction(std::string name, std::function<Item(Item)> fn)
      : FunctionComponent(std::move(name)), fn_(std::move(fn)) {}

 protected:
  Item convert(Item x) override { return fn_(std::move(x)); }

 private:
  std::function<Item(Item)> fn_;
};

/// Consumer-style component from a lambda; `emit` forwards downstream, so
/// the lambda may produce 0..n outputs per input (filtering, fragmenting).
class LambdaConsumer : public Consumer {
 public:
  using Body = std::function<void(Item, const std::function<void(Item)>&)>;
  LambdaConsumer(std::string name, Body body)
      : Consumer(std::move(name)), body_(std::move(body)) {}

 protected:
  void push(Item x) override {
    body_(std::move(x), [this](Item y) { push_next(std::move(y)); });
  }

 private:
  Body body_;
};

/// Producer-style component from a lambda; `take` pulls from upstream, so
/// the lambda may consume 0..n inputs per output (defragmenting, sampling).
class LambdaProducer : public Producer {
 public:
  using Body = std::function<Item(const std::function<Item()>&)>;
  LambdaProducer(std::string name, Body body)
      : Producer(std::move(name)), body_(std::move(body)) {}

 protected:
  Item pull() override {
    return body_([this]() { return pull_prev(); });
  }

 private:
  Body body_;
};

/// Active-style component from a lambda running the paper's
/// `while (running) { x = prev->pull(); ...; next->push(y); }` shape.
class LambdaActive : public ActiveComponent {
 public:
  using Body = std::function<void(const std::function<Item()>&,
                                  const std::function<void(Item)>&)>;
  LambdaActive(std::string name, Body body)
      : ActiveComponent(std::move(name)), body_(std::move(body)) {}

 protected:
  void run() override {
    body_([this]() { return pull_prev(); },
          [this](Item y) { push_next(std::move(y)); });
  }

 private:
  Body body_;
};

/// Identity pass-through (function style); handy as a neutral chain element.
class IdentityFunction : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

 protected:
  Item convert(Item x) override { return x; }
};

/// Passive source producing `count` token items with consecutive seq
/// numbers, then end-of-stream. Items are timestamped at generation.
class CountingSource : public PassiveSource {
 public:
  CountingSource(std::string name, std::uint64_t count)
      : PassiveSource(std::move(name)), count_(count) {}

  [[nodiscard]] std::uint64_t produced() const noexcept { return next_; }
  void reset() noexcept { next_ = 0; }

 protected:
  Item generate() override {
    if (next_ >= count_) return Item::eos();
    Item x = Item::token();
    x.seq = next_++;
    x.timestamp = pipeline_now();
    return x;
  }

  std::size_t generate_span(ItemSpan out) override {
    if (next_ >= count_) return 0;  // exhausted: the glue raises EndOfStream
    const std::size_t n =
        std::min<std::uint64_t>(out.size(), count_ - next_);
    const rt::Time now = pipeline_now();
    for (std::size_t i = 0; i < n; ++i) {
      Item x = Item::token();
      x.seq = next_++;
      x.timestamp = now;
      out[i] = std::move(x);
    }
    return n;
  }

 private:
  std::uint64_t count_;
  std::uint64_t next_ = 0;
};

/// Passive source replaying a prepared vector of items, then EOS.
class VectorSource : public PassiveSource {
 public:
  VectorSource(std::string name, std::vector<Item> items)
      : PassiveSource(std::move(name)), items_(std::move(items)) {}

 protected:
  Item generate() override {
    if (pos_ >= items_.size()) return Item::eos();
    return items_[pos_++];
  }

 private:
  std::vector<Item> items_;
  std::size_t pos_ = 0;
};

/// Passive sink collecting everything it is given, with arrival timestamps.
class CollectorSink : public PassiveSink {
 public:
  using PassiveSink::PassiveSink;

  struct Arrival {
    Item item;
    rt::Time at;
  };

  [[nodiscard]] const std::vector<Arrival>& arrivals() const noexcept {
    return got_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return got_.size(); }
  [[nodiscard]] bool eos_seen() const noexcept { return eos_; }
  [[nodiscard]] std::vector<std::uint64_t> seqs() const {
    std::vector<std::uint64_t> v;
    v.reserve(got_.size());
    for (const Arrival& a : got_) v.push_back(a.item.seq);
    return v;
  }
  void clear() {
    got_.clear();
    eos_ = false;
  }

 protected:
  void consume(Item x) override {
    got_.push_back(Arrival{std::move(x), pipeline_now()});
  }
  void on_eos() override { eos_ = true; }

 private:
  std::vector<Arrival> got_;
  bool eos_ = false;
};

/// Passive sink that only counts (cheap; for benchmarks).
class CountingSink : public PassiveSink {
 public:
  using PassiveSink::PassiveSink;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool eos_seen() const noexcept { return eos_; }
  void reset() noexcept {
    n_ = 0;
    eos_ = false;
  }

 protected:
  void consume(Item) override { ++n_; }
  void on_eos() override { eos_ = true; }

 private:
  std::uint64_t n_ = 0;
  bool eos_ = false;
};

/// Policing rate limiter: passes at most `rate_hz` items per second (token
/// bucket), dropping the excess. A passive component has no timing
/// authority, so it can police (drop) but not shape (delay) — shaping is
/// what buffers + pumps are for.
class RateLimiter : public Consumer {
 public:
  RateLimiter(std::string name, double rate_hz, double burst = 1.0)
      : Consumer(std::move(name)), rate_hz_(rate_hz), burst_(burst) {}

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t passed() const noexcept { return passed_; }

 protected:
  void push(Item x) override {
    const rt::Time now = pipeline_now();
    if (last_ != 0) {
      tokens_ += static_cast<double>(now - last_) * rate_hz_ / 1e9;
    } else {
      tokens_ = burst_;
    }
    tokens_ = std::min(tokens_, burst_);
    last_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++passed_;
      push_next(std::move(x));
    } else {
      ++dropped_;
    }
  }

 private:
  double rate_hz_;
  double burst_;
  double tokens_ = 0.0;
  rt::Time last_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

/// Keeps every k-th item (decimation).
class Sampler : public Consumer {
 public:
  Sampler(std::string name, std::uint64_t keep_every)
      : Consumer(std::move(name)),
        keep_every_(keep_every == 0 ? 1 : keep_every) {}

 protected:
  void push(Item x) override {
    if (n_++ % keep_every_ == 0) push_next(std::move(x));
  }

 private:
  std::uint64_t keep_every_;
  std::uint64_t n_ = 0;
};

/// Pass-through watchdog over sequence numbers: counts gaps (lost items)
/// and reorderings. Diagnostic building block for tests and benches.
class SequenceValidator : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

  [[nodiscard]] std::uint64_t gaps() const noexcept { return gaps_; }
  [[nodiscard]] std::uint64_t reorderings() const noexcept {
    return reorderings_;
  }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

 protected:
  Item convert(Item x) override {
    if (observed_ > 0) {
      if (x.seq < last_) {
        ++reorderings_;
      } else if (x.seq > last_ + 1) {
        gaps_ += x.seq - last_ - 1;
      }
    }
    last_ = x.seq;
    ++observed_;
    return x;
  }

 private:
  std::uint64_t last_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t reorderings_ = 0;
  std::uint64_t observed_ = 0;
};

/// A stage with a fixed simulated processing cost per item: the thread
/// sleeps (yielding the CPU — preemptible, §3.2) for `cost` of pipeline
/// time. Workload modelling for experiments.
class SimulatedWork : public FunctionComponent {
 public:
  SimulatedWork(std::string name, rt::Time cost_per_item)
      : FunctionComponent(std::move(name)), cost_(cost_per_item) {}

 protected:
  Item convert(Item x) override {
    if (cost_ > 0 && realization() != nullptr) {
      pipeline_sleep(cost_);
    }
    return x;
  }

 private:
  void pipeline_sleep(rt::Time d);

  rt::Time cost_;
};

/// The paper's running example (§3.3): combines two items into one,
/// implemented in the PASSIVE CONSUMER style of Figure 4a — push() keeps the
/// unpaired item in `saved`.
class DefragmenterConsumer : public Consumer {
 public:
  using Combine = std::function<Item(Item, Item)>;
  DefragmenterConsumer(std::string name, Combine assemble)
      : Consumer(std::move(name)), assemble_(std::move(assemble)) {}

 protected:
  void push(Item x) override {
    if (saved_) {
      Item y = assemble_(std::move(*saved_), std::move(x));
      saved_.reset();
      push_next(std::move(y));
    } else {
      saved_ = std::move(x);
    }
  }
  void flush() override { saved_.reset(); }  // drop an unpaired leftover

 private:
  Combine assemble_;
  std::optional<Item> saved_;
};

/// The same defragmenter in the PASSIVE PRODUCER style of Figure 4b.
class DefragmenterProducer : public Producer {
 public:
  using Combine = std::function<Item(Item, Item)>;
  DefragmenterProducer(std::string name, Combine assemble)
      : Producer(std::move(name)), assemble_(std::move(assemble)) {}

 protected:
  Item pull() override {
    Item x1 = pull_prev();
    Item x2 = pull_prev();
    return assemble_(std::move(x1), std::move(x2));
  }

 private:
  Combine assemble_;
};

/// The same defragmenter in the ACTIVE style of Figure 6.
class DefragmenterActive : public ActiveComponent {
 public:
  using Combine = std::function<Item(Item, Item)>;
  DefragmenterActive(std::string name, Combine assemble)
      : ActiveComponent(std::move(name)), assemble_(std::move(assemble)) {}

 protected:
  void run() override {
    for (;;) {
      Item x1 = pull_prev();
      Item x2 = pull_prev();
      push_next(assemble_(std::move(x1), std::move(x2)));
    }
  }

 private:
  Combine assemble_;
};

/// A fragmenter (one item in, two out) in consumer style; the dual example
/// from §3.3 ("for a fragmenter, push would be the simpler operation").
class FragmenterConsumer : public Consumer {
 public:
  using Split = std::function<std::pair<Item, Item>(Item)>;
  FragmenterConsumer(std::string name, Split split)
      : Consumer(std::move(name)), split_(std::move(split)) {}

 protected:
  void push(Item x) override {
    auto [a, b] = split_(std::move(x));
    push_next(std::move(a));
    push_next(std::move(b));
  }

 private:
  Split split_;
};

/// The same fragmenter in producer style (the awkward direction: it must
/// keep the second half between pulls).
class FragmenterProducer : public Producer {
 public:
  using Split = std::function<std::pair<Item, Item>(Item)>;
  FragmenterProducer(std::string name, Split split)
      : Producer(std::move(name)), split_(std::move(split)) {}

 protected:
  Item pull() override {
    if (saved_) {
      Item out = std::move(*saved_);
      saved_.reset();
      return out;
    }
    auto [a, b] = split_(pull_prev());
    saved_ = std::move(b);
    return a;
  }

 private:
  Split split_;
  std::optional<Item> saved_;
};

}  // namespace infopipe
