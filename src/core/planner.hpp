// The composition planner: automatic thread and coroutine allocation (§3.3,
// §4, Figure 9).
//
// From the static pipeline graph the planner determines
//   * the flow mode (push/pull) of every edge, by induction from the fixed
//     polarities of pumps, buffers and endpoints through the polymorphic
//     (α→α) filters,
//   * the pipeline *sections*: maximal regions between passive components,
//     each driven by exactly one pump / active source / active sink,
//   * which components of a section can share the driver's thread via
//     direct function calls, and which need a coroutine: "Active object
//     implementations provide a thread-like main function. Passive objects
//     are consumers implementing push, producers implementing pull, or are
//     based on a conversion function. In push mode, consumers and functions
//     are called directly, and in pull mode producers and functions are
//     called directly. Otherwise, a coroutine is required."
//
// The planner is pure: it inspects the graph and produces a Plan without
// creating any threads, so allocation decisions are unit-testable (the
// Figure 9 configurations a-h are checked in tests/core_planner_test.cpp).
//
// Batching (PumpSpec::max_batch, ARCHITECTURE §15) is orthogonal to
// everything decided here: spans ride the same sections, drivers and
// coroutine assignments, and whether a given edge actually moves bursts is
// resolved at wiring/run time (span link present + config().batching), never
// in the Plan. A batched pump plans identically to a per-item one.
#pragma once

#include <map>
#include <vector>

#include "core/pipeline.hpp"
#include "core/polarity.hpp"
#include "core/pump.hpp"
#include "core/typespec.hpp"

namespace infopipe {

struct Plan {
  struct Hosted {
    Component* comp = nullptr;
    FlowMode mode = FlowMode::kPush;
    bool needs_coroutine = false;
    /// Part of a region reachable from several drivers (downstream of a
    /// MergeTee / upstream of a BalancingSwitch); the realization serializes
    /// access to it.
    bool shared = false;
  };

  /// One driver's domain: the components it operates between the adjacent
  /// passive boundaries.
  struct Section {
    Driver* driver = nullptr;
    std::vector<Hosted> members;  ///< excludes the driver and the boundaries

    [[nodiscard]] int coroutine_count() const {
      int n = 0;
      for (const Hosted& h : members) n += h.needs_coroutine ? 1 : 0;
      return n;
    }
    /// Threads used by this section, counting the driver's own (§4 counts
    /// the driver's thread as part of the coroutine set).
    [[nodiscard]] int thread_count() const { return 1 + coroutine_count(); }
  };

  std::vector<Section> sections;
  /// Resolved mode per edge (keyed by pointer into Pipeline::edges()).
  std::map<const Edge*, FlowMode> edge_mode;
  /// Flow description propagated onto each edge.
  std::map<const Edge*, Typespec> edge_spec;

  [[nodiscard]] int total_threads() const {
    int n = 0;
    for (const Section& s : sections) n += s.thread_count();
    return n;
  }
  [[nodiscard]] int total_coroutines() const {
    int n = 0;
    for (const Section& s : sections) n += s.coroutine_count();
    return n;
  }

  [[nodiscard]] const Section* section_of(const Driver& d) const {
    for (const Section& s : sections) {
      if (s.driver == &d) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] const Hosted* hosted_info(const Component& c) const {
    for (const Section& s : sections) {
      for (const Hosted& h : s.members) {
        if (h.comp == &c) return &h;
      }
    }
    return nullptr;
  }
};

/// Analyze the pipeline. Throws CompositionError with a diagnostic naming
/// the offending components when the pipeline is ill-formed (no driver in a
/// section, two drivers without an intervening buffer, dangling ports,
/// push-driven pull-only tees, incompatible Typespecs, cycles).
[[nodiscard]] Plan plan(const Pipeline& p);

// ---- Multi-core sharding (ip_shard) -----------------------------------------

/// Assignment of whole sections to shards. Cuts happen only at passive
/// boundaries (buffers between sections) — never inside a coroutine set —
/// so the per-section single-threading invariants of §3.2 hold unchanged on
/// every shard.
struct Partition {
  /// A buffer whose two neighbouring sections landed on different shards;
  /// the sharded realization replaces it with a cross-shard channel.
  struct Cut {
    Component* buffer = nullptr;
    std::size_t upstream_section = 0;    ///< index into Plan::sections
    std::size_t downstream_section = 0;  ///< index into Plan::sections
  };

  int n_shards = 1;
  /// Parallel to Plan::sections: which shard hosts each section.
  std::vector<int> shard_of_section;
  std::vector<Cut> cuts;
  /// Parallel to Plan::sections: may the rebalancer move this section alone?
  /// Pinned (false): sections clustered with others — shared merge/balance
  /// regions and colocation constraints must move as a unit or not at all —
  /// and sections hosting a component whose migratable() is false (netpipe
  /// endpoints, audio devices, anything on an external I/O path).
  std::vector<char> migratable_section;

  [[nodiscard]] bool migratable(std::size_t section) const {
    return section < migratable_section.size() &&
           migratable_section[section] != 0;
  }

  /// Shard of the section a driver/member belongs to; -1 for components
  /// outside every section (boundaries).
  [[nodiscard]] int shard_of(const Plan& plan, const Component& c) const;

  /// Threads per shard; sums to plan.total_threads() (conservation is a
  /// partition invariant the tests assert).
  [[nodiscard]] std::vector<int> threads_per_shard(const Plan& plan) const;
};

/// Splits a plan across `n_shards` shards. Sections are never split;
/// sections connected through anything but a buffer (merge/balance shared
/// regions, where an edge runs directly between two drivers' domains) are
/// clustered together, as are the sections around each `colocate` pair of
/// components (the sharded realization uses this to keep buffers whose
/// policies a channel cannot reproduce, e.g. kDropOldest, on one shard).
/// Clusters are balanced by thread count (deterministic longest-processing-
/// time greedy). Shards may end up empty when there are fewer clusters.
[[nodiscard]] Partition partition(
    const Plan& plan, int n_shards,
    const std::vector<std::pair<const Component*, const Component*>>&
        colocate = {});

/// The cut set induced by an arbitrary section→shard assignment: every
/// boundary component (buffer) whose upstream and downstream sections sit on
/// different shards, ordered deterministically by section index. partition()
/// uses this for its initial placement; live migration recomputes it after
/// every assignment change to decide which channels to create, rebind or
/// collapse.
[[nodiscard]] std::vector<Partition::Cut> cuts_for(
    const Plan& plan, const std::vector<int>& shard_of_section);

}  // namespace infopipe
