#include "core/pipeline.hpp"

#include <algorithm>

namespace infopipe {

void Pipeline::add(Component& c) {
  if (std::find(components_.begin(), components_.end(), &c) ==
      components_.end()) {
    components_.push_back(&c);
  }
}

const Edge* Pipeline::edge_from(const Component& c, int out_port) const {
  for (const Edge& e : edges_) {
    if (e.from == &c && e.out_port == out_port) return &e;
  }
  return nullptr;
}

const Edge* Pipeline::edge_into(const Component& c, int in_port) const {
  for (const Edge& e : edges_) {
    if (e.to == &c && e.in_port == in_port) return &e;
  }
  return nullptr;
}

void Pipeline::connect(Component& from, int out_port, Component& to,
                       int in_port) {
  if (&from == &to) {
    throw CompositionError(from.name() + ": cannot connect to itself");
  }
  if (out_port < 0 || out_port >= from.out_port_count()) {
    throw CompositionError(from.name() + " has no out-port " +
                           std::to_string(out_port));
  }
  if (in_port < 0 || in_port >= to.in_port_count()) {
    throw CompositionError(to.name() + " has no in-port " +
                           std::to_string(in_port));
  }
  if (edge_from(from, out_port) != nullptr) {
    throw CompositionError(from.name() + " out-port " +
                           std::to_string(out_port) + " is already connected");
  }
  if (edge_into(to, in_port) != nullptr) {
    throw CompositionError(to.name() + " in-port " + std::to_string(in_port) +
                           " is already connected");
  }

  // Polarity check (§2.3): same fixed polarity is an error; anything with a
  // polymorphic side resolves at realization.
  const Polarity po = from.out_polarity(out_port);
  const Polarity pi = to.in_polarity(in_port);
  if (!connectable(po, pi)) {
    throw CompositionError("polarity mismatch: " + from.name() + " out(" +
                           to_string(po) + ") -> " + to.name() + " in(" +
                           to_string(pi) + ")");
  }

  // Shallow Typespec check; the full propagation happens at realization.
  const Typespec offer = from.output_offer(out_port);
  const Typespec need = to.input_requirement(in_port);
  if (!offer.compatible_with(need)) {
    throw CompositionError("incompatible flows: " + from.name() + " offers " +
                           offer.to_string() + " but " + to.name() +
                           " requires " + need.to_string());
  }

  add(from);
  add(to);
  edges_.push_back(Edge{&from, out_port, &to, in_port});
}

void Pipeline::restrict(Component& c, int in_port, Typespec preference) {
  add(c);
  auto key = std::make_pair(static_cast<const Component*>(&c), in_port);
  auto it = restrictions_.find(key);
  if (it == restrictions_.end()) {
    restrictions_.emplace(key, std::move(preference));
    return;
  }
  auto merged = it->second.intersect(preference);
  if (!merged) {
    throw CompositionError("preferences on " + c.name() +
                           " contradict each other");
  }
  it->second = std::move(*merged);
}

const Typespec* Pipeline::restriction(const Component& c, int in_port) const {
  auto it = restrictions_.find(std::make_pair(&c, in_port));
  return it == restrictions_.end() ? nullptr : &it->second;
}

bool Pipeline::disconnect(Component& from, int out_port) {
  for (auto it = edges_.begin(); it != edges_.end(); ++it) {
    if (it->from == &from && it->out_port == out_port) {
      edges_.erase(it);
      return true;
    }
  }
  return false;
}

void Pipeline::remove(Component& c) {
  std::erase_if(edges_,
                [&c](const Edge& e) { return e.from == &c || e.to == &c; });
  std::erase(components_, &c);
}

void Pipeline::replace(Component& old, Component& replacement) {
  if (old.in_port_count() != replacement.in_port_count() ||
      old.out_port_count() != replacement.out_port_count()) {
    throw CompositionError("cannot replace " + old.name() + " with " +
                           replacement.name() + ": port counts differ");
  }
  if (std::find(components_.begin(), components_.end(), &old) ==
      components_.end()) {
    throw CompositionError(old.name() + " is not part of this pipeline");
  }
  // Collect the old edges, drop them, then re-connect through the public
  // path so polarity and Typespec checks run against the replacement.
  std::vector<Edge> carried;
  for (const Edge& e : edges_) {
    if (e.from == &old || e.to == &old) carried.push_back(e);
  }
  remove(old);
  add(replacement);
  for (Edge e : carried) {
    if (e.from == &old) e.from = &replacement;
    if (e.to == &old) e.to = &replacement;
    connect(*e.from, e.out_port, *e.to, e.in_port);
  }
}

Chain::Chain(Component& a, Component& b)
    : pipe_(std::make_shared<Pipeline>()), last_(&b) {
  pipe_->connect(a, 0, b, 0);
}

Chain& Chain::operator>>(Component& next) {
  pipe_->connect(*last_, 0, next, 0);
  last_ = &next;
  return *this;
}

Chain operator>>(Component& a, Component& b) { return Chain(a, b); }

}  // namespace infopipe
