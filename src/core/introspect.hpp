// Structured introspection: the value types behind describe()/stats_report().
//
// The realization's self-description used to be prose assembled on the fly;
// tests and tools had to parse strings. These types carry the same facts as
// data: PlanInfo is what the planner decided (sections, modes, coroutine
// allocation), StatsSnapshot is what the running pipeline has done so far
// (items pumped, buffer traffic). describe() and stats_report() are now thin
// renderers over them — to_string() here produces the exact text they always
// produced, and to_json() feeds the --metrics-out dumps of the benches.
//
// StatsSnapshot is built from pure reads of counters that the middleware
// only mutates between dispatch points, so taking one from a control-event
// listener while the flow is blocked is safe and consistent (see
// Realization::stats_snapshot()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/component.hpp"
#include "core/polarity.hpp"
#include "rt/types.hpp"

namespace infopipe {

namespace obs {
struct MetricsSnapshot;
}  // namespace obs

class Pipeline;
struct Plan;

/// What the planner decided for one realization: the section structure and
/// the activity style chosen for every hosted component.
struct PlanInfo {
  struct Member {
    std::string name;
    Style style = Style::kFunction;
    FlowMode mode = FlowMode::kPush;
    bool coroutine = false;  ///< got its own thread
    bool shared = false;     ///< inside a serialized shared region
  };

  struct SectionInfo {
    std::string driver;
    Style driver_style = Style::kActive;
    int thread_count = 0;  ///< driver's thread + its coroutines
    std::vector<Member> members;
  };

  std::size_t components = 0;  ///< components in the pipeline graph
  std::size_t threads = 0;     ///< user-level threads spawned in total
  std::vector<SectionInfo> sections;

  [[nodiscard]] std::size_t coroutine_count() const;
  [[nodiscard]] const SectionInfo* section(std::string_view driver) const;
  [[nodiscard]] const Member* member(std::string_view name) const;
};

/// Per-driver progress counters at snapshot time.
struct DriverStats {
  std::string name;
  std::uint64_t items_pumped = 0;
  std::uint64_t deadline_misses = 0;
  bool running = false;
};

/// Per-buffer traffic counters at snapshot time. The invariant
/// `fill == puts - takes` holds at every dispatch point (a blocked put has
/// neither queued the item nor counted it yet).
struct BufferStats {
  std::string name;
  std::size_t fill = 0;
  std::size_t capacity = 0;
  std::size_t max_fill = 0;
  std::uint64_t puts = 0;
  std::uint64_t takes = 0;
  std::uint64_t drops = 0;
  std::uint64_t nil_returns = 0;
  std::uint64_t put_blocks = 0;
  std::uint64_t take_blocks = 0;
};

/// Per-channel traffic counters at snapshot time (ip_shard: the lock-free
/// SPSC channel that replaces a buffer cut across shards). The flow counters
/// use the exact BufferStats schema — a channel IS the buffer it replaced,
/// so tooling reads one format: fill is the ring depth, puts/takes are
/// pushes/pops, put_blocks/take_blocks are producer/consumer stalls. Unlike
/// buffer counters these are sampled from atomics, so `fill == puts - takes`
/// is only approximate while both shards are running. The shard pair and the
/// doorbell wakeup count are the only channel-specific facts left.
struct ChannelStats {
  BufferStats flow;
  int from_shard = 0;
  int to_shard = 0;
  std::uint64_t wakeups = 0;  ///< cross-shard doorbell posts
};

/// A consistent picture of the realized pipeline's progress, timestamped by
/// the runtime clock (deterministic under the virtual clock). The channels
/// vector is populated only for sharded realizations.
struct StatsSnapshot {
  rt::Time when = 0;
  std::vector<DriverStats> drivers;
  std::vector<BufferStats> buffers;
  std::vector<ChannelStats> channels;

  [[nodiscard]] const DriverStats* driver(std::string_view name) const;
  [[nodiscard]] const BufferStats* buffer(std::string_view name) const;
  [[nodiscard]] const ChannelStats* channel(std::string_view name) const;
};

/// Builds the PlanInfo for a planned pipeline: one SectionInfo per plan
/// section, `threads` recorded as the spawn total. This is the single
/// source of the "what the planner decided" data — Realization::plan_info()
/// calls it with its own thread count, ShardedRealization::plan_info() with
/// the plan's total across shards, and the session layer's SharedPlan caches
/// one copy that every stamped session shares instead of re-planning.
[[nodiscard]] PlanInfo plan_info_of(const Pipeline& p, const Plan& plan,
                                    std::size_t threads);

// -- renderers -----------------------------------------------------------------

/// The text Realization::describe() returns.
[[nodiscard]] std::string to_string(const PlanInfo& p);
/// The text Realization::stats_report() returns.
[[nodiscard]] std::string to_string(const StatsSnapshot& s);

[[nodiscard]] std::string to_json(const PlanInfo& p);
[[nodiscard]] std::string to_json(const StatsSnapshot& s);

/// Appends the snapshot's numbers as rows of a metrics snapshot
/// (`pipe.driver.<name>.*`, `pipe.buffer.<name>.*`). This is what the
/// realization's registry collector runs at snapshot time.
void publish(const StatsSnapshot& s, obs::MetricsSnapshot& out);

}  // namespace infopipe
