#include "core/basic.hpp"

#include "core/realization.hpp"

namespace infopipe {

void SimulatedWork::pipeline_sleep(rt::Time d) {
  realization()->runtime().sleep_for(d);
}

}  // namespace infopipe
