// Umbrella header for the Infopipe middleware core.
//
//   #include "core/infopipes.hpp"
//
//   infopipe::rt::Runtime rt;                  // user-level thread package
//   MySource source; MyDecoder decode;         // components, any style
//   infopipe::ClockedPump pump("pump", 30);    // 30 Hz
//   MyDisplay sink;
//   auto chain = source >> decode >> pump >> sink;
//   infopipe::Realization real(rt, chain.pipeline());
//   real.start();                              // = real.control(kEventStart)
//   rt.run();
#pragma once

#include "core/basic.hpp"
#include "core/buffer.hpp"
#include "core/component.hpp"
#include "core/composite.hpp"
#include "core/event.hpp"
#include "core/item.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/polarity.hpp"
#include "core/pump.hpp"
#include "core/realization.hpp"
#include "core/tee.hpp"
#include "core/typespec.hpp"
#include "rt/runtime.hpp"
