// Composite Infopipes (§2.1: "When stages of a pipeline are connected flow
// properties for the composite can be derived, facilitating the composition
// of larger building blocks and the construction of incremental pipelines").
//
// A CompositePipe owns a bundle of components and their internal wiring and
// splices them into a host pipeline as one reusable unit. The bundle's
// boundary is whatever its entry/exit components expose — including bundles
// whose interior crosses a network (a netpipe bundle's entry is the
// marshalling filter on one node, its exit the unmarshalling filter on the
// other). Composites nest.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/component.hpp"
#include "core/pipeline.hpp"

namespace infopipe {

class CompositePipe {
 public:
  explicit CompositePipe(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Constructs a component owned by the composite.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    components_.push_back(std::move(owned));
    return ref;
  }

  /// Adopts an already-created component.
  template <typename T>
  T& adopt(std::unique_ptr<T> c) {
    T& ref = *c;
    components_.push_back(std::move(c));
    return ref;
  }

  /// Internal wiring (applied when the composite is spliced).
  void connect(Component& from, int out_port, Component& to, int in_port) {
    internal_edges_.push_back(Edge{&from, out_port, &to, in_port});
  }
  void connect(Component& from, Component& to) { connect(from, 0, to, 0); }

  /// Declares the component the host pipeline connects INTO.
  void set_entry(Component& c) { entry_ = &c; }
  /// Declares the component the host pipeline continues FROM.
  void set_exit(Component& c) { exit_ = &c; }

  [[nodiscard]] Component& entry() const {
    if (entry_ == nullptr) throw CompositionError(name_ + ": no entry set");
    return *entry_;
  }
  [[nodiscard]] Component& exit() const {
    if (exit_ == nullptr) throw CompositionError(name_ + ": no exit set");
    return *exit_;
  }

  /// Embeds a nested composite: splices its interior here and returns it so
  /// its entry/exit can be wired.
  void embed(CompositePipe& inner) {
    for (const Edge& e : inner.internal_edges_) {
      internal_edges_.push_back(e);
    }
    inner.internal_edges_.clear();  // ownership of wiring moves up
    embedded_.push_back(&inner);
  }

  /// Splices the interior wiring into the host pipeline. Call once per
  /// realization; the host then connects entry()/exit() like any component.
  void splice_into(Pipeline& p) const {
    for (const Edge& e : internal_edges_) {
      p.connect(*e.from, e.out_port, *e.to, e.in_port);
    }
  }

  [[nodiscard]] std::size_t component_count() const noexcept {
    std::size_t n = components_.size();
    for (const CompositePipe* inner : embedded_) {
      n += inner->component_count();
    }
    return n;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<Edge> internal_edges_;
  std::vector<CompositePipe*> embedded_;
  Component* entry_ = nullptr;
  Component* exit_ = nullptr;
};

}  // namespace infopipe
