#include "core/realization.hpp"

#include <cassert>
#include <utility>

#include "core/tee.hpp"

namespace infopipe {

using detail::ControlDispatch;
using detail::CoroutineRec;
using detail::ShutdownSignal;
using detail::StopFlow;

// ============================ HostContext ===================================

rt::Runtime& HostContext::runtime() noexcept { return real_->runtime(); }

rt::Message HostContext::wait(const MsgPred& pred) {
  rt::Runtime& rt = runtime();
  for (;;) {
    rt::Message m = rt.receive_matching([&](const rt::Message& x) {
      return x.cls == rt::MsgClass::kControl || pred(x);
    });
    if (m.cls == rt::MsgClass::kControl) {
      // §3.2 in action: a control event delivered to a logically blocked
      // thread.
      real_->obs_hooks().control_while_blocked->inc();
      dispatch(std::move(m));
      if (terminate_) throw ShutdownSignal{};
      continue;
    }
    return m;
  }
}

std::optional<rt::Message> HostContext::wait_interruptible(
    const MsgPred& pred) {
  rt::Runtime& rt = runtime();
  rt::Message m = rt.receive_matching([&](const rt::Message& x) {
    return x.cls == rt::MsgClass::kControl || pred(x);
  });
  if (m.cls == rt::MsgClass::kControl) {
    real_->obs_hooks().control_while_blocked->inc();
    dispatch(std::move(m));
    if (terminate_) throw ShutdownSignal{};
    return std::nullopt;
  }
  return m;
}

void HostContext::poll_control() {
  rt::Runtime& rt = runtime();
  while (auto m = rt.try_receive([](const rt::Message& x) {
           return x.cls == rt::MsgClass::kControl;
         })) {
    dispatch(std::move(*m));
    if (terminate_) throw ShutdownSignal{};
  }
}

void HostContext::dispatch(rt::Message&& m) {
  ControlDispatch* cd = m.get<ControlDispatch>();
  if (cd == nullptr) return;
  const Event e = std::move(cd->event);
  std::vector<Component*> targets;
  if (cd->target != nullptr) {
    targets.push_back(cd->target);
  } else {
    targets = hosted_;
  }
  real_->obs_hooks().control_dispatched->inc(targets.size());
  IP_OBS_TRACE(runtime().tracer(), obs::Hop::kControlDispatch, "control",
               e.type, static_cast<std::int64_t>(targets.size()));
  for (Component* c : targets) {
    // Middleware lifecycle side effects first.
    switch (e.type) {
      case kEventStart:
        c->running_ = true;
        break;
      case kEventStop:
        c->running_ = false;
        break;
      case kEventShutdown:
        c->running_ = false;
        terminate_ = true;
        break;
      default:
        break;
    }
    // §3.2: a control handler never runs while the component is processing
    // data. Within this thread that holds structurally (we only dispatch at
    // wait points); for components in shared regions the section lock keeps
    // other threads' data processing out. The lock is re-entrant for the
    // owner — that is precisely the "blocked in a push or pull" case in
    // which the paper allows control delivery.
    if (c->shared_lock_ != nullptr) {
      c->shared_lock_->acquire(*this);
      try {
        c->handle_event(e);
      } catch (...) {
        c->shared_lock_->release(*this);
        throw;
      }
      c->shared_lock_->release(*this);
    } else {
      c->handle_event(e);
    }
  }
}

// ============================ SectionLock ====================================

void SectionLock::acquire(HostContext& h) {
  const rt::ThreadId me = h.tid();
  if (owner_ == me) {
    ++depth_;
    return;
  }
  if (owner_ == rt::kNoThread) {
    owner_ = me;
    depth_ = 1;
    return;
  }
  waiters_.push_back(me);
  SectionLock* self = this;
  (void)h.wait([self](const rt::Message& x) {
    const auto* l = x.get<SectionLock*>();
    return x.type == detail::kMsgLockGrant && l != nullptr && *l == self;
  });
  // release() already transferred ownership to us.
  assert(owner_ == me);
  depth_ = 1;
}

void SectionLock::release(HostContext& h) {
  assert(owner_ == h.tid());
  if (--depth_ > 0) return;
  owner_ = rt::kNoThread;
  if (!waiters_.empty()) {
    const rt::ThreadId w = waiters_.front();
    waiters_.erase(waiters_.begin());
    owner_ = w;  // depth is set by the waiter when it resumes
    rt::Message g{detail::kMsgLockGrant, rt::MsgClass::kData};
    g.payload = this;
    h.runtime().send(w, std::move(g));
  }
}

// ===================== coroutine channel protocol ============================
//
// Requester side: a thread that treats the coroutine like a passive
// component. push() hands an item over and returns when the coroutine next
// asks for input ("the activity travels with the data"); pull() asks for one
// item and blocks until it is delivered. Both stay responsive to control
// events via HostContext::wait.

namespace {

void channel_push(Realization& R, rt::ThreadId co, Item x) {
  HostContext& h = R.current_host();
  rt::Runtime& rtm = h.runtime();
  const rt::Time t0 = rtm.now();
  rt::Message m{detail::kMsgCoItem, rt::MsgClass::kData};
  m.payload = std::move(x);
  rtm.send(co, std::move(m));
  (void)h.wait([co](const rt::Message& mm) {
    return mm.type == detail::kMsgCoDone && mm.sender == co;
  });
  Realization::ObsHooks& ob = R.obs_hooks();
  ob.handoffs->inc();
  ob.handoff_ns->record(rtm.now() - t0);
  IP_OBS_TRACE(rtm.tracer(), obs::Hop::kHandOff, "co.push",
               static_cast<std::int64_t>(co));
}

Item channel_pull(Realization& R, rt::ThreadId co) {
  HostContext& h = R.current_host();
  rt::Runtime& rtm = h.runtime();
  const rt::Time t0 = rtm.now();
  rtm.send(co, rt::Message{detail::kMsgCoPull, rt::MsgClass::kData});
  rt::Message m = h.wait([co](const rt::Message& mm) {
    return mm.type == detail::kMsgCoItem && mm.sender == co;
  });
  Realization::ObsHooks& ob = R.obs_hooks();
  ob.handoffs->inc();
  ob.handoff_ns->record(rtm.now() - t0);
  IP_OBS_TRACE(rtm.tracer(), obs::Hop::kHandOff, "co.pull",
               static_cast<std::int64_t>(co));
  return m.take<Item>();
}

// Coroutine side, push direction: fetch the next input item. Sends kMsgCoDone
// to the previous requester first — that is the moment its push() returns.
Item co_get_input(Realization& R, CoroutineRec& rec) {
  HostContext& h = R.current_host();
  rt::Message m;
  if (rec.initial) {
    m = std::move(*rec.initial);
    rec.initial.reset();
  } else {
    if (rec.owes_done && rec.last_requester != rt::kNoThread) {
      h.runtime().send(rec.last_requester,
                       rt::Message{detail::kMsgCoDone, rt::MsgClass::kData});
      rec.owes_done = false;
    }
    m = h.wait(
        [](const rt::Message& x) { return x.type == detail::kMsgCoItem; });
  }
  rec.last_requester = m.sender;
  rec.owes_done = true;
  Item x = m.take<Item>();
  if (x.is_eos()) {
    rec.finished = true;
    throw EndOfStream{};
  }
  return x;
}

// Coroutine side: release the requester blocked in push() (loop end / EOS).
// Also covers a main function that returned without ever consuming its
// initial input — the requester must not be left waiting.
void co_final_done(Realization& R, CoroutineRec& rec) {
  if (rec.initial) {
    rec.last_requester = rec.initial->sender;
    rec.owes_done = true;
    rec.initial.reset();
  }
  if (rec.owes_done && rec.last_requester != rt::kNoThread) {
    R.current_host().runtime().send(
        rec.last_requester,
        rt::Message{detail::kMsgCoDone, rt::MsgClass::kData});
    rec.owes_done = false;
  }
}

// Coroutine side, pull direction: block until somebody wants an item.
void co_need_pull(Realization& R, CoroutineRec& rec) {
  if (rec.pending_pulls > 0) return;
  HostContext& h = R.current_host();
  rt::Message m;
  if (rec.initial) {
    m = std::move(*rec.initial);
    rec.initial.reset();
  } else {
    m = h.wait(
        [](const rt::Message& x) { return x.type == detail::kMsgCoPull; });
  }
  rec.last_requester = m.sender;
  rec.pending_pulls = 1;
}

// Coroutine side, pull direction: deliver one output item. If nobody asked
// yet, wait for the next pull — activity travels with the data, no implicit
// buffering (§3.3).
void co_deliver(Realization& R, CoroutineRec& rec, Item y) {
  co_need_pull(R, rec);
  rt::Message m{detail::kMsgCoItem, rt::MsgClass::kData};
  m.payload = std::move(y);
  R.current_host().runtime().send(rec.last_requester, std::move(m));
  --rec.pending_pulls;
}

}  // namespace

// ============================== Wiring ======================================
//
// Translates the Plan into executable glue: direct function calls where the
// Figure 9 rule allows them, coroutines elsewhere. The builders recurse over
// the pipeline graph exactly like the planner's walks did.

class Wiring {
 public:
  explicit Wiring(Realization& r) : R(r), pipe(*r.pipe_) {}

  void build() {
    for (auto& sec : R.plan_.sections) {
      Driver* d = sec.driver;
      current_driver_ = d;
      Realization* Rp = &R;
      const rt::ThreadId tid = R.rt_->spawn(
          d->name(), d->priority(), [Rp, d](rt::Runtime&, rt::Message m) {
            return Rp->driver_code(Rp->current_host(), *d, std::move(m));
          });
      HostContext& h = R.new_host(tid);
      h.driver_ = d;
      reg(*d, h, nullptr);
      if (d->out_port_count() > 0) {
        d->push_link_ = build_push(pipe.edge_from(*d, 0), h, nullptr);
        d->push_span_link_ = build_push_span(pipe.edge_from(*d, 0));
      }
      if (d->in_port_count() > 0) {
        d->pull_link_ = build_pull(pipe.edge_into(*d, 0), h, nullptr);
        d->pull_span_link_ = build_pull_span(pipe.edge_into(*d, 0));
      }
    }
  }

 private:
  /// Register a component for control dispatch on `h` (idempotent; a buffer
  /// is reached from both of its sections and keeps its first host).
  void reg(Component& c, HostContext& h, SectionLock* lock) {
    if (R.host_of_comp_.count(&c) != 0) return;
    R.host_of_comp_[&c] = h.tid();
    h.hosted_.push_back(&c);
    c.shared_lock_ = lock;
  }

  // ---- push side ------------------------------------------------------------

  PushFn build_push(const Edge* e, HostContext& h, SectionLock* lock) {
    Component& c = *e->to;
    Realization* Rp = &R;
    switch (c.style()) {
      case Style::kPassiveSink: {
        auto* s = static_cast<PassiveSink*>(&c);
        reg(c, h, lock);
        return [s](Item x) {
          if (x.is_eos()) {
            s->on_eos();
            return;
          }
          if (x.is_nil()) return;
          s->consume(std::move(x));
        };
      }
      case Style::kBuffer: {
        auto* b = static_cast<Buffer*>(&c);
        reg(c, h, lock);
        return [b, Rp](Item x) { b->put(std::move(x), Rp->current_host()); };
      }
      case Style::kFunction: {
        auto* f = static_cast<FunctionComponent*>(&c);
        reg(c, h, lock);
        PushFn inner = build_push(pipe.edge_from(c, 0), h, lock);
        // The paper's trivial glue: void push(item x){next->push(fct(x));}
        return [f, inner](Item x) {
          if (!x.is_data()) {
            inner(std::move(x));
            return;
          }
          inner(f->convert(std::move(x)));
        };
      }
      case Style::kConsumer: {
        // Push-mode consumer: called directly (Figure 9 a, c, g, h).
        auto* k = static_cast<Consumer*>(&c);
        reg(c, h, lock);
        k->push_link_ = build_push(pipe.edge_from(c, 0), h, lock);
        return [k](Item x) {
          if (x.is_eos()) {
            k->flush();  // may emit leftovers through push_link_
            k->push_link_(std::move(x));
            return;
          }
          if (x.is_nil()) return;
          k->push(std::move(x));
        };
      }
      case Style::kProducer:
      case Style::kActive:
        // Producer used in push mode, or an active object: coroutine.
        return make_push_coroutine(c, lock);
      case Style::kTee:
        return build_push_tee(e, h, lock);
      default:
        assert(false && "planner admitted an illegal push target");
        return {};
    }
  }

  PushFn build_push_tee(const Edge* e, HostContext& h, SectionLock* lock) {
    Component& c = *e->to;
    Realization* Rp = &R;
    if (auto* mc = dynamic_cast<MulticastTee*>(&c)) {
      reg(c, h, lock);
      std::vector<PushFn> outs;
      outs.reserve(static_cast<std::size_t>(mc->out_port_count()));
      for (int port = 0; port < mc->out_port_count(); ++port) {
        outs.push_back(build_push(pipe.edge_from(c, port), h, lock));
      }
      return [outs](Item x) {
        for (const PushFn& out : outs) out(x);  // copies share the payload
      };
    }
    if (auto* sw = dynamic_cast<RoutingSwitch*>(&c)) {
      reg(c, h, lock);
      std::vector<PushFn> outs;
      outs.reserve(static_cast<std::size_t>(sw->out_port_count()));
      for (int port = 0; port < sw->out_port_count(); ++port) {
        outs.push_back(build_push(pipe.edge_from(c, port), h, lock));
      }
      return [sw, outs](Item x) {
        if (!x.is_data()) {
          for (const PushFn& out : outs) out(x);  // EOS/nil fan out
          return;
        }
        const int i = sw->select(x);
        if (i < 0 || i >= static_cast<int>(outs.size())) {
          ++sw->dropped_;
          return;
        }
        outs[static_cast<std::size_t>(i)](std::move(x));
      };
    }
    if (auto* mt = dynamic_cast<MergeTee*>(&c)) {
      // The tail beyond the merge is shared between all pushing sections;
      // build it once and serialize entry.
      Realization::SharedTail* tail;
      auto it = tails_by_tee_.find(&c);
      if (it == tails_by_tee_.end()) {
        auto owned = std::make_unique<Realization::SharedTail>();
        tail = owned.get();
        R.tails_.push_back(std::move(owned));
        tails_by_tee_[&c] = tail;
        reg(c, h, &tail->lock);
        tail->push = build_push(pipe.edge_from(c, 0), h, &tail->lock);
      } else {
        tail = it->second;
      }
      const int ins = mt->in_port_count();
      return [mt, tail, Rp, ins](Item x) {
        HostContext& host = Rp->current_host();
        tail->lock.acquire(host);
        try {
          if (x.is_eos()) {
            // Forward EOS only once every input branch has ended.
            if (++mt->eos_seen_ >= ins) tail->push(std::move(x));
          } else {
            tail->push(std::move(x));
          }
        } catch (...) {
          tail->lock.release(host);
          throw;
        }
        tail->lock.release(host);
      };
    }
    assert(false && "planner admitted an illegal tee in push mode");
    return {};
  }

  // ---- pull side -------------------------------------------------------------

  PullFn build_pull(const Edge* e, HostContext& h, SectionLock* lock) {
    Component& c = *e->from;
    Realization* Rp = &R;
    switch (c.style()) {
      case Style::kPassiveSource: {
        auto* s = static_cast<PassiveSource*>(&c);
        reg(c, h, lock);
        auto done = std::make_shared<bool>(false);
        return [s, done]() -> Item {
          if (*done) throw EndOfStream{};
          Item x = s->generate();
          if (x.is_eos()) {
            *done = true;
            throw EndOfStream{};
          }
          return x;
        };
      }
      case Style::kBuffer: {
        auto* b = static_cast<Buffer*>(&c);
        reg(c, h, lock);
        return [b, Rp]() -> Item {
          Item x = b->take(Rp->current_host());
          if (x.is_eos()) throw EndOfStream{};
          return x;  // data or nil (empty buffer, nil policy)
        };
      }
      case Style::kFunction: {
        auto* f = static_cast<FunctionComponent*>(&c);
        reg(c, h, lock);
        PullFn inner = build_pull(pipe.edge_into(c, 0), h, lock);
        // item pull() { return fct(prev->pull()); }
        return [f, inner]() -> Item {
          Item x = inner();
          if (!x.is_data()) return x;  // nil passes through untouched
          return f->convert(std::move(x));
        };
      }
      case Style::kProducer: {
        // Pull-mode producer: called directly (Figure 9 a, e, h).
        auto* p = static_cast<Producer*>(&c);
        reg(c, h, lock);
        p->pull_link_ = build_pull(pipe.edge_into(c, 0), h, lock);
        return [p]() -> Item { return p->pull(); };
      }
      case Style::kConsumer:
      case Style::kActive:
        // Consumer used in pull mode, or an active object: coroutine.
        return make_pull_coroutine(c, lock);
      case Style::kTee:
        return build_pull_tee(e, h, lock);
      default:
        assert(false && "planner admitted an illegal pull source");
        return {};
    }
  }

  PullFn build_pull_tee(const Edge* e, HostContext& h, SectionLock* lock) {
    Component& c = *e->from;
    Realization* Rp = &R;
    if (auto* ct = dynamic_cast<CombineTee*>(&c)) {
      reg(c, h, lock);
      std::vector<PullFn> ins;
      ins.reserve(static_cast<std::size_t>(ct->in_port_count()));
      for (int port = 0; port < ct->in_port_count(); ++port) {
        ins.push_back(build_pull(pipe.edge_into(c, port), h, lock));
      }
      return [ct, ins]() -> Item {
        std::vector<Item> xs;
        xs.reserve(ins.size());
        for (const PullFn& in : ins) {
          Item x = in();  // EndOfStream from any input ends the combine
          if (x.is_nil()) return Item::nil();
          xs.push_back(std::move(x));
        }
        return ct->combine(std::move(xs));
      };
    }
    if (dynamic_cast<BalancingSwitch*>(&c) != nullptr) {
      // The head upstream of the switch is shared between all pulling
      // sections; build it once and serialize entry.
      Realization::SharedTail* tail;
      auto it = tails_by_tee_.find(&c);
      if (it == tails_by_tee_.end()) {
        auto owned = std::make_unique<Realization::SharedTail>();
        tail = owned.get();
        R.tails_.push_back(std::move(owned));
        tails_by_tee_[&c] = tail;
        reg(c, h, &tail->lock);
        tail->pull = build_pull(pipe.edge_into(c, 0), h, &tail->lock);
      } else {
        tail = it->second;
      }
      return [tail, Rp]() -> Item {
        HostContext& host = Rp->current_host();
        tail->lock.acquire(host);
        try {
          Item x = tail->pull();
          tail->lock.release(host);
          return x;
        } catch (...) {
          tail->lock.release(host);
          throw;
        }
      };
    }
    assert(false && "planner admitted an illegal tee in pull mode");
    return {};
  }

  // ---- span glue (PR 6) -------------------------------------------------------
  //
  // Built AFTER the per-item builders, which did all the registration and
  // coroutine spawning; these walks are pure and return an empty function
  // for any chain containing a member with no native span path (coroutines,
  // tees, push-mode consumers, pull-mode producers). The driver then simply
  // never uses the span path on that side — batching degrades to the
  // per-item glue, it never partially applies.

  PushSpanFn build_push_span(const Edge* e) {
    Component& c = *e->to;
    Realization* Rp = &R;
    switch (c.style()) {
      case Style::kPassiveSink: {
        auto* s = static_cast<PassiveSink*>(&c);
        return [s](ItemSpan xs) { s->consume_span(xs); };
      }
      case Style::kBuffer: {
        auto* b = static_cast<Buffer*>(&c);
        return [b, Rp](ItemSpan xs) { b->put_span(xs, Rp->current_host()); };
      }
      case Style::kFunction: {
        auto* f = static_cast<FunctionComponent*>(&c);
        PushSpanFn inner = build_push_span(pipe.edge_from(c, 0));
        if (!inner) return {};
        return [f, inner](ItemSpan xs) {
          f->convert_span(xs);
          inner(xs);
        };
      }
      default:
        return {};
    }
  }

  PullSpanFn build_pull_span(const Edge* e) {
    Component& c = *e->from;
    Realization* Rp = &R;
    switch (c.style()) {
      case Style::kPassiveSource: {
        auto* s = static_cast<PassiveSource*>(&c);
        auto done = std::make_shared<bool>(false);
        return [s, done](ItemSpan out) -> std::size_t {
          if (*done) throw EndOfStream{};
          const std::size_t n = s->generate_span(out);
          if (n == 0 || (n == 1 && out[0].is_eos())) {
            *done = true;
            throw EndOfStream{};
          }
          return n;
        };
      }
      case Style::kBuffer: {
        auto* b = static_cast<Buffer*>(&c);
        return [b, Rp](ItemSpan out) -> std::size_t {
          const std::size_t n = b->take_span(out, Rp->current_host());
          if (n == 1 && out[0].is_eos()) throw EndOfStream{};
          return n;
        };
      }
      case Style::kFunction: {
        auto* f = static_cast<FunctionComponent*>(&c);
        PullSpanFn inner = build_pull_span(pipe.edge_into(c, 0));
        if (!inner) return {};
        return [f, inner](ItemSpan out) -> std::size_t {
          const std::size_t n = inner(out);
          f->convert_span(out.first(n));
          return n;
        };
      }
      default:
        return {};
    }
  }

  // ---- coroutine creation (the Figure 7 wrappers) ------------------------------

  struct SpawnedCoroutine {
    CoroutineRec* rec;
    HostContext* host;
  };

  SpawnedCoroutine spawn_coroutine(Component& c, SectionLock* lock) {
    auto owned = std::make_unique<CoroutineRec>();
    CoroutineRec* rec = owned.get();
    rec->comp = &c;
    R.coroutines_.push_back(std::move(owned));
    Realization* Rp = &R;
    const rt::ThreadId tid = R.rt_->spawn(
        c.name() + ".co", rt::kPriorityData,
        [Rp, rec](rt::Runtime&, rt::Message m) {
          return Rp->coroutine_code(Rp->current_host(), *rec, std::move(m));
        });
    rec->tid = tid;
    HostContext& ch = R.new_host(tid);
    ch.driver_ = current_driver_;
    // The coroutine component's control events are dispatched on its own
    // thread, serialized with its data processing by construction — no lock
    // needed even inside a shared region.
    reg(c, ch, nullptr);
    (void)lock;
    return SpawnedCoroutine{rec, &ch};
  }

  /// Producer or active object used in push mode: inputs arrive over the
  /// channel, outputs continue down the chain on the coroutine's thread.
  PushFn make_push_coroutine(Component& c, SectionLock* lock) {
    SpawnedCoroutine sc = spawn_coroutine(c, lock);
    CoroutineRec* rec = sc.rec;
    Realization* Rp = &R;
    PushFn inner = build_push(pipe.edge_from(c, 0), *sc.host, nullptr);

    if (auto* a = dynamic_cast<ActiveComponent*>(&c)) {
      a->pull_link_ = [Rp, rec]() { return co_get_input(*Rp, *rec); };
      a->push_link_ = inner;
      rec->main = [Rp, rec, a, inner]() {
        try {
          a->run();
        } catch (EndOfStream&) {
          a->flush();
          inner(Item::eos());
        } catch (StopFlow&) {
          // section stopped while blocked in a buffer: pause cleanly
        }
        co_final_done(*Rp, *rec);
      };
    } else {
      auto* p = static_cast<Producer*>(&c);
      p->pull_link_ = [Rp, rec]() { return co_get_input(*Rp, *rec); };
      // Figure 7a: while (running) { x = this->pull(); next->push(x); }
      rec->main = [Rp, rec, p, inner]() {
        try {
          for (;;) {
            Item y = p->pull();
            inner(std::move(y));
          }
        } catch (EndOfStream&) {
          p->flush();
          inner(Item::eos());
        } catch (StopFlow&) {
        }
        co_final_done(*Rp, *rec);
      };
    }

    const rt::ThreadId tid = rec->tid;
    auto done = std::make_shared<bool>(false);
    return [Rp, tid, done](Item x) {
      if (*done) return;
      const bool eos = x.is_eos();
      channel_push(*Rp, tid, std::move(x));
      if (eos) *done = true;
    };
  }

  /// Consumer or active object used in pull mode: pulls propagate upstream
  /// on the coroutine's thread, outputs are delivered over the channel.
  PullFn make_pull_coroutine(Component& c, SectionLock* lock) {
    SpawnedCoroutine sc = spawn_coroutine(c, lock);
    CoroutineRec* rec = sc.rec;
    Realization* Rp = &R;
    PullFn upstream = build_pull(pipe.edge_into(c, 0), *sc.host, nullptr);

    if (auto* a = dynamic_cast<ActiveComponent*>(&c)) {
      a->pull_link_ = upstream;
      a->push_link_ = [Rp, rec](Item y) { co_deliver(*Rp, *rec, std::move(y)); };
      rec->main = [Rp, rec, a]() {
        try {
          a->run();
          // run() returned (STOP): release a requester stuck in pull. An
          // unconsumed initial kMsgCoPull counts as a pending request.
          if (rec->initial) co_need_pull(*Rp, *rec);
          if (rec->pending_pulls > 0) co_deliver(*Rp, *rec, Item::nil());
        } catch (EndOfStream&) {
          a->flush();
          co_deliver(*Rp, *rec, Item::eos());
          rec->finished = true;
        } catch (StopFlow&) {
          if (rec->initial) co_need_pull(*Rp, *rec);
          if (rec->pending_pulls > 0) co_deliver(*Rp, *rec, Item::nil());
        }
      };
    } else {
      auto* k = static_cast<Consumer*>(&c);
      k->push_link_ = [Rp, rec](Item y) { co_deliver(*Rp, *rec, std::move(y)); };
      // Figure 7b: while (running) { x = prev->pull(); this->push(x); }
      rec->main = [Rp, rec, k, upstream]() {
        try {
          for (;;) {
            co_need_pull(*Rp, *rec);  // no upstream pull before demand
            Item x = upstream();
            if (x.is_nil()) {
              co_deliver(*Rp, *rec, std::move(x));
              continue;
            }
            k->push(std::move(x));
          }
        } catch (EndOfStream&) {
          k->flush();  // may deliver leftovers first
          co_deliver(*Rp, *rec, Item::eos());
          rec->finished = true;
        } catch (StopFlow&) {
          if (rec->pending_pulls > 0) co_deliver(*Rp, *rec, Item::nil());
        }
      };
    }

    const rt::ThreadId tid = rec->tid;
    auto done = std::make_shared<bool>(false);
    return [Rp, tid, done]() -> Item {
      if (*done) throw EndOfStream{};
      Item x = channel_pull(*Rp, tid);
      if (x.is_eos()) {
        *done = true;
        throw EndOfStream{};
      }
      return x;
    };
  }

  Realization& R;
  const Pipeline& pipe;
  Driver* current_driver_ = nullptr;
  std::map<const Component*, Realization::SharedTail*> tails_by_tee_;
};

// ============================ Realization ===================================

Realization::Realization(rt::Runtime& rt, const Pipeline& p)
    : rt_(&rt), pipe_(&p), plan_(::infopipe::plan(p)) {
  for (Component* c : p.components()) {
    if (c->realization_ != nullptr) {
      throw CompositionError(c->name() +
                             " is already part of a realized pipeline");
    }
  }
  for (Component* c : p.components()) {
    c->realization_ = this;
    c->running_ = false;
    c->shared_lock_ = nullptr;
    c->upstream_neighbor_.assign(
        static_cast<std::size_t>(c->in_port_count()), nullptr);
    c->downstream_neighbor_.assign(
        static_cast<std::size_t>(c->out_port_count()), nullptr);
    if (auto* mt = dynamic_cast<MergeTee*>(c)) mt->eos_seen_ = 0;
  }
  for (const Edge& e : p.edges()) {
    e.from->downstream_neighbor_[static_cast<std::size_t>(e.out_port)] = e.to;
    e.to->upstream_neighbor_[static_cast<std::size_t>(e.in_port)] = e.from;
  }
  Wiring(*this).build();
  for (Component* c : p.components()) c->on_realized();

  // Hot-path metric handles: resolved once here, incremented without any
  // lookup in the glue. The collector republishes per-driver/per-buffer
  // stats into every registry snapshot and must be removed before `this`
  // dies (see the destructor).
  obs::MetricsRegistry& mr = rt.metrics();
  obs_.handoffs = &mr.counter("core.handoffs");
  obs_.handoff_ns = &mr.histogram("core.handoff_ns");
  obs_.control_dispatched = &mr.counter("core.control_dispatched");
  obs_.control_while_blocked = &mr.counter("core.control_while_blocked");
  obs_.driver_cycles = &mr.counter("core.driver_cycles");
  obs_.batch_items = &mr.histogram("core.batch_items");
  obs_collector_ = mr.add_collector(
      [this](obs::MetricsSnapshot& s) { publish(stats_snapshot(), s); });
}

namespace {
const Pipeline& deref_pipeline(const std::shared_ptr<const Pipeline>& p) {
  if (p == nullptr) {
    throw CompositionError("Realization: null pipeline");
  }
  return *p;
}
}  // namespace

Realization::Realization(rt::Runtime& rt, std::shared_ptr<const Pipeline> p)
    : Realization(rt, deref_pipeline(p)) {
  pipe_owner_ = std::move(p);
}

Realization::~Realization() {
  rt_->metrics().remove_collector(obs_collector_);
  for (rt::ThreadId t : all_threads_) {
    if (rt_->alive(t)) rt_->kill(t);
  }
  unbind_components();
}

void Realization::unbind_components() {
  for (Component* c : pipe_->components()) {
    c->realization_ = nullptr;
    c->running_ = false;
    c->shared_lock_ = nullptr;
    c->upstream_neighbor_.clear();
    c->downstream_neighbor_.clear();
    if (auto* a = dynamic_cast<ActiveComponent*>(c)) {
      a->pull_link_ = {};
      a->push_link_ = {};
    } else if (auto* k = dynamic_cast<Consumer*>(c)) {
      k->push_link_ = {};
    } else if (auto* pr = dynamic_cast<Producer*>(c)) {
      pr->pull_link_ = {};
    } else if (auto* d = dynamic_cast<Driver*>(c)) {
      d->pull_link_ = {};
      d->push_link_ = {};
      d->pull_span_link_ = {};
      d->push_span_link_ = {};
    }
  }
}

HostContext& Realization::new_host(rt::ThreadId tid) {
  hosts_.push_back(std::unique_ptr<HostContext>(new HostContext(*this, tid)));
  HostContext* h = hosts_.back().get();
  host_by_tid_[tid] = h;
  all_threads_.push_back(tid);
  return *h;
}

HostContext& Realization::current_host() {
  auto it = host_by_tid_.find(rt_->current());
  if (it == host_by_tid_.end()) {
    throw rt::RuntimeError(
        "middleware operation outside a pipeline thread (current thread is "
        "not hosted by this realization)");
  }
  return *it->second;
}

rt::ThreadId Realization::host_thread(const Component& c) const {
  auto it = host_of_comp_.find(&c);
  return it == host_of_comp_.end() ? rt::kNoThread : it->second;
}

Component* Realization::find_component(std::string_view name) const {
  for (Component* c : pipe_->components()) {
    if (c->name() == name) return c;
  }
  return nullptr;
}

PlanInfo Realization::plan_info() const {
  return plan_info_of(*pipe_, plan_, all_threads_.size());
}

StatsSnapshot Realization::stats_snapshot() {
  StatsSnapshot snap;
  snap.when = rt_->now();
  for (Component* c : pipe_->components()) {
    if (auto* d = dynamic_cast<Driver*>(c)) {
      snap.drivers.push_back(DriverStats{d->name(), d->items_pumped(),
                                         d->deadline_misses(), d->running()});
    } else if (auto* b = dynamic_cast<Buffer*>(c)) {
      const auto& s = b->stats();
      snap.buffers.push_back(BufferStats{b->name(), b->fill(), b->capacity(),
                                         s.max_fill, s.puts, s.takes, s.drops,
                                         s.nil_returns, s.put_blocks,
                                         s.take_blocks});
    }
  }
  return snap;
}

int Realization::running_drivers() const {
  int n = 0;
  for (const auto& sec : plan_.sections) {
    if (sec.driver->running_) ++n;
  }
  return n;
}

void Realization::post_event(const Event& e) {
  if (listener_) listener_(e);
  for (const auto& host : hosts_) {
    rt::Message m{detail::kMsgControl, rt::MsgClass::kControl};
    m.constraint = rt::Constraint{rt::kPriorityControl, rt::kTimeNever};
    m.payload = ControlDispatch{nullptr, e};
    rt_->send(host->tid(), std::move(m));
  }
}

void Realization::post_event_external(const Event& e) {
  // hosts_ and each host's tid are immutable after construction, so reading
  // them from a foreign kernel thread is safe; delivery goes through the
  // runtime's one thread-safe entry point.
  for (const auto& host : hosts_) {
    rt::Message m{detail::kMsgControl, rt::MsgClass::kControl};
    m.constraint = rt::Constraint{rt::kPriorityControl, rt::kTimeNever};
    m.payload = ControlDispatch{nullptr, e};
    rt_->post_external(host->tid(), std::move(m));
  }
}

void Realization::post_event_to(Component& c, const Event& e) {
  post_event_to_after(c, e, 0);
}

void Realization::post_event_to_external(Component& c, const Event& e) {
  // host_of_comp_ is immutable after construction, so the lookup is safe
  // from a foreign kernel thread; delivery goes through the runtime's one
  // thread-safe entry point and lands at the host's dispatch points — the
  // targeted twin of post_event_external.
  auto it = host_of_comp_.find(&c);
  if (it == host_of_comp_.end()) {
    throw CompositionError(c.name() + " is not hosted by this realization");
  }
  rt::Message m{detail::kMsgControl, rt::MsgClass::kControl};
  m.constraint = rt::Constraint{rt::kPriorityControl, rt::kTimeNever};
  m.payload = ControlDispatch{&c, e};
  rt_->post_external(it->second, std::move(m));
}

void Realization::post_event_to_after(Component& c, const Event& e,
                                      rt::Time delay) {
  auto it = host_of_comp_.find(&c);
  if (it == host_of_comp_.end()) {
    throw CompositionError(c.name() + " is not hosted by this realization");
  }
  rt::Message m{detail::kMsgControl, rt::MsgClass::kControl};
  m.constraint = rt::Constraint{rt::kPriorityControl, rt::kTimeNever};
  m.payload = ControlDispatch{&c, e};
  if (delay > 0) {
    rt_->send_at(rt_->now() + delay, it->second, std::move(m));
  } else {
    rt_->send(it->second, std::move(m));
  }
}

// ---- thread code functions ----------------------------------------------------

rt::CodeResult Realization::driver_code(HostContext& h, Driver& d,
                                        rt::Message m) {
  if (m.cls == rt::MsgClass::kControl) {
    try {
      h.dispatch(std::move(m));
      if (h.terminate_requested()) return rt::CodeResult::kTerminate;
      if (d.running_) run_driver(h, d);
      if (h.terminate_requested()) return rt::CodeResult::kTerminate;
    } catch (ShutdownSignal&) {
      return rt::CodeResult::kTerminate;
    }
  }
  // Stale data/timer messages (late ticks, channel leftovers) are dropped.
  return rt::CodeResult::kContinue;
}

void Realization::run_driver(HostContext& h, Driver& d) {
  // §3.1: pumps with a declared cost estimate reserve CPU at setup; an
  // over-committed schedule is refused before any data moves.
  bool reserved = false;
  if (d.cost_estimate() > 0) {
    if (const auto period = d.nominal_period()) {
      if (!rt_->reservations().admit(
              h.tid(), rt::Reservation{*period, d.cost_estimate()})) {
        d.running_ = false;
        post_event(Event{kEventReservationDenied, d.name()});
        return;
      }
      reserved = true;
    }
  }
  struct ReleaseGuard {
    rt::Runtime* rt;
    rt::ThreadId tid;
    bool active;
    ~ReleaseGuard() {
      if (active) rt->reservations().release(tid);
    }
  } guard{rt_, h.tid(), reserved};

  d.prepare(rt_->now());
  while (d.running_) {
    const rt::Time now = rt_->now();
    const rt::Time fire = d.next_fire(now);
    if (fire < now) ++d.deadline_misses_;  // running behind schedule
    // The pump assigns the scheduling constraint; every message sent while
    // processing this cycle inherits it, governing the whole coroutine set.
    rt_->set_active_constraint(rt::Constraint{d.priority(), fire});
    if (fire > now) {
      const std::uint64_t gen = ++h.tick_gen_;
      rt::Message tick{detail::kMsgTick, rt::MsgClass::kTimer};
      tick.payload = gen;
      rt_->send_at(fire, h.tid(), std::move(tick));
      for (;;) {
        rt::Message tm = h.wait([](const rt::Message& x) {
          return x.type == detail::kMsgTick;
        });
        const auto* g = tm.get<std::uint64_t>();
        if (g != nullptr && *g == gen) break;  // stale ticks are discarded
      }
      if (!d.running_) break;  // STOP arrived during the wait
    }
    obs_.driver_cycles->inc();
    try {
      d.cycle();
    } catch (EndOfStream&) {
      try {
        if (d.has_push_link()) d.push_link_(Item::eos());
      } catch (StopFlow&) {
      }
      if (auto* s = dynamic_cast<ActiveSink*>(&d)) s->on_eos();
      d.running_ = false;
      rt_->set_active_constraint(std::nullopt);
      post_event(Event{kEventEndOfStream, d.name()});
      return;
    } catch (StopFlow&) {
      break;
    }
    // Control events that arrived during the cycle are delivered now, before
    // the next data processing step (§3.2).
    h.poll_control();
  }
  rt_->set_active_constraint(std::nullopt);
}

rt::CodeResult Realization::coroutine_code(HostContext& h, CoroutineRec& rec,
                                           rt::Message m) {
  if (m.cls == rt::MsgClass::kControl) {
    try {
      h.dispatch(std::move(m));
    } catch (ShutdownSignal&) {
      return rt::CodeResult::kTerminate;
    }
    return h.terminate_requested() ? rt::CodeResult::kTerminate
                                   : rt::CodeResult::kContinue;
  }
  if (m.type == detail::kMsgCoItem || m.type == detail::kMsgCoPull) {
    if (rec.finished) {
      // Post-EOS service: answer instead of re-running the main function.
      if (m.type == detail::kMsgCoPull) {
        rt::Message r{detail::kMsgCoItem, rt::MsgClass::kData};
        r.payload = Item::eos();
        rt_->send(m.sender, std::move(r));
      } else {
        rt_->send(m.sender,
                  rt::Message{detail::kMsgCoDone, rt::MsgClass::kData});
      }
      return rt::CodeResult::kContinue;
    }
    rec.initial = std::move(m);
    try {
      rec.main();
    } catch (ShutdownSignal&) {
      return rt::CodeResult::kTerminate;
    }
    return rt::CodeResult::kContinue;
  }
  return rt::CodeResult::kContinue;  // stale notifications
}

}  // namespace infopipe
