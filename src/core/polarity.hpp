// Port polarity algebra (§2.3 of the paper).
//
// "A positive out-port will make calls to push, while a negative out-port
//  has the ability to receive a pull. Correspondingly, a positive in-port
//  will make calls to pull, while a negative in-port represents the
//  willingness to receive a push. Ports with opposite polarity may be
//  connected, but an attempt to connect two ports with the same polarity is
//  an error."
//
// Filters and filter chains carry the polymorphic polarity α→α: once one end
// is connected to a fixed port, the other end acquires an *induced*
// polarity. The composition engine (planner.cpp) performs that propagation;
// this header defines the algebra it uses.
#pragma once

#include <optional>
#include <string>

namespace infopipe {

enum class Polarity {
  kPositive,     ///< the port initiates calls (push for out, pull for in)
  kNegative,     ///< the port receives calls
  kPolymorphic,  ///< α: fixed by induction when the pipeline is composed
};

/// The direction a connected edge operates in once polarities are resolved.
/// Push: the upstream side drives (its out-port is positive).
/// Pull: the downstream side drives (its in-port is positive).
enum class FlowMode { kPush, kPull };

/// Can an out-port of polarity `out` legally connect to an in-port of
/// polarity `in`? Same fixed polarity is the composition error from §2.3;
/// anything involving a polymorphic port is legal (resolved later).
[[nodiscard]] constexpr bool connectable(Polarity out, Polarity in) {
  if (out == Polarity::kPolymorphic || in == Polarity::kPolymorphic) {
    return true;
  }
  return out != in;
}

/// Resolved mode of an edge given fixed polarities of its two ports.
/// Precondition: connectable(out, in) and neither is polymorphic.
[[nodiscard]] constexpr FlowMode edge_mode(Polarity out) {
  return out == Polarity::kPositive ? FlowMode::kPush : FlowMode::kPull;
}

/// The polarity an out-port must have to operate in `m`.
[[nodiscard]] constexpr Polarity out_polarity_for(FlowMode m) {
  return m == FlowMode::kPush ? Polarity::kPositive : Polarity::kNegative;
}

/// The polarity an in-port must have to operate in `m`.
[[nodiscard]] constexpr Polarity in_polarity_for(FlowMode m) {
  return m == FlowMode::kPush ? Polarity::kNegative : Polarity::kPositive;
}

[[nodiscard]] std::string to_string(Polarity p);
[[nodiscard]] std::string to_string(FlowMode m);

}  // namespace infopipe
