#include "core/planner.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>

#include "core/buffer.hpp"
#include "core/tee.hpp"

namespace infopipe {

namespace {

bool is_driver(const Component& c) {
  switch (c.style()) {
    case Style::kPump:
    case Style::kActiveSource:
    case Style::kActiveSink:
      return true;
    default:
      return false;
  }
}

bool is_boundary(const Component& c) {
  switch (c.style()) {
    case Style::kBuffer:
    case Style::kPassiveSource:
    case Style::kPassiveSink:
      return true;
    default:
      return false;
  }
}

/// Does this mid-pipeline component need a coroutine in the given mode?
/// (The Figure 9 rule.)
bool needs_coroutine(const Component& c, FlowMode m) {
  switch (c.style()) {
    case Style::kActive:
      return true;  // a main function always needs its own control flow
    case Style::kConsumer:
      return m == FlowMode::kPull;  // push-mode consumers are called directly
    case Style::kProducer:
      return m == FlowMode::kPush;  // pull-mode producers are called directly
    case Style::kFunction:
    case Style::kTee:
      return false;  // trivially adapted glue in either mode
    default:
      return false;  // drivers/boundaries never appear as section members
  }
}

class PlannerImpl {
 public:
  explicit PlannerImpl(const Pipeline& p) : pipe_(p) {}

  Plan run() {
    validate_ports_connected();
    collect_drivers();
    for (Driver* d : drivers_) walk_section(*d);
    validate_everything_driven();
    validate_control_capabilities();
    propagate_typespecs();
    return std::move(plan_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw CompositionError(msg);
  }

  void validate_ports_connected() {
    for (Component* c : pipe_.components()) {
      for (int i = 0; i < c->in_port_count(); ++i) {
        if (pipe_.edge_into(*c, i) == nullptr) {
          fail(c->name() + ": in-port " + std::to_string(i) +
               " is unconnected");
        }
      }
      for (int i = 0; i < c->out_port_count(); ++i) {
        if (pipe_.edge_from(*c, i) == nullptr) {
          fail(c->name() + ": out-port " + std::to_string(i) +
               " is unconnected");
        }
      }
    }
  }

  void collect_drivers() {
    for (Component* c : pipe_.components()) {
      if (is_driver(*c)) drivers_.push_back(static_cast<Driver*>(c));
    }
    if (drivers_.empty() && !pipe_.components().empty()) {
      fail("pipeline has no pump, active source or active sink: nothing can "
           "drive the flow");
    }
  }

  void set_edge_mode(const Edge* e, FlowMode m) {
    auto [it, inserted] = plan_.edge_mode.emplace(e, m);
    if (!inserted && it->second != m) {
      fail("conflicting flow modes on the connection " + e->from->name() +
           " -> " + e->to->name() +
           ": two drivers operate it; insert a buffer between them");
    }
  }

  void note_visit(Component& c, Driver& d, FlowMode m, bool shared) {
    auto it = visited_by_.find(&c);
    if (it != visited_by_.end()) {
      if (it->second == &d) {
        fail("cycle detected at component " + c.name());
      }
      if (!shared) {
        fail("component " + c.name() + " is driven by both " +
             it->second->name() + " and " + d.name() +
             ": insert a buffer between the two sections");
      }
      return;  // shared region, already a member of the first section
    }
    visited_by_.emplace(&c, &d);
    current_section_->members.push_back(
        Plan::Hosted{&c, m, needs_coroutine(c, m), shared});
  }

  void walk_section(Driver& d) {
    plan_.sections.push_back(Plan::Section{&d, {}});
    current_section_ = &plan_.sections.back();
    visited_by_.emplace(&d, &d);
    for (int port = 0; port < d.out_port_count(); ++port) {
      walk_push(pipe_.edge_from(d, port), d, /*shared=*/false);
    }
    for (int port = 0; port < d.in_port_count(); ++port) {
      walk_pull(pipe_.edge_into(d, port), d, /*shared=*/false);
    }
  }

  /// Walk downstream in push mode, starting from edge `e`.
  void walk_push(const Edge* e, Driver& d, bool shared) {
    set_edge_mode(e, FlowMode::kPush);
    Component& c = *e->to;
    if (is_boundary(c)) return;  // buffer or passive sink: section ends
    if (is_driver(c)) {
      fail("driver " + c.name() + " is pushed into by driver " + d.name() +
           ": two active ends collide; insert a buffer between them");
    }
    if (auto* merge = dynamic_cast<MergeTee*>(&c)) {
      // Several drivers push into a merge; the tail beyond it is shared.
      const bool first = merged_continued_.insert(merge).second;
      note_visit(c, d, FlowMode::kPush, /*shared=*/true);
      if (first) {
        walk_push(pipe_.edge_from(c, 0), d, /*shared=*/true);
      }
      return;
    }
    if (dynamic_cast<CombineTee*>(&c) != nullptr ||
        dynamic_cast<BalancingSwitch*>(&c) != nullptr) {
      fail(c.name() + " (" + to_string(c.style()) +
           ") cannot operate in push mode (its in-ports are active)");
    }
    note_visit(c, d, FlowMode::kPush, shared);
    for (int port = 0; port < c.out_port_count(); ++port) {
      walk_push(pipe_.edge_from(c, port), d, shared);
    }
  }

  /// Walk upstream in pull mode, starting from edge `e`.
  void walk_pull(const Edge* e, Driver& d, bool shared) {
    set_edge_mode(e, FlowMode::kPull);
    Component& c = *e->from;
    if (is_boundary(c)) return;  // buffer or passive source: section ends
    if (is_driver(c)) {
      fail("driver " + c.name() + " is pulled from by driver " + d.name() +
           ": two active ends collide; insert a buffer between them");
    }
    if (auto* bal = dynamic_cast<BalancingSwitch*>(&c)) {
      // Several drivers pull through the switch; upstream of it is shared.
      const bool first = merged_continued_.insert(bal).second;
      note_visit(c, d, FlowMode::kPull, /*shared=*/true);
      if (first) {
        walk_pull(pipe_.edge_into(c, 0), d, /*shared=*/true);
      }
      return;
    }
    if (dynamic_cast<MergeTee*>(&c) != nullptr ||
        dynamic_cast<MulticastTee*>(&c) != nullptr ||
        dynamic_cast<RoutingSwitch*>(&c) != nullptr) {
      fail(c.name() + " (" + to_string(c.style()) +
           ") cannot operate in pull mode: suspending pulls on its passive "
           "ports would require unbounded implicit buffering");
    }
    note_visit(c, d, FlowMode::kPull, shared);
    for (int port = 0; port < c.in_port_count(); ++port) {
      walk_pull(pipe_.edge_into(c, port), d, shared);
    }
  }

  void validate_everything_driven() {
    for (Component* c : pipe_.components()) {
      if (is_boundary(*c)) continue;
      if (visited_by_.find(c) == visited_by_.end()) {
        fail("component " + c->name() +
             " is not operated by any pump: no driver reaches it");
      }
    }
    // Boundaries need their edges operated too (a buffer nobody drains is a
    // dead end; so is a source nobody pulls).
    for (const Edge& e : pipe_.edges()) {
      if (plan_.edge_mode.find(&e) == plan_.edge_mode.end()) {
        fail("the connection " + e.from->name() + " -> " + e.to->name() +
             " is not operated by any pump (a section without a driver)");
      }
    }
  }

  /// §2.3: every control capability a component REQUIRES must be emitted
  /// by some component of the pipeline, or the pipeline is inoperable
  /// (e.g. a resizer that never learns the window size).
  void validate_control_capabilities() {
    StringSet emitted;
    for (Component* c : pipe_.components()) {
      for (const std::string& e : c->control_emits()) emitted.insert(e);
    }
    for (Component* c : pipe_.components()) {
      for (const std::string& need : c->control_requires()) {
        if (emitted.count(need) == 0) {
          fail("component " + c->name() + " requires control events '" +
               need + "' but nothing in the pipeline emits them");
        }
      }
    }
  }

  void propagate_typespecs() {
    // Topological order over the (acyclic) component graph.
    std::map<const Component*, int> indegree;
    for (Component* c : pipe_.components()) indegree[c] = c->in_port_count();
    std::deque<Component*> q;
    for (Component* c : pipe_.components()) {
      if (indegree[c] == 0) q.push_back(c);
    }
    std::map<const Component*, Typespec> in_merged;
    std::size_t processed = 0;
    while (!q.empty()) {
      Component* c = q.front();
      q.pop_front();
      ++processed;
      const Typespec in = in_merged.count(c) ? in_merged[c] : Typespec{};
      for (int port = 0; port < c->out_port_count(); ++port) {
        const Edge* e = pipe_.edge_from(*c, port);
        Typespec out = c->transform_downstream(in, 0, port);
        // Check against the consumer's stated requirement.
        const Typespec need = e->to->input_requirement(e->in_port);
        auto merged = out.intersect(need);
        if (!merged) {
          fail("flow type error on " + c->name() + " -> " + e->to->name() +
               ": offered " + out.to_string() + " but required " +
               need.to_string());
        }
        // User preferences (§2.3) further restrict the flow at this port.
        if (const Typespec* pref = pipe_.restriction(*e->to, e->in_port)) {
          auto preferred = merged->intersect(*pref);
          if (!preferred) {
            fail("user preference on " + e->to->name() + " (" +
                 pref->to_string() + ") cannot be satisfied by the flow " +
                 merged->to_string());
          }
          merged = preferred;
        }
        plan_.edge_spec[e] = *merged;
        // Merge into the consumer's input view (multi-input components see
        // the intersection of their input flows).
        auto it = in_merged.find(e->to);
        if (it == in_merged.end()) {
          in_merged[e->to] = *merged;
        } else {
          auto both = it->second.intersect(*merged);
          if (!both) {
            fail("incompatible flows meet at " + e->to->name());
          }
          it->second = *both;
        }
        if (--indegree[e->to] == 0) q.push_back(e->to);
      }
    }
    if (processed != pipe_.components().size()) {
      fail("pipeline graph contains a cycle");
    }
  }

  const Pipeline& pipe_;
  Plan plan_;
  std::vector<Driver*> drivers_;
  std::map<const Component*, Driver*> visited_by_;
  std::set<const Component*> merged_continued_;
  Plan::Section* current_section_ = nullptr;
};

}  // namespace

Plan plan(const Pipeline& p) { return PlannerImpl(p).run(); }

// ---- Multi-core sharding (ip_shard) -----------------------------------------

int Partition::shard_of(const Plan& plan, const Component& c) const {
  for (std::size_t i = 0; i < plan.sections.size(); ++i) {
    const Plan::Section& s = plan.sections[i];
    if (s.driver == &c) return shard_of_section[i];
    for (const Plan::Hosted& h : s.members) {
      if (h.comp == &c) return shard_of_section[i];
    }
  }
  return -1;
}

std::vector<int> Partition::threads_per_shard(const Plan& plan) const {
  std::vector<int> out(static_cast<std::size_t>(n_shards), 0);
  for (std::size_t i = 0; i < plan.sections.size(); ++i) {
    out[static_cast<std::size_t>(shard_of_section[i])] +=
        plan.sections[i].thread_count();
  }
  return out;
}

Partition partition(
    const Plan& plan, int n_shards,
    const std::vector<std::pair<const Component*, const Component*>>&
        colocate) {
  Partition part;
  part.n_shards = std::max(1, n_shards);
  const std::size_t ns = plan.sections.size();
  part.shard_of_section.assign(ns, 0);
  if (ns == 0) return part;

  // Section of every driver and member. Shared components (merge tails /
  // balance heads) are listed in one section; the edges below pull their
  // other neighbours into the same cluster anyway.
  std::map<const Component*, std::size_t> section_of;
  for (std::size_t i = 0; i < ns; ++i) {
    section_of.emplace(plan.sections[i].driver, i);
    for (const Plan::Hosted& h : plan.sections[i].members) {
      section_of.emplace(h.comp, i);
    }
  }

  // Union-find over sections.
  std::vector<std::size_t> parent(ns);
  for (std::size_t i = 0; i < ns; ++i) parent[i] = i;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  // An edge with both endpoints inside sections but in *different* sections
  // crosses a shared region (a pump feeding a MergeTee in another driver's
  // section, a BalancingSwitch feeding another pump). Such sections share a
  // SectionLock and must land on one shard; only buffer boundaries — where
  // one endpoint is outside every section — may be cut.
  for (const auto& [e, mode] : plan.edge_mode) {
    (void)mode;
    auto a = section_of.find(e->from);
    auto b = section_of.find(e->to);
    if (a != section_of.end() && b != section_of.end() &&
        a->second != b->second) {
      unite(a->second, b->second);
    }
  }
  for (const auto& [c1, c2] : colocate) {
    auto a = section_of.find(c1);
    auto b = section_of.find(c2);
    if (a != section_of.end() && b != section_of.end()) {
      unite(a->second, b->second);
    }
  }

  // Clusters, balanced by thread count: deterministic LPT greedy (heaviest
  // cluster first onto the least-loaded shard; ties by lowest index) — the
  // classic 4/3-approximation, and stable run to run because every ordering
  // is total.
  struct Cluster {
    std::size_t min_index;
    int weight = 0;
    std::vector<std::size_t> sections;
  };
  std::map<std::size_t, Cluster> by_root;
  for (std::size_t i = 0; i < ns; ++i) {
    Cluster& cl = by_root[find(i)];
    if (cl.sections.empty()) cl.min_index = i;
    cl.weight += plan.sections[i].thread_count();
    cl.sections.push_back(i);
  }
  std::vector<Cluster> clusters;
  clusters.reserve(by_root.size());
  for (auto& [root, cl] : by_root) clusters.push_back(std::move(cl));
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.weight != b.weight ? a.weight > b.weight
                                          : a.min_index < b.min_index;
            });
  std::vector<int> load(static_cast<std::size_t>(part.n_shards), 0);
  for (const Cluster& cl : clusters) {
    const auto lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[lightest] += cl.weight;
    for (std::size_t s : cl.sections) {
      part.shard_of_section[s] = static_cast<int>(lightest);
    }
  }

  part.cuts = cuts_for(plan, part.shard_of_section);

  // Migratability: a section may move alone only if its cluster is itself
  // (shared regions and colocation constraints move as a unit, which single-
  // section migration cannot do) and no hosted component is tied to an
  // external resource.
  part.migratable_section.assign(ns, 1);
  std::vector<int> cluster_size(ns, 0);
  for (std::size_t i = 0; i < ns; ++i) ++cluster_size[find(i)];
  for (std::size_t i = 0; i < ns; ++i) {
    if (cluster_size[find(i)] > 1) part.migratable_section[i] = 0;
    if (!plan.sections[i].driver->migratable()) part.migratable_section[i] = 0;
    for (const Plan::Hosted& h : plan.sections[i].members) {
      if (!h.comp->migratable()) part.migratable_section[i] = 0;
    }
  }
  return part;
}

std::vector<Partition::Cut> cuts_for(
    const Plan& plan, const std::vector<int>& shard_of_section) {
  std::map<const Component*, std::size_t> section_of;
  for (std::size_t i = 0; i < plan.sections.size(); ++i) {
    section_of.emplace(plan.sections[i].driver, i);
    for (const Plan::Hosted& h : plan.sections[i].members) {
      section_of.emplace(h.comp, i);
    }
  }
  // Boundary components (outside every section — i.e. buffers) whose
  // upstream and downstream sections sit on different shards.
  struct Sides {
    std::optional<std::size_t> up, down;
  };
  std::map<Component*, Sides> boundaries;
  for (const auto& [e, mode] : plan.edge_mode) {
    (void)mode;
    if (section_of.count(e->to) == 0) {
      if (auto a = section_of.find(e->from); a != section_of.end()) {
        boundaries[e->to].up = a->second;
      }
    }
    if (section_of.count(e->from) == 0) {
      if (auto b = section_of.find(e->to); b != section_of.end()) {
        boundaries[e->from].down = b->second;
      }
    }
  }
  std::vector<Partition::Cut> cuts;
  for (const auto& [comp, sides] : boundaries) {
    if (!sides.up || !sides.down) continue;  // passive endpoint, one side
    const int su = shard_of_section.at(*sides.up);
    const int sd = shard_of_section.at(*sides.down);
    if (su != sd) {
      cuts.push_back(Partition::Cut{comp, *sides.up, *sides.down});
    }
  }
  // The map above is keyed by pointer; re-order by section index so the cut
  // list (and thus channel naming downstream) is deterministic run to run.
  std::sort(cuts.begin(), cuts.end(),
            [](const Partition::Cut& a, const Partition::Cut& b) {
              return a.upstream_section != b.upstream_section
                         ? a.upstream_section < b.upstream_section
                         : a.downstream_section < b.downstream_section;
            });
  return cuts;
}

}  // namespace infopipe
