#include "core/config.hpp"

#include <cstdlib>
#include <string>

namespace infopipe {

InfopipeConfig& config() noexcept {
  static InfopipeConfig cfg = [] {
    InfopipeConfig c;
    if (const char* e = std::getenv("INFOPIPE_POOLING")) {
      const std::string v(e);
      c.pooling = !(v == "0" || v == "off" || v == "false");
    }
    return c;
  }();
  return cfg;
}

}  // namespace infopipe
