#include "core/config.hpp"

#include <cstdlib>
#include <string>

namespace infopipe {

InfopipeConfig& config() noexcept {
  static InfopipeConfig cfg = [] {
    InfopipeConfig c;
    const auto enabled = [](const char* name, bool dflt) {
      const char* e = std::getenv(name);
      if (e == nullptr) return dflt;
      const std::string v(e);
      return !(v == "0" || v == "off" || v == "false");
    };
    c.pooling = enabled("INFOPIPE_POOLING", c.pooling);
    c.batching = enabled("INFOPIPE_BATCH", c.batching);
    c.inline_payloads = enabled("INFOPIPE_INLINE", c.inline_payloads);
    c.sessions = enabled("INFOPIPE_SESSIONS", c.sessions);
    c.record = enabled("INFOPIPE_RECORD", c.record);
    c.elastic = enabled("INFOPIPE_ELASTIC", c.elastic);
    if (const char* s = std::getenv("INFOPIPE_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (end != s) c.seed = static_cast<std::uint64_t>(v);
    }
    // "sim" reads better than "off" for a transport selector; both work.
    const char* net = std::getenv("INFOPIPE_NET");
    c.real_net = net == nullptr ? c.real_net
                                : !(std::string(net) == "sim" ||
                                    !enabled("INFOPIPE_NET", true));
    return c;
  }();
  return cfg;
}

}  // namespace infopipe
