// LoadAccountant: decaying per-shard and per-cut load estimates (ip_balance).
//
// The rebalance policy needs two signals: how busy each shard's kernel
// thread is, and how congested each cross-shard channel is. Both are
// sampled without perturbing the flow:
//
//   * shard busy fraction — differences of rt::Runtime::service_busy_ns /
//     service_idle_ns between samples (the run_service loop splits its wall
//     time into stepping vs parked-on-the-doorbell), folded into an EWMA so
//     a momentary burst does not trigger a migration;
//   * channel load — the ShardChannel stat atomics (depth, producer and
//     consumer stall counters), readable from any thread by design; stall
//     counters are differenced into rates per second.
//
// In manual/deterministic mode there are no kernel threads and the busy
// split reads zero; tests inject shard loads through note_busy_sample()
// instead, which feeds the same EWMA. When a migration completes
// (ShardedRealization::migrations() bumps), the channel bindings are
// re-resolved, so collapsed cuts drop out and fresh cuts appear.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "shard/sharded_realization.hpp"

namespace infopipe::balance {

struct ChannelLoad {
  std::string name;
  int from_shard = -1;
  int to_shard = -1;
  double fill_fraction = 0.0;
  double producer_stall_rate = 0.0;  ///< blocks/s, smoothed
  double consumer_stall_rate = 0.0;
};

struct LoadSnapshot {
  std::uint64_t when_ns = 0;  ///< steady-clock sample time
  std::vector<double> busy;   ///< per shard, [0,1]
  std::vector<ChannelLoad> channels;

  [[nodiscard]] int max_shard() const;
  [[nodiscard]] int min_shard() const;
  /// busy[max_shard] - busy[min_shard]; the policy's hysteresis input.
  [[nodiscard]] double imbalance() const;
};

struct AccountantOptions {
  double alpha = 0.3;  ///< EWMA weight of the newest sample
};

class LoadAccountant {
 public:
  using Options = AccountantOptions;

  explicit LoadAccountant(shard::ShardedRealization& sr,
                          Options opts = Options());

  /// Busy-share-only accounting over a bare ShardGroup: no realization, so
  /// no channel readings — snapshot().channels stays empty. This is the
  /// form the session acceptor uses: admission decisions need per-shard
  /// busy fractions, and the session layer's engines are plain per-shard
  /// Realizations with no cross-shard cuts to watch.
  explicit LoadAccountant(shard::ShardGroup& group, Options opts = Options());

  LoadAccountant(const LoadAccountant&) = delete;
  LoadAccountant& operator=(const LoadAccountant&) = delete;

  /// Takes one sample: shard busy fractions (only while the group has
  /// kernel threads — otherwise the estimates move only via
  /// note_busy_sample) and channel readings. Thread-safe; call from the
  /// rebalancer's thread, never from a shard thread.
  void sample();

  /// Deterministic injection: folds `fraction` into the shard's EWMA
  /// exactly as a measured sample would. Tests and manual-mode drivers use
  /// this where no kernel-thread wall time exists.
  void note_busy_sample(int shard, double fraction);

  [[nodiscard]] LoadSnapshot snapshot() const;

 private:
  struct ShardAcc {
    std::uint64_t busy_ns = 0;
    std::uint64_t idle_ns = 0;
    bool primed = false;
    bool has_estimate = false;
    double ewma = 0.0;
  };
  struct ChanAcc {
    shard::ShardChannel* ch = nullptr;
    std::uint64_t producer_stalls = 0;
    std::uint64_t consumer_stalls = 0;
    std::uint64_t when_ns = 0;
    bool primed = false;
    double producer_rate = 0.0;
    double consumer_rate = 0.0;
  };

  void ewma_update(ShardAcc& acc, double fraction);
  void rebind_channels_locked();
  /// Extends shards_ to the group's current (elastic) size.
  void grow_locked();

  shard::ShardGroup* group_;
  shard::ShardedRealization* sr_;  ///< nullptr in the group-only form
  Options opts_;
  mutable std::mutex mu_;
  std::vector<ShardAcc> shards_;
  std::vector<ChanAcc> chans_;
  std::uint64_t epoch_ = ~std::uint64_t{0};  ///< sr_->migrations() at rebind
  std::uint64_t last_when_ = 0;
};

}  // namespace infopipe::balance
