#include "balance/migration.hpp"

#include <chrono>
#include <exception>

namespace infopipe::balance {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t ns_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

const char* to_string(MigrationPhase p) noexcept {
  switch (p) {
    case MigrationPhase::kIdle:
      return "idle";
    case MigrationPhase::kQuiesce:
      return "quiesce";
    case MigrationPhase::kTransfer:
      return "transfer";
    case MigrationPhase::kResume:
      return "resume";
    case MigrationPhase::kDone:
      return "done";
    case MigrationPhase::kFailed:
      return "failed";
  }
  return "?";
}

MigrationReport MigrationProtocol::move_section(shard::ShardedRealization& sr,
                                                std::size_t section, int to,
                                                obs::MetricsRegistry* metrics) {
  MigrationReport rep;
  rep.section = section;
  rep.to = to;
  try {
    shard::ShardedRealization::Migration m = sr.begin_migration(section, to);
    rep.from = sr.shard_of_section(section);

    rep.phase = MigrationPhase::kQuiesce;
    const auto t0 = SteadyClock::now();
    m.quiesce(opts_.quiesce_timeout);
    const auto t1 = SteadyClock::now();
    rep.quiesce_ns = ns_between(t0, t1);

    rep.phase = MigrationPhase::kTransfer;
    m.transfer();
    const auto t2 = SteadyClock::now();
    rep.transfer_ns = ns_between(t1, t2);

    rep.phase = MigrationPhase::kResume;
    m.resume();
    rep.resume_ns = ns_between(t2, SteadyClock::now());

    rep.outcome = m.outcome();
    rep.phase = MigrationPhase::kDone;
    // The handle (and with it the structural lock) releases here.
  } catch (const std::exception& e) {
    // The Migration destructor already restarted the affected shards; the
    // report carries the phase that threw.
    rep.error = e.what();
    if (rep.phase == MigrationPhase::kIdle) rep.phase = MigrationPhase::kFailed;
    if (rep.phase != MigrationPhase::kFailed) {
      rep.error = std::string(to_string(rep.phase)) + ": " + rep.error;
      rep.phase = MigrationPhase::kFailed;
    }
  }

  if (metrics != nullptr) {
    if (rep.ok()) {
      metrics->counter("balance.migration.count").inc();
      metrics->counter("balance.migration.items_moved").inc(rep.outcome.items_moved);
      metrics->histogram("balance.migration.quiesce_ns")
          .record(static_cast<std::int64_t>(rep.quiesce_ns));
      metrics->histogram("balance.migration.transfer_ns")
          .record(static_cast<std::int64_t>(rep.transfer_ns));
      metrics->histogram("balance.migration.total_ns")
          .record(static_cast<std::int64_t>(rep.total_ns()));
    } else {
      metrics->counter("balance.migration.failed").inc();
    }
  }
  return rep;
}

}  // namespace infopipe::balance
