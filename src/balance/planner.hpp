// TargetPlanner + PlanScheduler: whole-topology placement over measured load
// (ip_balance).
//
// The construction-time partitioner (core/planner.cpp) balances sections by
// PLANNED thread counts — all it can know before anything runs. Once the
// flow is live, the LoadAccountant's EWMA busy shares are the truth, and a
// one-move-per-decision greedy (RebalancePolicy) converges slowly when the
// topology changes by whole shards at a time. The TargetPlanner closes that
// gap: it recomputes a full section->shard assignment by the same
// deterministic LPT discipline the partitioner uses, but weighted by each
// section's measured busy share, and emits the multi-move delta between the
// current and target placements.
//
// A multi-move plan executed naively can transit through placements hotter
// than either endpoint (moving A->B before B's own section left for C piles
// both on B). The PlanScheduler orders the moves so no shard's projected
// load ever exceeds a hot-spot watermark: it batches moves whose shard sets
// are disjoint (safe to run back to back, or concurrently) and refuses to
// schedule a move whose destination would breach the watermark until an
// earlier move has drained that destination. When no safe order exists the
// plan is returned truncated with complete=false — the caller retries after
// the next sample rather than thrash a hot shard.
//
// Both classes are pure functions over plain data (no ShardedRealization
// access inside the algorithms), so tests can drive them with synthetic
// topologies — including permuted shard orderings, which must yield
// correspondingly permuted plans (the tie-breaks are by POSITION in the
// caller's shard vector, never by absolute shard id).
#pragma once

#include <cstddef>
#include <vector>

#include "balance/accountant.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::balance {

/// One section as the planner sees it: identity, planned weight, current
/// placement, mobility. Built from a ShardedRealization by describe() or by
/// hand in tests.
struct SectionDesc {
  std::size_t id = 0;     ///< section index in the realization
  int threads = 1;        ///< planned middleware threads inside the section
  int home = -1;          ///< shard currently hosting the section
  bool migratable = true;
};

/// One move of the delta between current and target placement. `load` is the
/// busy share the move shifts from `from` to `to` (the planner's weight for
/// the section).
struct PlannedMove {
  std::size_t section = 0;
  int from = -1;
  int to = -1;
  double load = 0.0;
};

struct TargetPlan {
  /// Target shard per section, indexed like the input section vector.
  std::vector<int> assignment;
  /// Sections whose target differs from home, in input order.
  std::vector<PlannedMove> moves;
  double makespan = 0.0;          ///< max projected shard load under the plan
  double current_makespan = 0.0;  ///< max attributed shard load as measured
  /// False when a pinned section is homed on a shard outside the candidate
  /// set (e.g. a retiring shard hosts a non-migratable section): the plan
  /// leaves it in place and the caller must not retire that shard.
  bool feasible = true;
};

struct TargetPlannerOptions {
  /// Slack for the sticky pass and for load comparisons. A section is left
  /// on (or returned to) its home shard whenever doing so keeps that shard
  /// within eps of the LPT makespan — placement stability is worth a
  /// rounding error, never a real hot spot.
  double eps = 1e-9;
};

class TargetPlanner {
 public:
  using Options = TargetPlannerOptions;

  explicit TargetPlanner(Options opts = {}) : opts_(opts) {}

  /// Computes a target assignment of `sections` over the candidate `shards`
  /// given measured per-shard busy fractions (`busy` is indexed by absolute
  /// shard id; ids not covered read 0).
  ///
  /// Weight model: a shard's measured busy share is attributed to its
  /// resident sections proportionally to their planned thread counts —
  /// measurement decides how much load a shard carries, the plan decides how
  /// it splits. When nothing has been measured yet (all busy ~ 0) the
  /// weights fall back to raw thread counts, reproducing the construction
  /// partitioner.
  ///
  /// Algorithm: pinned sections (and infeasible strays) preload their home
  /// bins; migratable sections go LPT — heaviest first onto the lightest
  /// bin, every tie broken by input position (sections) or candidate
  /// position (shards), so the result is deterministic and equivariant
  /// under shard relabeling. A final sticky pass returns sections home
  /// whenever that does not lift the home shard above the LPT makespan, so
  /// an already-balanced placement yields an empty move list instead of a
  /// cosmetic reshuffle.
  [[nodiscard]] TargetPlan plan(const std::vector<SectionDesc>& sections,
                                const std::vector<int>& shards,
                                const std::vector<double>& busy) const;

  /// Convenience: describe `sr`'s sections and plan over `shards` with the
  /// snapshot's busy vector.
  [[nodiscard]] TargetPlan plan(shard::ShardedRealization& sr,
                                const LoadSnapshot& load,
                                const std::vector<int>& shards) const;

  /// The section descriptors the convenience overload feeds the planner.
  [[nodiscard]] static std::vector<SectionDesc> describe(
      shard::ShardedRealization& sr);

 private:
  Options opts_;
};

struct PlanSchedulerOptions {
  /// No scheduled move may lift its destination's projected load above
  /// this. 0.95 leaves headroom for the measurement noise between planning
  /// and execution.
  double hotspot_watermark = 0.95;
  double eps = 1e-9;
};

/// One batch = moves with pairwise-disjoint {from, to} shard sets: executing
/// them in any order (or concurrently) projects the same loads.
struct ScheduledPlan {
  std::vector<std::vector<PlannedMove>> batches;
  std::vector<PlannedMove> ordered;  ///< batches flattened, execution order
  /// False when some moves could not be scheduled without breaching the
  /// watermark; `ordered` then holds only the safe prefix.
  bool complete = true;
};

class PlanScheduler {
 public:
  using Options = PlanSchedulerOptions;

  explicit PlanScheduler(Options opts = {}) : opts_(opts) {}

  /// Orders `moves` against the measured per-shard loads (`busy` indexed by
  /// absolute shard id). Projected loads start from the measurement and
  /// move by each scheduled move's `load`; a move is eligible only while
  /// its destination stays at or under the watermark. Eligible moves are
  /// taken hottest-source-first (tie: lowest section id) and packed into
  /// disjoint-shard batches.
  [[nodiscard]] ScheduledPlan schedule(const std::vector<PlannedMove>& moves,
                                       const std::vector<double>& busy) const;

 private:
  Options opts_;
};

}  // namespace infopipe::balance
