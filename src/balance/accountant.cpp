#include "balance/accountant.hpp"

#include <algorithm>
#include <chrono>

namespace infopipe::balance {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int LoadSnapshot::max_shard() const {
  if (busy.empty()) return -1;
  return static_cast<int>(
      std::max_element(busy.begin(), busy.end()) - busy.begin());
}

int LoadSnapshot::min_shard() const {
  if (busy.empty()) return -1;
  return static_cast<int>(
      std::min_element(busy.begin(), busy.end()) - busy.begin());
}

double LoadSnapshot::imbalance() const {
  if (busy.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(busy.begin(), busy.end());
  return *hi - *lo;
}

LoadAccountant::LoadAccountant(shard::ShardedRealization& sr, Options opts)
    : group_(&sr.group()), sr_(&sr), opts_(opts) {
  shards_.resize(static_cast<std::size_t>(sr.group().size()));
}

LoadAccountant::LoadAccountant(shard::ShardGroup& group, Options opts)
    : group_(&group), sr_(nullptr), opts_(opts) {
  shards_.resize(static_cast<std::size_t>(group.size()));
}

void LoadAccountant::ewma_update(ShardAcc& acc, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  acc.ewma = acc.has_estimate
                 ? opts_.alpha * fraction + (1.0 - opts_.alpha) * acc.ewma
                 : fraction;
  acc.has_estimate = true;
}

void LoadAccountant::rebind_channels_locked() {
  chans_.clear();
  for (shard::ShardChannel* ch : sr_->live_channels()) {
    ChanAcc acc;
    acc.ch = ch;
    chans_.push_back(acc);
  }
  epoch_ = sr_->migrations();
}

void LoadAccountant::grow_locked() {
  // An elastic group may have added shards since construction (or the last
  // sample). New entries start with no estimate; retired shards keep their
  // slot — their EWMA freezes at the last live value, and consumers filter
  // by the live shard set.
  const auto n = static_cast<std::size_t>(group_->size());
  if (n > shards_.size()) shards_.resize(n);
}

void LoadAccountant::sample() {
  const std::lock_guard<std::mutex> lk(mu_);
  grow_locked();
  const std::uint64_t now = steady_now_ns();

  // Shard busy fractions only exist when shards have kernel threads; the
  // first sample after launch just primes the counters.
  if (group_->running()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      rt::Runtime& rtm = group_->runtime(static_cast<int>(s));
      const std::uint64_t busy = rtm.service_busy_ns();
      const std::uint64_t idle = rtm.service_idle_ns();
      ShardAcc& acc = shards_[s];
      if (acc.primed) {
        const std::uint64_t dbusy = busy - acc.busy_ns;
        const std::uint64_t didle = idle - acc.idle_ns;
        if (dbusy + didle > 0) {
          ewma_update(acc, static_cast<double>(dbusy) /
                               static_cast<double>(dbusy + didle));
        }
      }
      acc.busy_ns = busy;
      acc.idle_ns = idle;
      acc.primed = true;
    }
  }

  if (sr_ != nullptr && epoch_ != sr_->migrations()) rebind_channels_locked();
  for (ChanAcc& acc : chans_) {
    const std::uint64_t ps = acc.ch->producer_stalls();
    const std::uint64_t cs = acc.ch->consumer_stalls();
    if (acc.primed && now > acc.when_ns) {
      const double dt = static_cast<double>(now - acc.when_ns) / 1e9;
      const double pr = static_cast<double>(ps - acc.producer_stalls) / dt;
      const double cr = static_cast<double>(cs - acc.consumer_stalls) / dt;
      acc.producer_rate = opts_.alpha * pr + (1.0 - opts_.alpha) * acc.producer_rate;
      acc.consumer_rate = opts_.alpha * cr + (1.0 - opts_.alpha) * acc.consumer_rate;
    }
    acc.producer_stalls = ps;
    acc.consumer_stalls = cs;
    acc.when_ns = now;
    acc.primed = true;
  }

  last_when_ = now;
}

void LoadAccountant::note_busy_sample(int shard, double fraction) {
  const std::lock_guard<std::mutex> lk(mu_);
  grow_locked();
  if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) return;
  ewma_update(shards_[static_cast<std::size_t>(shard)], fraction);
  last_when_ = std::max(last_when_, steady_now_ns());
}

LoadSnapshot LoadAccountant::snapshot() const {
  const std::lock_guard<std::mutex> lk(mu_);
  LoadSnapshot snap;
  snap.when_ns = last_when_;
  snap.busy.reserve(shards_.size());
  for (const ShardAcc& acc : shards_) snap.busy.push_back(acc.ewma);
  snap.channels.reserve(chans_.size());
  for (const ChanAcc& acc : chans_) {
    ChannelLoad cl;
    cl.name = acc.ch->name();
    cl.from_shard = acc.ch->from_shard();
    cl.to_shard = acc.ch->to_shard();
    const std::size_t cap = acc.ch->capacity();
    cl.fill_fraction =
        cap == 0 ? 0.0
                 : static_cast<double>(acc.ch->depth()) / static_cast<double>(cap);
    cl.producer_stall_rate = acc.producer_rate;
    cl.consumer_stall_rate = acc.consumer_rate;
    snap.channels.push_back(std::move(cl));
  }
  return snap;
}

}  // namespace infopipe::balance
