// MigrationProtocol: one observed, metered section move (ip_balance).
//
// ShardedRealization::begin_migration() supplies the mechanism — this layer
// adds the operational shell around it: per-phase wall-clock timing
// (quiesce / transfer / resume), balance.migration.* metrics, and
// failure containment. A throw from any phase is caught here and reported
// as MigrationPhase::kFailed; the Migration handle's destructor has already
// restarted whatever survived, so a failed move leaves the flow running in
// its old placement rather than stopped.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::balance {

enum class MigrationPhase {
  kIdle,
  kQuiesce,
  kTransfer,
  kResume,
  kDone,
  kFailed,
};

[[nodiscard]] const char* to_string(MigrationPhase p) noexcept;

struct MigrationReport {
  std::size_t section = 0;
  int from = -1;
  int to = -1;
  /// kDone on success; otherwise the phase that threw.
  MigrationPhase phase = MigrationPhase::kIdle;
  shard::MigrationOutcome outcome;
  std::uint64_t quiesce_ns = 0;
  std::uint64_t transfer_ns = 0;
  std::uint64_t resume_ns = 0;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return phase == MigrationPhase::kDone; }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return quiesce_ns + transfer_ns + resume_ns;
  }
};

struct ProtocolOptions {
  std::chrono::milliseconds quiesce_timeout{5000};
};

class MigrationProtocol {
 public:
  using Options = ProtocolOptions;

  explicit MigrationProtocol(Options opts = Options()) : opts_(opts) {}

  /// Runs the full quiesce → transfer → resume sequence for one section.
  /// Never throws: failures come back as a kFailed report with `error` set.
  /// When `metrics` is given, publishes balance.migration.count / .failed
  /// counters and phase-duration histograms into it (the registry is not
  /// thread-safe — the caller serializes access, as Rebalancer does).
  MigrationReport move_section(shard::ShardedRealization& sr,
                               std::size_t section, int to,
                               obs::MetricsRegistry* metrics = nullptr);

 private:
  Options opts_;
};

}  // namespace infopipe::balance
