// Rebalancer: the closed loop over accounting, planning and migration — and,
// when elastic, over the shard topology itself (ip_balance).
//
// Two driving modes, mirroring ShardGroup's:
//
//   * manual — the caller invokes step() whenever it likes (tests inject
//     loads through accountant().note_busy_sample() and step in lockstep
//     with ShardGroup::step_until);
//   * autonomous — launch() gives the rebalancer its own rt::Runtime on its
//     own kernel thread (real clock) and a fb::PeriodicTask whose body is
//     step(). The rebalancer MUST NOT run on a shard's kernel thread: a
//     migration issues ShardGroup::run_on calls, which would self-deadlock
//     when issued from the shard they target. A dedicated thread — like the
//     feedback loops' home-shard placement, but outside the group — keeps
//     the control plane off the data plane.
//
// Decisions come from the TargetPlanner/PlanScheduler pair (planner.hpp):
// each replan computes a full target assignment by LPT over measured busy
// shares and schedules the multi-move delta so no intermediate placement
// breaches the hot-spot watermark. step() still executes AT MOST ONE move —
// the scheduled plan drains one move per control period, each re-validated
// against the live topology (section still where the plan left it, target
// still live) and dropped when the world moved underneath it. Replanning is
// gated by the same hysteresis (min_imbalance) and cooldown the old
// one-move policy used, so a balanced flow is never churned.
//
// Elastic mode (opt-in via ElasticOptions::enabled AND config().elastic):
// hysteresis counters over the live shards' mean busy fraction drive
// ShardGroup::add_shard / retire_shard. Scale-up grows the group and
// replans onto the new shard; scale-down evacuates the least-busy live
// shard (only when everything on it is migratable) and retires it. In
// autonomous mode scale operations travel as rt::msg::kBalanceScaleUp /
// kBalanceScaleDown messages to a dedicated scaler thread on the private
// runtime — serialized, off the sampling tick — and kBalanceApplyPlan
// drains the post-scale plan without waiting out the sampling period.
//
// Observability: the rebalancer owns a private obs::MetricsRegistry
// (balance.steps / balance.imbalance / balance.migration.* /
// balance.scale.*). The registry class is not thread-safe, so every access
// — step() updating it, metrics_snapshot() reading it — happens under one
// internal mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "balance/accountant.hpp"
#include "balance/migration.hpp"
#include "balance/planner.hpp"
#include "balance/policy.hpp"
#include "feedback/toolkit.hpp"
#include "obs/metrics.hpp"
#include "rt/doorbell.hpp"
#include "rt/runtime.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::balance {

/// Autoscaling knobs. Off by default: a rebalancer only changes the shard
/// count when the embedding application opted in (and INFOPIPE_ELASTIC is
/// not forcing the topology fixed).
struct ElasticOptions {
  bool enabled = false;
  /// Scale up after the live shards' mean busy fraction stayed at or above
  /// this for scale_up_steps consecutive samples.
  double scale_up_watermark = 0.85;
  int scale_up_steps = 3;
  /// Scale down after the mean stayed at or below this for
  /// scale_down_steps consecutive samples (slower than up: adding capacity
  /// is cheap, draining a shard is not).
  double scale_down_watermark = 0.25;
  int scale_down_steps = 5;
  /// Samples to sit out after any scale event, so the EWMA re-converges on
  /// the new topology before the next verdict.
  int cooldown_steps = 10;
  int min_shards = 1;
  int max_shards = shard::ShardGroup::kMaxShards;
};

struct RebalancerOptions {
  rt::Time period = rt::milliseconds(200);  ///< autonomous sampling period
  AccountantOptions accountant;
  /// min_imbalance / migration_cost / cooldown_steps gate replanning just
  /// as they gated the old single-move policy.
  PolicyOptions policy;
  ProtocolOptions protocol;
  TargetPlannerOptions planner;
  PlanSchedulerOptions scheduler;
  ElasticOptions elastic;
  shard::Topology topology;  ///< defaults to flat; pass Topology::detect()
};

class Rebalancer {
 public:
  using Options = RebalancerOptions;

  explicit Rebalancer(shard::ShardedRealization& sr,
                      Options opts = Options());
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// One control cycle: sample loads, update the scale hysteresis, then
  /// either execute the next move of the pending scheduled plan or — when
  /// the queue is empty, the spread exceeds the hysteresis band and the
  /// cooldown has passed — replan and execute the new plan's first move.
  /// Returns the migration report when a move was attempted. Call from any
  /// thread EXCEPT a shard's kernel thread.
  std::optional<MigrationReport> step();

  /// For load injection (note_busy_sample) and inspection.
  [[nodiscard]] LoadAccountant& accountant() noexcept { return accountant_; }

  /// Starts the autonomous mode: a dedicated kernel thread hosting a
  /// private runtime whose PeriodicTask calls step() every `period`, plus
  /// the scaler thread serving kBalanceScaleUp/Down/ApplyPlan.
  /// No-op if already launched.
  void launch();
  /// Stops the autonomous thread (no-op if not launched). Also called by
  /// the destructor.
  void stop();
  [[nodiscard]] bool running() const noexcept { return host_.joinable(); }

  [[nodiscard]] std::uint64_t steps() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t migrations_attempted() const noexcept {
    return attempts_.load(std::memory_order_relaxed);
  }
  /// Topology changes this rebalancer drove.
  [[nodiscard]] std::uint64_t scale_ups() const noexcept {
    return scale_ups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t scale_downs() const noexcept {
    return scale_downs_.load(std::memory_order_relaxed);
  }
  /// Moves of the current scheduled plan not yet executed.
  [[nodiscard]] std::size_t pending_moves() const noexcept {
    return pending_.size();
  }

  /// Snapshot of the rebalancer's private balance.* registry.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

 private:
  /// Executes the next still-valid pending move, if any.
  std::optional<MigrationReport> run_pending();
  /// Plans + schedules when the live spread warrants it; fills pending_.
  void replan(const LoadSnapshot& load);
  /// Updates the hysteresis streaks and fires a scale request when due.
  void maybe_scale(const LoadSnapshot& load);
  void do_scale_up();
  void do_scale_down(int victim);
  /// -1 when no live shard can be drained (pinned sections, min_shards).
  int pick_scale_down_victim(const LoadSnapshot& load) const;
  void record_report(const MigrationReport& r);

  shard::ShardedRealization* sr_;
  Options opts_;
  LoadAccountant accountant_;
  TargetPlanner planner_;
  PlanScheduler scheduler_;
  MigrationProtocol protocol_;

  /// Scheduled moves awaiting execution (one per step). Touched only from
  /// the stepping thread (manual caller, or the private runtime's ULTs —
  /// which share one kernel thread).
  std::deque<PlannedMove> pending_;
  int cooldown_ = 0;        ///< steps until the next replan is allowed
  int up_streak_ = 0;       ///< consecutive samples above scale_up_watermark
  int down_streak_ = 0;     ///< consecutive samples below scale_down_watermark
  int scale_cooldown_ = 0;  ///< steps until the next scale event is allowed

  std::mutex metrics_mu_;  ///< guards metrics_ (registry is not thread-safe)
  obs::MetricsRegistry metrics_;

  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> scale_ups_{0};
  std::atomic<std::uint64_t> scale_downs_{0};

  // Autonomous mode. The task is constructed and started before the host
  // thread exists (single-threaded, so the non-thread-safe spawn/send are
  // fine) and destroyed after it joined (runtime parked again).
  std::unique_ptr<rt::Runtime> rt_;
  std::unique_ptr<fb::PeriodicTask> task_;
  rt::ThreadId scaler_tid_ = rt::kNoThread;
  rt::Doorbell bell_;
  std::thread host_;
};

}  // namespace infopipe::balance
