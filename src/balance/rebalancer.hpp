// Rebalancer: the closed loop over accounting, policy and migration
// (ip_balance).
//
// Two driving modes, mirroring ShardGroup's:
//
//   * manual — the caller invokes step() whenever it likes (tests inject
//     loads through accountant().note_busy_sample() and step in lockstep
//     with ShardGroup::step_until);
//   * autonomous — launch() gives the rebalancer its own rt::Runtime on its
//     own kernel thread (real clock) and a fb::PeriodicTask whose body is
//     step(). The rebalancer MUST NOT run on a shard's kernel thread: a
//     migration issues ShardGroup::run_on calls, which would self-deadlock
//     when issued from the shard they target. A dedicated thread — like the
//     feedback loops' home-shard placement, but outside the group — keeps
//     the control plane off the data plane.
//
// Observability: the rebalancer owns a private obs::MetricsRegistry
// (balance.steps / balance.imbalance / balance.migration.*). The registry
// class is not thread-safe, so every access — step() updating it,
// metrics_snapshot() reading it — happens under one internal mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "balance/accountant.hpp"
#include "balance/migration.hpp"
#include "balance/policy.hpp"
#include "feedback/toolkit.hpp"
#include "obs/metrics.hpp"
#include "rt/doorbell.hpp"
#include "rt/runtime.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::balance {

struct RebalancerOptions {
  rt::Time period = rt::milliseconds(200);  ///< autonomous sampling period
  AccountantOptions accountant;
  PolicyOptions policy;
  ProtocolOptions protocol;
  shard::Topology topology;  ///< defaults to flat; pass Topology::detect()
};

class Rebalancer {
 public:
  using Options = RebalancerOptions;

  explicit Rebalancer(shard::ShardedRealization& sr,
                      Options opts = Options());
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// One control cycle: sample loads, ask the policy, run the migration it
  /// decided on (if any). Returns the migration report when one was
  /// attempted. Call from any thread EXCEPT a shard's kernel thread.
  std::optional<MigrationReport> step();

  /// For load injection (note_busy_sample) and inspection.
  [[nodiscard]] LoadAccountant& accountant() noexcept { return accountant_; }

  /// Starts the autonomous mode: a dedicated kernel thread hosting a
  /// private runtime whose PeriodicTask calls step() every `period`.
  /// No-op if already launched.
  void launch();
  /// Stops the autonomous thread (no-op if not launched). Also called by
  /// the destructor.
  void stop();
  [[nodiscard]] bool running() const noexcept { return host_.joinable(); }

  [[nodiscard]] std::uint64_t steps() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t migrations_attempted() const noexcept {
    return attempts_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the rebalancer's private balance.* registry.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

 private:
  shard::ShardedRealization* sr_;
  Options opts_;
  LoadAccountant accountant_;
  RebalancePolicy policy_;
  MigrationProtocol protocol_;

  std::mutex metrics_mu_;  ///< guards metrics_ (registry is not thread-safe)
  obs::MetricsRegistry metrics_;

  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> attempts_{0};

  // Autonomous mode. The task is constructed and started before the host
  // thread exists (single-threaded, so the non-thread-safe spawn/send are
  // fine) and destroyed after it joined (runtime parked again).
  std::unique_ptr<rt::Runtime> rt_;
  std::unique_ptr<fb::PeriodicTask> task_;
  rt::Doorbell bell_;
  std::thread host_;
};

}  // namespace infopipe::balance
