#include "balance/planner.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace infopipe::balance {

namespace {

double busy_of(const std::vector<double>& busy, int shard) {
  if (shard < 0 || static_cast<std::size_t>(shard) >= busy.size()) return 0.0;
  return std::max(0.0, busy[static_cast<std::size_t>(shard)]);
}

}  // namespace

std::vector<SectionDesc> TargetPlanner::describe(
    shard::ShardedRealization& sr) {
  std::vector<SectionDesc> out;
  out.reserve(sr.section_count());
  for (std::size_t s = 0; s < sr.section_count(); ++s) {
    SectionDesc d;
    d.id = s;
    d.threads = sr.section_threads(s);
    d.home = sr.shard_of_section(s);
    d.migratable = sr.section_migratable(s);
    out.push_back(d);
  }
  return out;
}

TargetPlan TargetPlanner::plan(shard::ShardedRealization& sr,
                               const LoadSnapshot& load,
                               const std::vector<int>& shards) const {
  return plan(describe(sr), shards, load.busy);
}

TargetPlan TargetPlanner::plan(const std::vector<SectionDesc>& sections,
                               const std::vector<int>& shards,
                               const std::vector<double>& busy) const {
  TargetPlan out;
  const std::size_t nb = shards.size();
  out.assignment.reserve(sections.size());
  for (const SectionDesc& s : sections) out.assignment.push_back(s.home);
  if (nb == 0 || sections.empty()) return out;

  // Position of each candidate shard in the caller's vector — every bin
  // decision below speaks positions, so relabeling the shards (and the busy
  // readings with them) relabels the plan and nothing else.
  auto pos_of = [&shards](int shard) -> int {
    for (std::size_t k = 0; k < shards.size(); ++k) {
      if (shards[k] == shard) return static_cast<int>(k);
    }
    return -1;
  };

  // Weights: each home shard's measured busy fraction, attributed to its
  // resident sections proportionally to planned threads. Homes with no
  // measurable load contribute zero-weight sections, which the sticky pass
  // keeps in place.
  std::vector<int> threads_on_home;  // parallel to sections, total at home
  {
    std::vector<std::pair<int, int>> totals;  // (home, threads) accumulator
    for (const SectionDesc& s : sections) {
      bool found = false;
      for (auto& [home, t] : totals) {
        if (home == s.home) {
          t += std::max(1, s.threads);
          found = true;
        }
      }
      if (!found) totals.emplace_back(s.home, std::max(1, s.threads));
    }
    threads_on_home.reserve(sections.size());
    for (const SectionDesc& s : sections) {
      int t = 1;
      for (const auto& [home, tt] : totals) {
        if (home == s.home) t = tt;
      }
      threads_on_home.push_back(t);
    }
  }
  double measured = 0.0;
  for (const SectionDesc& s : sections) measured += busy_of(busy, s.home);
  std::vector<double> weight(sections.size(), 0.0);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionDesc& s = sections[i];
    weight[i] = measured > opts_.eps
                    ? busy_of(busy, s.home) *
                          static_cast<double>(std::max(1, s.threads)) /
                          static_cast<double>(threads_on_home[i])
                    : static_cast<double>(std::max(1, s.threads));
  }

  // Current attributed load per candidate shard (for current_makespan).
  std::vector<double> current(nb, 0.0);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const int p = pos_of(sections[i].home);
    if (p >= 0) current[static_cast<std::size_t>(p)] += weight[i];
  }
  for (double c : current) out.current_makespan = std::max(out.current_makespan, c);

  // Bins preloaded with immobile sections. A pinned section homed outside
  // the candidate set cannot be placed at all: flag the plan infeasible and
  // leave it where it is.
  std::vector<double> bin(nb, 0.0);
  std::vector<std::size_t> mobile;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionDesc& s = sections[i];
    const int p = pos_of(s.home);
    if (!s.migratable) {
      if (p < 0) {
        out.feasible = false;
      } else {
        bin[static_cast<std::size_t>(p)] += weight[i];
      }
      out.assignment[i] = s.home;
    } else {
      mobile.push_back(i);
    }
  }

  // LPT: heaviest section first onto the lightest bin; all ties by
  // position, so the order is total and the result deterministic.
  std::stable_sort(mobile.begin(), mobile.end(),
                   [&weight](std::size_t a, std::size_t b) {
                     return weight[a] > weight[b];
                   });
  for (std::size_t i : mobile) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < nb; ++k) {
      if (bin[k] < bin[best] - opts_.eps) best = k;
    }
    bin[best] += weight[i];
    out.assignment[i] = shards[best];
  }
  double lpt_makespan = 0.0;
  for (double b : bin) lpt_makespan = std::max(lpt_makespan, b);

  // Sticky pass: a displaced section returns home whenever home stays
  // within the LPT makespan — the move would have bought nothing.
  for (std::size_t i : mobile) {
    const SectionDesc& s = sections[i];
    if (out.assignment[i] == s.home) continue;
    const int hp = pos_of(s.home);
    if (hp < 0) continue;  // evacuation: home is not a candidate, must move
    const auto h = static_cast<std::size_t>(hp);
    if (bin[h] + weight[i] <= lpt_makespan + opts_.eps) {
      const int ap = pos_of(out.assignment[i]);
      bin[static_cast<std::size_t>(ap)] -= weight[i];
      bin[h] += weight[i];
      out.assignment[i] = s.home;
    }
  }

  for (double b : bin) out.makespan = std::max(out.makespan, b);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (out.assignment[i] != sections[i].home) {
      out.moves.push_back(PlannedMove{sections[i].id, sections[i].home,
                                      out.assignment[i], weight[i]});
    }
  }
  return out;
}

ScheduledPlan PlanScheduler::schedule(const std::vector<PlannedMove>& moves,
                                      const std::vector<double>& busy) const {
  ScheduledPlan out;
  if (moves.empty()) return out;

  // Projected load per shard, keyed by absolute id (plans may span shards
  // beyond the busy vector — freshly added ones read 0).
  int max_shard = 0;
  for (const PlannedMove& m : moves) {
    max_shard = std::max({max_shard, m.from, m.to});
  }
  max_shard = std::max(max_shard, static_cast<int>(busy.size()) - 1);
  std::vector<double> proj(static_cast<std::size_t>(max_shard) + 1, 0.0);
  for (std::size_t s = 0; s < proj.size(); ++s) {
    proj[s] = busy_of(busy, static_cast<int>(s));
  }

  std::vector<PlannedMove> pending = moves;
  while (!pending.empty()) {
    // A move is eligible only while its destination, with the move's load
    // added, stays under the watermark — a shard that is both a past
    // destination and a future source must drain before it takes more.
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const PlannedMove& m = pending[i];
      if (proj[static_cast<std::size_t>(m.to)] + m.load <=
          opts_.hotspot_watermark + opts_.eps) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) {
      out.complete = false;  // retry after the topology drains
      break;
    }
    // Hottest source first — relieving the worst shard earliest is what
    // frees up the most follow-on moves. Tie: lowest section id.
    std::stable_sort(eligible.begin(), eligible.end(),
                     [&](std::size_t a, std::size_t b) {
                       const double la = proj[static_cast<std::size_t>(
                           pending[a].from)];
                       const double lb = proj[static_cast<std::size_t>(
                           pending[b].from)];
                       if (la != lb) return la > lb;
                       return pending[a].section < pending[b].section;
                     });
    // Pack a batch of shard-disjoint moves; disjointness keeps every
    // projection exact whatever order the batch executes in.
    std::vector<bool> used(proj.size(), false);
    std::vector<PlannedMove> batch;
    std::vector<std::size_t> taken;
    for (std::size_t i : eligible) {
      const PlannedMove& m = pending[i];
      const auto f = static_cast<std::size_t>(m.from);
      const auto d = static_cast<std::size_t>(m.to);
      if (used[f] || used[d]) continue;
      used[f] = used[d] = true;
      batch.push_back(m);
      taken.push_back(i);
    }
    for (const PlannedMove& m : batch) {
      proj[static_cast<std::size_t>(m.from)] -= m.load;
      proj[static_cast<std::size_t>(m.to)] += m.load;
      out.ordered.push_back(m);
    }
    std::sort(taken.begin(), taken.end(), std::greater<>());
    for (std::size_t i : taken) {
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    }
    out.batches.push_back(std::move(batch));
  }
  return out;
}

}  // namespace infopipe::balance
