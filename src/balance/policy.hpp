// RebalancePolicy: greedy steal-from-max / give-to-min section placement
// (ip_balance).
//
// The policy is deliberately simple — the paper's point is that migration is
// cheap enough to correct mistakes, not that placement is optimal:
//
//   * act only when the busy-fraction spread exceeds a hysteresis band
//     (min_imbalance), so a balanced flow is never churned;
//   * move one migratable section at a time from the busiest shard toward
//     the least loaded one, and only when the estimated gain (the section's
//     load share, capped by half the spread) exceeds a fixed migration-cost
//     penalty;
//   * after a decision, hold off for cooldown_steps samples so the EWMA can
//     re-converge on the new placement before judging it;
//   * among near-idle target shards, prefer one on the same NUMA node as
//     the source (Topology), so a migration does not move a section's
//     working set across the interconnect when an equally idle local core
//     exists.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "balance/accountant.hpp"
#include "shard/sharded_realization.hpp"
#include "shard/topology.hpp"

namespace infopipe::balance {

struct PolicyOptions {
  double min_imbalance = 0.2;   ///< act only above this busy spread
  double migration_cost = 0.05; ///< estimated gain must exceed this
  int cooldown_steps = 2;       ///< samples to skip after each decision
  bool prefer_same_node = true; ///< use Topology when choosing the target
  /// Targets within this much of the minimum busy fraction count as
  /// equally idle for the NUMA preference.
  double target_slack = 0.1;
};

struct MigrationDecision {
  std::size_t section = 0;
  int from = -1;
  int to = -1;
  double expected_gain = 0.0;
  std::string reason;
};

class RebalancePolicy {
 public:
  explicit RebalancePolicy(PolicyOptions opts = {},
                           shard::Topology topo = shard::Topology{});

  /// One placement decision for the current load picture, or nullopt when
  /// the flow is balanced / cooling down / nothing migratable would help.
  /// Mutates only the policy's own cooldown counter.
  std::optional<MigrationDecision> decide(const LoadSnapshot& load,
                                          shard::ShardedRealization& sr);

  [[nodiscard]] const shard::Topology& topology() const noexcept {
    return topo_;
  }

 private:
  PolicyOptions opts_;
  shard::Topology topo_;
  int cooldown_ = 0;
};

}  // namespace infopipe::balance
