#include "balance/policy.hpp"

#include <algorithm>
#include <utility>

namespace infopipe::balance {

RebalancePolicy::RebalancePolicy(PolicyOptions opts, shard::Topology topo)
    : opts_(opts), topo_(std::move(topo)) {}

std::optional<MigrationDecision> RebalancePolicy::decide(
    const LoadSnapshot& load, shard::ShardedRealization& sr) {
  if (cooldown_ > 0) {
    --cooldown_;
    return std::nullopt;
  }
  if (load.busy.size() < 2) return std::nullopt;

  const int from = load.max_shard();
  const int global_min = load.min_shard();
  const double spread = load.imbalance();
  if (spread < opts_.min_imbalance) return std::nullopt;

  // Load share of each migratable section on the hot shard, proxied by its
  // thread count relative to everything hosted there (the accountant cannot
  // attribute kernel-thread time to individual ULTs).
  int threads_on_from = 0;
  for (std::size_t s = 0; s < sr.section_count(); ++s) {
    if (sr.shard_of_section(s) == from) threads_on_from += sr.section_threads(s);
  }
  if (threads_on_from <= 0) return std::nullopt;

  std::optional<std::size_t> best;
  double best_gain = 0.0;
  for (std::size_t s = 0; s < sr.section_count(); ++s) {
    if (sr.shard_of_section(s) != from) continue;
    if (!sr.section_migratable(s)) continue;
    const double share = load.busy[static_cast<std::size_t>(from)] *
                         static_cast<double>(sr.section_threads(s)) /
                         static_cast<double>(threads_on_from);
    // Moving more than half the spread would just invert the imbalance.
    const double gain = std::min(share, spread / 2.0);
    if (gain > best_gain) {
      best_gain = gain;
      best = s;
    }
  }
  if (!best || best_gain <= opts_.migration_cost) return std::nullopt;

  // Pick the target: the global minimum, unless an equally idle shard sits
  // on the source's NUMA node.
  int to = global_min;
  if (opts_.prefer_same_node && !topo_.flat()) {
    // node_of_shard's second argument is the CPU count behind the pin rule
    // (shard i -> core i % n_cpus), NOT the shard count: defaulting to the
    // probed CPU set keeps the mapping right when shards oversubscribe the
    // cores.
    const int n = static_cast<int>(load.busy.size());
    const int from_node = topo_.node_of_shard(from);
    const double floor = load.busy[static_cast<std::size_t>(global_min)];
    double to_busy = load.busy[static_cast<std::size_t>(to)];
    bool to_local = topo_.node_of_shard(to) == from_node;
    for (int s = 0; s < n; ++s) {
      if (s == from) continue;
      const double b = load.busy[static_cast<std::size_t>(s)];
      if (b > floor + opts_.target_slack) continue;
      const bool local = topo_.node_of_shard(s) == from_node;
      if ((local && !to_local) || (local == to_local && b < to_busy)) {
        to = s;
        to_busy = b;
        to_local = local;
      }
    }
  }
  if (to == from) return std::nullopt;

  cooldown_ = opts_.cooldown_steps;
  MigrationDecision d;
  d.section = *best;
  d.from = from;
  d.to = to;
  d.expected_gain = best_gain;
  d.reason = "spread " + std::to_string(spread) + " > " +
             std::to_string(opts_.min_imbalance) + ", section share " +
             std::to_string(best_gain);
  return d;
}

}  // namespace infopipe::balance
