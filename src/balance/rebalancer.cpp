#include "balance/rebalancer.hpp"

#include <utility>

#include "rt/clock.hpp"

namespace infopipe::balance {

Rebalancer::Rebalancer(shard::ShardedRealization& sr, Options opts)
    : sr_(&sr),
      opts_(opts),
      accountant_(sr, opts.accountant),
      policy_(opts.policy, opts.topology),
      protocol_(opts.protocol) {}

Rebalancer::~Rebalancer() { stop(); }

std::optional<MigrationReport> Rebalancer::step() {
  accountant_.sample();
  const LoadSnapshot load = accountant_.snapshot();
  std::optional<MigrationDecision> decision = policy_.decide(load, *sr_);
  steps_.fetch_add(1, std::memory_order_relaxed);

  std::optional<MigrationReport> report;
  if (decision) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    report = protocol_.move_section(*sr_, decision->section, decision->to,
                                    nullptr);
  }

  {
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.steps").inc();
    metrics_.gauge("balance.imbalance").set(load.imbalance());
    if (report) {
      // Re-run the metric bookkeeping move_section would have done had we
      // been able to hand it the registry under the lock up front.
      if (report->ok()) {
        metrics_.counter("balance.migration.count").inc();
        metrics_.counter("balance.migration.items_moved")
            .inc(report->outcome.items_moved);
        metrics_.histogram("balance.migration.quiesce_ns")
            .record(static_cast<std::int64_t>(report->quiesce_ns));
        metrics_.histogram("balance.migration.transfer_ns")
            .record(static_cast<std::int64_t>(report->transfer_ns));
        metrics_.histogram("balance.migration.total_ns")
            .record(static_cast<std::int64_t>(report->total_ns()));
      } else {
        metrics_.counter("balance.migration.failed").inc();
      }
    }
  }
  return report;
}

void Rebalancer::launch() {
  if (host_.joinable()) return;
  rt_ = std::make_unique<rt::Runtime>(std::make_unique<rt::RealClock>());
  rt_->set_external_notifier([this] { bell_.ring(); });
  // Spawn + start the task before the host thread exists: still
  // single-threaded here, so the non-thread-safe Runtime surface is safe.
  task_ = std::make_unique<fb::PeriodicTask>(
      *rt_, "balance.rebalancer", opts_.period,
      [this](rt::Time) { (void)step(); });
  task_->start();
  host_ = std::thread([this] { rt_->run_service(bell_); });
}

void Rebalancer::stop() {
  if (!host_.joinable()) return;
  rt_->request_halt();
  bell_.ring();
  host_.join();
  // The runtime is parked again; tearing the task down from this thread is
  // race-free.
  task_.reset();
  rt_.reset();
}

obs::MetricsSnapshot Rebalancer::metrics_snapshot() {
  const std::lock_guard<std::mutex> lk(metrics_mu_);
  return metrics_.snapshot();
}

}  // namespace infopipe::balance
