#include "balance/rebalancer.hpp"

#include <algorithm>
#include <utility>

#include "core/config.hpp"
#include "rt/clock.hpp"
#include "rt/msg_registry.hpp"

namespace infopipe::balance {

Rebalancer::Rebalancer(shard::ShardedRealization& sr, Options opts)
    : sr_(&sr),
      opts_(opts),
      accountant_(sr, opts.accountant),
      planner_(opts.planner),
      scheduler_(opts.scheduler),
      protocol_(opts.protocol) {}

Rebalancer::~Rebalancer() { stop(); }

std::optional<MigrationReport> Rebalancer::run_pending() {
  while (!pending_.empty()) {
    const PlannedMove m = pending_.front();
    pending_.pop_front();
    // The plan was computed against a snapshot; the world may have moved
    // (a migration failed, a shard retired, a session layer rehomed the
    // section). A stale move is dropped, not forced — the next replan sees
    // the true placement.
    if (m.section >= sr_->section_count() ||
        sr_->shard_of_section(m.section) != m.from ||
        !sr_->section_migratable(m.section) ||
        !sr_->group().is_live(m.to)) {
      continue;
    }
    attempts_.fetch_add(1, std::memory_order_relaxed);
    return protocol_.move_section(*sr_, m.section, m.to, nullptr);
  }
  return std::nullopt;
}

void Rebalancer::replan(const LoadSnapshot& load) {
  const std::vector<int> live = sr_->group().live_shards();
  if (live.size() < 2) return;

  // Hysteresis over the LIVE spread: retired shards keep a frozen EWMA
  // that must not count as idle capacity.
  double lo = 1.0, hi = 0.0;
  for (const int s : live) {
    const double b = static_cast<std::size_t>(s) < load.busy.size()
                         ? load.busy[static_cast<std::size_t>(s)]
                         : 0.0;
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  if (hi - lo < opts_.policy.min_imbalance) return;

  const TargetPlan plan = planner_.plan(*sr_, load, live);
  if (plan.moves.empty()) return;
  if (plan.current_makespan - plan.makespan <= opts_.policy.migration_cost) {
    return;  // the reshuffle would not pay for itself
  }
  const ScheduledPlan sched = scheduler_.schedule(plan.moves, load.busy);
  for (const PlannedMove& m : sched.ordered) pending_.push_back(m);
  cooldown_ = opts_.policy.cooldown_steps;
}

std::optional<MigrationReport> Rebalancer::step() {
  accountant_.sample();
  const LoadSnapshot load = accountant_.snapshot();
  steps_.fetch_add(1, std::memory_order_relaxed);

  maybe_scale(load);

  std::optional<MigrationReport> report = run_pending();
  if (!report) {
    if (cooldown_ > 0) {
      --cooldown_;
    } else {
      replan(load);
      report = run_pending();
    }
  }

  {
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.steps").inc();
    metrics_.gauge("balance.imbalance").set(load.imbalance());
    metrics_.gauge("balance.pending_moves")
        .set(static_cast<double>(pending_.size()));
  }
  if (report) record_report(*report);
  return report;
}

void Rebalancer::record_report(const MigrationReport& r) {
  const std::lock_guard<std::mutex> lk(metrics_mu_);
  if (r.ok()) {
    metrics_.counter("balance.migration.count").inc();
    metrics_.counter("balance.migration.items_moved")
        .inc(r.outcome.items_moved);
    metrics_.histogram("balance.migration.quiesce_ns")
        .record(static_cast<std::int64_t>(r.quiesce_ns));
    metrics_.histogram("balance.migration.transfer_ns")
        .record(static_cast<std::int64_t>(r.transfer_ns));
    metrics_.histogram("balance.migration.total_ns")
        .record(static_cast<std::int64_t>(r.total_ns()));
  } else {
    metrics_.counter("balance.migration.failed").inc();
  }
}

void Rebalancer::maybe_scale(const LoadSnapshot& load) {
  if (!opts_.elastic.enabled || !config().elastic) return;
  shard::ShardGroup& g = sr_->group();
  const std::vector<int> live = g.live_shards();
  if (live.empty()) return;

  double sum = 0.0;
  for (const int s : live) {
    sum += static_cast<std::size_t>(s) < load.busy.size()
               ? load.busy[static_cast<std::size_t>(s)]
               : 0.0;
  }
  const double mean = sum / static_cast<double>(live.size());
  up_streak_ = mean >= opts_.elastic.scale_up_watermark ? up_streak_ + 1 : 0;
  down_streak_ =
      mean <= opts_.elastic.scale_down_watermark ? down_streak_ + 1 : 0;
  if (scale_cooldown_ > 0) {
    --scale_cooldown_;
    return;
  }

  if (up_streak_ >= opts_.elastic.scale_up_steps &&
      static_cast<int>(live.size()) < opts_.elastic.max_shards &&
      g.size() < shard::ShardGroup::kMaxShards) {
    if (running()) {
      // Autonomous: hand the (blocking) topology change to the scaler
      // thread so this sampling tick returns on time.
      rt_->send(scaler_tid_, rt::Message{rt::msg::kBalanceScaleUp,
                                         rt::MsgClass::kControl});
    } else {
      do_scale_up();
    }
    return;
  }
  if (down_streak_ >= opts_.elastic.scale_down_steps &&
      static_cast<int>(live.size()) > std::max(1, opts_.elastic.min_shards)) {
    const int victim = pick_scale_down_victim(load);
    if (victim < 0) return;
    if (running()) {
      rt::Message m{rt::msg::kBalanceScaleDown, rt::MsgClass::kControl};
      m.payload = victim;
      rt_->send(scaler_tid_, std::move(m));
    } else {
      do_scale_down(victim);
    }
  }
}

int Rebalancer::pick_scale_down_victim(const LoadSnapshot& load) const {
  // Least-busy live shard whose sections can all leave. Empty shards are
  // the cheapest victims of all.
  int victim = -1;
  double victim_busy = 0.0;
  for (const int s : sr_->group().live_shards()) {
    bool drainable = true;
    for (std::size_t sec = 0; sec < sr_->section_count(); ++sec) {
      if (sr_->shard_of_section(sec) == s && !sr_->section_migratable(sec)) {
        drainable = false;
        break;
      }
    }
    if (!drainable) continue;
    const double b = static_cast<std::size_t>(s) < load.busy.size()
                         ? load.busy[static_cast<std::size_t>(s)]
                         : 0.0;
    if (victim < 0 || b < victim_busy) {
      victim = s;
      victim_busy = b;
    }
  }
  return victim;
}

void Rebalancer::do_scale_up() {
  try {
    (void)sr_->group().add_shard();
    sr_->sync_topology();
    scale_ups_.fetch_add(1, std::memory_order_relaxed);
    up_streak_ = 0;
    scale_cooldown_ = opts_.elastic.cooldown_steps;
    cooldown_ = 0;  // replan onto the new shard immediately
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.scale.up").inc();
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.scale.failed").inc();
  }
}

void Rebalancer::do_scale_down(int victim) {
  try {
    // Full evacuation first (LPT over the surviving shards), then the
    // thread-lifecycle retirement. Any pending plan entries touching the
    // victim are stale by construction afterwards; drop them now so the
    // queue never targets a retired shard.
    const std::vector<shard::MigrationOutcome> moved =
        sr_->evacuate_shard(victim, opts_.protocol.quiesce_timeout);
    sr_->group().retire_shard(victim);
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [victim](const PlannedMove& m) {
                                    return m.from == victim ||
                                           m.to == victim;
                                  }),
                   pending_.end());
    scale_downs_.fetch_add(1, std::memory_order_relaxed);
    down_streak_ = 0;
    scale_cooldown_ = opts_.elastic.cooldown_steps;
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.scale.down").inc();
    metrics_.counter("balance.scale.evacuated_sections")
        .inc(static_cast<std::uint64_t>(moved.size()));
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.counter("balance.scale.failed").inc();
  }
}

void Rebalancer::launch() {
  if (host_.joinable()) return;
  rt_ = std::make_unique<rt::Runtime>(std::make_unique<rt::RealClock>());
  rt_->set_external_notifier([this] { bell_.ring(); });
  // Spawn + start the task before the host thread exists: still
  // single-threaded here, so the non-thread-safe Runtime surface is safe.
  //
  // The scaler thread serializes topology changes off the sampling tick.
  // After a scale-up it posts kBalanceApplyPlan to itself: each delivery
  // executes one scheduled move and re-posts while moves remain, so the
  // post-scale plan drains at message speed instead of one move per
  // sampling period. All of this shares the private runtime's single
  // kernel thread with the periodic task, so pending_ needs no lock.
  scaler_tid_ = rt_->spawn(
      "balance.scaler", rt::kPriorityControl,
      [this](rt::Runtime& rt, rt::Message m) {
        if (m.type == rt::msg::kBalanceScaleUp) {
          do_scale_up();
          accountant_.sample();
          replan(accountant_.snapshot());
          if (!pending_.empty()) {
            rt.send(scaler_tid_, rt::Message{rt::msg::kBalanceApplyPlan,
                                             rt::MsgClass::kControl});
          }
        } else if (m.type == rt::msg::kBalanceScaleDown) {
          if (const int* victim = m.get<int>()) do_scale_down(*victim);
        } else if (m.type == rt::msg::kBalanceApplyPlan) {
          if (const std::optional<MigrationReport> r = run_pending()) {
            record_report(*r);
          }
          if (!pending_.empty()) {
            rt.send(scaler_tid_, rt::Message{rt::msg::kBalanceApplyPlan,
                                             rt::MsgClass::kControl});
          }
        }
        return rt::CodeResult::kContinue;
      });
  task_ = std::make_unique<fb::PeriodicTask>(
      *rt_, "balance.rebalancer", opts_.period,
      [this](rt::Time) { (void)step(); });
  task_->start();
  host_ = std::thread([this] { rt_->run_service(bell_); });
}

void Rebalancer::stop() {
  if (!host_.joinable()) return;
  rt_->request_halt();
  bell_.ring();
  host_.join();
  // The runtime is parked again; tearing the task down from this thread is
  // race-free.
  task_.reset();
  rt_.reset();
  scaler_tid_ = rt::kNoThread;
}

obs::MetricsSnapshot Rebalancer::metrics_snapshot() {
  const std::lock_guard<std::mutex> lk(metrics_mu_);
  return metrics_.snapshot();
}

}  // namespace infopipe::balance
