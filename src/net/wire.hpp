// ip_netreal wire format: length-prefixed, versioned frames with explicit
// endianness.
//
// Everything a real socket carries between two Infopipe processes — data
// items, end-of-stream, and the node control protocol (Typespec queries,
// remote factories) — travels as one frame format, so a single reassembly
// loop on the receiving side serves both planes:
//
//   offset  size  field
//   0       2     magic 0x4950 ("IP"), big-endian
//   2       1     version (kVersion)
//   3       1     frame type (FrameType)
//   4       4     body length N, big-endian
//   8       N     body
//
// All multi-byte integers are big-endian (network byte order) — explicit,
// so a little-endian and a big-endian host interoperate and a hexdump of
// the stream reads left-to-right. Data bodies carry the Item's flow
// metadata followed by the raw payload bytes:
//
//   0   8  seq        4+16  4  kind (int32, two's complement)
//   8   8  timestamp  4+20  .. payload bytes (length = N - 20)
//
// Control bodies carry `request id (8) | op/status (1) | text (N - 9)`,
// where text is the same '\x1F'-joined string the in-process node protocol
// already uses (net/node.cpp) and Typespecs cross in marshalled form
// (net/typespec_wire).
//
// The FrameReader is the untrusted-input boundary: it reassembles frames
// from arbitrary read() chunk boundaries and throws RemoteError — never
// crashes, never over-reads — on bad magic, unknown version or type,
// oversized or short bodies. A byte stream that fails here poisons the
// reader permanently (framing is lost; the connection must be dropped).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/item.hpp"
#include "net/error.hpp"

namespace infopipe::net::wire {

inline constexpr std::uint16_t kMagic = 0x4950;  // "IP"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
inline constexpr std::size_t kDataMetaBytes = 20;
inline constexpr std::size_t kControlMetaBytes = 9;
/// Ceiling on one frame's body: a length prefix beyond this is treated as
/// an attack (or corruption), not a allocation request.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  kData = 1,        ///< one information item
  kEos = 2,         ///< end of stream (empty body)
  kControlReq = 3,  ///< node control request (op in ControlOp)
  kControlRep = 4,  ///< node control reply (status: 0 ok, 1 error)
};

/// Operations of the socket control link (the §2.4 middleware protocol
/// between OS processes).
enum class ControlOp : std::uint8_t {
  kTypespecOut = 1,  ///< text: component '\x1F' port  -> marshalled Typespec
  kTypespecIn = 2,   ///< dual query (input requirement)
  kCreate = 3,       ///< text: type '\x1F' name '\x1F' args -> created name
  kStart = 4,        ///< start the remote flow (server-defined)
  /// Session layer (ip_session): open a flow against the shared plan.
  /// text: qos '\x1F' rate_hz '\x1F' payload_bytes -> "id '\x1F' shard", or
  /// an error reply carrying the admission-rejection reason.
  kSessionOpen = 5,
  kSessionClose = 6,  ///< text: session id (decimal) -> ""
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kData;
  Item item;                     ///< kData: metadata + payload; kEos: eos()
  std::uint64_t request_id = 0;  ///< control frames
  std::uint8_t op = 0;           ///< ControlOp (req) or status (rep)
  std::string text;              ///< control body text
};

// ---- encoding --------------------------------------------------------------
// Appending encoders so a burst of frames shares one output buffer (the
// socket transport's outbound queue) without intermediate vectors.

/// Appends a data frame carrying `x`'s payload bytes and flow metadata.
/// `x` must satisfy has_bytes() (netpipes marshal before the transport);
/// throws RemoteError otherwise.
void append_data_frame(std::vector<std::uint8_t>& out, const Item& x);

void append_eos_frame(std::vector<std::uint8_t>& out);

void append_control_request(std::vector<std::uint8_t>& out,
                            std::uint64_t request_id, ControlOp op,
                            std::string_view text);

void append_control_reply(std::vector<std::uint8_t>& out,
                          std::uint64_t request_id, bool ok,
                          std::string_view text);

// ---- decoding --------------------------------------------------------------

/// Incremental frame reassembly over arbitrary chunk boundaries.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_(max_frame_bytes) {}

  /// Appends raw bytes from the socket.
  void feed(const std::uint8_t* p, std::size_t n);

  /// Extracts the next complete frame, or nullopt if more bytes are needed.
  /// Throws RemoteError on malformed input; after a throw the reader is
  /// poisoned (framing lost) and every further call throws.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::size_t max_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace infopipe::net::wire
