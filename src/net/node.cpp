#include "net/node.hpp"

#include <utility>

namespace infopipe::net {

namespace {

constexpr char kUnit = '\x1F';

std::pair<std::string, std::string> split2(const std::string& s) {
  const auto pos = s.find(kUnit);
  if (pos == std::string::npos) return {s, ""};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

/// Runs `body` (which must perform exactly one rt::call) either directly
/// when already on a user-level thread, or on a temporary thread driven to
/// completion when invoked from setup code.
template <typename Body>
auto run_on_runtime(rt::Runtime& rt, Body body) -> decltype(body()) {
  if (rt.current() != rt::kNoThread) return body();
  using Result = decltype(body());
  std::optional<Result> out;
  std::exception_ptr error;
  const rt::ThreadId tmp = rt.spawn(
      "net.client", rt::kPriorityControl,
      [&](rt::Runtime&, rt::Message) -> rt::CodeResult {
        try {
          out = body();
        } catch (...) {
          error = std::current_exception();
        }
        return rt::CodeResult::kTerminate;
      });
  rt.send(tmp, rt::Message{0, rt::MsgClass::kData});
  rt.run();
  if (error) std::rethrow_exception(error);
  if (!out) throw RemoteError("remote operation did not complete");
  return std::move(*out);
}

}  // namespace

Node::Node(rt::Runtime& rt, std::string name)
    : rt_(&rt), name_(std::move(name)) {
  agent_ = rt_->spawn("node." + name_ + ".agent", rt::kPriorityControl,
                      [this](rt::Runtime& r, rt::Message m) {
                        return agent_code(r, std::move(m));
                      });
}

Node::~Node() {
  if (rt_->alive(agent_)) rt_->kill(agent_);
}

void Node::register_factory(std::string type, Maker maker) {
  factories_[std::move(type)] = std::move(maker);
}

Component& Node::create(const std::string& type, const std::string& name,
                        const std::string& args) {
  auto it = factories_.find(type);
  if (it == factories_.end()) {
    throw RemoteError("node " + name_ + " has no factory for type " + type);
  }
  std::unique_ptr<Component> c = it->second(name, args);
  Component& ref = *c;
  by_name_[ref.name()] = c.get();
  owned_.push_back(std::move(c));
  return ref;
}

void Node::adopt(std::unique_ptr<Component> c) {
  by_name_[c->name()] = c.get();
  owned_.push_back(std::move(c));
}

Component* Node::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

rt::CodeResult Node::agent_code(rt::Runtime& rt, rt::Message m) {
  switch (m.type) {
    case kMsgTypespecQuery: {
      // payload: component \x1F port [\x1F "in"|"out"]
      const auto [comp_name, rest] = split2(m.take<std::string>());
      const auto [port_str, dir] = split2(rest);
      rt::Message reply{kMsgTypespecQuery, rt::MsgClass::kReply};
      Component* c = lookup(comp_name);
      if (c == nullptr) {
        reply.payload = std::string("!no such component: ") + comp_name;
      } else {
        const int port = port_str.empty() ? 0 : std::stoi(port_str);
        const Typespec spec = dir == "in" ? c->input_requirement(port)
                                          : c->output_offer(port);
        reply.payload = std::string(":") + marshal_typespec(spec);
      }
      rt.reply(m, std::move(reply));
      return rt::CodeResult::kContinue;
    }
    case kMsgCreateComponent: {
      const auto [type, rest] = split2(m.take<std::string>());
      const auto [comp_name, args] = split2(rest);
      rt::Message reply{kMsgCreateComponent, rt::MsgClass::kReply};
      try {
        Component& c = create(type, comp_name, args);
        reply.payload = std::string(":") + c.name();
      } catch (const std::exception& e) {
        reply.payload = std::string("!") + e.what();
      }
      rt.reply(m, std::move(reply));
      return rt::CodeResult::kContinue;
    }
    default:
      return rt::CodeResult::kContinue;
  }
}

namespace {
Typespec typespec_query_impl(rt::Runtime& rt, const Node& node,
                             const std::string& component, int port,
                             const char* dir) {
  return run_on_runtime(rt, [&]() -> Typespec {
    rt::Message req{kMsgTypespecQuery, rt::MsgClass::kData};
    req.payload = component + std::string(1, kUnit) + std::to_string(port) +
                  std::string(1, kUnit) + dir;
    rt::Message rep = rt.call(node.agent(), std::move(req));
    const auto body = rep.take<std::string>();
    if (body.empty() || body[0] == '!') {
      throw RemoteError(body.empty() ? "empty reply" : body.substr(1));
    }
    return unmarshal_typespec(body.substr(1));
  });
}
}  // namespace

Typespec remote_typespec_query(rt::Runtime& rt, const Node& node,
                               const std::string& component, int port) {
  return typespec_query_impl(rt, node, component, port, "out");
}

Typespec remote_input_requirement(rt::Runtime& rt, const Node& node,
                                  const std::string& component, int port) {
  return typespec_query_impl(rt, node, component, port, "in");
}

std::string remote_create(rt::Runtime& rt, Node& node, const std::string& type,
                          const std::string& name, const std::string& args) {
  return run_on_runtime(rt, [&]() -> std::string {
    rt::Message req{kMsgCreateComponent, rt::MsgClass::kData};
    req.payload = type + std::string(1, kUnit) + name + std::string(1, kUnit) +
                  args;
    rt::Message rep = rt.call(node.agent(), std::move(req));
    const auto body = rep.take<std::string>();
    if (body.empty() || body[0] == '!') {
      throw RemoteError(body.empty() ? "empty reply" : body.substr(1));
    }
    return body.substr(1);
  });
}

}  // namespace infopipe::net
