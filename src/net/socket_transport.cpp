#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace infopipe::net {

namespace {

/// Largest UDP payload we attempt (conservative: fits any loopback MTU).
constexpr std::size_t kMaxDatagramBytes = 60 * 1024;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port,
                      bool listen_side) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  if (host.empty()) {
    a.sin_addr.s_addr = htonl(listen_side ? INADDR_ANY : INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &a.sin_addr) != 1) {
    throw RemoteError("not an IPv4 address: " + host);
  }
  return a;
}

void set_stream_options(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

}  // namespace

SocketTransport::SocketTransport(rt::Runtime& rt, rt::IoBridge& io,
                                 SocketConfig cfg, bool passive)
    : rt_(&rt), io_(&io), cfg_(std::move(cfg)), passive_(passive) {
  port_ = cfg_.port;
  reader_ = wire::FrameReader(cfg_.max_frame_bytes);
  agent_ = rt.spawn(
      "net.sock", rt::kPriorityData,
      [this](rt::Runtime& r, rt::Message m) { return agent_code(r, m); });
  obs::MetricsRegistry& mr = rt.metrics();
  obs_bytes_tx_ = &mr.counter("net.sock.bytes_sent");
  obs_bytes_rx_ = &mr.counter("net.sock.bytes_received");
  obs_frames_tx_ = &mr.counter("net.sock.frames_sent");
  obs_frames_rx_ = &mr.counter("net.sock.frames_received");
  obs_errors_ = &mr.counter("net.sock.protocol_errors");
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) {
    io_->cancel_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    io_->cancel_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (rt_->alive(agent_)) rt_->kill(agent_);
}

std::unique_ptr<SocketTransport> SocketTransport::listen(rt::Runtime& rt,
                                                         rt::IoBridge& io,
                                                         SocketConfig cfg) {
  auto t = std::unique_ptr<SocketTransport>(
      new SocketTransport(rt, io, std::move(cfg), /*passive=*/true));
  const sockaddr_in a =
      make_addr(t->cfg_.host, t->cfg_.port, /*listen_side=*/true);
  const int type =
      (t->cfg_.udp ? SOCK_DGRAM : SOCK_STREAM) | SOCK_NONBLOCK | SOCK_CLOEXEC;
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) throw RemoteError(errno_text("socket()"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&a), sizeof a) < 0) {
    const std::string why = errno_text("bind()");
    ::close(fd);
    throw RemoteError(why + " on " + t->cfg_.host + ":" +
                      std::to_string(t->cfg_.port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    t->port_ = ntohs(bound.sin_port);
  }
  if (t->cfg_.udp) {
    t->fd_ = fd;
    t->state_ = State::kConnected;  // connectionless: always "up"
    t->io_->watch_readable_once(fd, t->agent_);
  } else {
    if (::listen(fd, 8) < 0) {
      const std::string why = errno_text("listen()");
      ::close(fd);
      throw RemoteError(why);
    }
    t->listen_fd_ = fd;
    t->state_ = State::kListening;
    t->io_->watch_readable_once(fd, t->agent_);
  }
  return t;
}

std::unique_ptr<SocketTransport> SocketTransport::connect(rt::Runtime& rt,
                                                          rt::IoBridge& io,
                                                          SocketConfig cfg) {
  auto t = std::unique_ptr<SocketTransport>(
      new SocketTransport(rt, io, std::move(cfg), /*passive=*/false));
  if (t->cfg_.udp) {
    const sockaddr_in a =
        make_addr(t->cfg_.host, t->cfg_.port, /*listen_side=*/false);
    t->fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (t->fd_ < 0) throw RemoteError(errno_text("socket()"));
    // UDP connect() just pins the default destination; it cannot block.
    if (::connect(t->fd_, reinterpret_cast<const sockaddr*>(&a), sizeof a) <
        0) {
      throw RemoteError(errno_text("connect()"));
    }
    t->state_ = State::kConnected;
    t->io_->watch_readable_once(t->fd_, t->agent_);
  } else {
    t->start_connect();  // throws on an unparseable address
  }
  return t;
}

std::unique_ptr<SocketTransport> SocketTransport::adopt(rt::Runtime& rt,
                                                        rt::IoBridge& io,
                                                        SocketConfig cfg,
                                                        int fd) {
  if (cfg.udp) throw RemoteError("adopt() is TCP-only");
  auto t = std::unique_ptr<SocketTransport>(
      new SocketTransport(rt, io, std::move(cfg), /*passive=*/true));
  sockaddr_in local{};
  socklen_t llen = sizeof local;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &llen) == 0) {
    t->port_ = ntohs(local.sin_port);
  }
  t->fd_ = fd;
  t->state_ = State::kConnected;
  ++t->stats_.accepts;
  t->io_->watch_readable_once(fd, t->agent_);
  return t;
}

void SocketTransport::start_connect() {
  const sockaddr_in a = make_addr(cfg_.host, cfg_.port, /*listen_side=*/false);
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    schedule_retry();
    return;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  state_ = State::kConnecting;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&a), sizeof a) == 0) {
    on_connected();
    return;
  }
  if (errno == EINPROGRESS) {
    io_->watch_writable_once(fd_, agent_);
    return;
  }
  ::close(fd_);
  fd_ = -1;
  schedule_retry();
}

void SocketTransport::on_connected() {
  state_ = State::kConnected;
  ++stats_.connects;
  backoff_ = cfg_.retry_initial;
  io_->watch_readable_once(fd_, agent_);
  flush();  // release anything queued while the peer was absent
}

void SocketTransport::schedule_retry() {
  ++stats_.retries;
  state_ = State::kBackoff;
  if (backoff_ <= 0) backoff_ = cfg_.retry_initial;
  rt_->send_at(rt_->now() + backoff_, agent_,
               rt::Message{rt::msg::kNetSocketRetry, rt::MsgClass::kData});
  backoff_ = std::min(backoff_ * 2, cfg_.retry_max);
}

void SocketTransport::do_accept() {
  for (;;) {
    const int c =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (c < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    if (fd_ >= 0) {
      // One peer at a time: a second connector is turned away.
      ::close(c);
      continue;
    }
    set_stream_options(c);
    fd_ = c;
    state_ = State::kConnected;
    ++stats_.accepts;
    peer_closed_ = false;
    reader_ = wire::FrameReader(cfg_.max_frame_bytes);
    io_->watch_readable_once(fd_, agent_);
    flush();
  }
  io_->watch_readable_once(listen_fd_, agent_);
}

rt::CodeResult SocketTransport::agent_code(rt::Runtime&, rt::Message m) {
  switch (m.type) {
    case rt::kMsgIoReadable: {
      const int* fd = m.get<int>();
      if (fd == nullptr) break;
      if (*fd == listen_fd_) {
        do_accept();
      } else if (*fd == fd_) {  // stale notifications for closed fds skipped
        if (cfg_.udp) {
          drain_datagrams();
        } else {
          drain_reads();
        }
      }
      break;
    }
    case rt::kMsgIoWritable: {
      const int* fd = m.get<int>();
      if (fd == nullptr || *fd != fd_) break;
      if (state_ == State::kConnecting) {
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
            err != 0) {
          io_->cancel_fd(fd_);
          ::close(fd_);
          fd_ = -1;
          schedule_retry();
        } else {
          on_connected();
        }
      } else if (state_ == State::kConnected) {
        flush();
      }
      break;
    }
    case rt::msg::kNetSocketRetry:
      if (state_ == State::kBackoff) start_connect();
      break;
    default:
      break;
  }
  return rt::CodeResult::kContinue;
}

void SocketTransport::drain_reads() {
  for (;;) {
    if (rdbuf_.size() < 64 * 1024) rdbuf_.resize(64 * 1024);
    const ssize_t n = ::recv(fd_, rdbuf_.data(), rdbuf_.size(), 0);
    if (n > 0) {
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      obs_bytes_rx_->inc(static_cast<std::uint64_t>(n));
      reader_.feed(rdbuf_.data(), static_cast<std::size_t>(n));
      try {
        while (auto f = reader_.next()) dispatch(std::move(*f));
      } catch (const RemoteError&) {
        // Hostile or corrupt stream: framing is lost, drop the connection.
        ++stats_.protocol_errors;
        obs_errors_->inc();
        handle_peer_close(/*error=*/true);
        return;
      }
      continue;
    }
    if (n == 0) {
      // Orderly close. Clean if we already saw EOS; a reset otherwise.
      handle_peer_close(/*error=*/!eos_delivered_);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    handle_peer_close(/*error=*/true);
    return;
  }
  io_->watch_readable_once(fd_, agent_);
}

void SocketTransport::drain_datagrams() {
  for (;;) {
    if (rdbuf_.size() < 64 * 1024) rdbuf_.resize(64 * 1024);
    const ssize_t n = ::recv(fd_, rdbuf_.data(), rdbuf_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient ICMP error: both just end the drain
    }
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    obs_bytes_rx_->inc(static_cast<std::uint64_t>(n));
    // Each datagram carries whole frames; a fresh reader per datagram keeps
    // one corrupt packet from poisoning the next.
    wire::FrameReader r(cfg_.max_frame_bytes);
    r.feed(rdbuf_.data(), static_cast<std::size_t>(n));
    try {
      while (auto f = r.next()) dispatch(std::move(*f));
      if (r.buffered() != 0) {  // truncated trailing frame
        ++stats_.protocol_errors;
        obs_errors_->inc();
      }
    } catch (const RemoteError&) {
      ++stats_.protocol_errors;  // drop the datagram, keep the socket
      obs_errors_->inc();
    }
  }
  io_->watch_readable_once(fd_, agent_);
}

void SocketTransport::dispatch(wire::Frame f) {
  switch (f.type) {
    case wire::FrameType::kData:
      ++stats_.frames_received;
      obs_frames_rx_->inc();
      deliver(std::move(f.item));
      break;
    case wire::FrameType::kEos:
      ++stats_.frames_received;
      deliver(Item::eos());
      break;
    case wire::FrameType::kControlReq:
      if (handler_) {
        handler_(f.request_id, static_cast<wire::ControlOp>(f.op), f.text);
      } else {
        send_control_reply(f.request_id, false, "no control handler attached");
      }
      break;
    case wire::FrameType::kControlRep: {
      const auto it = pending_.find(f.request_id);
      if (it == pending_.end()) break;  // late reply after a timeout
      ControlReply r{f.request_id, f.op == 0, std::move(f.text)};
      rt::Message m{rt::msg::kNetControlReply, rt::MsgClass::kData};
      m.payload = std::move(r);
      rt_->send(it->second, std::move(m));
      break;
    }
  }
}

void SocketTransport::deliver(Item x) {
  if (x.is_eos()) {
    if (eos_delivered_) return;  // at most one EOS per stream
    eos_delivered_ = true;
  }
  if (rx_ == rt::kNoThread) {
    early_.push_back(std::move(x));  // receiver not realized yet
    return;
  }
  rt::Message m{kMsgNetDeliver, rt::MsgClass::kData};
  m.payload = std::move(x);
  rt_->send(rx_, std::move(m));
}

void SocketTransport::attach_receiver(rt::ThreadId tid) {
  rx_ = tid;
  while (!early_.empty()) {
    Item x = std::move(early_.front());
    early_.pop_front();
    rt::Message m{kMsgNetDeliver, rt::MsgClass::kData};
    m.payload = std::move(x);
    rt_->send(rx_, std::move(m));
  }
}

void SocketTransport::send(rt::Runtime&, Item packet) {
  if (packet.is_nil()) return;
  if (cfg_.udp) {
    send_udp(packet);
    return;
  }
  if (eos_flushed_) return;  // write side already shut down
  if (packet.is_eos()) {
    wire::append_eos_frame(out_);
    eos_sent_ = true;
  } else {
    wire::append_data_frame(out_, packet);
    ++stats_.frames_sent;
    obs_frames_tx_->inc();
  }
  flush();
}

void SocketTransport::send_udp(const Item& packet) {
  std::vector<std::uint8_t> frame;
  if (packet.is_eos()) {
    wire::append_eos_frame(frame);
    eos_sent_ = true;
  } else {
    wire::append_data_frame(frame, packet);
  }
  if (frame.size() > kMaxDatagramBytes) {
    ++stats_.oversize_drops;
    return;
  }
  const ssize_t n = ::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL);
  if (n < 0) return;  // best-effort, like SimLink loss: EAGAIN/no-peer drop
  stats_.bytes_sent += static_cast<std::uint64_t>(n);
  ++stats_.frames_sent;
  obs_bytes_tx_->inc(static_cast<std::uint64_t>(n));
  obs_frames_tx_->inc();
  if (packet.is_eos()) eos_flushed_ = true;
}

void SocketTransport::flush() {
  if (cfg_.udp) return;
  if (state_ != State::kConnected || fd_ < 0) return;  // queued until connect
  while (out_pos_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_pos_,
                             out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n >= 0) {
      out_pos_ += static_cast<std::size_t>(n);
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      obs_bytes_tx_->inc(static_cast<std::uint64_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ++stats_.partial_writes;
      io_->watch_writable_once(fd_, agent_);
      return;
    }
    handle_peer_close(/*error=*/true);
    return;
  }
  out_.clear();
  out_pos_ = 0;
  if (eos_sent_ && !eos_flushed_) {
    // Everything up to and including EOS is on the wire: half-close so the
    // peer's read side sees an orderly end after the EOS frame.
    eos_flushed_ = true;
    ::shutdown(fd_, SHUT_WR);
  }
}

void SocketTransport::handle_peer_close(bool error) {
  if (fd_ >= 0) {
    io_->cancel_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  peer_closed_ = true;
  reader_ = wire::FrameReader(cfg_.max_frame_bytes);
  if (error) ++stats_.peer_resets;
  if (!eos_delivered_ && rx_ != rt::kNoThread) {
    // The peer vanished without EOS: synthesize one so the consumer
    // pipeline terminates instead of hanging (SimLink's EOS contract).
    deliver(Item::eos());
  }
  state_ = (passive_ && listen_fd_ >= 0) ? State::kListening : State::kClosed;
}

void SocketTransport::send_control_reply(std::uint64_t request_id, bool ok,
                                         const std::string& text) {
  if (cfg_.udp) throw RemoteError("control plane requires TCP");
  wire::append_control_reply(out_, request_id, ok, text);
  flush();
}

std::string SocketTransport::call_control(wire::ControlOp op,
                                          const std::string& text,
                                          rt::Time timeout) {
  if (cfg_.udp) throw RemoteError("control plane requires TCP");
  const rt::ThreadId self = rt_->current();
  if (self == rt::kNoThread) {
    throw RemoteError("call_control outside a user-level thread");
  }
  const std::uint64_t id = next_request_++;
  wire::append_control_request(out_, id, op, text);
  flush();  // queues until connected; retry/backoff covers a late server
  pending_[id] = self;
  rt_->send_at(rt_->now() + timeout, self,
               rt::Message{rt::msg::kNetControlTimeout, rt::MsgClass::kData,
                           std::any(id)});
  rt::Message m = rt_->receive_matching([id](const rt::Message& x) {
    if (x.type == rt::msg::kNetControlReply) {
      const auto* r = x.get<ControlReply>();
      return r != nullptr && r->id == id;
    }
    if (x.type == rt::msg::kNetControlTimeout) {
      const auto* i = x.get<std::uint64_t>();
      return i != nullptr && *i == id;
    }
    return false;
  });
  pending_.erase(id);
  if (m.type == rt::msg::kNetControlTimeout) {
    throw RemoteError("control call timed out (op " +
                      std::to_string(static_cast<int>(op)) + ")");
  }
  // Retire the timeout timer: left pending it would keep the runtime from
  // going quiescent — under a RealClock, a multi-second stall in the next
  // plain run().
  rt_->cancel_timers(self, rt::msg::kNetControlTimeout);
  auto r = m.take<ControlReply>();
  if (!r.ok) throw RemoteError(r.text);
  return std::move(r.text);
}

// ============================ SocketAcceptor ================================

SocketAcceptor::SocketAcceptor(rt::Runtime& rt, rt::IoBridge& io,
                               SocketConfig cfg, AcceptFn on_accept)
    : rt_(&rt), io_(&io), cfg_(std::move(cfg)), on_accept_(std::move(on_accept)) {
  if (cfg_.udp) throw RemoteError("SocketAcceptor is TCP-only");
  const sockaddr_in a = make_addr(cfg_.host, cfg_.port, /*listen_side=*/true);
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw RemoteError(errno_text("socket()"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&a), sizeof a) < 0) {
    const std::string why = errno_text("bind()");
    ::close(fd);
    throw RemoteError(why + " on " + cfg_.host + ":" +
                      std::to_string(cfg_.port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  // Deep backlog: a session server expects connect bursts, and nothing in
  // the accept path blocks (each adopted fd gets its own agent).
  if (::listen(fd, 128) < 0) {
    const std::string why = errno_text("listen()");
    ::close(fd);
    throw RemoteError(why);
  }
  listen_fd_ = fd;
  agent_ = rt.spawn("net.accept", rt::kPriorityData,
                    [this](rt::Runtime&, rt::Message m) {
                      return agent_code(std::move(m));
                    });
  io_->watch_readable_once(listen_fd_, agent_);
}

SocketAcceptor::~SocketAcceptor() {
  if (listen_fd_ >= 0) {
    io_->cancel_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (rt_->alive(agent_)) rt_->kill(agent_);
}

rt::CodeResult SocketAcceptor::agent_code(rt::Message m) {
  if (m.type == rt::kMsgIoReadable) {
    const int* fd = m.get<int>();
    if (fd != nullptr && *fd == listen_fd_) do_accept();
  }
  return rt::CodeResult::kContinue;
}

void SocketAcceptor::do_accept() {
  for (;;) {
    const int c =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (c < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    set_stream_options(c);
    ++accepted_;
    // Every peer gets its OWN transport + agent ULT — no shared connection
    // slot, no turn-away, no re-listen serialization.
    on_accept_(SocketTransport::adopt(*rt_, *io_, cfg_, c));
  }
  io_->watch_readable_once(listen_fd_, agent_);
}

}  // namespace infopipe::net
