#include "net/wire.hpp"

#include <cstring>

namespace infopipe::net::wire {

namespace {

// Big-endian packers/unpackers; explicit byte shuffles, no host-order
// assumptions, no type punning.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) |
                                    std::uint16_t{p[1]});
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | std::uint64_t{get_u32(p + 4)};
}

void append_header(std::vector<std::uint8_t>& out, FrameType type,
                   std::size_t body_len) {
  put_u16(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(body_len));
}

}  // namespace

void append_data_frame(std::vector<std::uint8_t>& out, const Item& x) {
  const std::uint8_t* payload = x.bytes_data();
  const std::size_t n = x.bytes_size();
  if (payload == nullptr && n > 0) {
    throw RemoteError("data frame requires a byte payload (marshal first)");
  }
  append_header(out, FrameType::kData, kDataMetaBytes + n);
  put_u64(out, x.seq);
  put_u64(out, static_cast<std::uint64_t>(x.timestamp));
  put_u32(out, static_cast<std::uint32_t>(x.kind));
  if (n > 0) out.insert(out.end(), payload, payload + n);
}

void append_eos_frame(std::vector<std::uint8_t>& out) {
  append_header(out, FrameType::kEos, 0);
}

void append_control_request(std::vector<std::uint8_t>& out,
                            std::uint64_t request_id, ControlOp op,
                            std::string_view text) {
  append_header(out, FrameType::kControlReq, kControlMetaBytes + text.size());
  put_u64(out, request_id);
  out.push_back(static_cast<std::uint8_t>(op));
  out.insert(out.end(), text.begin(), text.end());
}

void append_control_reply(std::vector<std::uint8_t>& out,
                          std::uint64_t request_id, bool ok,
                          std::string_view text) {
  append_header(out, FrameType::kControlRep, kControlMetaBytes + text.size());
  put_u64(out, request_id);
  out.push_back(ok ? 0 : 1);
  out.insert(out.end(), text.begin(), text.end());
}

void FrameReader::feed(const std::uint8_t* p, std::size_t n) {
  // Compact the consumed prefix before growing: the buffer stays bounded by
  // one partial frame plus one read chunk.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
}

std::optional<Frame> FrameReader::next() {
  if (poisoned_) {
    throw RemoteError("frame reader poisoned by earlier malformed input");
  }
  if (buffered() < kHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u16(h) != kMagic) {
    poisoned_ = true;
    throw RemoteError("bad frame magic");
  }
  if (h[2] != kVersion) {
    poisoned_ = true;
    throw RemoteError("unsupported wire version " + std::to_string(h[2]));
  }
  const auto type = static_cast<FrameType>(h[3]);
  const std::size_t body = get_u32(h + 4);
  if (body > max_) {
    poisoned_ = true;
    throw RemoteError("oversized frame: " + std::to_string(body) + " > " +
                      std::to_string(max_) + " bytes");
  }
  if (buffered() < kHeaderBytes + body) return std::nullopt;
  const std::uint8_t* b = h + kHeaderBytes;

  Frame f;
  f.type = type;
  switch (type) {
    case FrameType::kData: {
      if (body < kDataMetaBytes) {
        poisoned_ = true;
        throw RemoteError("short data frame body");
      }
      const std::size_t payload = body - kDataMetaBytes;
      f.item = Item::of_bytes(b + kDataMetaBytes, payload);
      f.item.seq = get_u64(b);
      f.item.timestamp = static_cast<rt::Time>(get_u64(b + 8));
      f.item.kind = static_cast<std::int32_t>(get_u32(b + 16));
      break;
    }
    case FrameType::kEos:
      if (body != 0) {
        poisoned_ = true;
        throw RemoteError("EOS frame with a body");
      }
      f.item = Item::eos();
      break;
    case FrameType::kControlReq:
    case FrameType::kControlRep: {
      if (body < kControlMetaBytes) {
        poisoned_ = true;
        throw RemoteError("short control frame body");
      }
      f.request_id = get_u64(b);
      f.op = b[8];
      f.text.assign(reinterpret_cast<const char*>(b + kControlMetaBytes),
                    body - kControlMetaBytes);
      break;
    }
    default:
      poisoned_ = true;
      throw RemoteError("unknown frame type " +
                        std::to_string(static_cast<int>(h[3])));
  }
  pos_ += kHeaderBytes + body;
  return f;
}

}  // namespace infopipe::net::wire
