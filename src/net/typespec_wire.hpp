// Property marshalling for the middleware protocol (§2.4: "Remote Typespec
// queries also require a middleware protocol as well as a mechanism for
// property marshalling").
//
// Wire format, one property per record:
//   key '\x1F' typecode ':' value '\x1E'
// with typecodes b(bool) i(int64) d(double) s(string) r(range "lo,hi")
// S(string set "a|b|c"). Strings are escaped for the separator characters.
#pragma once

#include <string>

#include "core/typespec.hpp"
#include "net/error.hpp"

namespace infopipe::net {

[[nodiscard]] std::string marshal_typespec(const Typespec& t);

/// Throws RemoteError on malformed input. This parser faces untrusted bytes
/// once real sockets (net/socket_transport) feed it: truncated, oversized
/// or bit-flipped records must fail cleanly — never crash, never over-read.
[[nodiscard]] Typespec unmarshal_typespec(const std::string& wire);

}  // namespace infopipe::net
