// Remote control events (§2.4): "control events are delivered to remote
// components through the platform."
//
// Within one Realization that spans several simulated nodes, a plain
// post_event_to() is instantaneous — physically wrong when sender and
// target sit on different nodes. RemoteControlLink imposes the network's
// propagation delay on control traffic (control events are tiny, so
// serialization time is ignored; only the base latency applies). The
// Figure 1 feedback loop uses this for sensor → filter commands, which is
// why adaptation has an inherent one-way-delay reaction time.
#pragma once

#include "core/component.hpp"
#include "core/realization.hpp"
#include "net/transport.hpp"

namespace infopipe::net {

class RemoteControlLink {
 public:
  explicit RemoteControlLink(const SimLink& link) : link_(&link) {}

  /// Delivers `e` to `target` after the link's base latency.
  void post(Realization& real, Component& target, const Event& e) const {
    real.post_event_to_after(target, e, link_->config().base_latency);
    ++posted_;
  }

  [[nodiscard]] std::uint64_t posted() const noexcept { return posted_; }

 private:
  const SimLink* link_;
  mutable std::uint64_t posted_ = 0;
};

}  // namespace infopipe::net
