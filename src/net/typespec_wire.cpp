#include "net/typespec_wire.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace infopipe::net {

namespace {

constexpr char kUnit = '\x1F';    // key/value separator
constexpr char kRecord = '\x1E';  // record separator

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == kUnit || c == kRecord || c == '\\' || c == '|') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out.push_back(s[i]);
  }
  return out;
}

/// Format a double without locale surprises and round-trip-exactly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Numeric parses over hostile input: std::stoll/std::stod throw
/// std::invalid_argument on garbage and std::out_of_range on oversized
/// digit strings — both must surface as RemoteError, not leak through as
/// unrelated exception types (or worse, as an uncaught crash in a server's
/// control loop).
std::int64_t parse_i64(const std::string& s) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) throw RemoteError("trailing bytes in integer");
    return v;
  } catch (const RemoteError&) {
    throw;
  } catch (const std::exception&) {
    throw RemoteError("malformed integer in typespec wire: " + s);
  }
}

double parse_double(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw RemoteError("trailing bytes in double");
    return v;
  } catch (const RemoteError&) {
    throw;
  } catch (const std::exception&) {
    throw RemoteError("malformed double in typespec wire: " + s);
  }
}

std::vector<std::string> split_unescaped(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  bool esc = false;
  for (char c : s) {
    if (esc) {
      cur.push_back('\\');
      cur.push_back(c);
      esc = false;
      continue;
    }
    if (c == '\\') {
      esc = true;
      continue;
    }
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

std::string marshal_typespec(const Typespec& t) {
  std::ostringstream os;
  for (const auto& [key, val] : t.properties()) {
    os << escape(key) << kUnit;
    std::visit(
        [&](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, bool>) {
            os << "b:" << (v ? '1' : '0');
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            os << "i:" << v;
          } else if constexpr (std::is_same_v<T, double>) {
            os << "d:" << fmt_double(v);
          } else if constexpr (std::is_same_v<T, std::string>) {
            os << "s:" << escape(v);
          } else if constexpr (std::is_same_v<T, Range>) {
            os << "r:" << fmt_double(v.lo) << ',' << fmt_double(v.hi);
          } else if constexpr (std::is_same_v<T, StringSet>) {
            os << "S:";
            bool first = true;
            for (const std::string& m : v) {
              if (!first) os << '|';
              os << escape(m);
              first = false;
            }
          }
        },
        val);
    os << kRecord;
  }
  return os.str();
}

Typespec unmarshal_typespec(const std::string& wire) {
  Typespec t;
  for (const std::string& record : split_unescaped(wire, kRecord)) {
    if (record.empty()) continue;
    const auto kv = split_unescaped(record, kUnit);
    if (kv.size() != 2 || kv[1].size() < 2 || kv[1][1] != ':') {
      throw RemoteError("malformed typespec record");
    }
    const std::string key = unescape(kv[0]);
    const char code = kv[1][0];
    const std::string val = kv[1].substr(2);
    switch (code) {
      case 'b':
        t.set(key, val == "1");
        break;
      case 'i':
        t.set(key, parse_i64(val));
        break;
      case 'd':
        t.set(key, parse_double(val));
        break;
      case 's':
        t.set(key, unescape(val));
        break;
      case 'r': {
        const auto comma = val.find(',');
        if (comma == std::string::npos) {
          throw RemoteError("malformed range");
        }
        t.set(key, Range{parse_double(val.substr(0, comma)),
                         parse_double(val.substr(comma + 1))});
        break;
      }
      case 'S': {
        StringSet set;
        for (const std::string& m : split_unescaped(val, '|')) {
          set.insert(unescape(m));
        }
        t.set(key, std::move(set));
        break;
      }
      default:
        throw RemoteError(std::string("unknown typecode ") + code);
    }
  }
  return t;
}

}  // namespace infopipe::net
