#include "net/transport.hpp"

#include <algorithm>
#include <cmath>

namespace infopipe::net {

std::size_t SimLink::queue_depth_bytes(rt::Time now) const {
  if (wire_free_at_ <= now) return 0;
  const double backlog_ns = static_cast<double>(wire_free_at_ - now);
  return static_cast<std::size_t>(backlog_ns * bandwidth() / 8e9);
}

void SimLink::send(rt::Runtime& rt, Item packet) {
  const rt::Time now = rt.now();
  if (obs_owner_ != &rt) {
    obs_owner_ = &rt;
    obs::MetricsRegistry& mr = rt.metrics();
    obs_bytes_ = &mr.counter("net.bytes_sent");
    obs_packets_ = &mr.counter("net.packets_sent");
    obs_drops_ = &mr.counter("net.drops");
  }
  if (packet.is_eos()) {
    // End-of-stream travels reliably, after all queued data, without jitter
    // reordering past the last packet.
    const rt::Time at =
        std::max(wire_free_at_, now) + cfg_.base_latency + cfg_.jitter;
    rt::Message m{kMsgNetDeliver, rt::MsgClass::kData};
    m.payload = std::move(packet);
    rt.send_at(at, rx_, std::move(m));
    return;
  }

  ++stats_.sent;
  const std::size_t size = std::max<std::size_t>(packet.size_bytes, 1);

  if (queue_depth_bytes(now) + size > cfg_.queue_capacity_bytes) {
    ++stats_.dropped_congestion;  // drop-tail: arbitrary from the app's view
    obs_drops_->inc();
    IP_OBS_TRACE(rt.tracer(), obs::Hop::kDrop, "link",
                 static_cast<std::int64_t>(size));
    return;
  }
  if (cfg_.random_loss > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng_) < cfg_.random_loss) {
      ++stats_.dropped_random;
      obs_drops_->inc();
      IP_OBS_TRACE(rt.tracer(), obs::Hop::kDrop, "link",
                   static_cast<std::int64_t>(size));
      return;
    }
  }

  const double tx_ns = static_cast<double>(size) * 8e9 / bandwidth();
  const rt::Time start = std::max(now, wire_free_at_);
  wire_free_at_ = start + static_cast<rt::Time>(std::llround(tx_ns));

  rt::Time jitter = 0;
  if (cfg_.jitter > 0) {
    std::uniform_int_distribution<rt::Time> j(0, cfg_.jitter);
    jitter = j(rng_);
  }
  const rt::Time deliver_at = wire_free_at_ + cfg_.base_latency + jitter;

  stats_.bytes_sent += size;
  ++stats_.delivered_scheduled;
  obs_bytes_->inc(size);
  obs_packets_->inc();
  rt::Message m{kMsgNetDeliver, rt::MsgClass::kData};
  m.payload = std::move(packet);
  rt.send_at(deliver_at, rx_, std::move(m));
}

}  // namespace infopipe::net
