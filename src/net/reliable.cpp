#include "net/reliable.hpp"

namespace infopipe::net {

namespace {
/// Internal message types (sender/receiver agents only); values allotted in
/// rt/msg_registry.hpp.
constexpr int kMsgArqSubmit = rt::msg::kNetArqSubmit;
constexpr int kMsgArqTimer = rt::msg::kNetArqTimer;  ///< payload: seq
constexpr std::size_t kAckBytes = 12;
constexpr std::size_t kArqHeaderBytes = 12;
}  // namespace

ReliableTransport::ReliableTransport(rt::Runtime& rt, SimLink& forward,
                                     SimLink& reverse, rt::Time rto)
    : rt_(&rt), fwd_(&forward), rev_(&reverse), rto_(rto) {
  sender_agent_ = rt_->spawn("arq.sender", rt::kPriorityData,
                             [this](rt::Runtime& r, rt::Message m) {
                               return sender_code(r, std::move(m));
                             });
  receiver_agent_ = rt_->spawn("arq.receiver", rt::kPriorityData,
                               [this](rt::Runtime& r, rt::Message m) {
                                 return receiver_code(r, std::move(m));
                               });
  fwd_->attach_receiver(receiver_agent_);
  rev_->attach_receiver(sender_agent_);
  obs_retx_ = &rt_->metrics().counter("net.arq_retransmissions");
  obs_delivered_ = &rt_->metrics().counter("net.arq_delivered");
}

ReliableTransport::~ReliableTransport() {
  if (rt_->alive(sender_agent_)) rt_->kill(sender_agent_);
  if (rt_->alive(receiver_agent_)) rt_->kill(receiver_agent_);
}

double ReliableTransport::bandwidth() const { return fwd_->bandwidth(); }

void ReliableTransport::send(rt::Runtime& rt, Item packet) {
  rt::Message m{kMsgArqSubmit, rt::MsgClass::kData};
  m.payload = std::move(packet);
  rt.send(sender_agent_, std::move(m));
}

void ReliableTransport::transmit(rt::Runtime& rt, std::uint64_t seq,
                                 Item wire) {
  ++stats_.transmissions;
  fwd_->send(rt, std::move(wire));
  rt::Message timer{kMsgArqTimer, rt::MsgClass::kTimer};
  timer.payload = seq;
  rt.send_at(rt.now() + rto_, sender_agent_, std::move(timer));
}

rt::CodeResult ReliableTransport::sender_code(rt::Runtime& rt,
                                              rt::Message m) {
  switch (m.type) {
    case kMsgArqSubmit: {
      Item x = m.take<Item>();
      ArqPacket pkt;
      pkt.seq = next_seq_++;
      pkt.eos = x.is_eos();
      if (!pkt.eos) pkt.item = std::move(x);
      const std::uint64_t seq = pkt.seq;
      const std::size_t body =
          pkt.eos ? 0 : std::max<std::size_t>(pkt.item.size_bytes, 1);
      // Marshal ONCE: the wire item (and its pooled payload block) is held
      // until acked; retransmissions re-send the same block.
      Item wire = Item::of<ArqPacket>(std::move(pkt));
      wire.seq = seq;
      wire.size_bytes = body + kArqHeaderBytes;
      in_flight_.emplace(seq, wire);
      ++stats_.submitted;
      transmit(rt, seq, std::move(wire));
      return rt::CodeResult::kContinue;
    }
    case kMsgArqTimer: {
      const auto* seq = m.get<std::uint64_t>();
      if (seq == nullptr) return rt::CodeResult::kContinue;
      auto it = in_flight_.find(*seq);
      if (it != in_flight_.end()) {
        ++stats_.retransmissions;
        obs_retx_->inc();
        transmit(rt, *seq, it->second);
      }
      return rt::CodeResult::kContinue;
    }
    case kMsgNetDeliver: {  // an ACK from the reverse link
      const Item ack_item = m.take<Item>();
      const ArqAck* ack = ack_item.payload<ArqAck>();
      if (ack != nullptr && in_flight_.erase(ack->seq) > 0) {
        ++stats_.acked;
      }
      return rt::CodeResult::kContinue;
    }
    default:
      return rt::CodeResult::kContinue;
  }
}

rt::CodeResult ReliableTransport::receiver_code(rt::Runtime& rt,
                                                rt::Message m) {
  if (m.type != kMsgNetDeliver) return rt::CodeResult::kContinue;
  Item wire = m.take<Item>();
  const ArqPacket* pkt = wire.payload<ArqPacket>();
  if (pkt == nullptr) return rt::CodeResult::kContinue;

  // Acknowledge everything we see, including duplicates (the original ACK
  // may have been what got lost).
  Item ack = Item::of<ArqAck>(ArqAck{pkt->seq});
  ack.size_bytes = kAckBytes;
  rev_->send(rt, std::move(ack));

  if (pkt->seq < next_deliver_ || reorder_.count(pkt->seq) != 0) {
    ++stats_.duplicates;
    return rt::CodeResult::kContinue;
  }
  reorder_.emplace(pkt->seq, *pkt);

  // Release the in-order prefix to the consumer.
  while (!reorder_.empty() && reorder_.begin()->first == next_deliver_) {
    ArqPacket ready = std::move(reorder_.begin()->second);
    reorder_.erase(reorder_.begin());
    ++next_deliver_;
    if (consumer_ != rt::kNoThread) {
      rt::Message out{kMsgNetDeliver, rt::MsgClass::kData};
      out.payload = ready.eos ? Item::eos() : std::move(ready.item);
      rt.send(consumer_, std::move(out));
      ++stats_.delivered;
      obs_delivered_->inc();
    }
  }
  return rt::CodeResult::kContinue;
}

}  // namespace infopipe::net
