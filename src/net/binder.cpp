#include "net/binder.hpp"

namespace infopipe::net {

BindingResult negotiate(rt::Runtime& rt, const BindingRequest& req) {
  if (req.producer_node == nullptr || req.consumer_node == nullptr) {
    BindingResult out;
    out.failure = "binding request missing a node";
    return out;
  }
  // The legacy in-process form is the endpoint form with two local
  // (query-only) endpoints.
  LocalNodeEndpoint producer(rt, *req.producer_node);
  LocalNodeEndpoint consumer(rt, *req.consumer_node);
  EndpointBindingRequest ereq;
  ereq.producer_node = &producer;
  ereq.producer = req.producer;
  ereq.out_port = req.out_port;
  ereq.consumer_node = &consumer;
  ereq.consumer = req.consumer;
  ereq.in_port = req.in_port;
  ereq.link = req.link;
  return negotiate(rt, ereq);
}

BindingResult negotiate(rt::Runtime& rt, const EndpointBindingRequest& req) {
  (void)rt;  // endpoints carry their runtime; kept for call-site symmetry
  BindingResult out;
  if (req.producer_node == nullptr || req.consumer_node == nullptr) {
    out.failure = "binding request missing a node";
    return out;
  }

  const Typespec offer =
      req.producer_node->output_offer(req.producer, req.out_port);
  const Typespec need =
      req.consumer_node->input_requirement(req.consumer, req.in_port);

  auto agreed = offer.intersect(need);
  if (!agreed) {
    out.failure = req.producer_node->name() + "/" + req.producer +
                  " offers " + offer.to_string() + " but " +
                  req.consumer_node->name() + "/" + req.consumer +
                  " requires " + need.to_string();
    return out;
  }

  // Fold in what the link can carry: its bandwidth bounds the flow's
  // bandwidth property (the netpipe's QoS mapping, §2.4).
  if (req.link != nullptr) {
    Typespec link_spec{{props::kBandwidthKbps,
                        Range{0.0, req.link->bandwidth() / 1e3}}};
    auto with_link = agreed->intersect(link_spec);
    if (!with_link) {
      out.failure =
          "the link cannot carry the agreed flow: link offers " +
          link_spec.to_string() + " but the flow needs " + agreed->to_string();
      return out;
    }
    agreed = with_link;
  }

  out.ok = true;
  out.agreed = std::move(*agreed);
  return out;
}

}  // namespace infopipe::net
