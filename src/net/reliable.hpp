// Reliable transport: selective-repeat ARQ over a lossy SimLink.
//
// §2.4 opens with "Any single protocol built into a middleware platform is
// inadequate for remote transmission of information flows with a variety of
// QoS requirements." This is the second protocol that makes the point
// concrete: where the best-effort SimLink drops under loss but keeps
// latency bounded, ReliableTransport delivers everything, in order, at the
// price of retransmission delay spikes — the classic live-media trade-off
// the Figure 1 pipeline's controlled dropping is designed to avoid.
//
// Mechanics: every data packet carries an ARQ sequence number and is held
// by the sender agent until acknowledged over a reverse link; unacked
// packets retransmit after `rto`. The receiver agent acknowledges
// everything, discards duplicates, reorders out-of-order arrivals and
// releases packets to the consumer strictly in sequence. End-of-stream is
// itself a reliable packet. The window is unbounded (no flow control) —
// backpressure in an Infopipe comes from buffers and pumps, not from the
// transport.
#pragma once

#include <cstdint>
#include <map>

#include "core/item.hpp"
#include "net/transport.hpp"
#include "rt/runtime.hpp"

namespace infopipe::net {

class ReliableTransport : public Transport {
 public:
  /// `forward` carries data (configure its loss/latency as desired);
  /// `reverse` carries acknowledgements back. `rto` is the retransmission
  /// timeout; a sane choice is 2-3x the forward+reverse latency.
  ReliableTransport(rt::Runtime& rt, SimLink& forward, SimLink& reverse,
                    rt::Time rto);
  ~ReliableTransport() override;

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  void attach_receiver(rt::ThreadId tid) override { consumer_ = tid; }
  void send(rt::Runtime& rt, Item packet) override;
  [[nodiscard]] double bandwidth() const override;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t transmissions = 0;    ///< includes retransmissions
    std::uint64_t retransmissions = 0;
    std::uint64_t acked = 0;
    std::uint64_t delivered = 0;        ///< released to the consumer
    std::uint64_t duplicates = 0;       ///< received again after delivery
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// What travels over the forward link.
  struct ArqPacket {
    std::uint64_t seq = 0;
    bool eos = false;
    Item item;  ///< empty for the EOS marker
  };
  /// What travels back.
  struct ArqAck {
    std::uint64_t seq = 0;
  };

  rt::CodeResult sender_code(rt::Runtime& rt, rt::Message m);
  rt::CodeResult receiver_code(rt::Runtime& rt, rt::Message m);
  /// Puts `wire` on the forward link and arms the retransmission timer for
  /// `seq`. Callers pass a copy of the held wire item — a refcount bump on
  /// the shared (pooled) packet block, so retransmissions allocate nothing.
  void transmit(rt::Runtime& rt, std::uint64_t seq, Item wire);

  rt::Runtime* rt_;
  SimLink* fwd_;
  SimLink* rev_;
  rt::Time rto_;
  rt::ThreadId sender_agent_ = rt::kNoThread;
  rt::ThreadId receiver_agent_ = rt::kNoThread;
  rt::ThreadId consumer_ = rt::kNoThread;

  // sender state. In-flight packets are held as their marshalled wire item:
  // one payload block built at submit time, shared by every (re)transmission
  // until the ACK releases it.
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Item> in_flight_;

  // receiver state
  std::uint64_t next_deliver_ = 0;
  std::map<std::uint64_t, ArqPacket> reorder_;

  Stats stats_;

  // Registry handles, resolved once in the constructor (the runtime is
  // known there, unlike SimLink's lazy caching).
  obs::Counter* obs_retx_ = nullptr;
  obs::Counter* obs_delivered_ = nullptr;
};

}  // namespace infopipe::net
