// Simulated nodes, remote component factories, and the remote Typespec
// query protocol (§2.4: "the Infopipe platform provides protocols and
// factories for the creation of remote Infopipe components. Remote Typespec
// queries also require a middleware protocol...").
//
// Nodes share one process here (DESIGN.md §3 substitution); what is real is
// the protocol: requests and replies travel as platform messages through a
// per-node agent thread, and Typespecs cross the "network" only in
// marshalled form.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "net/error.hpp"
#include "net/typespec_wire.hpp"
#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe::net {

inline constexpr int kMsgTypespecQuery = rt::msg::kNetTypespecQuery;
inline constexpr int kMsgCreateComponent = rt::msg::kNetCreateComponent;

class Node {
 public:
  using Maker =
      std::function<std::unique_ptr<Component>(const std::string& name,
                                               const std::string& args)>;

  Node(rt::Runtime& rt, std::string name);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] rt::ThreadId agent() const noexcept { return agent_; }

  /// Register a component type that remote_create() can instantiate here.
  void register_factory(std::string type, Maker maker);

  /// Create and own a component on this node (local fast path; the remote
  /// protocol ends up here too).
  Component& create(const std::string& type, const std::string& name,
                    const std::string& args);

  /// Adopt an externally created component as located on this node.
  void adopt(std::unique_ptr<Component> c);

  [[nodiscard]] Component* lookup(const std::string& name) const;

 private:
  friend Typespec remote_typespec_query(rt::Runtime& rt, const Node& node,
                                        const std::string& component,
                                        int port);

  rt::CodeResult agent_code(rt::Runtime& rt, rt::Message m);

  rt::Runtime* rt_;
  std::string name_;
  rt::ThreadId agent_;
  std::map<std::string, Maker> factories_;
  std::vector<std::unique_ptr<Component>> owned_;
  std::map<std::string, Component*> by_name_;
};

/// Ask `node`'s agent for the output-offer Typespec of a component located
/// there. The reply crosses the protocol in marshalled form. Works from
/// inside a user-level thread (synchronous call) or from setup code outside
/// the runtime (drives the runtime until the reply arrives).
[[nodiscard]] Typespec remote_typespec_query(rt::Runtime& rt, const Node& node,
                                             const std::string& component,
                                             int port);

/// The dual query: a component's input requirement (what flows it accepts),
/// used by the binding protocol to negotiate across nodes.
[[nodiscard]] Typespec remote_input_requirement(rt::Runtime& rt,
                                                const Node& node,
                                                const std::string& component,
                                                int port);

/// Ask `node` to create a component through its registered factory; returns
/// the name under which it can be looked up.
std::string remote_create(rt::Runtime& rt, Node& node, const std::string& type,
                          const std::string& name, const std::string& args);

}  // namespace infopipe::net
