#include "net/remote_node.hpp"

#include <exception>
#include <optional>
#include <utility>

namespace infopipe::net {

namespace {

constexpr char kUnit = '\x1F';

std::pair<std::string, std::string> split2(const std::string& s) {
  const auto pos = s.find(kUnit);
  if (pos == std::string::npos) return {s, ""};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

/// Runs a blocking control call either inline (already on a user-level
/// thread) or on a temporary thread while driving the runtime in small
/// run_until() slices. The slices matter: socket replies arrive through
/// Runtime::post_external from the IoBridge poller, i.e. AFTER the runtime
/// has gone quiescent, so a single run() would return with the call still
/// blocked. call_control's own timeout bounds the loop.
std::string drive_control(rt::Runtime& rt, SocketTransport& link,
                          wire::ControlOp op, const std::string& text,
                          rt::Time timeout) {
  if (rt.current() != rt::kNoThread) {
    return link.call_control(op, text, timeout);
  }
  std::optional<std::string> out;
  std::exception_ptr error;
  bool done = false;
  const rt::ThreadId tmp = rt.spawn(
      "net.rpc", rt::kPriorityControl,
      [&](rt::Runtime&, rt::Message) -> rt::CodeResult {
        try {
          out = link.call_control(op, text, timeout);
        } catch (...) {
          error = std::current_exception();
        }
        done = true;
        return rt::CodeResult::kTerminate;
      });
  rt.send(tmp, rt::Message{0, rt::MsgClass::kData});
  while (!done) rt.run_until(rt.now() + rt::milliseconds(10));
  if (error) std::rethrow_exception(error);
  if (!out) throw RemoteError("control call did not complete");
  return std::move(*out);
}

}  // namespace

std::string LocalNodeEndpoint::create(const std::string& type,
                                      const std::string& name,
                                      const std::string& args) {
  if (node_ == nullptr) {
    throw RemoteError("endpoint " + cnode_->name() + " is read-only");
  }
  return remote_create(*rt_, *node_, type, name, args);
}

RemoteNode::RemoteNode(rt::Runtime& rt, SocketTransport& link,
                       std::string name, rt::Time timeout)
    : rt_(&rt), link_(&link), name_(std::move(name)), timeout_(timeout) {}

std::string RemoteNode::call(wire::ControlOp op, const std::string& text) {
  return drive_control(*rt_, *link_, op, text, timeout_);
}

Typespec RemoteNode::output_offer(const std::string& component, int port) {
  return unmarshal_typespec(call(
      wire::ControlOp::kTypespecOut,
      component + std::string(1, kUnit) + std::to_string(port)));
}

Typespec RemoteNode::input_requirement(const std::string& component,
                                       int port) {
  return unmarshal_typespec(call(
      wire::ControlOp::kTypespecIn,
      component + std::string(1, kUnit) + std::to_string(port)));
}

std::string RemoteNode::create(const std::string& type,
                               const std::string& name,
                               const std::string& args) {
  return call(wire::ControlOp::kCreate, type + std::string(1, kUnit) + name +
                                            std::string(1, kUnit) + args);
}

std::string RemoteNode::start_flow(const std::string& args) {
  return call(wire::ControlOp::kStart, args);
}

NodeServer::NodeServer(rt::Runtime& rt, Node& node, SocketTransport& link)
    : rt_(&rt), node_(&node), link_(&link) {
  link_->set_control_handler(
      [this](std::uint64_t id, wire::ControlOp op, const std::string& text) {
        handle(id, op, text);
      });
}

void NodeServer::handle(std::uint64_t id, wire::ControlOp op,
                        const std::string& text) {
  // Runs on the transport's agent thread; every request gets exactly one
  // reply, errors included — a remote caller must never wait out a timeout
  // for a malformed request when we can tell it what went wrong.
  try {
    switch (op) {
      case wire::ControlOp::kTypespecOut:
      case wire::ControlOp::kTypespecIn: {
        const auto [comp_name, port_str] = split2(text);
        Component* c = node_->lookup(comp_name);
        if (c == nullptr) {
          throw RemoteError("no such component: " + comp_name);
        }
        int port = 0;
        if (!port_str.empty()) {
          try {
            port = std::stoi(port_str);
          } catch (const std::exception&) {
            throw RemoteError("malformed port: " + port_str);
          }
        }
        const Typespec spec = op == wire::ControlOp::kTypespecIn
                                  ? c->input_requirement(port)
                                  : c->output_offer(port);
        link_->send_control_reply(id, true, marshal_typespec(spec));
        break;
      }
      case wire::ControlOp::kCreate: {
        const auto [type, rest] = split2(text);
        const auto [comp_name, args] = split2(rest);
        Component& c = node_->create(type, comp_name, args);
        link_->send_control_reply(id, true, c.name());
        break;
      }
      case wire::ControlOp::kStart: {
        start_requested_ = true;
        const std::string answer = on_start_ ? on_start_(text) : "ok";
        link_->send_control_reply(id, true, answer);
        break;
      }
      default:
        throw RemoteError("unknown control op " +
                          std::to_string(static_cast<int>(op)));
    }
  } catch (const std::exception& e) {
    link_->send_control_reply(id, false, e.what());
  }
}

}  // namespace infopipe::net
