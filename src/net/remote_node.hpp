// Location-transparent node access: the same factory and Typespec-query
// protocol the in-process Node agents speak (net/node.hpp), carried over a
// real socket control link between OS processes (§2.4: "the Infopipe
// platform provides protocols and factories for the creation of remote
// Infopipe components. Remote Typespec queries also require a middleware
// protocol as well as a mechanism for property marshalling").
//
// Three layers:
//   NodeEndpoint       — the abstract view setup code and the binder use:
//                        query offers/requirements, create components.
//   LocalNodeEndpoint  — wraps an in-process Node (the simulated-node path
//                        that existed before ip_netreal).
//   RemoteNode         — client side of a SocketTransport control link; its
//                        queries travel as control frames, Typespecs cross
//                        only in marshalled form (net/typespec_wire).
//   NodeServer         — server side: answers control frames against a
//                        local Node, so another process's RemoteNode can
//                        create components here and query their specs.
//
// RemoteNode methods work from setup code outside the runtime: they spawn a
// temporary user-level thread for the blocking call and drive the runtime
// in run_until() slices until the reply (or the timeout) arrives — plain
// run() is not enough, because socket replies enter through
// Runtime::post_external after the runtime has gone quiescent.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/node.hpp"
#include "net/socket_transport.hpp"

namespace infopipe::net {

/// What the binder and distributed setup code need from "a node", local or
/// on the far side of a socket.
class NodeEndpoint {
 public:
  virtual ~NodeEndpoint() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Output-offer Typespec of `component`'s port.
  [[nodiscard]] virtual Typespec output_offer(const std::string& component,
                                              int port) = 0;

  /// Dual query: the input requirement.
  [[nodiscard]] virtual Typespec input_requirement(
      const std::string& component, int port) = 0;

  /// Remote factory: create a component of a registered type on the node;
  /// returns the name it can be looked up under. Throws RemoteError when
  /// the node has no such factory (or the endpoint is read-only).
  virtual std::string create(const std::string& type, const std::string& name,
                             const std::string& args) = 0;
};

/// In-process endpoint over a Node's agent protocol.
class LocalNodeEndpoint final : public NodeEndpoint {
 public:
  LocalNodeEndpoint(rt::Runtime& rt, Node& node)
      : rt_(&rt), node_(&node), cnode_(&node) {}
  /// Query-only view (create() throws): what the binder needs.
  LocalNodeEndpoint(rt::Runtime& rt, const Node& node)
      : rt_(&rt), node_(nullptr), cnode_(&node) {}

  [[nodiscard]] std::string name() const override { return cnode_->name(); }
  [[nodiscard]] Typespec output_offer(const std::string& component,
                                      int port) override {
    return remote_typespec_query(*rt_, *cnode_, component, port);
  }
  [[nodiscard]] Typespec input_requirement(const std::string& component,
                                           int port) override {
    return remote_input_requirement(*rt_, *cnode_, component, port);
  }
  std::string create(const std::string& type, const std::string& name,
                     const std::string& args) override;

 private:
  rt::Runtime* rt_;
  Node* node_;  ///< nullptr for the query-only view
  const Node* cnode_;
};

/// Client side of a socket control link: a NodeEndpoint whose node lives in
/// another OS process behind `link` (a TCP SocketTransport).
class RemoteNode final : public NodeEndpoint {
 public:
  RemoteNode(rt::Runtime& rt, SocketTransport& link,
             std::string name = "remote",
             rt::Time timeout = rt::seconds(10));

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Typespec output_offer(const std::string& component,
                                      int port) override;
  [[nodiscard]] Typespec input_requirement(const std::string& component,
                                           int port) override;
  std::string create(const std::string& type, const std::string& name,
                     const std::string& args) override;

  /// Tell the server process to start its side of the flow (what it does is
  /// the NodeServer's StartHandler); returns the handler's reply text.
  std::string start_flow(const std::string& args = "");

 private:
  std::string call(wire::ControlOp op, const std::string& text);

  rt::Runtime* rt_;
  SocketTransport* link_;
  std::string name_;
  rt::Time timeout_;
};

/// Server side: answers a control link's requests against a local Node.
/// Construct after the Node's factories are registered; requests arrive on
/// the transport's agent thread and replies travel back as control frames.
class NodeServer {
 public:
  /// Invoked on ControlOp::kStart; the returned string is the reply text.
  using StartHandler = std::function<std::string(const std::string& args)>;

  NodeServer(rt::Runtime& rt, Node& node, SocketTransport& link);

  void on_start(StartHandler h) { on_start_ = std::move(h); }
  [[nodiscard]] bool start_requested() const noexcept {
    return start_requested_;
  }

 private:
  void handle(std::uint64_t id, wire::ControlOp op, const std::string& text);

  rt::Runtime* rt_;
  Node* node_;
  SocketTransport* link_;
  StartHandler on_start_;
  bool start_requested_ = false;
};

}  // namespace infopipe::net
