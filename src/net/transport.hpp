// Simulated best-effort transport (DESIGN.md §3, substitution for a real
// network).
//
// The paper's netpipes encapsulate "a best-effort transport protocol" whose
// observable properties are bandwidth, latency, jitter and congestion loss
// (§2.1/§2.4). SimLink models exactly those: packets are serialized at the
// link bandwidth behind a drop-tail queue, then propagated with a base delay
// plus deterministic pseudo-random jitter. When the queue is full the link
// drops — "rather than incurring arbitrary dropping in the network", the
// Figure 1 pipeline puts a feedback-controlled filter in front of it.
#pragma once

#include <atomic>
#include <cstdint>
#include <random>
#include <string>

#include "core/item.hpp"
#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe::net {

/// rt message type for packet delivery to a NetReceiver thread (value
/// allotted in rt/msg_registry.hpp).
inline constexpr int kMsgNetDeliver = rt::msg::kNetDeliver;

/// A transport protocol a netpipe can encapsulate (§2.4: "different
/// transport protocols can be easily integrated into the Infopipe framework
/// as netpipes"). Implementations: SimLink (simulated best-effort),
/// ReliableTransport (ARQ over a lossy link), and SocketTransport (real
/// nonblocking TCP/UDP sockets between OS processes, ip_netreal).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Packets arrive as kMsgNetDeliver messages at this thread.
  virtual void attach_receiver(rt::ThreadId tid) = 0;

  /// Transmit one packet item. May drop, delay or reorder according to the
  /// protocol's semantics. EOS items mark the end of the flow.
  virtual void send(rt::Runtime& rt, Item packet) = 0;

  /// Nominal capacity, for the netpipe's QoS mapping.
  [[nodiscard]] virtual double bandwidth() const = 0;

  /// Transport kind for the flow's Typespec (props::kTransport): "sim",
  /// "tcp", "udp". The netpipe ends publish it so type checking can see
  /// not only WHERE a flow lives but HOW it travels.
  [[nodiscard]] virtual std::string kind() const { return "sim"; }

  /// Remote endpoint ("host:port") for props::kEndpoint; empty when the
  /// transport has no address (in-process simulation).
  [[nodiscard]] virtual std::string endpoint() const { return {}; }
};

struct LinkConfig {
  double bandwidth_bps = 10e6;        ///< serialization rate
  rt::Time base_latency = rt::milliseconds(20);
  rt::Time jitter = 0;                ///< uniform in [0, jitter]
  std::size_t queue_capacity_bytes = 64 * 1024;  ///< drop-tail beyond this
  double random_loss = 0.0;           ///< independent loss probability
  std::uint64_t seed = 42;            ///< jitter/loss determinism
};

class SimLink : public Transport {
 public:
  explicit SimLink(LinkConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Attach the receiving end: packets are delivered as kMsgNetDeliver
  /// messages to this thread.
  void attach_receiver(rt::ThreadId tid) override { rx_ = tid; }
  [[nodiscard]] rt::ThreadId receiver() const noexcept { return rx_; }

  /// Transmit one packet item (its size_bytes drives the cost). Called from
  /// the sending section's thread. May drop (congestion / random loss).
  /// EOS items are never dropped and are scheduled after everything queued.
  void send(rt::Runtime& rt, Item packet) override;

  /// Change the available bandwidth while running (congestion episodes for
  /// the adaptation experiments). Safe against a concurrent send() on the
  /// link's runtime thread: the adaptation experiments mutate this live
  /// from other kernel threads, so the field is atomic — a torn read of a
  /// double would feed the serializer a garbage rate.
  void set_bandwidth(double bps) {
    bandwidth_bps_.store(bps, std::memory_order_relaxed);
  }
  [[nodiscard]] double bandwidth() const noexcept override {
    return bandwidth_bps_.load(std::memory_order_relaxed);
  }
  /// Static link parameters; bandwidth_bps holds the CONSTRUCTION value
  /// (read the live one through bandwidth()).
  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered_scheduled = 0;
    std::uint64_t dropped_congestion = 0;
    std::uint64_t dropped_random = 0;
    std::uint64_t bytes_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Bytes currently "in the queue" (scheduled but not yet on the wire).
  [[nodiscard]] std::size_t queue_depth_bytes(rt::Time now) const;

 private:
  LinkConfig cfg_;
  std::atomic<double> bandwidth_bps_{cfg_.bandwidth_bps};
  std::mt19937_64 rng_;
  rt::ThreadId rx_ = rt::kNoThread;
  rt::Time wire_free_at_ = 0;  ///< when the serializer finishes current work
  Stats stats_;
  // Registry handles, cached on first send against the runtime doing it
  // (a link object can outlive a runtime across experiments).
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_packets_ = nullptr;
  obs::Counter* obs_drops_ = nullptr;
  const void* obs_owner_ = nullptr;
};

}  // namespace infopipe::net
