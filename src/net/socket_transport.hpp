// ip_netreal: a real-socket Transport (nonblocking TCP, optional UDP).
//
// Where SimLink simulates a best-effort link inside one process,
// SocketTransport carries the same netpipe traffic between OS processes
// over loopback or a real network. It plugs in underneath the existing
// netpipe machinery unchanged: NetSender::consume() calls send(), packets
// surface at the attached receiver thread as kMsgNetDeliver messages, EOS
// is an explicit frame — exactly SimLink's contract, so NetSender /
// NetReceiver, the marshalling filters and everything above them cannot
// tell the difference (the lockstep criterion of the distributed_player
// demo: byte-identical item streams either way).
//
// Mechanics. All socket I/O is nonblocking and driven through
// rt::IoBridge's readiness loop: the bridge's poller OS thread reports
// readability/writability as one-shot messages to the transport's agent —
// a user-level thread on the owning runtime — which does the actual
// read()/write()/accept()/connect() completion on the runtime's thread, so
// the transport needs no locks of its own. Outbound frames accumulate in a
// single buffer; partial writes re-arm a writability watch. Inbound bytes
// stream through wire::FrameReader, which reassembles frames across
// arbitrary read() boundaries and rejects hostile input with RemoteError
// (the connection is then dropped, never the process).
//
// Connection management: the active end (connect()) retries with
// exponential backoff until the peer appears — process start order between
// cooperating binaries is explicitly not a protocol; the passive end
// (listen()) accepts one peer at a time and goes back to accepting when
// the peer leaves. A peer that disappears without sending EOS yields a
// synthetic EOS to the attached receiver (plus a peer_resets stat), so a
// consumer pipeline terminates instead of hanging.
//
// Besides the data plane, the transport carries the node control protocol
// (Typespec queries, remote factories, start-of-flow) as control frames
// over the same connection; see net/remote_node.hpp for the client/server
// pair built on call_control()/set_control_handler().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"
#include "rt/io_bridge.hpp"
#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe::net {

struct SocketConfig {
  std::string host = "127.0.0.1";  ///< connect target / bind address
  std::uint16_t port = 0;          ///< 0 on listen: kernel-assigned
  bool udp = false;                ///< datagram mode (best-effort, no retry)
  rt::Time retry_initial = rt::milliseconds(50);  ///< first connect backoff
  rt::Time retry_max = rt::seconds(2);            ///< backoff ceiling
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Nominal capacity reported through Transport::bandwidth() for the
  /// netpipe QoS mapping (loopback default: 1 Gbps).
  double nominal_bandwidth_bps = 1e9;
};

class SocketTransport : public Transport {
 public:
  /// Passive end: bind + listen (TCP) or bind (UDP) on cfg.host:cfg.port.
  /// Throws RemoteError when the address cannot be bound.
  static std::unique_ptr<SocketTransport> listen(rt::Runtime& rt,
                                                 rt::IoBridge& io,
                                                 SocketConfig cfg);

  /// Active end: nonblocking connect with retry+backoff until the peer
  /// exists (TCP) or set the default destination (UDP).
  static std::unique_ptr<SocketTransport> connect(rt::Runtime& rt,
                                                  rt::IoBridge& io,
                                                  SocketConfig cfg);

  /// Wraps an already-connected TCP socket (from SocketAcceptor) in a fully
  /// working transport: own agent ULT, own frame reader, state kConnected.
  /// Takes ownership of `fd` (must be nonblocking). This is how N peers get
  /// N independent transports instead of serializing on one listen-side
  /// transport's single connection slot.
  static std::unique_ptr<SocketTransport> adopt(rt::Runtime& rt,
                                                rt::IoBridge& io,
                                                SocketConfig cfg, int fd);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // ---- Transport contract (what the netpipes see) -------------------------

  void attach_receiver(rt::ThreadId tid) override;
  void send(rt::Runtime& rt, Item packet) override;
  [[nodiscard]] double bandwidth() const override {
    return cfg_.nominal_bandwidth_bps;
  }
  [[nodiscard]] std::string kind() const override {
    return cfg_.udp ? "udp" : "tcp";
  }
  [[nodiscard]] std::string endpoint() const override {
    return cfg_.host + ":" + std::to_string(port_);
  }

  // ---- control plane ------------------------------------------------------

  /// Server side: invoked (on the agent thread) for every control request.
  /// The handler must answer with send_control_reply().
  using ControlHandler = std::function<void(
      std::uint64_t request_id, wire::ControlOp op, const std::string& text)>;
  void set_control_handler(ControlHandler h) { handler_ = std::move(h); }
  void send_control_reply(std::uint64_t request_id, bool ok,
                          const std::string& text);

  /// Client side: sends a control request and blocks the calling user-level
  /// thread until the reply or the timeout. Throws RemoteError on error
  /// replies, timeout, or a dead connection. Only callable from a thread on
  /// the owning runtime (setup code goes through net::RemoteNode, which
  /// drives the runtime).
  std::string call_control(wire::ControlOp op, const std::string& text,
                           rt::Time timeout = rt::seconds(10));

  // ---- state / diagnostics ------------------------------------------------

  /// Bound port (listen side after construction; useful with cfg.port = 0).
  [[nodiscard]] std::uint16_t local_port() const noexcept { return port_; }
  [[nodiscard]] bool connected() const noexcept {
    return state_ == State::kConnected;
  }
  [[nodiscard]] bool peer_closed() const noexcept { return peer_closed_; }
  /// True once a sent EOS frame has fully left the socket buffer.
  [[nodiscard]] bool eos_flushed() const noexcept { return eos_flushed_; }
  /// True once an EOS (real or synthetic) was delivered to the receiver.
  [[nodiscard]] bool eos_delivered() const noexcept { return eos_delivered_; }

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t partial_writes = 0;   ///< EAGAIN → writability re-arm
    std::uint64_t connects = 0;         ///< successful active connects
    std::uint64_t accepts = 0;          ///< successful passive accepts
    std::uint64_t retries = 0;          ///< connect attempts that failed
    std::uint64_t peer_resets = 0;      ///< connection died without EOS
    std::uint64_t protocol_errors = 0;  ///< malformed frames (conn dropped)
    std::uint64_t oversize_drops = 0;   ///< UDP frame > datagram limit
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  enum class State : std::uint8_t {
    kListening,   ///< passive, no peer yet (or peer left)
    kConnecting,  ///< active connect in progress
    kBackoff,     ///< active connect failed; retry timer armed
    kConnected,
    kClosed,
  };

  /// Reply to a control call, routed back to the blocked caller.
  struct ControlReply {
    std::uint64_t id = 0;
    bool ok = false;
    std::string text;
  };

  SocketTransport(rt::Runtime& rt, rt::IoBridge& io, SocketConfig cfg,
                  bool passive);

  rt::CodeResult agent_code(rt::Runtime& rt, rt::Message m);
  void start_connect();
  void on_connected();
  void schedule_retry();
  void do_accept();
  void drain_reads();
  void drain_datagrams();
  void dispatch(wire::Frame f);
  void deliver(Item x);
  void flush();
  void handle_peer_close(bool reset);
  void send_udp(const Item& packet);

  rt::Runtime* rt_;
  rt::IoBridge* io_;
  SocketConfig cfg_;
  bool passive_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int fd_ = -1;
  State state_ = State::kClosed;
  rt::ThreadId agent_ = rt::kNoThread;
  rt::ThreadId rx_ = rt::kNoThread;

  wire::FrameReader reader_;
  std::vector<std::uint8_t> out_;  ///< outbound bytes, [out_pos_, end) unsent
  std::size_t out_pos_ = 0;
  std::vector<std::uint8_t> rdbuf_;  ///< reusable read scratch
  std::deque<Item> early_;  ///< frames that arrived before attach_receiver

  bool eos_sent_ = false;
  bool eos_flushed_ = false;
  bool eos_delivered_ = false;
  bool peer_closed_ = false;
  rt::Time backoff_ = 0;

  std::uint64_t next_request_ = 1;
  std::map<std::uint64_t, rt::ThreadId> pending_;  ///< control calls in wait
  ControlHandler handler_;

  Stats stats_;
  obs::Counter* obs_bytes_tx_ = nullptr;
  obs::Counter* obs_bytes_rx_ = nullptr;
  obs::Counter* obs_frames_tx_ = nullptr;
  obs::Counter* obs_frames_rx_ = nullptr;
  obs::Counter* obs_errors_ = nullptr;
};

/// Many-connection passive end: owns ONE listening socket and hands every
/// accepted connection to a fresh SocketTransport (via SocketTransport::
/// adopt), each with its own agent ULT, frame reader and control plane.
///
/// This generalizes SocketTransport::listen()'s one-peer-at-a-time accept
/// loop: the single-peer transport keeps its semantics (a second connector
/// is turned away; the slot reopens when the peer leaves) for the
/// point-to-point netpipes, while servers that must hold N concurrent peers
/// — the session acceptor foremost — listen here and get one transport per
/// peer, so slow peer A never serializes peer B's traffic behind one
/// connection slot. TCP only.
class SocketAcceptor {
 public:
  /// Invoked on the acceptor's agent thread with each freshly adopted
  /// transport. The callee owns the transport (keep it alive until the
  /// peer is done; dropping it closes the connection).
  using AcceptFn = std::function<void(std::unique_ptr<SocketTransport>)>;

  /// Binds + listens on cfg.host:cfg.port (0: kernel-assigned). Throws
  /// RemoteError when the address cannot be bound or cfg.udp is set.
  SocketAcceptor(rt::Runtime& rt, rt::IoBridge& io, SocketConfig cfg,
                 AcceptFn on_accept);
  ~SocketAcceptor();

  SocketAcceptor(const SocketAcceptor&) = delete;
  SocketAcceptor& operator=(const SocketAcceptor&) = delete;

  [[nodiscard]] std::uint16_t local_port() const noexcept { return port_; }
  /// Connections accepted and handed out so far.
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }

 private:
  rt::CodeResult agent_code(rt::Message m);
  void do_accept();

  rt::Runtime* rt_;
  rt::IoBridge* io_;
  SocketConfig cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  rt::ThreadId agent_ = rt::kNoThread;
  AcceptFn on_accept_;
  std::uint64_t accepted_ = 0;
};

}  // namespace infopipe::net
