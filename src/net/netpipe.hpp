// Netpipes (§2.4): transport protocols encapsulated as Infopipe components.
//
// "These netpipes support plain data flows and may manage low-level
// properties such as bandwidth and latency. Marshalling filters on either
// side translate the raw data flow to and from a higher-level information
// flow. These components also encapsulate the QoS mapping of netpipe
// properties and information flow properties."
//
// A netpipe appears in a pipeline as a pair of components around a SimLink:
//
//   ... >> marshal >> net.sender() | ... | net.receiver() >> unmarshal >> ...
//
// The sender end is a passive sink for the producer-side section; the
// receiver end is an active source driving the consumer-side section (its
// activity comes from packet arrivals, like a protocol stack's receive
// path). Both update the flow's location property, so type checking can see
// where a flow lives (§2.4).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/pump.hpp"
#include "core/realization.hpp"
#include "net/transport.hpp"

namespace infopipe::net {

/// Producer-side end of a netpipe: consumes packet items (already
/// marshalled) and hands them to the transport. Passive — the upstream
/// section's pump pushes into it.
class NetSender : public PassiveSink {
 public:
  NetSender(std::string name, Transport& link, std::string local_location)
      : PassiveSink(std::move(name)),
        link_(&link),
        location_(std::move(local_location)) {}

  [[nodiscard]] Typespec input_requirement(int) const override {
    return Typespec{{props::kItemType, std::string("bytes")}};
  }

  /// Bound to a transport on this node: pins its section under rebalancing.
  [[nodiscard]] bool migratable() const override { return false; }

 protected:
  void consume(Item x) override { link_->send(realization()->runtime(), std::move(x)); }
  /// Batched path: resolve the runtime once per burst; the transport itself
  /// stays frame-per-item (lockstep parity with the per-item path — a
  /// coalescing send would change on-the-wire framing).
  void consume_span(ItemSpan xs) override {
    rt::Runtime& rtm = realization()->runtime();
    for (Item& x : xs) {
      if (x.is_eos()) {
        on_eos();
        continue;
      }
      if (x.is_nil()) continue;
      link_->send(rtm, std::move(x));
    }
  }
  void on_eos() override { link_->send(realization()->runtime(), Item::eos()); }

 private:
  Transport* link_;
  std::string location_;
};

/// Consumer-side end of a netpipe: an active source whose activity is driven
/// by packet arrivals. Updates the location property of the flow.
class NetReceiver : public ActiveSource {
 public:
  NetReceiver(std::string name, Transport& link, std::string remote_location,
              rt::Priority priority = rt::kPriorityData)
      : ActiveSource(std::move(name), priority),
        link_(&link),
        location_(std::move(remote_location)) {}

  [[nodiscard]] Typespec output_offer(int) const override {
    Typespec t{{props::kItemType, std::string("bytes")},
               {props::kLocation, location_},
               {props::kBandwidthKbps, Range{0.0, link_->bandwidth() / 1e3}}};
    // Let type checking see HOW the flow crossed, not just where it is:
    // "sim" for SimLink, "tcp"/"udp" (+ peer endpoint) for real sockets.
    t.set(props::kTransport, link_->kind());
    if (!link_->endpoint().empty()) t.set(props::kEndpoint, link_->endpoint());
    return t;
  }

  void on_realized() override {
    link_->attach_receiver(realization()->host_thread(*this));
  }

  /// The transport delivers to this receiver's thread: pinned, like every
  /// component attached to an external I/O path.
  [[nodiscard]] bool migratable() const override { return false; }

 protected:
  /// Fire as soon as a packet is available; block (control-responsively)
  /// until one arrives.
  rt::Time next_fire(rt::Time now) override { return now; }

  Item generate() override {
    HostContext& h = realization()->current_host();
    rt::Message m = h.wait(
        [](const rt::Message& x) { return x.type == kMsgNetDeliver; });
    return m.take<Item>();
  }

 private:
  Transport* link_;
  std::string location_;
};

/// Marshalling filter: higher-level information flow -> plain byte flow.
/// The codec pair is supplied by the flow's domain (media provides one for
/// video frames); metadata (seq/timestamp/kind) is preserved by the filter
/// itself so codecs only handle the payload.
class MarshalFilter : public FunctionComponent {
 public:
  using Encode = std::function<std::vector<std::uint8_t>(const Item&)>;

  MarshalFilter(std::string name, Encode enc, std::string item_type)
      : FunctionComponent(std::move(name)),
        enc_(std::move(enc)),
        item_type_(std::move(item_type)) {}

  [[nodiscard]] Typespec input_requirement(int) const override {
    return Typespec{{props::kItemType, item_type_}};
  }
  [[nodiscard]] Typespec transform_downstream(const Typespec& in, int,
                                              int) const override {
    Typespec out = in;
    out.set(props::kItemType, std::string("bytes"));
    return out;
  }

 protected:
  Item convert(Item x) override {
    // The wire copy lives in a pooled byte block (class-rounded, so
    // consecutive messages of similar size recycle the same storage) rather
    // than a fresh vector boxed in a shared_ptr per message; under
    // pooling=off, of_bytes falls back to the legacy vector payload.
    const std::vector<std::uint8_t> bytes = enc_(x);
    Item wire = Item::of_bytes(bytes.data(), bytes.size());
    wire.seq = x.seq;
    wire.timestamp = x.timestamp;
    wire.kind = x.kind;
    return wire;
  }

  /// Batched path: one frame per item, unchanged (coalescing frames would
  /// alter the wire format); the win is the amortized call chain.
  void convert_span(ItemSpan xs) override {
    for (Item& x : xs) {
      if (x.is_data()) x = convert(std::move(x));
    }
  }

 private:
  Encode enc_;
  std::string item_type_;
};

/// Unmarshalling filter: plain byte flow -> higher-level information flow.
class UnmarshalFilter : public FunctionComponent {
 public:
  using Decode = std::function<Item(const std::vector<std::uint8_t>&)>;

  UnmarshalFilter(std::string name, Decode dec, std::string item_type)
      : FunctionComponent(std::move(name)),
        dec_(std::move(dec)),
        item_type_(std::move(item_type)) {}

  [[nodiscard]] Typespec transform_downstream(const Typespec& in, int,
                                              int) const override {
    Typespec out = in;
    out.set(props::kItemType, item_type_);
    return out;
  }

 protected:
  Item convert(Item x) override {
    Item y = Item::nil();
    if (const auto* v = x.payload<std::vector<std::uint8_t>>()) {
      // Legacy vector payload (pooling=off): hand it to the codec directly.
      y = dec_(*v);
    } else if (const std::uint8_t* p = x.bytes_data()) {
      // Pooled byte block: the codec API speaks vectors, so stage through a
      // member scratch whose capacity is reused across messages (assign
      // does not reallocate once it has grown to the flow's packet size).
      scratch_.assign(p, p + x.bytes_size());
      y = dec_(scratch_);
    }
    y.seq = x.seq;
    y.timestamp = x.timestamp;
    y.kind = x.kind;
    return y;
  }

 private:
  Decode dec_;
  std::string item_type_;
  std::vector<std::uint8_t> scratch_;  ///< reused decode staging buffer
};

}  // namespace infopipe::net
