// Distributed binding (§2.4 + §6 "the supported functionality is being
// extended by distributed setup"): negotiating a flow between components on
// different nodes before any netpipe is built.
//
// The binder asks the producer's node for the offered Typespec and the
// consumer's node for the required one — both cross the simulated network
// in marshalled form through the node agents — intersects them, folds in
// what the link can carry (bandwidth as a QoS property), and either returns
// the agreed flow description or explains the mismatch.
#pragma once

#include <optional>
#include <string>

#include "core/typespec.hpp"
#include "net/node.hpp"
#include "net/remote_node.hpp"
#include "net/transport.hpp"

namespace infopipe::net {

struct BindingRequest {
  const Node* producer_node = nullptr;
  std::string producer;  ///< component name on the producer node
  int out_port = 0;
  const Node* consumer_node = nullptr;
  std::string consumer;
  int in_port = 0;
  /// The link the flow would cross; its bandwidth becomes a QoS bound.
  const SimLink* link = nullptr;
};

struct BindingResult {
  bool ok = false;
  Typespec agreed;      ///< meaningful when ok
  std::string failure;  ///< human-readable reason when !ok
};

/// Location-transparent variant: the nodes are NodeEndpoints, so producer
/// and consumer may live in this process (LocalNodeEndpoint) or in another
/// one behind a socket control link (RemoteNode) — the negotiation protocol
/// is the same either way, and any Transport (SimLink or SocketTransport)
/// contributes its bandwidth bound.
struct EndpointBindingRequest {
  NodeEndpoint* producer_node = nullptr;
  std::string producer;  ///< component name on the producer node
  int out_port = 0;
  NodeEndpoint* consumer_node = nullptr;
  std::string consumer;
  int in_port = 0;
  /// The link the flow would cross; its bandwidth becomes a QoS bound.
  const Transport* link = nullptr;
};

/// Runs the negotiation protocol. Never throws for a plain mismatch (that
/// is a negotiation outcome, not an error); throws RemoteError when a node
/// or component cannot be reached at all.
[[nodiscard]] BindingResult negotiate(rt::Runtime& rt,
                                      const BindingRequest& req);

[[nodiscard]] BindingResult negotiate(rt::Runtime& rt,
                                      const EndpointBindingRequest& req);

}  // namespace infopipe::net
