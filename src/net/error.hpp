// The ip_net error type.
//
// Everything that can go wrong across a node boundary — an unknown remote
// component, a factory without the requested type, a malformed or hostile
// wire frame, a control call that timed out, a socket that could not be
// established — surfaces as one exception type, RemoteError. Wire parsing
// in particular (net/wire.cpp, net/typespec_wire.cpp) must throw this and
// only this on bad input: once real sockets feed those parsers untrusted
// bytes, "crash on garbage" is not an acceptable failure mode.
#pragma once

#include <stdexcept>

namespace infopipe::net {

class RemoteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace infopipe::net
