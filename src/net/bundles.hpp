// Canned composite bundles for distribution: a whole netpipe (marshalling,
// transport endpoints, unmarshalling) packaged as one splice-in unit, and a
// jitter-absorbing playout stage. The §2.1 "larger building blocks" in
// practice: an application adds one bundle instead of wiring four
// components and a transport by hand.
#pragma once

#include <string>

#include "core/buffer.hpp"
#include "core/composite.hpp"
#include "core/pump.hpp"
#include "net/netpipe.hpp"
#include "net/transport.hpp"

namespace infopipe::net {

/// marshal -> sender | transport | receiver -> unmarshal, as one bundle.
/// entry() is the marshalling filter (connect the producer side into it);
/// exit() is the unmarshalling filter (continue the consumer side from it).
class NetpipeBundle : public CompositePipe {
 public:
  NetpipeBundle(const std::string& name, Transport& transport,
                MarshalFilter::Encode encode, UnmarshalFilter::Decode decode,
                std::string item_type, std::string producer_location,
                std::string consumer_location)
      : CompositePipe(name) {
    auto& marshal =
        add<MarshalFilter>(name + ".marshal", std::move(encode), item_type);
    auto& tx = add<NetSender>(name + ".tx", transport,
                              std::move(producer_location));
    auto& rx = add<NetReceiver>(name + ".rx", transport,
                                std::move(consumer_location));
    auto& unmarshal = add<UnmarshalFilter>(name + ".unmarshal",
                                           std::move(decode), item_type);
    connect(marshal, tx);
    connect(rx, unmarshal);
    set_entry(marshal);
    set_exit(unmarshal);
  }
};

/// buffer -> clocked pump: the consumer-side playout stage of Figure 1,
/// bundled. entry() is the buffer; exit() is the pump.
class PlayoutBundle : public CompositePipe {
 public:
  PlayoutBundle(const std::string& name, std::size_t depth, double rate_hz,
                FullPolicy full = FullPolicy::kDropOldest,
                EmptyPolicy empty = EmptyPolicy::kNil)
      : CompositePipe(name) {
    auto& buf = add<Buffer>(name + ".buf", depth, full, empty);
    auto& pump = add<ClockedPump>(name + ".pump", rate_hz);
    connect(buf, pump);
    set_entry(buf);
    set_exit(pump);
  }
};

}  // namespace infopipe::net
