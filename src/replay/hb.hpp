// HBChecker (ip_replay): drd-style vector-clock happens-before checking
// over the middleware's OWN synchronization edges.
//
// The middleware's concurrency story is that cross-shard data only moves
// through two mechanisms: ShardChannel rings (publish on the producer
// shard happens-before consume on the consumer shard, per ring position)
// and the Pool foreign-return stash (a foreign release happens-before the
// owner's drain/adoption). If every cross-thread access of shared state is
// ordered by a chain of those edges, the execution is race-free by
// construction — that is what "thread transparency" buys.
//
// The checker verifies it the way valgrind's exp-drd does (SNIPPETS.md
// snippets 1–2): each kernel thread carries a vector clock; a channel
// publish stores the producer's clock with the ring positions; the
// matching consume joins it into the consumer's clock; stash edges do the
// same through a per-pool clock. A declared shared access
// (replay::note_shared_access) is then checked against the last access
// from every OTHER thread: if that prior access is not <= the current
// thread's clock — i.e. not ordered by any recorded edge — and at least
// one of the two is a write, it is a violation.
//
// The checker is a TapSink like the recorder: install it around a live
// run, or call the on_* methods directly to check a hand-built schedule.
// Everything is mutex-protected — this is a verification tool, not a hot
// path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replay/hooks.hpp"

namespace infopipe::replay {

class HBChecker : public TapSink {
 public:
  struct Violation {
    const void* obj;     ///< the shared object
    int thread_a;        ///< prior accessor (checker-local thread index)
    int thread_b;        ///< current accessor
    bool write_a;        ///< was the prior access a write?
    bool write_b;        ///< is the current access a write?
    std::string detail;  ///< human-readable clock comparison
  };

  /// Installs as the process tap sink (no config gate — the checker is a
  /// test harness, not a recorder). Same quiescence discipline as the
  /// recorder: install/uninstall only while no shard thread is in a tap.
  void install();
  void uninstall();
  ~HBChecker() override;

  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] std::uint64_t edges_observed() const;
  [[nodiscard]] std::uint64_t accesses_checked() const;
  /// One-line report ("3 threads, 1204 edges, 87 accesses, 0 violations").
  [[nodiscard]] std::string report() const;

  // -- TapSink ---------------------------------------------------------------
  // Dispatch/timer/migration frames are schedule data, not HB edges; the
  // checker ignores them. (Migration's quiesce barrier is itself built on
  // run_on round trips, whose channel messages the dispatch path orders.)
  void on_dispatch(const void* rtm, std::uint64_t tid, int msg_type) override;
  void on_timer(const void* rtm, std::int64_t when,
                std::uint64_t target) override;
  void on_chan_push(const void* chan, std::uint64_t name_hash,
                    std::uint64_t first_seq, std::uint64_t n,
                    int shard) override;
  void on_chan_pop(const void* chan, std::uint64_t name_hash,
                   std::uint64_t first_seq, std::uint64_t n,
                   int shard) override;
  void on_migration(std::uint32_t section, int from, int to,
                    MigrationPhase phase) override;
  void on_stash(const void* pool, StashEdge edge, std::uint64_t n) override;
  void on_shared_access(const void* obj, bool write) override;
  /// Scale events are schedule data, not HB edges (thread clocks are
  /// assigned lazily per kernel thread, so a new shard needs no setup).
  void on_scale(const void* /*rtm*/, const void* /*pool*/, int /*shard*/,
                bool /*added*/, int /*live_after*/) override {}

 private:
  using VC = std::vector<std::uint64_t>;

  /// Is a <= b pointwise (a happened-before-or-equal b)?
  [[nodiscard]] static bool leq(const VC& a, const VC& b);
  static void join(VC& into, const VC& from);
  [[nodiscard]] static std::string render(const VC& v);

  /// Index of the calling kernel thread (lazily assigned). Holds mu_.
  int self_locked();
  void tick(int t);

  /// A publish edge waiting for its consume: ring positions
  /// [first_seq, end_seq) carry the producer clock `vc`.
  struct PendingEdge {
    std::uint64_t first_seq;
    std::uint64_t end_seq;
    VC vc;
  };

  struct Access {
    VC vc;
    int thread = -1;
    bool write = false;
    bool valid = false;
  };

  mutable std::mutex mu_;
  std::map<std::thread::id, int> thread_index_;
  std::vector<VC> clocks_;                        ///< one per thread
  std::map<const void*, std::deque<PendingEdge>> chan_pending_;
  std::map<const void*, VC> stash_clock_;         ///< per-pool stash clock
  std::map<const void*, std::vector<Access>> last_access_;  ///< per object,
                                                            ///< per thread
  std::vector<Violation> violations_;
  std::uint64_t edges_ = 0;
  std::uint64_t accesses_ = 0;
  bool installed_ = false;
};

}  // namespace infopipe::replay
