// DigestProbe (ip_replay): an identity filter that fingerprints the item
// stream flowing through it.
//
// Drop it on any pipeline edge and it accumulates the repo-wide stream
// digest (session::StreamDigest order: payload bytes, then seq, then kind —
// timestamps excluded) over every data item, passing items through
// untouched. Because timestamps are not hashed, the digest depends only on
// the information content and per-flow order, never on which shard or
// schedule produced it: two runs are "the same run" iff their probes match.
// That is the equality record/replay and the schedule fuzzer assert.
//
// The accumulator is a relaxed atomic: exactly one ULT writes it at a time
// (the probe's host), but migration moves that host between kernel threads
// and tests read the result from outside after the flow finishes, so plain
// fields would be a TSan report waiting to happen.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/component.hpp"
#include "session/session.hpp"

namespace infopipe::replay {

class DigestProbe : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;

  [[nodiscard]] std::uint64_t digest() const noexcept {
    return h_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items() const noexcept {
    return n_.load(std::memory_order_relaxed);
  }

 protected:
  Item convert(Item x) override {
    if (x.is_data()) {
      session::StreamDigest d;
      d.h = h_.load(std::memory_order_relaxed);
      d.update(x.bytes_data(), x.bytes_size());
      d.update_u64(x.seq);
      d.update_u64(
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(x.kind)));
      h_.store(d.h, std::memory_order_relaxed);
      n_.fetch_add(1, std::memory_order_relaxed);
    }
    return x;
  }

 private:
  std::atomic<std::uint64_t> h_{session::StreamDigest{}.h};
  std::atomic<std::uint64_t> n_{0};
};

}  // namespace infopipe::replay
