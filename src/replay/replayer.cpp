#include "replay/replayer.hpp"

#include <algorithm>
#include <map>

#include "rt/clock.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::replay {

namespace {

/// Grid resolution: enough windows that recorded orderings and migration
/// times land near their recorded positions, few enough that a replay is
/// hundreds of step_until calls, not millions.
constexpr std::int64_t kGridWindows = 256;

/// One structural event to re-apply at its recorded instant: a migration
/// (from its kQuiesce frame — the phase that marks when the decision struck
/// the live run) or an elastic topology change (kScale frame). Both kinds
/// merge into ONE time-sorted list: a retire frame must re-apply after the
/// migrations that evacuated the shard, and time order is exactly what the
/// recorder captured.
struct PlannedEvent {
  enum class Kind { kMigrate, kAddShard, kRetireShard };
  std::int64_t t = 0;
  Kind kind = Kind::kMigrate;
  std::uint32_t section = 0;  ///< kMigrate
  int to = -1;                ///< kMigrate
  int shard = -1;             ///< kAddShard / kRetireShard
};

}  // namespace

ReplayResult Replayer::run(const Builder& build) {
  const int n_shards = std::max<int>(1, trace_.meta.n_shards);

  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(n_shards, opt);

  // Declared after the group so it is destroyed first (realizations
  // reference their shard runtimes).
  Build b = build(group);
  if (!b.flows) {
    throw TraceError("replay builder returned no flow reader");
  }

  // The structural plan: migrations and scale events, merged and sorted by
  // recorded time (stable, so same-instant events keep their frame order).
  std::vector<PlannedEvent> events;
  for (const Frame& f : trace_.frames) {
    if (f.frame_kind() == FrameKind::kMigration &&
        f.aux16 == static_cast<std::uint16_t>(MigrationPhase::kQuiesce)) {
      PlannedEvent e;
      e.t = f.t;
      e.kind = PlannedEvent::Kind::kMigrate;
      e.section = f.aux32;
      e.to = static_cast<int>(f.b);
      events.push_back(e);
    } else if (f.frame_kind() == FrameKind::kScale) {
      PlannedEvent e;
      e.t = f.t;
      e.kind = f.aux16 == 0 ? PlannedEvent::Kind::kAddShard
                            : PlannedEvent::Kind::kRetireShard;
      e.shard = static_cast<int>(f.a);
      events.push_back(e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const PlannedEvent& x, const PlannedEvent& y) {
                     return x.t < y.t;
                   });

  if (!events.empty() && b.real == nullptr) {
    throw TraceError(
        "trace contains migrations or scale events but the builder exposed "
        "no realization");
  }

  ReplayResult r;
  const std::int64_t end = std::max<std::int64_t>(trace_.meta.end_time_ns,
                                                  rt::milliseconds(1));
  const std::int64_t quantum =
      std::max<std::int64_t>(end / kGridWindows, rt::milliseconds(1));

  // Per-window shard order from the recorded timeline: shards take their
  // replay turns in the order their first recorded frame of that window
  // appears; silent shards follow in index order. frame_at walks the trace
  // once overall (frames are time-sorted up to mutex-acquisition jitter,
  // which a sort makes exact).
  std::vector<Frame> timeline = trace_.frames;
  std::stable_sort(
      timeline.begin(), timeline.end(),
      [](const Frame& x, const Frame& y) { return x.t < y.t; });
  std::size_t cursor = 0;

  rt::Time t = 0;
  bool done = false;
  std::size_t ev_cursor = 0;
  // 4x slack past the recorded end: a virtual re-execution of a clocked
  // flow needs about the recorded duration, but owes nothing to wall-time
  // effects (GC-free, no preemption), so the bound is generous.
  const std::int64_t horizon = end * 4 + rt::seconds(1);
  while (t < horizon && !done) {
    t += quantum;
    // Structural events strictly in recorded order: an add must precede the
    // frames attributed to the new shard, a retire must follow the
    // evacuating migrations.
    for (; ev_cursor < events.size() && events[ev_cursor].t <= t;
         ++ev_cursor) {
      const PlannedEvent& e = events[ev_cursor];
      switch (e.kind) {
        case PlannedEvent::Kind::kMigrate:
          b.real->migrate_section(e.section, e.to);
          ++r.migrations_applied;
          break;
        case PlannedEvent::Kind::kAddShard: {
          const int got = group.add_shard();
          if (got != e.shard) {
            throw TraceError("replay add_shard produced shard " +
                             std::to_string(got) + ", trace recorded " +
                             std::to_string(e.shard));
          }
          b.real->sync_topology();
          ++r.scales_applied;
          break;
        }
        case PlannedEvent::Kind::kRetireShard:
          group.retire_shard(e.shard);
          ++r.scales_applied;
          break;
      }
    }
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(group.size()));
    for (; cursor < timeline.size() && timeline[cursor].t <= t; ++cursor) {
      const std::uint8_t s = timeline[cursor].shard;
      if (static_cast<int>(s) < group.size() &&
          group.is_live(static_cast<int>(s)) &&
          std::find(order.begin(), order.end(), static_cast<int>(s)) ==
              order.end()) {
        order.push_back(static_cast<int>(s));
      }
    }
    for (const int s : group.live_shards()) {
      if (std::find(order.begin(), order.end(), s) == order.end()) {
        order.push_back(s);
      }
    }
    group.step_until(t, order);
    ++r.steps;
    done = b.real != nullptr && b.real->finished() && t >= end;
  }
  r.virtual_end = t;

  // Unapplied events (recorded after the last frame horizon) would mean
  // the re-execution diverged structurally; surface that as failure.
  const bool all_events = ev_cursor == events.size();

  const std::vector<Trace::Flow> got = b.flows();
  std::map<std::string, const Trace::Flow*> got_by_name;
  for (const Trace::Flow& f : got) got_by_name[f.name] = &f;
  for (const Trace::Flow& want : trace_.flows) {
    const auto it = got_by_name.find(want.name);
    if (it == got_by_name.end()) {
      r.mismatches.push_back(ReplayResult::Mismatch{
          want.name, want.digest, 0, want.items, 0});
      continue;
    }
    const Trace::Flow& have = *it->second;
    if (have.digest != want.digest || have.items != want.items) {
      r.mismatches.push_back(ReplayResult::Mismatch{
          want.name, want.digest, have.digest, want.items, have.items});
    }
  }

  r.ok = r.mismatches.empty() && all_events && !trace_.flows.empty() &&
         (b.real == nullptr || b.real->finished());
  r.summary = std::string(r.ok ? "replay OK" : "replay MISMATCH") + ": " +
              std::to_string(trace_.flows.size()) + " flows, " +
              std::to_string(r.migrations_applied) + " migrations, " +
              std::to_string(r.scales_applied) + " scale events, " +
              std::to_string(r.steps) + " windows to t=" +
              std::to_string(r.virtual_end / 1000000) + " ms";
  for (const ReplayResult::Mismatch& m : r.mismatches) {
    r.summary += "; flow '" + m.name + "' want " +
                 std::to_string(m.want_digest) + "/" +
                 std::to_string(m.want_items) + " items, got " +
                 std::to_string(m.got_digest) + "/" +
                 std::to_string(m.got_items);
  }

  // Tear the rebuilt pipeline down before the group leaves scope.
  b.flows = nullptr;
  b.real = nullptr;
  b.state.reset();
  return r;
}

}  // namespace infopipe::replay
