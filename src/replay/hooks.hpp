// Schedule-decision tap points (ip_replay).
//
// Every source of nondeterminism the middleware itself introduces — which
// mailbox message a ULT dispatches next, which ring positions a ShardChannel
// publishes and consumes, when a migration quiesces/transfers/resumes, when
// a pool block rides the foreign-return stash, when a timer fires — funnels
// through one of the note_*() functions below. The instrumented layers (rt,
// shard, mem, balance) include ONLY this header: it is header-only and has
// no link dependency, so taking the taps costs them nothing at link time
// and one relaxed atomic load plus a predictable branch at run time while
// no sink is installed. That load-and-branch is the entire
// INFOPIPE_RECORD=off hot-path cost, which bench_shard verifies.
//
// A TapSink observes the decisions. Two live in src/replay/: the
// ScheduleRecorder (writes a replay::Trace) and the HBChecker (vector-clock
// happens-before verification over the channel/stash edges). Exactly one
// sink is installed at a time; installation is process-global because the
// decisions being observed are process-global (a ShardGroup's kernel
// threads all tap the same stream). Install/uninstall only around a
// quiescent group — the sink pointer is read without a lock on hot paths,
// so a sink must outlive every thread that might still observe it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace infopipe::replay {

/// FNV-1a 64 over a byte string — identical constants to
/// session::StreamDigest. Channels hash their names with it once at
/// construction so frames identify rings without carrying strings.
[[nodiscard]] inline std::uint64_t fnv1a(const void* p,
                                         std::size_t n) noexcept {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Which migration phase a note_migration() call marks.
enum class MigrationPhase : int { kQuiesce = 0, kTransfer = 1, kResume = 2 };

/// Which pool foreign-stash edge a note_stash() call marks.
enum class StashEdge : int { kReturn = 0, kAdopt = 1, kDrain = 2 };

/// Observer of schedule decisions. Methods are called from ANY kernel
/// thread hosting a shard, concurrently; implementations synchronize
/// internally. Pointers identify objects (runtimes, channels, pools) —
/// sinks map them to shard ids or vector-clock slots, never dereference.
class TapSink {
 public:
  virtual ~TapSink() = default;

  /// A ULT dispatch: runtime `rtm` popped a message of `msg_type` for
  /// thread `tid`. The per-runtime dispatch order IS the schedule.
  virtual void on_dispatch(const void* rtm, std::uint64_t tid,
                           int msg_type) = 0;

  /// A timer fired on `rtm` at (virtual or real) time `when` for `target`.
  virtual void on_timer(const void* rtm, std::int64_t when,
                        std::uint64_t target) = 0;

  /// Ring publish: `n` items entered channel `chan` (FNV hash `name_hash`
  /// of its name) at monotonic positions [first_seq, first_seq+n) from
  /// shard `shard`. Called after the tail store — the items are visible.
  virtual void on_chan_push(const void* chan, std::uint64_t name_hash,
                            std::uint64_t first_seq, std::uint64_t n,
                            int shard) = 0;

  /// Ring consume: `n` items left `chan` at [first_seq, first_seq+n) on
  /// shard `shard`. Called after the head store.
  virtual void on_chan_pop(const void* chan, std::uint64_t name_hash,
                           std::uint64_t first_seq, std::uint64_t n,
                           int shard) = 0;

  /// A migration phase boundary for `section` moving `from` -> `to`.
  virtual void on_migration(std::uint32_t section, int from, int to,
                            MigrationPhase phase) = 0;

  /// A pool foreign-return edge: `n` blocks crossed pool `pool`'s stash
  /// (kReturn: a foreign thread parked one; kAdopt: ownership changed to
  /// the releasing side; kDrain: the owner absorbed `n` parked blocks).
  virtual void on_stash(const void* pool, StashEdge edge,
                        std::uint64_t n) = 0;

  /// An explicit shared-memory access declaration (`obj`, read or write)
  /// for the happens-before checker. Production code never calls this; it
  /// is the hook tests use to seed deliberate cross-shard accesses.
  virtual void on_shared_access(const void* obj, bool write) = 0;

  /// A topology change: shard `shard` joined (`added`) or retired, leaving
  /// `live_after` live shards. `rtm`/`pool` identify the shard's runtime
  /// and payload pool so a sink can extend its attribution maps — the one
  /// tap where object identities arrive AFTER attach time.
  virtual void on_scale(const void* rtm, const void* pool, int shard,
                        bool added, int live_after) = 0;
};

/// The installed sink (nullptr: every tap is the cheap branch). C++17
/// inline variable: one instance across all TUs, no link dependency.
inline std::atomic<TapSink*> g_tap_sink{nullptr};

/// Installs `s` (nullptr uninstalls). Returns the previous sink. Release
/// ordering pairs with the acquire load in sink(): a thread that observes
/// the new sink also observes everything initialized before installation.
inline TapSink* install_tap_sink(TapSink* s) noexcept {
  return g_tap_sink.exchange(s, std::memory_order_acq_rel);
}

[[nodiscard]] inline TapSink* tap_sink() noexcept {
  return g_tap_sink.load(std::memory_order_acquire);
}

// ---- the tap call sites use these ------------------------------------------
//
// The relaxed load is deliberate: when no sink is installed there is
// nothing to order, and when one is, install_tap_sink's acq_rel exchange
// plus the quiescent-install discipline provide the visibility.

inline void note_dispatch(const void* rtm, std::uint64_t tid,
                          int msg_type) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_dispatch(rtm, tid, msg_type);
  }
}

inline void note_timer(const void* rtm, std::int64_t when,
                       std::uint64_t target) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_timer(rtm, when, target);
  }
}

inline void note_chan_push(const void* chan, std::uint64_t name_hash,
                           std::uint64_t first_seq, std::uint64_t n,
                           int shard) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_chan_push(chan, name_hash, first_seq, n, shard);
  }
}

inline void note_chan_pop(const void* chan, std::uint64_t name_hash,
                          std::uint64_t first_seq, std::uint64_t n,
                          int shard) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_chan_pop(chan, name_hash, first_seq, n, shard);
  }
}

inline void note_migration(std::uint32_t section, int from, int to,
                           MigrationPhase phase) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_migration(section, from, to, phase);
  }
}

inline void note_stash(const void* pool, StashEdge edge,
                       std::uint64_t n) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_stash(pool, edge, n);
  }
}

inline void note_shared_access(const void* obj, bool write) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_shared_access(obj, write);
  }
}

inline void note_scale(const void* rtm, const void* pool, int shard,
                       bool added, int live_after) noexcept {
  if (TapSink* s = g_tap_sink.load(std::memory_order_relaxed)) {
    s->on_scale(rtm, pool, shard, added, live_after);
  }
}

}  // namespace infopipe::replay
