// ScheduleFuzzer (ip_replay): perturb the schedule, demand the same flow.
//
// A SchedulePlan is an infinite pseudo-random decision tape derived from
// one seed (splitmix64 — deterministic, platform-independent). A scenario
// — any deterministic lockstep execution the caller can parameterize, e.g.
// "this pipeline over a manual ShardGroup" — consumes decisions to perturb
// what the middleware is allowed to vary: the per-round shard step order,
// migration timing, timer/return-stash delivery shifts. The fuzzer runs
// the scenario once with the identity plan (seed 0: every decision is 0,
// i.e. the undisturbed schedule) and then across N seeds, asserting the
// per-flow digests are lockstep-equivalent every time.
//
// When a seed fails, the fuzzer shrinks it: decisions at index >=
// active_prefix read as 0 (identity), so a binary search over the prefix
// length finds the minimal number of leading perturbed decisions that
// still reproduces the divergence — the debugging handle the tentpole
// promises.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rt/types.hpp"

namespace infopipe::replay {

/// splitmix64: the repo-wide deterministic decision generator.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct SchedulePlan {
  static constexpr std::size_t kNoPrefix = ~std::size_t{0};

  std::uint64_t seed = 0;                 ///< 0: the identity plan
  std::size_t active_prefix = kNoPrefix;  ///< decisions beyond read as 0

  /// Decision word i of the tape (0 = identity / no perturbation).
  [[nodiscard]] std::uint64_t decision(std::size_t i) const noexcept {
    if (seed == 0 || i >= active_prefix) return 0;
    const std::uint64_t d = splitmix64(seed ^ splitmix64(i + 1));
    return d == 0 ? 1 : d;  // a live decision is never the identity word
  }

  /// Shard visit order for lockstep round `round`: the identity order when
  /// the decision is 0, otherwise a Fisher–Yates permutation driven by it.
  [[nodiscard]] std::vector<int> order(std::size_t round,
                                       int n_shards) const;

  /// Signed time shift in [-max_abs, +max_abs] from decision `i`.
  [[nodiscard]] rt::Time jitter(std::size_t i, rt::Time max_abs) const;

  /// Boolean perturbation from decision `i`.
  [[nodiscard]] bool flip(std::size_t i) const noexcept {
    return (decision(i) & 1u) != 0;
  }
};

/// Flow name -> final stream digest; what a scenario must return.
using DigestMap = std::map<std::string, std::uint64_t>;

/// One deterministic execution under a plan. MUST be a pure function of
/// the plan — the fuzzer compares runs across calls.
using Scenario = std::function<DigestMap(const SchedulePlan&)>;

struct FuzzReport {
  std::uint64_t schedules = 0;  ///< perturbed schedules executed
  DigestMap baseline;
  std::vector<std::uint64_t> failing_seeds;

  /// Shrink result for failing_seeds.front(), when any.
  std::uint64_t shrunk_seed = 0;
  std::size_t shrunk_prefix = SchedulePlan::kNoPrefix;

  [[nodiscard]] bool ok() const noexcept { return failing_seeds.empty(); }
  [[nodiscard]] std::string summary() const;
};

class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(Scenario scenario)
      : scenario_(std::move(scenario)) {}

  /// Runs the identity baseline plus `n_seeds` perturbed schedules (seeds
  /// derived from base_seed), shrinking the first failure found.
  /// `max_decisions` bounds the shrink search, not the scenarios.
  [[nodiscard]] FuzzReport run(std::uint64_t base_seed, int n_seeds,
                               std::size_t max_decisions = 64) const;

  /// Minimal active prefix (1..max_decisions) under which `seed` still
  /// diverges from `baseline`; kNoPrefix if the full tape no longer fails
  /// (a flaky scenario). Binary search: O(log max_decisions) runs.
  [[nodiscard]] static std::size_t shrink(const Scenario& scenario,
                                          const DigestMap& baseline,
                                          std::uint64_t seed,
                                          std::size_t max_decisions);

 private:
  Scenario scenario_;
};

}  // namespace infopipe::replay
