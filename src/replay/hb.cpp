#include "replay/hb.hpp"

namespace infopipe::replay {

void HBChecker::install() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (installed_) return;
  installed_ = true;
  install_tap_sink(this);
}

void HBChecker::uninstall() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (!installed_) return;
  installed_ = false;
  install_tap_sink(nullptr);
}

HBChecker::~HBChecker() { uninstall(); }

bool HBChecker::leq(const VC& a, const VC& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = i < b.size() ? b[i] : 0;
    if (a[i] > bi) return false;
  }
  return true;
}

void HBChecker::join(VC& into, const VC& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i] > into[i]) into[i] = from[i];
  }
}

std::string HBChecker::render(const VC& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

int HBChecker::self_locked() {
  const std::thread::id me = std::this_thread::get_id();
  const auto it = thread_index_.find(me);
  if (it != thread_index_.end()) return it->second;
  const int idx = static_cast<int>(clocks_.size());
  thread_index_[me] = idx;
  clocks_.emplace_back();
  clocks_.back().resize(static_cast<std::size_t>(idx) + 1, 0);
  return idx;
}

void HBChecker::tick(int t) {
  VC& c = clocks_[static_cast<std::size_t>(t)];
  if (c.size() <= static_cast<std::size_t>(t)) {
    c.resize(static_cast<std::size_t>(t) + 1, 0);
  }
  ++c[static_cast<std::size_t>(t)];
}

void HBChecker::on_dispatch(const void*, std::uint64_t, int) {}
void HBChecker::on_timer(const void*, std::int64_t, std::uint64_t) {}
void HBChecker::on_migration(std::uint32_t, int, int, MigrationPhase) {}

void HBChecker::on_chan_push(const void* chan, std::uint64_t /*name_hash*/,
                             std::uint64_t first_seq, std::uint64_t n,
                             int /*shard*/) {
  const std::lock_guard<std::mutex> lk(mu_);
  const int t = self_locked();
  tick(t);
  chan_pending_[chan].push_back(PendingEdge{
      first_seq, first_seq + n, clocks_[static_cast<std::size_t>(t)]});
  ++edges_;
}

void HBChecker::on_chan_pop(const void* chan, std::uint64_t /*name_hash*/,
                            std::uint64_t first_seq, std::uint64_t n,
                            int /*shard*/) {
  const std::lock_guard<std::mutex> lk(mu_);
  const int t = self_locked();
  tick(t);
  auto it = chan_pending_.find(chan);
  if (it == chan_pending_.end()) return;
  // SPSC FIFO: every publish wholly at or below the popped range happened
  // before this consume. Entries straddling the boundary stay pending —
  // joining them early would invent ordering and mask real races.
  std::deque<PendingEdge>& q = it->second;
  const std::uint64_t consumed_to = first_seq + n;
  while (!q.empty() && q.front().end_seq <= consumed_to) {
    join(clocks_[static_cast<std::size_t>(t)], q.front().vc);
    q.pop_front();
    ++edges_;
  }
}

void HBChecker::on_stash(const void* pool, StashEdge edge, std::uint64_t) {
  const std::lock_guard<std::mutex> lk(mu_);
  const int t = self_locked();
  tick(t);
  VC& pc = stash_clock_[pool];
  switch (edge) {
    case StashEdge::kReturn:
      // Foreign release: the releasing thread's history joins the stash.
      join(pc, clocks_[static_cast<std::size_t>(t)]);
      break;
    case StashEdge::kAdopt:
    case StashEdge::kDrain:
      // The owner (or adopter) absorbs everything released so far.
      join(clocks_[static_cast<std::size_t>(t)], pc);
      break;
  }
  ++edges_;
}

void HBChecker::on_shared_access(const void* obj, bool write) {
  const std::lock_guard<std::mutex> lk(mu_);
  const int t = self_locked();
  tick(t);
  ++accesses_;
  const VC& mine = clocks_[static_cast<std::size_t>(t)];
  std::vector<Access>& per_thread = last_access_[obj];
  if (per_thread.size() < clocks_.size()) per_thread.resize(clocks_.size());
  for (std::size_t o = 0; o < per_thread.size(); ++o) {
    if (static_cast<int>(o) == t || !per_thread[o].valid) continue;
    const Access& prior = per_thread[o];
    if (!(prior.write || write)) continue;  // read/read never races
    if (!leq(prior.vc, mine)) {
      violations_.push_back(Violation{
          obj, prior.thread, t, prior.write, write,
          "prior " + render(prior.vc) + " !<= current " + render(mine)});
    }
  }
  Access& slot = per_thread[static_cast<std::size_t>(t)];
  slot.vc = mine;
  slot.thread = t;
  slot.write = write;
  slot.valid = true;
}

std::vector<HBChecker::Violation> HBChecker::violations() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

std::uint64_t HBChecker::edges_observed() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return edges_;
}

std::uint64_t HBChecker::accesses_checked() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return accesses_;
}

std::string HBChecker::report() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return std::to_string(clocks_.size()) + " threads, " +
         std::to_string(edges_) + " edges, " + std::to_string(accesses_) +
         " accesses, " + std::to_string(violations_.size()) + " violations";
}

}  // namespace infopipe::replay
