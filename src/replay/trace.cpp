#include "replay/trace.hpp"

#include <cstdio>
#include <cstring>

namespace infopipe::replay {

namespace {

constexpr char kMagic[4] = {'I', 'P', 'R', 'T'};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian reader; decode() drives it forward.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;

  void need(std::size_t n) const {
    if (left < n) throw TraceError("trace truncated");
  }
  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = p[0];
    p += 1;
    left -= 1;
    return v;
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
    p += 2;
    left -= 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

}  // namespace

const Trace::Flow* Trace::find_flow(const std::string& name) const {
  for (const Flow& f : flows) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::uint64_t> Trace::kind_counts() const {
  std::vector<std::uint64_t> c(kNumFrameKinds, 0);
  for (const Frame& f : frames) {
    if (f.kind < kNumFrameKinds) ++c[f.kind];
  }
  return c;
}

std::vector<std::uint8_t> Trace::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + flows.size() * 32 + frames.size() * kFrameBytes);
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u16(out, meta.version);
  out.push_back(meta.n_shards);
  out.push_back(meta.flags);
  put_u64(out, meta.seed);
  put_u64(out, static_cast<std::uint64_t>(meta.end_time_ns));
  put_u32(out, static_cast<std::uint32_t>(flows.size()));
  put_u32(out, static_cast<std::uint32_t>(frames.size()));
  for (const Flow& f : flows) {
    put_u16(out, static_cast<std::uint16_t>(f.name.size()));
    out.insert(out.end(), f.name.begin(), f.name.end());
    put_u64(out, f.digest);
    put_u64(out, f.items);
  }
  for (const Frame& f : frames) {
    out.push_back(f.kind);
    out.push_back(f.shard);
    put_u16(out, f.aux16);
    put_u32(out, f.aux32);
    put_u64(out, static_cast<std::uint64_t>(f.t));
    put_u64(out, f.a);
    put_u64(out, f.b);
  }
  return out;
}

Trace Trace::decode(const std::uint8_t* data, std::size_t n) {
  Reader r{data, n};
  r.need(4);
  if (std::memcmp(r.p, kMagic, 4) != 0) {
    throw TraceError("not a schedule trace (bad magic)");
  }
  r.p += 4;
  r.left -= 4;
  Trace t;
  t.meta.version = r.u16();
  if (t.meta.version != kTraceVersion) {
    throw TraceError("unsupported trace version " +
                     std::to_string(t.meta.version));
  }
  t.meta.n_shards = r.u8();
  t.meta.flags = r.u8();
  t.meta.seed = r.u64();
  t.meta.end_time_ns = static_cast<std::int64_t>(r.u64());
  const std::uint32_t n_flows = r.u32();
  const std::uint32_t n_frames = r.u32();
  t.flows.reserve(n_flows);
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    Flow f;
    f.name = r.str(r.u16());
    f.digest = r.u64();
    f.items = r.u64();
    t.flows.push_back(std::move(f));
  }
  t.frames.reserve(n_frames);
  for (std::uint32_t i = 0; i < n_frames; ++i) {
    Frame f;
    f.kind = r.u8();
    f.shard = r.u8();
    f.aux16 = r.u16();
    f.aux32 = r.u32();
    f.t = static_cast<std::int64_t>(r.u64());
    f.a = r.u64();
    f.b = r.u64();
    t.frames.push_back(f);
  }
  return t;
}

void Trace::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw TraceError("cannot open " + path + " for writing");
  const std::size_t w = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int rc = std::fclose(f);
  if (w != bytes.size() || rc != 0) {
    throw TraceError("short write to " + path);
  }
}

Trace Trace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw TraceError("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return decode(bytes.data(), bytes.size());
}

std::string Trace::summary() const {
  const std::vector<std::uint64_t> c = kind_counts();
  std::string s = "trace v" + std::to_string(meta.version) + ": " +
                  std::to_string(static_cast<int>(meta.n_shards)) +
                  " shards, " + std::to_string(frames.size()) + " frames (" +
                  std::to_string(c[0]) + " dispatch, " + std::to_string(c[1]) +
                  " timer, " + std::to_string(c[2]) + " push, " +
                  std::to_string(c[3]) + " pop, " + std::to_string(c[4]) +
                  " migration, " + std::to_string(c[5]) + " stash, " +
                  std::to_string(c[7]) + " scale), " +
                  std::to_string(flows.size()) + " flows, " +
                  std::to_string(meta.end_time_ns / 1000000) + " ms";
  return s;
}

}  // namespace infopipe::replay
