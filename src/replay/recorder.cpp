#include "replay/recorder.hpp"

#include "core/config.hpp"
#include "shard/shard_group.hpp"

namespace infopipe::replay {

ScheduleRecorder::ScheduleRecorder() : t0_(std::chrono::steady_clock::now()) {
  frames_.reserve(4096);
}

ScheduleRecorder::~ScheduleRecorder() {
  uninstall();
  if (published_in_ != nullptr) {
    published_in_->remove_collector(collector_id_);
  }
}

void ScheduleRecorder::attach(shard::ShardGroup& group) {
  const std::lock_guard<std::mutex> lk(mu_);
  n_shards_ = static_cast<std::uint8_t>(group.size());
  for (int s = 0; s < group.size(); ++s) {
    rt::Runtime& rtm = group.runtime(s);
    shard_of_[static_cast<const void*>(&rtm)] =
        static_cast<std::uint8_t>(s);
    shard_of_[static_cast<const void*>(&rtm.pool())] =
        static_cast<std::uint8_t>(s);
  }
}

bool ScheduleRecorder::install() {
  if (!config().record) return false;
  if (installed_.exchange(true, std::memory_order_acq_rel)) return true;
  install_tap_sink(this);
  return true;
}

void ScheduleRecorder::uninstall() {
  if (!installed_.exchange(false, std::memory_order_acq_rel)) return;
  install_tap_sink(nullptr);
}

std::int64_t ScheduleRecorder::now_ns() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

std::uint8_t ScheduleRecorder::shard_of(const void* obj) const {
  // Callers hold mu_.
  const auto it = shard_of_.find(obj);
  return it == shard_of_.end() ? kShardUnknown : it->second;
}

void ScheduleRecorder::push_frame(Frame f) {
  total_.fetch_add(1, std::memory_order_relaxed);
  if (f.kind < kNumFrameKinds) {
    by_kind_[f.kind].fetch_add(1, std::memory_order_relaxed);
  }
  const std::lock_guard<std::mutex> lk(mu_);
  if (frames_.size() >= kMaxFrames) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  frames_.push_back(f);
}

void ScheduleRecorder::on_dispatch(const void* rtm, std::uint64_t tid,
                                   int msg_type) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kDispatch);
  f.t = now_ns();
  f.a = tid;
  f.aux32 = static_cast<std::uint32_t>(msg_type);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    f.shard = shard_of(rtm);
    if (frames_.size() >= kMaxFrames) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frames_.push_back(f);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[f.kind].fetch_add(1, std::memory_order_relaxed);
}

void ScheduleRecorder::on_timer(const void* rtm, std::int64_t when,
                                std::uint64_t target) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kTimer);
  f.t = now_ns();
  f.a = target;
  f.b = static_cast<std::uint64_t>(when);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    f.shard = shard_of(rtm);
    if (frames_.size() >= kMaxFrames) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frames_.push_back(f);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[f.kind].fetch_add(1, std::memory_order_relaxed);
}

void ScheduleRecorder::on_chan_push(const void* /*chan*/,
                                    std::uint64_t name_hash,
                                    std::uint64_t first_seq, std::uint64_t n,
                                    int shard) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kChanPush);
  f.shard = shard >= 0 && shard < 0xff ? static_cast<std::uint8_t>(shard)
                                       : kShardUnknown;
  f.aux32 = static_cast<std::uint32_t>(n);
  f.t = now_ns();
  f.a = name_hash;
  f.b = first_seq;
  push_frame(f);
}

void ScheduleRecorder::on_chan_pop(const void* /*chan*/,
                                   std::uint64_t name_hash,
                                   std::uint64_t first_seq, std::uint64_t n,
                                   int shard) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kChanPop);
  f.shard = shard >= 0 && shard < 0xff ? static_cast<std::uint8_t>(shard)
                                       : kShardUnknown;
  f.aux32 = static_cast<std::uint32_t>(n);
  f.t = now_ns();
  f.a = name_hash;
  f.b = first_seq;
  push_frame(f);
}

void ScheduleRecorder::on_migration(std::uint32_t section, int from, int to,
                                    MigrationPhase phase) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kMigration);
  f.shard = from >= 0 && from < 0xff ? static_cast<std::uint8_t>(from)
                                     : kShardUnknown;
  f.aux16 = static_cast<std::uint16_t>(phase);
  f.aux32 = section;
  f.t = now_ns();
  f.a = static_cast<std::uint64_t>(from);
  f.b = static_cast<std::uint64_t>(to);
  push_frame(f);
}

void ScheduleRecorder::on_stash(const void* pool, StashEdge edge,
                                std::uint64_t n) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kStash);
  f.aux16 = static_cast<std::uint16_t>(edge);
  f.t = now_ns();
  f.a = n;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    f.shard = shard_of(pool);
    if (frames_.size() >= kMaxFrames) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frames_.push_back(f);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[f.kind].fetch_add(1, std::memory_order_relaxed);
}

void ScheduleRecorder::on_shared_access(const void* /*obj*/,
                                        bool /*write*/) {
  // Accesses are the HBChecker's input, not a schedule decision; the
  // recorder deliberately does not trace them.
}

void ScheduleRecorder::on_scale(const void* rtm, const void* pool, int shard,
                                bool added, int live_after) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kScale);
  f.shard = shard >= 0 && shard < 0xff ? static_cast<std::uint8_t>(shard)
                                       : kShardUnknown;
  f.aux16 = added ? 0 : 1;
  f.aux32 = static_cast<std::uint32_t>(live_after);
  f.t = now_ns();
  f.a = static_cast<std::uint64_t>(shard);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    // A freshly added shard's runtime/pool were unknown at attach() time:
    // extend the attribution map so its later frames carry the shard id.
    // meta.n_shards deliberately stays the count at attach() — the replayer
    // reconstructs growth from the kScale frames themselves.
    if (added && rtm != nullptr) {
      shard_of_[rtm] = f.shard;
      if (pool != nullptr) shard_of_[pool] = f.shard;
    }
    if (frames_.size() >= kMaxFrames) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frames_.push_back(f);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[f.kind].fetch_add(1, std::memory_order_relaxed);
}

void ScheduleRecorder::note_flow(const std::string& name,
                                 std::uint64_t digest, std::uint64_t items) {
  const std::lock_guard<std::mutex> lk(mu_);
  flows_.push_back(Trace::Flow{name, digest, items});
}

void ScheduleRecorder::note_mark(std::uint64_t tag) {
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kMark);
  f.shard = kShardUnknown;
  f.t = now_ns();
  f.a = tag;
  push_frame(f);
}

Trace ScheduleRecorder::finish() {
  Trace t;
  const InfopipeConfig& c = config();
  t.meta.version = kTraceVersion;
  t.meta.seed = c.seed;
  t.meta.flags = static_cast<std::uint8_t>(
      (c.pooling ? Trace::kFlagPooling : 0) |
      (c.batching ? Trace::kFlagBatching : 0) |
      (c.inline_payloads ? Trace::kFlagInline : 0) |
      (c.sessions ? Trace::kFlagSessions : 0));
  const std::lock_guard<std::mutex> lk(mu_);
  t.meta.n_shards = n_shards_;
  t.flows = flows_;
  t.frames = frames_;
  for (const Frame& f : t.frames) {
    if (f.t > t.meta.end_time_ns) t.meta.end_time_ns = f.t;
  }
  return t;
}

void ScheduleRecorder::publish(obs::MetricsRegistry& reg) {
  published_in_ = &reg;
  collector_id_ = reg.add_collector([this](obs::MetricsSnapshot& s) {
    s.add_counter("replay.frames.total",
                  total_.load(std::memory_order_relaxed));
    s.add_counter("replay.frames.dropped",
                  dropped_.load(std::memory_order_relaxed));
    static const char* kNames[kNumFrameKinds] = {
        "replay.frames.dispatch", "replay.frames.timer",
        "replay.frames.chan_push", "replay.frames.chan_pop",
        "replay.frames.migration", "replay.frames.stash",
        "replay.frames.mark", "replay.frames.scale"};
    for (int k = 0; k < kNumFrameKinds; ++k) {
      s.add_counter(kNames[k], by_kind_[k].load(std::memory_order_relaxed));
    }
  });
}

}  // namespace infopipe::replay
