// ScheduleRecorder (ip_replay): the TapSink that turns a live run into a
// replay::Trace.
//
// Usage around a ShardGroup run:
//
//   replay::ScheduleRecorder rec;
//   rec.attach(group);              // map runtimes/pools -> shard ids
//   if (rec.install()) { ... }     // taps live; no-op if INFOPIPE_RECORD=off
//   ... run the flow ...
//   rec.uninstall();               // group must be stopped/quiescent first
//   rec.note_flow("frames", probe.digest(), probe.items());
//   replay::Trace t = rec.finish();
//
// install() refuses (returns false) when config().record is off — that is
// the INFOPIPE_RECORD kill switch: the binary keeps the tap call sites,
// but nothing ever observes them, so the hot path stays the documented
// one-relaxed-load branch.
//
// Frames are stamped with nanoseconds since the recorder's construction on
// one process-wide steady clock, giving every shard's decisions a common
// timeline (the shard runtimes' RealClocks tick the same way). The frame
// buffer is bounded (kMaxFrames); overflow increments dropped() rather
// than growing without bound — a truncated trace still replays the prefix.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "replay/hooks.hpp"
#include "replay/trace.hpp"

namespace infopipe::shard {
class ShardGroup;
}

namespace infopipe::replay {

class ScheduleRecorder : public TapSink {
 public:
  /// Frame-buffer bound: 1M frames = 32 MB encoded, minutes of a busy run.
  static constexpr std::size_t kMaxFrames = 1u << 20;

  ScheduleRecorder();
  ~ScheduleRecorder() override;

  ScheduleRecorder(const ScheduleRecorder&) = delete;
  ScheduleRecorder& operator=(const ScheduleRecorder&) = delete;

  /// Maps each shard's runtime and pool to its id so frames carry shard
  /// attribution. Call before install(); safe on an unlaunched group.
  void attach(shard::ShardGroup& group);

  /// Makes this the process tap sink. Returns false (and installs nothing)
  /// when INFOPIPE_RECORD=off. Install around quiescent groups only.
  [[nodiscard]] bool install();
  /// Removes this sink if installed. Must be called while no shard thread
  /// can still be inside a tap — i.e. after ShardGroup::stop() or before
  /// launch(); the destructor calls it as a backstop.
  void uninstall();
  [[nodiscard]] bool installed() const noexcept {
    return installed_.load(std::memory_order_acquire);
  }

  /// Records a flow's final digest (call after the run, before finish()).
  void note_flow(const std::string& name, std::uint64_t digest,
                 std::uint64_t items);
  /// Drops a kMark frame carrying `tag` — a caller-defined timeline label.
  void note_mark(std::uint64_t tag);

  /// Snapshots everything into a Trace (meta from config() + attach()).
  [[nodiscard]] Trace finish();

  /// Publishes replay.frames.* / replay.dropped counters into `reg` as a
  /// snapshot-time collector. The recorder must outlive the registry use;
  /// the destructor removes the collector.
  void publish(obs::MetricsRegistry& reg);

  [[nodiscard]] std::uint64_t frames_recorded() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // -- TapSink (called from shard kernel threads) ---------------------------
  void on_dispatch(const void* rtm, std::uint64_t tid, int msg_type) override;
  void on_timer(const void* rtm, std::int64_t when,
                std::uint64_t target) override;
  void on_chan_push(const void* chan, std::uint64_t name_hash,
                    std::uint64_t first_seq, std::uint64_t n,
                    int shard) override;
  void on_chan_pop(const void* chan, std::uint64_t name_hash,
                   std::uint64_t first_seq, std::uint64_t n,
                   int shard) override;
  void on_migration(std::uint32_t section, int from, int to,
                    MigrationPhase phase) override;
  void on_stash(const void* pool, StashEdge edge, std::uint64_t n) override;
  void on_shared_access(const void* obj, bool write) override;
  void on_scale(const void* rtm, const void* pool, int shard, bool added,
                int live_after) override;

 private:
  [[nodiscard]] std::int64_t now_ns() const noexcept;
  [[nodiscard]] std::uint8_t shard_of(const void* obj) const;
  void push_frame(Frame f);

  const std::chrono::steady_clock::time_point t0_;
  std::atomic<bool> installed_{false};

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<Trace::Flow> flows_;
  std::unordered_map<const void*, std::uint8_t> shard_of_;
  std::uint8_t n_shards_ = 0;

  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> by_kind_[kNumFrameKinds] = {};

  obs::MetricsRegistry* published_in_ = nullptr;
  std::uint64_t collector_id_ = 0;
};

}  // namespace infopipe::replay
