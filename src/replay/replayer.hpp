// Replayer (ip_replay): re-executes a recorded run deterministically and
// checks it produced the same information flow.
//
// The replay substrate is the lockstep machinery the suite already trusts:
// a MANUAL ShardGroup (no kernel threads) over VirtualClocks, stepped on a
// fixed time grid. The trace drives what the grid cannot know by itself —
// how many shards the run started with (meta.n_shards; elastic growth and
// retirement are re-applied from the kScale frames in recorded time order),
// how long the run was, in which ORDER the shards took their turns inside
// each window (derived from the recorded frame timeline), and when each
// migration struck. At the end, the per-flow
// digests of the re-execution are compared against the digests the
// recorder stored; thread transparency says they must be bit-identical,
// and ReplayResult says whether they were.
//
// The caller supplies a Builder because a trace records decisions, not the
// pipeline itself: the builder reconstructs the same pipeline over the
// manual group, starts it, and exposes the per-flow digests (normally from
// replay::DigestProbe components at the same edges as the recorded run).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "replay/trace.hpp"
#include "rt/types.hpp"

namespace infopipe::shard {
class ShardGroup;
class ShardedRealization;
}  // namespace infopipe::shard

namespace infopipe::replay {

struct ReplayResult {
  struct Mismatch {
    std::string name;
    std::uint64_t want_digest = 0;
    std::uint64_t got_digest = 0;
    std::uint64_t want_items = 0;
    std::uint64_t got_items = 0;
  };

  bool ok = false;
  std::vector<Mismatch> mismatches;  ///< includes flows missing on a side
  int migrations_applied = 0;
  int scales_applied = 0;  ///< add_shard/retire_shard events re-applied
  std::uint64_t steps = 0;         ///< grid windows executed
  rt::Time virtual_end = 0;        ///< final virtual clock position
  std::string summary;             ///< one human-readable line
};

class Replayer {
 public:
  /// What a Builder hands back: the reconstructed (started) realization.
  /// `state` owns the pipeline/probes/realization — the Replayer destroys
  /// it before the manual group. `real` (optional) lets the Replayer apply
  /// recorded migrations and detect completion; `flows` reports the
  /// per-flow digests after the run.
  struct Build {
    std::shared_ptr<void> state;
    shard::ShardedRealization* real = nullptr;
    std::function<std::vector<Trace::Flow>()> flows;
  };
  using Builder = std::function<Build(shard::ShardGroup&)>;

  explicit Replayer(Trace trace) : trace_(std::move(trace)) {}

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Rebuilds, re-executes, compares. Throws only on structural errors
  /// (builder failure, migration of an unknown section); digest mismatches
  /// are reported in the result, not thrown.
  [[nodiscard]] ReplayResult run(const Builder& build);

 private:
  Trace trace_;
};

}  // namespace infopipe::replay
