#include "replay/fuzzer.hpp"

#include <numeric>

namespace infopipe::replay {

std::vector<int> SchedulePlan::order(std::size_t round, int n_shards) const {
  std::vector<int> o(static_cast<std::size_t>(n_shards));
  std::iota(o.begin(), o.end(), 0);
  std::uint64_t d = decision(round);
  if (d == 0) return o;
  // Fisher–Yates off the decision word, refreshed through splitmix64 so
  // even large groups draw independent swap indices.
  for (std::size_t i = o.size() - 1; i > 0; --i) {
    d = splitmix64(d);
    std::swap(o[i], o[d % (i + 1)]);
  }
  return o;
}

rt::Time SchedulePlan::jitter(std::size_t i, rt::Time max_abs) const {
  const std::uint64_t d = decision(i);
  if (d == 0 || max_abs <= 0) return 0;
  const auto span = static_cast<std::uint64_t>(max_abs) * 2 + 1;
  return static_cast<rt::Time>(d % span) - max_abs;
}

std::string FuzzReport::summary() const {
  std::string s = std::to_string(schedules) + " schedules, " +
                  std::to_string(baseline.size()) + " flows, " +
                  std::to_string(failing_seeds.size()) + " divergent";
  if (!failing_seeds.empty()) {
    s += " (first seed " + std::to_string(failing_seeds.front());
    if (shrunk_prefix != SchedulePlan::kNoPrefix) {
      s += ", shrunk to prefix " + std::to_string(shrunk_prefix);
    }
    s += ")";
  }
  return s;
}

FuzzReport ScheduleFuzzer::run(std::uint64_t base_seed, int n_seeds,
                               std::size_t max_decisions) const {
  FuzzReport r;
  r.baseline = scenario_(SchedulePlan{});
  for (int k = 1; k <= n_seeds; ++k) {
    SchedulePlan plan;
    plan.seed = splitmix64(base_seed + static_cast<std::uint64_t>(k));
    if (plan.seed == 0) plan.seed = 1;
    const DigestMap got = scenario_(plan);
    ++r.schedules;
    if (got != r.baseline) r.failing_seeds.push_back(plan.seed);
  }
  if (!r.failing_seeds.empty()) {
    r.shrunk_seed = r.failing_seeds.front();
    r.shrunk_prefix =
        shrink(scenario_, r.baseline, r.shrunk_seed, max_decisions);
  }
  return r;
}

std::size_t ScheduleFuzzer::shrink(const Scenario& scenario,
                                   const DigestMap& baseline,
                                   std::uint64_t seed,
                                   std::size_t max_decisions) {
  const auto fails = [&](std::size_t prefix) {
    SchedulePlan p;
    p.seed = seed;
    p.active_prefix = prefix;
    return scenario(p) != baseline;
  };
  if (!fails(max_decisions)) return SchedulePlan::kNoPrefix;
  // Invariant: prefix `lo` passes (0 decisions = identity = baseline by
  // definition), prefix `hi` fails; narrow to the boundary.
  std::size_t lo = 0;
  std::size_t hi = max_decisions;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace infopipe::replay
