// The schedule trace (ip_replay): a compact, versioned binary record of
// every nondeterministic decision a live run made, plus the per-flow
// digests that define what "the same run" means.
//
// Layout (all integers little-endian, like net/wire's frames):
//
//   header   "IPRT" u16 version  u8 n_shards  u8 flags  u64 seed
//            i64 end_time_ns  u32 n_flows  u32 n_frames
//   flows    n_flows x { u16 name_len, name bytes, u64 digest, u64 items }
//   frames   n_frames x 32 bytes (see Frame)
//
// `flags` snapshots the kill switches the run was recorded under
// (pooling/batching/inline/sessions) — a replay under different switches
// is still expected to match (that is the transparency claim), but the
// trace records the truth so a mismatch report can say what differed.
//
// A Frame is one decision point. The five generic fields (t, a, b, aux16,
// aux32) mean different things per kind — the per-kind constructors in
// trace.cpp are the one place that mapping lives; consumers go through the
// named accessors below.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "replay/hooks.hpp"

namespace infopipe::replay {

/// Bump when the encoding changes; decode() rejects other versions.
inline constexpr std::uint16_t kTraceVersion = 1;

/// Decision-point taxonomy (ARCHITECTURE §18). Stable on-disk values.
enum class FrameKind : std::uint8_t {
  kDispatch = 0,   ///< ULT dispatch choice          a=tid       aux32=msg_type
  kTimer = 1,      ///< timer firing                 a=target    b=when_ns
  kChanPush = 2,   ///< ring publish                 a=name_hash b=first_seq
  kChanPop = 3,    ///< ring consume                 a=name_hash b=first_seq
  kMigration = 4,  ///< phase boundary  aux16=phase  a=from      b=to
  kStash = 5,      ///< pool stash edge aux16=edge   a=n blocks
  kMark = 6,       ///< user-defined marker          a=tag
  kScale = 7,      ///< topology change aux16=0 add/1 retire  a=shard
                   ///<                 aux32=live shards after the event
};
inline constexpr int kNumFrameKinds = 8;

/// One recorded decision, 32 bytes encoded.
struct Frame {
  std::uint8_t kind = 0;    ///< FrameKind
  std::uint8_t shard = 0;   ///< shard attribution (0xff: unknown)
  std::uint16_t aux16 = 0;  ///< kind-specific small field
  std::uint32_t aux32 = 0;  ///< kind-specific field (msg type, n, section)
  std::int64_t t = 0;       ///< ns since recording started
  std::uint64_t a = 0;      ///< kind-specific wide field
  std::uint64_t b = 0;      ///< kind-specific wide field

  [[nodiscard]] FrameKind frame_kind() const noexcept {
    return static_cast<FrameKind>(kind);
  }
};
inline constexpr std::size_t kFrameBytes = 32;

inline constexpr std::uint8_t kShardUnknown = 0xff;

/// Thrown by decode()/load() on malformed input.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Trace {
  struct Meta {
    std::uint16_t version = kTraceVersion;
    std::uint8_t n_shards = 0;
    std::uint8_t flags = 0;        ///< kill-switch snapshot, kFlag* below
    std::uint64_t seed = 0;        ///< config().seed at record time
    std::int64_t end_time_ns = 0;  ///< timestamp of the last frame
  };

  /// What a flow's item stream hashed to (session::StreamDigest order:
  /// payload bytes, then seq, then kind — timestamps excluded, so the
  /// digest is interleaving-independent).
  struct Flow {
    std::string name;
    std::uint64_t digest = 0;
    std::uint64_t items = 0;
  };

  static constexpr std::uint8_t kFlagPooling = 1u << 0;
  static constexpr std::uint8_t kFlagBatching = 1u << 1;
  static constexpr std::uint8_t kFlagInline = 1u << 2;
  static constexpr std::uint8_t kFlagSessions = 1u << 3;

  Meta meta;
  std::vector<Flow> flows;
  std::vector<Frame> frames;

  [[nodiscard]] const Flow* find_flow(const std::string& name) const;

  /// Frame count per FrameKind (index by static_cast<int>(kind)).
  [[nodiscard]] std::vector<std::uint64_t> kind_counts() const;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Throws TraceError on bad magic, unknown version, or truncation.
  [[nodiscard]] static Trace decode(const std::uint8_t* data, std::size_t n);

  void save(const std::string& path) const;  ///< throws TraceError on I/O
  [[nodiscard]] static Trace load(const std::string& path);

  /// One-line human summary ("v1 2 shards 13482 frames ...") for tools.
  [[nodiscard]] std::string summary() const;
};

}  // namespace infopipe::replay
