#include "shard/shard_group.hpp"

#include <chrono>
#include <string>

#include "shard/channel.hpp"  // detail::kMsgRunFn

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace infopipe::shard {

namespace {

/// One run_on() request: the function plus the completion handshake. Shipped
/// as shared_ptr payload so an abandoned request (host thread died) cannot
/// dangle.
struct RunOnReq {
  std::function<void()> fn;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

/// Best-effort pinning of the calling kernel thread; a shard landing on its
/// own core is the point of the module, but a machine with fewer cores than
/// shards must still work (the channels and doorbells do not care).
void pin_to_core(int shard) {
#ifdef __linux__
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu <= 1) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(shard) % ncpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard;
#endif
}

/// (group, shard) hosted by the calling kernel thread; see on_shard_thread.
thread_local const ShardGroup* g_host_group = nullptr;
thread_local int g_host_shard = -1;

}  // namespace

bool ShardGroup::on_shard_thread(int shard) const noexcept {
  return g_host_group == this && g_host_shard == shard;
}

ShardGroup::ShardGroup(int n_shards, rt::RuntimeOptions options)
    : ShardGroup(n_shards, GroupOptions{std::move(options), {}, false}) {}

ShardGroup::ShardGroup(int n_shards, GroupOptions options)
    : manual_(options.manual),
      topo_(options.topology ? std::move(*options.topology)
                             : Topology::detect()) {
  if (n_shards < 1) throw rt::RuntimeError("ShardGroup needs >= 1 shard");
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int i = 0; i < n_shards; ++i) {
    auto s = std::make_unique<Shard>();
    std::unique_ptr<rt::Clock> clock =
        options.clock_factory ? options.clock_factory()
                              : std::make_unique<rt::RealClock>();
    s->rtm = std::make_unique<rt::Runtime>(std::move(clock), options.runtime);
    // Ring the shard's doorbell after every post_external, so work injected
    // into a parked run_service() loop resumes it.
    rt::Doorbell* bell = &s->bell;
    s->rtm->set_external_notifier([bell] { bell->ring(); });
    // The service thread: executes run_on() payloads on this shard.
    s->service_tid = s->rtm->spawn(
        "shard.service", rt::kPriorityControl,
        [](rt::Runtime&, rt::Message m) {
          if (m.type == detail::kMsgRunFn) {
            if (auto* p = m.get<std::shared_ptr<RunOnReq>>()) {
              const std::shared_ptr<RunOnReq> req = *p;
              try {
                req->fn();
              } catch (...) {
                req->error = std::current_exception();
              }
              {
                const std::lock_guard<std::mutex> lk(req->m);
                req->done = true;
              }
              req->cv.notify_all();
            }
          }
          return rt::CodeResult::kContinue;
        });
    // Slabs this shard's payload pool carves land on the node its kernel
    // thread is pinned to; items created on the shard are then node-local.
    s->rtm->pool().set_numa_node(node_of_shard(i));
    shards_.push_back(std::move(s));
  }
}

int ShardGroup::node_of_shard(int shard) const noexcept {
  if (topo_.flat()) return -1;
  // The topology's own probed CPU count models the pinning modulus — for a
  // detected topology it IS hardware_concurrency; for an injected one it
  // keeps tests deterministic regardless of the host machine.
  return topo_.node_of_shard(shard);
}

ShardGroup::~ShardGroup() {
  try {
    stop();
  } catch (...) {
    // A shard error surfacing during destruction has nowhere to go.
  }
}

void ShardGroup::launch() {
  if (manual_) return;
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    s.dead.store(false, std::memory_order_release);
    s.rtm->clear_halt();
    s.host = std::thread(&ShardGroup::host_loop, this, static_cast<int>(i));
  }
}

void ShardGroup::host_loop(int shard) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  pin_to_core(shard);
  g_host_group = this;
  g_host_shard = shard;
  try {
    s.rtm->run_service(s.bell);
  } catch (...) {
    const std::lock_guard<std::mutex> lk(err_mutex_);
    if (!s.error) s.error = std::current_exception();
  }
  s.dead.store(true, std::memory_order_release);
}

void ShardGroup::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  for (const auto& s : shards_) {
    s->rtm->request_halt();
    s->bell.ring();
  }
  for (const auto& s : shards_) {
    if (s->host.joinable()) s->host.join();
  }
  running_.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> lk(err_mutex_);
  for (const auto& s : shards_) {
    if (s->error) {
      const std::exception_ptr e = s->error;
      s->error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardGroup::step_until(rt::Time t) {
  std::vector<int> order(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  step_until(t, order);
}

void ShardGroup::step_until(rt::Time t, const std::vector<int>& order) {
  if (!manual_) {
    throw rt::RuntimeError("ShardGroup::step_until needs manual mode");
  }
  // The effective visit order: the caller's sequence (validated), then any
  // shard it left out, so every runtime still reaches `t` each round.
  std::vector<int> visit;
  visit.reserve(shards_.size() + order.size());
  for (const int s : order) {
    if (s < 0 || s >= static_cast<int>(shards_.size())) {
      throw rt::RuntimeError("ShardGroup::step_until: shard out of range");
    }
    visit.push_back(s);
  }
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    bool present = false;
    for (const int v : visit) present = present || v == s;
    if (!present) visit.push_back(s);
  }
  // Round-robin until quiescent: a shard's turn may post work into another
  // shard (channel wakeups, forwarded events, run_on payloads), so keep
  // cycling until one full round moves no code function anywhere.
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    std::uint64_t total = 0;
    for (const int v : visit) {
      shards_[static_cast<std::size_t>(v)]->rtm->run_until(t);
    }
    for (const auto& s : shards_) total += s->rtm->stats().dispatches;
    if (total == prev) break;
    prev = total;
  }
}

void ShardGroup::run_on(int shard, std::function<void()> fn) {
  Shard& s = *shards_.at(static_cast<std::size_t>(shard));
  if (manual_) {
    // One kernel thread by design: the caller IS the shard's host.
    fn();
    return;
  }
  if (!running_.load(std::memory_order_acquire)) {
    throw rt::RuntimeError("ShardGroup::run_on: group is not running");
  }
  auto req = std::make_shared<RunOnReq>();
  req->fn = std::move(fn);
  rt::Message m{detail::kMsgRunFn, rt::MsgClass::kControl};
  m.payload = req;
  s.rtm->post_external(s.service_tid, std::move(m));
  std::unique_lock<std::mutex> lk(req->m);
  while (!req->cv.wait_for(lk, std::chrono::milliseconds(50),
                           [&req] { return req->done; })) {
    if (s.dead.load(std::memory_order_acquire)) {
      throw rt::RuntimeError("ShardGroup::run_on: shard " +
                             std::to_string(shard) + " host thread died");
    }
  }
  if (req->error) std::rethrow_exception(req->error);
}

obs::MetricsSnapshot ShardGroup::metrics_snapshot() {
  obs::MetricsSnapshot out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    obs::MetricsSnapshot part;
    if (running_.load(std::memory_order_acquire) &&
        !s.dead.load(std::memory_order_acquire)) {
      part = call_on(static_cast<int>(i),
                     [&s] { return s.rtm->metrics().snapshot(); });
    } else {
      // Host thread parked/joined: direct read is race-free.
      part = s.rtm->metrics().snapshot();
    }
    if (part.when > out.when) out.when = part.when;
    const std::string prefix = "shard" + std::to_string(i) + ".";
    for (obs::MetricValue& mv : part.metrics) {
      mv.name = prefix + mv.name;
      out.metrics.push_back(std::move(mv));
    }
  }
  return out;
}

}  // namespace infopipe::shard
