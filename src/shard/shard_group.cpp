#include "shard/shard_group.hpp"

#include <chrono>
#include <string>

#include "core/config.hpp"
#include "replay/hooks.hpp"
#include "shard/channel.hpp"  // detail::kMsgRunFn

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace infopipe::shard {

namespace {

/// One run_on() request: the function plus the completion handshake. Shipped
/// as shared_ptr payload so an abandoned request (host thread died) cannot
/// dangle.
struct RunOnReq {
  std::function<void()> fn;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

/// Best-effort pinning of the calling kernel thread; a shard landing on its
/// own core is the point of the module, but a machine with fewer cores than
/// shards must still work (the channels and doorbells do not care).
void pin_to_core(int shard) {
#ifdef __linux__
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu <= 1) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(shard) % ncpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard;
#endif
}

/// (group, shard) hosted by the calling kernel thread; see on_shard_thread.
thread_local const ShardGroup* g_host_group = nullptr;
thread_local int g_host_shard = -1;

}  // namespace

bool ShardGroup::on_shard_thread(int shard) const noexcept {
  return g_host_group == this && g_host_shard == shard;
}

ShardGroup::ShardGroup(int n_shards, rt::RuntimeOptions options)
    : ShardGroup(n_shards, GroupOptions{std::move(options), {}, false}) {}

ShardGroup::ShardGroup(int n_shards, GroupOptions options)
    : manual_(options.manual),
      topo_(options.topology ? std::move(*options.topology)
                             : Topology::detect()),
      clock_factory_(std::move(options.clock_factory)),
      runtime_opts_(options.runtime) {
  if (n_shards < 1) throw rt::RuntimeError("ShardGroup needs >= 1 shard");
  if (n_shards > kMaxShards) {
    throw rt::RuntimeError("ShardGroup: more than kMaxShards shards");
  }
  slots_ = std::make_unique<std::unique_ptr<Shard>[]>(
      static_cast<std::size_t>(kMaxShards));
  for (int i = 0; i < n_shards; ++i) make_shard(i);
  n_shards_.store(n_shards, std::memory_order_release);
  live_.store(n_shards, std::memory_order_release);
}

ShardGroup::Shard& ShardGroup::make_shard(int i) {
  auto s = std::make_unique<Shard>();
  std::unique_ptr<rt::Clock> clock = clock_factory_
                                         ? clock_factory_()
                                         : std::make_unique<rt::RealClock>();
  s->rtm = std::make_unique<rt::Runtime>(std::move(clock), runtime_opts_);
  // Ring the shard's doorbell after every post_external, so work injected
  // into a parked run_service() loop resumes it.
  rt::Doorbell* bell = &s->bell;
  s->rtm->set_external_notifier([bell] { bell->ring(); });
  // The service thread: executes run_on() payloads on this shard.
  s->service_tid = s->rtm->spawn(
      "shard.service", rt::kPriorityControl,
      [](rt::Runtime&, rt::Message m) {
        if (m.type == detail::kMsgRunFn) {
          if (auto* p = m.get<std::shared_ptr<RunOnReq>>()) {
            const std::shared_ptr<RunOnReq> req = *p;
            try {
              req->fn();
            } catch (...) {
              req->error = std::current_exception();
            }
            {
              const std::lock_guard<std::mutex> lk(req->m);
              req->done = true;
            }
            req->cv.notify_all();
          }
        }
        return rt::CodeResult::kContinue;
      });
  // Slabs this shard's payload pool carves land on the node its kernel
  // thread is pinned to; items created on the shard are then node-local.
  s->rtm->pool().set_numa_node(node_of_shard(i));
  slots_[static_cast<std::size_t>(i)] = std::move(s);
  return *slots_[static_cast<std::size_t>(i)];
}

int ShardGroup::add_shard() {
  if (!config().elastic) {
    throw rt::RuntimeError(
        "ShardGroup::add_shard: INFOPIPE_ELASTIC=off pins the topology");
  }
  const std::lock_guard<std::mutex> lk(topo_mu_);
  const int id = n_shards_.load(std::memory_order_acquire);
  if (id >= kMaxShards) {
    throw rt::RuntimeError("ShardGroup::add_shard: kMaxShards reached");
  }
  Shard& s = make_shard(id);
  if (running_.load(std::memory_order_acquire)) {
    s.dead.store(false, std::memory_order_release);
    s.rtm->clear_halt();
    s.host = std::thread(&ShardGroup::host_loop, this, id);
  }
  // Publish AFTER the slot (and its host thread) is fully set up: a reader
  // that observes the new size finds a working shard behind it.
  n_shards_.store(id + 1, std::memory_order_release);
  const int live = live_.fetch_add(1, std::memory_order_acq_rel) + 1;
  replay::note_scale(s.rtm.get(), &s.rtm->pool(), id, /*added=*/true, live);
  return id;
}

void ShardGroup::retire_shard(int shard) {
  if (!config().elastic) {
    throw rt::RuntimeError(
        "ShardGroup::retire_shard: INFOPIPE_ELASTIC=off pins the topology");
  }
  const std::lock_guard<std::mutex> lk(topo_mu_);
  Shard& s = shard_at(shard);
  if (s.retired.load(std::memory_order_acquire)) {
    throw rt::RuntimeError("ShardGroup::retire_shard: shard " +
                           std::to_string(shard) + " already retired");
  }
  if (live_.load(std::memory_order_acquire) <= 1) {
    throw rt::RuntimeError(
        "ShardGroup::retire_shard: cannot retire the last live shard");
  }
  // Mark first: run_on() and admission stop routing here immediately; then
  // drain the host. The runtime object and its counters are retained (the
  // retired-channel rule extended to shards), so indices and any channels
  // still bound to it stay valid.
  s.retired.store(true, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_acq_rel);
  s.rtm->request_halt();
  s.bell.ring();
  if (s.host.joinable()) s.host.join();
  replay::note_scale(nullptr, nullptr, shard, /*added=*/false,
                     live_.load(std::memory_order_acquire));
}

bool ShardGroup::is_live(int shard) const noexcept {
  if (shard < 0 || shard >= size()) return false;
  return !slots_[static_cast<std::size_t>(shard)]->retired.load(
      std::memory_order_acquire);
}

std::vector<int> ShardGroup::live_shards() const {
  std::vector<int> out;
  const int n = size();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (is_live(i)) out.push_back(i);
  }
  return out;
}

int ShardGroup::node_of_shard(int shard) const noexcept {
  if (topo_.flat()) return -1;
  // The topology's own probed CPU count models the pinning modulus — for a
  // detected topology it IS hardware_concurrency; for an injected one it
  // keeps tests deterministic regardless of the host machine.
  return topo_.node_of_shard(shard);
}

ShardGroup::~ShardGroup() {
  try {
    stop();
  } catch (...) {
    // A shard error surfacing during destruction has nowhere to go.
  }
}

void ShardGroup::launch() {
  if (manual_) return;
  const std::lock_guard<std::mutex> lk(topo_mu_);
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  const int n = size();
  for (int i = 0; i < n; ++i) {
    Shard& s = *slots_[static_cast<std::size_t>(i)];
    if (s.retired.load(std::memory_order_acquire)) continue;
    s.dead.store(false, std::memory_order_release);
    s.rtm->clear_halt();
    s.host = std::thread(&ShardGroup::host_loop, this, i);
  }
}

void ShardGroup::host_loop(int shard) {
  Shard& s = *slots_[static_cast<std::size_t>(shard)];
  pin_to_core(shard);
  g_host_group = this;
  g_host_shard = shard;
  try {
    s.rtm->run_service(s.bell);
  } catch (...) {
    const std::lock_guard<std::mutex> lk(err_mutex_);
    if (!s.error) s.error = std::current_exception();
  }
  s.dead.store(true, std::memory_order_release);
}

void ShardGroup::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lk(topo_mu_);
  const int n = size();
  for (int i = 0; i < n; ++i) {
    Shard& s = *slots_[static_cast<std::size_t>(i)];
    s.rtm->request_halt();
    s.bell.ring();
  }
  for (int i = 0; i < n; ++i) {
    Shard& s = *slots_[static_cast<std::size_t>(i)];
    if (s.host.joinable()) s.host.join();
  }
  running_.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> elk(err_mutex_);
  for (int i = 0; i < n; ++i) {
    Shard& s = *slots_[static_cast<std::size_t>(i)];
    if (s.error) {
      const std::exception_ptr e = s.error;
      s.error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardGroup::step_until(rt::Time t) {
  step_until(t, live_shards());
}

void ShardGroup::step_until(rt::Time t, const std::vector<int>& order) {
  if (!manual_) {
    throw rt::RuntimeError("ShardGroup::step_until needs manual mode");
  }
  const int n = size();
  // The effective visit order: the caller's sequence (validated; retired
  // shards are silently skipped — a recorded order may predate their
  // retirement), then any live shard it left out, so every live runtime
  // still reaches `t` each round.
  std::vector<int> visit;
  visit.reserve(static_cast<std::size_t>(n) + order.size());
  for (const int s : order) {
    if (s < 0 || s >= n) {
      throw rt::RuntimeError("ShardGroup::step_until: shard out of range");
    }
    if (!is_live(s)) continue;
    visit.push_back(s);
  }
  for (int s = 0; s < n; ++s) {
    if (!is_live(s)) continue;
    bool present = false;
    for (const int v : visit) present = present || v == s;
    if (!present) visit.push_back(s);
  }
  // Round-robin until quiescent: a shard's turn may post work into another
  // shard (channel wakeups, forwarded events, run_on payloads), so keep
  // cycling until one full round moves no code function anywhere. Retired
  // shards are skipped; their dispatch counters are frozen, so including
  // them in the sum is harmless.
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    std::uint64_t total = 0;
    for (const int v : visit) {
      slots_[static_cast<std::size_t>(v)]->rtm->run_until(t);
    }
    for (int s = 0; s < n; ++s) {
      total += slots_[static_cast<std::size_t>(s)]->rtm->stats().dispatches;
    }
    if (total == prev) break;
    prev = total;
  }
}

void ShardGroup::run_on(int shard, std::function<void()> fn) {
  Shard& s = shard_at(shard);
  if (s.retired.load(std::memory_order_acquire)) {
    throw rt::RuntimeError("ShardGroup::run_on: shard " +
                           std::to_string(shard) + " is retired");
  }
  if (manual_) {
    // One kernel thread by design: the caller IS the shard's host.
    fn();
    return;
  }
  if (!running_.load(std::memory_order_acquire)) {
    throw rt::RuntimeError("ShardGroup::run_on: group is not running");
  }
  auto req = std::make_shared<RunOnReq>();
  req->fn = std::move(fn);
  rt::Message m{detail::kMsgRunFn, rt::MsgClass::kControl};
  m.payload = req;
  s.rtm->post_external(s.service_tid, std::move(m));
  std::unique_lock<std::mutex> lk(req->m);
  while (!req->cv.wait_for(lk, std::chrono::milliseconds(50),
                           [&req] { return req->done; })) {
    if (s.dead.load(std::memory_order_acquire)) {
      throw rt::RuntimeError("ShardGroup::run_on: shard " +
                             std::to_string(shard) + " host thread died");
    }
  }
  if (req->error) std::rethrow_exception(req->error);
}

obs::MetricsSnapshot ShardGroup::metrics_snapshot() {
  obs::MetricsSnapshot out;
  const int n = size();
  for (int i = 0; i < n; ++i) {
    Shard& s = *slots_[static_cast<std::size_t>(i)];
    obs::MetricsSnapshot part;
    if (running_.load(std::memory_order_acquire) &&
        !s.retired.load(std::memory_order_acquire) &&
        !s.dead.load(std::memory_order_acquire)) {
      part = call_on(i, [&s] { return s.rtm->metrics().snapshot(); });
    } else {
      // Host thread parked/joined (including retired shards, whose final
      // counters remain readable): direct read is race-free.
      part = s.rtm->metrics().snapshot();
    }
    if (part.when > out.when) out.when = part.when;
    const std::string prefix = "shard" + std::to_string(i) + ".";
    for (obs::MetricValue& mv : part.metrics) {
      mv.name = prefix + mv.name;
      out.metrics.push_back(std::move(mv));
    }
  }
  return out;
}

}  // namespace infopipe::shard
