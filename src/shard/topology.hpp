// Minimal NUMA/topology probe (ip_shard).
//
// The rebalance policy prefers migration targets on the same NUMA node as
// the overloaded shard: moving a section across nodes invalidates its cache
// footprint and turns every cross-cut item into a remote-memory hop, so a
// same-node target at slightly higher load usually beats a cross-node one at
// the minimum. This probe answers exactly one question — which node does
// each CPU (and hence each pinned shard) live on — reading the sysfs NUMA
// layout on Linux and degrading to a flat single-node answer everywhere
// else. No libnuma dependency; parsing "0-3,8,10-11" cpulists is all that
// is needed.
#pragma once

#include <string>
#include <vector>

namespace infopipe::shard {

class Topology {
 public:
  /// Flat topology: every CPU on node 0 (the fallback, and the correct
  /// answer on non-NUMA machines).
  Topology() = default;

  /// Injected mapping for tests and for policy experiments: node_of_cpu[i]
  /// is the NUMA node of CPU i.
  explicit Topology(std::vector<int> node_of_cpu)
      : node_of_cpu_(std::move(node_of_cpu)) {}

  /// Probes /sys/devices/system/node/node<i>/cpulist. Returns the flat
  /// topology when sysfs is unavailable (non-Linux, containers without
  /// /sys).
  [[nodiscard]] static Topology detect();

  /// Number of NUMA nodes (>= 1; 1 for the flat topology).
  [[nodiscard]] int nodes() const;

  /// Node of a CPU; 0 for CPUs beyond the probed set (hotplug, flat).
  [[nodiscard]] int node_of_cpu(int cpu) const;

  /// Node of a shard, given ShardGroup's pinning rule (host_loop pins shard
  /// i to core `i % hardware_concurrency`). `n_cpus` defaults to the probed
  /// CPU count; pass std::thread::hardware_concurrency() explicitly when the
  /// probe was injected.
  [[nodiscard]] int node_of_shard(int shard, int n_cpus = 0) const;

  /// True when every CPU maps to one node (no placement preference exists).
  [[nodiscard]] bool flat() const { return nodes() <= 1; }

  [[nodiscard]] std::string describe() const;

  /// Parses a sysfs cpulist ("0-3,8,10-11") into CPU numbers. Exposed for
  /// tests; malformed chunks are skipped rather than thrown on (sysfs is
  /// not adversarial, but a probe must never take the platform down).
  [[nodiscard]] static std::vector<int> parse_cpulist(const std::string& s);

 private:
  /// Empty = flat: every lookup answers node 0.
  std::vector<int> node_of_cpu_;
};

}  // namespace infopipe::shard
