#include "shard/sharded_realization.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

namespace infopipe::shard {

ShardedRealization::ShardedRealization(ShardGroup& group, const Pipeline& p)
    : group_(&group), pipe_(&p), plan_(infopipe::plan(p)) {
  // Buffers whose policy a channel cannot reproduce must never be cut:
  // kDropOldest would race the consumer for the head slot.
  std::vector<std::pair<const Component*, const Component*>> colo;
  for (Component* c : p.components()) {
    if (auto* b = dynamic_cast<Buffer*>(c)) {
      if (b->full_policy() == FullPolicy::kDropOldest) {
        const Edge* in = p.edge_into(*b, 0);
        const Edge* out = p.edge_from(*b, 0);
        if (in != nullptr && out != nullptr) colo.emplace_back(in->from, out->to);
      }
    }
  }
  part_ = infopipe::partition(plan_, group.size(), colo);

  // Component -> shard. Section members and drivers come straight from the
  // partition; boundary components (not cut) inherit the shard of any
  // mapped neighbour (all neighbours agree, else the boundary were a cut).
  std::map<const Component*, std::size_t> section_of;
  for (std::size_t i = 0; i < plan_.sections.size(); ++i) {
    const Plan::Section& sec = plan_.sections[i];
    section_of.emplace(sec.driver, i);
    for (const Plan::Hosted& h : sec.members) section_of.emplace(h.comp, i);
  }
  std::map<const Component*, int> shard_of_comp;
  for (const auto& [c, sec] : section_of) {
    shard_of_comp[c] = part_.shard_of_section[sec];
  }
  std::map<const Component*, std::size_t> cut_of;  // cut buffer -> cut index
  for (std::size_t i = 0; i < part_.cuts.size(); ++i) {
    cut_of[part_.cuts[i].buffer] = i;
  }
  for (const Edge& e : p.edges()) {
    const auto fu = shard_of_comp.find(e.from);
    const auto tu = shard_of_comp.find(e.to);
    if (fu != shard_of_comp.end() && tu == shard_of_comp.end() &&
        cut_of.find(e.to) == cut_of.end()) {
      shard_of_comp[e.to] = fu->second;
    } else if (tu != shard_of_comp.end() && fu == shard_of_comp.end() &&
               cut_of.find(e.from) == cut_of.end()) {
      shard_of_comp[e.from] = tu->second;
    }
  }

  // One channel + endpoint pair per cut, semantics copied from the buffer.
  for (const Partition::Cut& cut : part_.cuts) {
    auto* b = dynamic_cast<Buffer*>(cut.buffer);
    if (b == nullptr) {
      throw CompositionError("partition cut at '" + cut.buffer->name() +
                             "' which is not a buffer");
    }
    const int up = part_.shard_of_section[cut.upstream_section];
    const int down = part_.shard_of_section[cut.downstream_section];
    auto ch = std::make_unique<ShardChannel>(b->name(), b->capacity(),
                                             b->full_policy(),
                                             b->empty_policy());
    ch->bind_producer(group.runtime(up), up);
    ch->bind_consumer(group.runtime(down), down);
    Typespec spec;
    if (const Edge* out_e = p.edge_from(*b, 0)) {
      const auto it = plan_.edge_spec.find(out_e);
      if (it != plan_.edge_spec.end()) spec = it->second;
    }
    sinks_.push_back(std::make_unique<ChannelSink>(*ch));
    sources_.push_back(std::make_unique<ChannelSource>(*ch, std::move(spec)));
    channels_.push_back(std::move(ch));
  }

  // Per-shard sub-pipelines: every edge lands on exactly one shard; edges
  // touching a cut buffer are rerouted to the channel endpoints.
  sub_pipes_.resize(static_cast<std::size_t>(group.size()));
  for (auto& sp : sub_pipes_) sp = std::make_unique<Pipeline>();
  for (const Edge& e : p.edges()) {
    Component* from = e.from;
    Component* to = e.to;
    int s = 0;
    if (const auto c = cut_of.find(e.to); c != cut_of.end()) {
      to = sinks_[c->second].get();
      s = channels_[c->second]->from_shard();
    } else if (const auto c2 = cut_of.find(e.from); c2 != cut_of.end()) {
      from = sources_[c2->second].get();
      s = channels_[c2->second]->to_shard();
    } else if (const auto f = shard_of_comp.find(e.from);
               f != shard_of_comp.end()) {
      s = f->second;
    } else {
      s = shard_of_comp.at(e.to);
    }
    sub_pipes_[static_cast<std::size_t>(s)]->connect(*from, e.out_port, *to,
                                                     e.in_port);
  }
  // Carry user preferences over (cut buffers excepted: their typespec was
  // already resolved in the full plan and travels via the source's offer).
  for (Component* c : p.components()) {
    const auto s = shard_of_comp.find(c);
    if (s == shard_of_comp.end()) continue;
    for (int port = 0; port < c->in_port_count(); ++port) {
      if (const Typespec* r = p.restriction(*c, port)) {
        sub_pipes_[static_cast<std::size_t>(s->second)]->restrict(*c, port, *r);
      }
    }
  }

  // Realize each non-empty shard on its own kernel thread, and wire the
  // cross-shard control-event forwarding.
  group.launch();
  reals_.resize(static_cast<std::size_t>(group.size()));
  try {
    for (int s = 0; s < group.size(); ++s) {
      Pipeline& sp = *sub_pipes_[static_cast<std::size_t>(s)];
      if (sp.components().empty()) continue;
      group.run_on(s, [this, s, &sp] {
        auto r = std::make_unique<Realization>(group_->runtime(s), sp);
        r->set_event_listener(
            [this, s](const Event& e) { forward_event(s, e); });
        reals_[static_cast<std::size_t>(s)] = std::move(r);
      });
    }
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      const int cs = channels_[i]->to_shard();
      group.run_on(cs, [this, i, cs] {
        ShardChannel* ch = channels_[i].get();
        const auto id = group_->runtime(cs).metrics().add_collector(
            [ch](obs::MetricsSnapshot& out) {
              StatsSnapshot tmp;
              tmp.channels.push_back(ch->stats());
              publish(tmp, out);
            });
        collectors_.emplace_back(cs, id);
      });
    }
  } catch (...) {
    teardown();
    throw;
  }
}

ShardedRealization::~ShardedRealization() { teardown(); }

void ShardedRealization::teardown() noexcept {
  // Channel collectors first (they capture channel pointers), then the
  // realizations — each on its own shard thread so nothing races the
  // scheduler there. If a shard thread is gone, the runtime is parked and a
  // direct call is race-free.
  for (const auto& [cs, id] : collectors_) {
    const int shard = cs;
    const auto coll = id;
    const auto remove = [this, shard, coll] {
      group_->runtime(shard).metrics().remove_collector(coll);
    };
    try {
      if (group_->running()) {
        group_->run_on(shard, remove);
      } else {
        remove();
      }
    } catch (...) {
      try {
        remove();
      } catch (...) {
      }
    }
  }
  collectors_.clear();
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    const auto destroy = [this, s] { reals_[s].reset(); };
    try {
      if (group_->running()) {
        group_->run_on(static_cast<int>(s), destroy);
      } else {
        destroy();
      }
    } catch (...) {
      try {
        destroy();
      } catch (...) {
      }
    }
  }
}

void ShardedRealization::forward_event(int from_shard, const Event& e) {
  // Runs on the originating shard's kernel thread. post_event_external
  // enqueues without invoking the remote listener, so forwarding cannot
  // loop.
  for (std::size_t t = 0; t < reals_.size(); ++t) {
    if (static_cast<int>(t) == from_shard || !reals_[t]) continue;
    reals_[t]->post_event_external(e);
  }
  if (listener_) listener_(e);
}

void ShardedRealization::start() {
  post_event(Event{kEventStart});
  if (!group_->running()) return;
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (reals_[s]) group_->run_on(static_cast<int>(s), [] {});
  }
}

void ShardedRealization::post_event(const Event& e) {
  for (const auto& r : reals_) {
    if (r) r->post_event_external(e);
  }
  if (listener_) listener_(e);
}

bool ShardedRealization::finished() {
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    Realization* r = reals_[s].get();
    const bool f =
        group_->running()
            ? group_->call_on(static_cast<int>(s), [r] { return r->finished(); })
            : r->finished();
    if (!f) return false;
  }
  return true;
}

bool ShardedRealization::wait_finished(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!finished()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ShardedRealization::Located ShardedRealization::find_component(
    std::string_view name) {
  // reals_ and each realization's component set are immutable after
  // construction, so resolving a name from any thread is safe; SAMPLING the
  // found component's state is the caller's problem (owning shard only).
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    if (Component* c = reals_[s]->find_component(name)) {
      return Located{c, reals_[s].get(), static_cast<int>(s)};
    }
  }
  return Located{};
}

ShardChannel* ShardedRealization::find_channel(std::string_view name) {
  for (const auto& ch : channels_) {
    if (ch->name() == name) return ch.get();
  }
  return nullptr;
}

StatsSnapshot ShardedRealization::stats_snapshot() {
  StatsSnapshot out;
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    Realization* r = reals_[s].get();
    StatsSnapshot part =
        group_->running()
            ? group_->call_on(static_cast<int>(s),
                              [r] { return r->stats_snapshot(); })
            : r->stats_snapshot();
    if (part.when > out.when) out.when = part.when;
    for (DriverStats& d : part.drivers) out.drivers.push_back(std::move(d));
    for (BufferStats& b : part.buffers) out.buffers.push_back(std::move(b));
  }
  for (const auto& ch : channels_) out.channels.push_back(ch->stats());
  return out;
}

obs::MetricsSnapshot ShardedRealization::metrics_snapshot() {
  return group_->metrics_snapshot();
}

std::string ShardedRealization::describe() const {
  std::string out = "sharded over " + std::to_string(group_->size()) +
                    " shards, " + std::to_string(channels_.size()) +
                    " cross-shard channel" +
                    (channels_.size() == 1 ? "" : "s") + "\n";
  for (const auto& ch : channels_) {
    out += "  channel '" + ch->name() + "': shard " +
           std::to_string(ch->from_shard()) + " -> shard " +
           std::to_string(ch->to_shard()) + ", capacity " +
           std::to_string(ch->capacity()) + "\n";
  }
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    out += "shard " + std::to_string(s) + ":";
    if (!reals_[s]) {
      out += " (empty)\n";
      continue;
    }
    out += "\n" + reals_[s]->describe();
  }
  return out;
}

}  // namespace infopipe::shard
