#include "shard/sharded_realization.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>
#include <thread>
#include <utility>

#include "replay/hooks.hpp"

namespace infopipe::shard {

ShardedRealization::ShardedRealization(ShardGroup& group, const Pipeline& p)
    : group_(&group), pipe_(&p), plan_(infopipe::plan(p)) {
  // Buffers whose policy a channel cannot reproduce must never be cut:
  // kDropOldest would race the consumer for the head slot.
  std::vector<std::pair<const Component*, const Component*>> colo;
  for (Component* c : p.components()) {
    if (auto* b = dynamic_cast<Buffer*>(c)) {
      if (b->full_policy() == FullPolicy::kDropOldest) {
        const Edge* in = p.edge_into(*b, 0);
        const Edge* out = p.edge_from(*b, 0);
        if (in != nullptr && out != nullptr) colo.emplace_back(in->from, out->to);
      }
    }
  }
  part_ = infopipe::partition(plan_, group.size(), colo);
  assign_ = part_.shard_of_section;

  for (std::size_t i = 0; i < plan_.sections.size(); ++i) {
    const Plan::Section& sec = plan_.sections[i];
    section_of_.emplace(sec.driver, i);
    for (const Plan::Hosted& h : sec.members) section_of_.emplace(h.comp, i);
  }

  // One channel + endpoint pair per cut, semantics copied from the buffer.
  for (const Partition::Cut& cut : part_.cuts) {
    auto* b = dynamic_cast<Buffer*>(cut.buffer);
    if (b == nullptr) {
      throw CompositionError("partition cut at '" + cut.buffer->name() +
                             "' which is not a buffer");
    }
    auto link = std::make_unique<CutLink>();
    link->buffer = cut.buffer;
    link->up_sec = cut.upstream_section;
    link->down_sec = cut.downstream_section;
    const int up = assign_[cut.upstream_section];
    const int down = assign_[cut.downstream_section];
    // The ring lives on the consumer shard's NUMA node: the consumer is the
    // side that touches every slot last (the pop move) and then walks the
    // payload, so its node is where the slot array earns locality.
    link->chan = std::make_unique<ShardChannel>(
        b->name(), b->capacity(), b->full_policy(), b->empty_policy(),
        group.node_of_shard(down));
    link->chan->bind_producer(group.runtime(up), up);
    link->chan->bind_consumer(group.runtime(down), down);
    link->sink = std::make_unique<ChannelSink>(*link->chan);
    link->source =
        std::make_unique<ChannelSource>(*link->chan, cut_spec(*cut.buffer));
    cuts_.push_back(std::move(link));
  }

  sub_pipes_.resize(static_cast<std::size_t>(group.size()));
  std::vector<int> all_shards;
  for (int s = 0; s < group.size(); ++s) all_shards.push_back(s);
  build_sub_pipes(all_shards);

  // Realize each non-empty shard on its own kernel thread, and wire the
  // cross-shard control-event forwarding.
  group.launch();
  reals_.resize(static_cast<std::size_t>(group.size()));
  try {
    for (int s = 0; s < group.size(); ++s) realize_shard(s);
    for (const auto& link : cuts_) add_cut_collector(*link);
  } catch (...) {
    teardown();
    throw;
  }
}

ShardedRealization::~ShardedRealization() { teardown(); }

// ============================ construction helpers ==========================

std::map<const Component*, int> ShardedRealization::compute_shard_of_comp()
    const {
  std::map<const Component*, int> shard_of_comp;
  for (const auto& [c, sec] : section_of_) shard_of_comp[c] = assign_[sec];
  const std::map<const Component*, std::size_t> cut_of = live_cut_of();
  for (const Edge& e : pipe_->edges()) {
    const auto fu = shard_of_comp.find(e.from);
    const auto tu = shard_of_comp.find(e.to);
    if (fu != shard_of_comp.end() && tu == shard_of_comp.end() &&
        cut_of.find(e.to) == cut_of.end()) {
      shard_of_comp[e.to] = fu->second;
    } else if (tu != shard_of_comp.end() && fu == shard_of_comp.end() &&
               cut_of.find(e.from) == cut_of.end()) {
      shard_of_comp[e.from] = tu->second;
    }
  }
  return shard_of_comp;
}

std::map<const Component*, std::size_t> ShardedRealization::live_cut_of()
    const {
  std::map<const Component*, std::size_t> cut_of;
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    if (!cuts_[i]->retired) cut_of[cuts_[i]->buffer] = i;
  }
  return cut_of;
}

Typespec ShardedRealization::cut_spec(const Component& buffer) const {
  if (const Edge* out_e = pipe_->edge_from(buffer, 0)) {
    const auto it = plan_.edge_spec.find(out_e);
    if (it != plan_.edge_spec.end()) return it->second;
  }
  return Typespec{};
}

void ShardedRealization::build_sub_pipes(const std::vector<int>& shards) {
  const std::set<int> wanted(shards.begin(), shards.end());
  for (int s : wanted) {
    sub_pipes_[static_cast<std::size_t>(s)] = std::make_unique<Pipeline>();
  }
  const std::map<const Component*, int> shard_of_comp = compute_shard_of_comp();
  const std::map<const Component*, std::size_t> cut_of = live_cut_of();
  // Every edge lands on exactly one shard; edges touching a cut buffer are
  // rerouted to the channel endpoints.
  for (const Edge& e : pipe_->edges()) {
    Component* from = e.from;
    Component* to = e.to;
    int s = 0;
    if (const auto c = cut_of.find(e.to); c != cut_of.end()) {
      to = cuts_[c->second]->sink.get();
      s = cuts_[c->second]->chan->from_shard();
    } else if (const auto c2 = cut_of.find(e.from); c2 != cut_of.end()) {
      from = cuts_[c2->second]->source.get();
      s = cuts_[c2->second]->chan->to_shard();
    } else if (const auto f = shard_of_comp.find(e.from);
               f != shard_of_comp.end()) {
      s = f->second;
    } else {
      s = shard_of_comp.at(e.to);
    }
    if (wanted.count(s) == 0) continue;
    sub_pipes_[static_cast<std::size_t>(s)]->connect(*from, e.out_port, *to,
                                                     e.in_port);
  }
  // Carry user preferences over (cut buffers excepted: their typespec was
  // already resolved in the full plan and travels via the source's offer).
  for (Component* c : pipe_->components()) {
    const auto s = shard_of_comp.find(c);
    if (s == shard_of_comp.end() || wanted.count(s->second) == 0) continue;
    for (int port = 0; port < c->in_port_count(); ++port) {
      if (const Typespec* r = pipe_->restriction(*c, port)) {
        sub_pipes_[static_cast<std::size_t>(s->second)]->restrict(*c, port,
                                                                  *r);
      }
    }
  }
}

void ShardedRealization::run_on_shard(int shard,
                                      const std::function<void()>& fn) {
  if (group_->running()) {
    group_->run_on(shard, fn);
  } else {
    fn();
  }
}

void ShardedRealization::realize_shard(int shard) {
  Pipeline& sp = *sub_pipes_[static_cast<std::size_t>(shard)];
  if (sp.components().empty()) return;
  run_on_shard(shard, [this, shard, &sp] {
    auto r = std::make_unique<Realization>(group_->runtime(shard), sp);
    r->set_event_listener(
        [this, shard](const Event& e) { forward_event(shard, e); });
    const std::lock_guard<std::mutex> lk(ev_mu_);
    reals_[static_cast<std::size_t>(shard)] = std::move(r);
  });
}

void ShardedRealization::add_cut_collector(CutLink& link) {
  const int cs = link.chan->to_shard();
  ShardChannel* ch = link.chan.get();
  run_on_shard(cs, [this, &link, ch, cs] {
    link.collector = group_->runtime(cs).metrics().add_collector(
        [ch](obs::MetricsSnapshot& out) {
          StatsSnapshot tmp;
          tmp.channels.push_back(ch->stats());
          publish(tmp, out);
        });
    link.collector_shard = cs;
  });
}

void ShardedRealization::remove_cut_collector(CutLink& link) noexcept {
  if (link.collector_shard < 0) return;
  const int shard = link.collector_shard;
  const auto coll = link.collector;
  const auto remove = [this, shard, coll] {
    group_->runtime(shard).metrics().remove_collector(coll);
  };
  try {
    run_on_shard(shard, remove);
  } catch (...) {
    try {
      remove();
    } catch (...) {
    }
  }
  link.collector_shard = -1;
  link.collector = 0;
}

void ShardedRealization::teardown() noexcept {
  // Serialize against a concurrent migration; after this, nothing else
  // mutates the structure.
  std::unique_lock<std::mutex> op_lk(op_mu_, std::defer_lock);
  try {
    op_lk.lock();
  } catch (...) {
  }
  // Channel collectors first (they capture channel pointers), then the
  // realizations — each on its own shard thread so nothing races the
  // scheduler there. If a shard thread is gone, the runtime is parked and a
  // direct call is race-free.
  for (const auto& link : cuts_) remove_cut_collector(*link);
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    const auto destroy = [this, s] { reals_[s].reset(); };
    try {
      run_on_shard(static_cast<int>(s), destroy);
    } catch (...) {
      try {
        destroy();
      } catch (...) {
      }
    }
  }
}

// ============================ control events ================================

void ShardedRealization::record_started(const Event& e) {
  // Caller holds ev_mu_.
  if (e.type == kEventStart) {
    started_ = true;
  } else if (e.type == kEventStop || e.type == kEventShutdown) {
    started_ = false;
  }
}

void ShardedRealization::forward_event(int from_shard, const Event& e) {
  // Runs on the originating shard's kernel thread. post_event_external
  // enqueues without invoking the remote listener, so forwarding cannot
  // loop.
  std::function<void(const Event&)> listener;
  {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    record_started(e);
    for (std::size_t t = 0; t < reals_.size(); ++t) {
      if (static_cast<int>(t) == from_shard) continue;
      if (reals_[t]) {
        reals_[t]->post_event_external(e);
      } else if (migrating_) {
        pending_.push_back(PendingEvent{static_cast<int>(t), nullptr, e});
      }
    }
    listener = listener_;
  }
  if (listener) listener(e);
}

void ShardedRealization::post_event(const Event& e) {
  std::function<void(const Event&)> listener;
  {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    record_started(e);
    for (std::size_t t = 0; t < reals_.size(); ++t) {
      if (reals_[t]) {
        reals_[t]->post_event_external(e);
      } else if (migrating_) {
        pending_.push_back(PendingEvent{static_cast<int>(t), nullptr, e});
      }
    }
    listener = listener_;
  }
  if (listener) listener(e);
}

void ShardedRealization::post_event_to_component(Component& c,
                                                 const Event& e) {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  Realization* real = nullptr;
  if (const auto it = section_of_.find(&c); it != section_of_.end()) {
    real = reals_[static_cast<std::size_t>(assign_[it->second])].get();
  } else {
    for (const auto& r : reals_) {
      if (r && r->hosts(c)) {
        real = r.get();
        break;
      }
    }
  }
  if (real != nullptr) {
    real->post_event_to_external(c, e);
  } else if (migrating_) {
    pending_.push_back(PendingEvent{-1, &c, e});
  }
  // Else: no shard hosts the component (e.g. it was never realized); drop,
  // mirroring rt::Runtime::send to a dead thread.
}

void ShardedRealization::start() {
  post_event(Event{kEventStart});
  if (!group_->running()) return;
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    bool live = false;
    {
      const std::lock_guard<std::mutex> lk(ev_mu_);
      live = reals_[s] != nullptr;
    }
    if (live) group_->run_on(static_cast<int>(s), [] {});
  }
}

// ============================ introspection =================================

bool ShardedRealization::shard_finished(int shard) {
  Realization* r = nullptr;
  {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    // A shard the group grew after realize time (sync_topology not yet
    // called) hosts nothing and is trivially done.
    if (static_cast<std::size_t>(shard) >= reals_.size()) return true;
    r = reals_[static_cast<std::size_t>(shard)].get();
  }
  if (r == nullptr) return true;
  return group_->running()
             ? group_->call_on(shard, [r] { return r->finished(); })
             : r->finished();
}

bool ShardedRealization::finished() {
  const std::lock_guard<std::mutex> lk(op_mu_);
  for (int s = 0; s < group_->size(); ++s) {
    if (!shard_finished(s)) return false;
  }
  return true;
}

bool ShardedRealization::wait_finished(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!finished()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ShardedRealization::Located ShardedRealization::find_component(
    std::string_view name) {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    if (!reals_[s]) continue;
    if (Component* c = reals_[s]->find_component(name)) {
      return Located{c, reals_[s].get(), static_cast<int>(s)};
    }
  }
  return Located{};
}

ShardChannel* ShardedRealization::find_channel(std::string_view name) {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  ShardChannel* retired = nullptr;
  for (const auto& link : cuts_) {
    if (link->chan->name() != name) continue;
    if (!link->retired) return link->chan.get();
    retired = link->chan.get();
  }
  return retired;
}

ShardChannel* ShardedRealization::find_live_channel(std::string_view name) {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  for (const auto& link : cuts_) {
    if (!link->retired && link->chan->name() == name) return link->chan.get();
  }
  return nullptr;
}

std::vector<ShardChannel*> ShardedRealization::live_channels() {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  std::vector<ShardChannel*> out;
  for (const auto& link : cuts_) {
    if (!link->retired) out.push_back(link->chan.get());
  }
  return out;
}

int ShardedRealization::shard_of_section(std::size_t section) {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  return assign_.at(section);
}

PlanInfo ShardedRealization::plan_info() const {
  // plan_ is set once in the constructor and never mutated (migrations move
  // sections between shards without re-planning), so no lock is needed and
  // the result is the same immutable decision set on every call.
  return plan_info_of(*pipe_, plan_,
                      static_cast<std::size_t>(plan_.total_threads()));
}

StatsSnapshot ShardedRealization::stats_snapshot() {
  const std::lock_guard<std::mutex> lk(op_mu_);
  StatsSnapshot out;
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    Realization* r = nullptr;
    {
      const std::lock_guard<std::mutex> ev_lk(ev_mu_);
      r = reals_[s].get();
    }
    if (r == nullptr) continue;
    StatsSnapshot part =
        group_->running()
            ? group_->call_on(static_cast<int>(s),
                              [r] { return r->stats_snapshot(); })
            : r->stats_snapshot();
    if (part.when > out.when) out.when = part.when;
    for (DriverStats& d : part.drivers) out.drivers.push_back(std::move(d));
    for (BufferStats& b : part.buffers) out.buffers.push_back(std::move(b));
  }
  for (ShardChannel* ch : live_channels()) out.channels.push_back(ch->stats());
  return out;
}

obs::MetricsSnapshot ShardedRealization::metrics_snapshot() {
  const std::lock_guard<std::mutex> lk(op_mu_);
  return group_->metrics_snapshot();
}

std::optional<double> ShardedRealization::try_sample_component(
    std::string_view name, const std::function<double(Component&)>& fn) {
  const std::unique_lock<std::mutex> lk(op_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return std::nullopt;  // structural op in flight
  Component* comp = nullptr;
  Realization* real = nullptr;
  int shard = -1;
  {
    const std::lock_guard<std::mutex> ev_lk(ev_mu_);
    for (std::size_t s = 0; s < reals_.size(); ++s) {
      if (!reals_[s]) continue;
      if (Component* c = reals_[s]->find_component(name)) {
        comp = c;
        real = reals_[s].get();
        shard = static_cast<int>(s);
        break;
      }
    }
  }
  (void)real;
  if (comp == nullptr) return std::nullopt;
  if (!group_->running() || group_->on_shard_thread(shard)) {
    return fn(*comp);
  }
  return group_->call_on(shard, [&fn, comp] { return fn(*comp); });
}

std::string ShardedRealization::describe() const {
  const std::lock_guard<std::mutex> lk(ev_mu_);
  std::size_t live = 0;
  for (const auto& link : cuts_) live += link->retired ? 0 : 1;
  std::string out = "sharded over " + std::to_string(group_->size()) +
                    " shards, " + std::to_string(live) +
                    " cross-shard channel" + (live == 1 ? "" : "s") + "\n";
  for (const auto& link : cuts_) {
    if (link->retired) continue;
    const ShardChannel& ch = *link->chan;
    out += "  channel '" + ch.name() + "': shard " +
           std::to_string(ch.from_shard()) + " -> shard " +
           std::to_string(ch.to_shard()) + ", capacity " +
           std::to_string(ch.capacity()) + "\n";
  }
  for (std::size_t s = 0; s < reals_.size(); ++s) {
    out += "shard " + std::to_string(s) + ":";
    if (!reals_[s]) {
      out += " (empty)\n";
      continue;
    }
    out += "\n" + reals_[s]->describe();
  }
  return out;
}

// ============================ elastic topology ==============================

void ShardedRealization::adopt_new_shards_locked() {
  // Caller holds op_mu_. Growth only: a retired shard's slot (and whatever
  // realization state it last held) is retained like a retired channel.
  const auto n = static_cast<std::size_t>(group_->size());
  if (sub_pipes_.size() < n) sub_pipes_.resize(n);
  const std::lock_guard<std::mutex> lk(ev_mu_);
  if (reals_.size() < n) reals_.resize(n);
}

void ShardedRealization::sync_topology() {
  const std::lock_guard<std::mutex> op_lk(op_mu_);
  adopt_new_shards_locked();
}

std::vector<MigrationOutcome> ShardedRealization::evacuate_shard(
    int shard, std::chrono::milliseconds quiesce_timeout) {
  // Snapshot what lives there, and check every section can leave before
  // moving the first one — a half-evacuated shard cannot retire.
  std::vector<std::size_t> leaving;
  {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    for (std::size_t s = 0; s < assign_.size(); ++s) {
      if (assign_[s] == shard) leaving.push_back(s);
    }
  }
  std::vector<int> targets;
  for (const int s : group_->live_shards()) {
    if (s != shard) targets.push_back(s);
  }
  if (targets.empty()) {
    throw CompositionError("evacuate: no other live shard to move to");
  }
  for (const std::size_t s : leaving) {
    if (!part_.migratable(s)) {
      throw CompositionError("evacuate: section '" + section_name(s) +
                             "' on shard " + std::to_string(shard) +
                             " is pinned");
    }
  }
  // Greedy LPT over the targets' existing per-thread load (heaviest section
  // first onto the lightest shard) — good enough for a drain; the balance
  // layer's TargetPlanner owns placement quality afterwards.
  std::map<int, int> weight;
  {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    for (const int t : targets) weight[t] = 0;
    for (std::size_t s = 0; s < assign_.size(); ++s) {
      if (weight.count(assign_[s]) != 0) {
        weight[assign_[s]] += section_threads(s);
      }
    }
  }
  std::stable_sort(leaving.begin(), leaving.end(),
                   [this](std::size_t a, std::size_t b) {
                     return section_threads(a) > section_threads(b);
                   });
  std::vector<MigrationOutcome> out;
  out.reserve(leaving.size());
  for (const std::size_t s : leaving) {
    int best = targets.front();
    for (const int t : targets) {
      if (weight[t] < weight[best]) best = t;
    }
    out.push_back(migrate_section(s, best, quiesce_timeout));
    weight[best] += section_threads(s);
  }
  return out;
}

// ============================ migration =====================================

ShardedRealization::Migration ShardedRealization::begin_migration(
    std::size_t section, int to) {
  return Migration(*this, section, to);
}

MigrationOutcome ShardedRealization::migrate_section(
    std::size_t section, int to, std::chrono::milliseconds quiesce_timeout) {
  Migration m = begin_migration(section, to);
  m.quiesce(quiesce_timeout);
  m.transfer();
  m.resume();
  return m.outcome();
}

ShardedRealization::Migration::Migration(ShardedRealization& sr,
                                         std::size_t section, int to)
    : sr_(&sr), lock_(sr.op_mu_), section_(section), to_(to) {
  if (section >= sr.plan_.sections.size()) {
    throw CompositionError("migrate: section index out of range");
  }
  if (to < 0 || to >= sr.group_->size()) {
    throw CompositionError("migrate: target shard out of range");
  }
  if (!sr.group_->is_live(to)) {
    throw CompositionError("migrate: target shard " + std::to_string(to) +
                           " is retired");
  }
  // The target may postdate realize time (ShardGroup::add_shard): size the
  // per-shard tables up before transfer() indexes them. op_mu_ is already
  // held (lock_ above).
  sr.adopt_new_shards_locked();
  if (!sr.part_.migratable(section)) {
    throw CompositionError("migrate: section '" + sr.section_name(section) +
                           "' is pinned (clustered or hosts a non-migratable "
                           "component)");
  }
  {
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    from_ = sr.assign_[section];
  }
  if (from_ == to_) {
    throw CompositionError("migrate: shard " + std::to_string(to_) +
                           " already hosts section '" +
                           sr.section_name(section) + "'");
  }
  out_.section = section_;
  out_.from = from_;
  out_.to = to_;
}

ShardedRealization::Migration::Migration(Migration&& o) noexcept
    : sr_(o.sr_),
      lock_(std::move(o.lock_)),
      section_(o.section_),
      from_(o.from_),
      to_(o.to_),
      phase_(o.phase_),
      stop_posted_(o.stop_posted_),
      out_(o.out_) {
  o.sr_ = nullptr;
}

ShardedRealization::Migration::~Migration() {
  if (sr_ == nullptr) return;
  // Never leave the flow stopped: a part-way abandoned migration restarts
  // whatever exists. That includes a quiesce() that threw on timeout —
  // stops were already posted even though phase_ never advanced. The
  // restart decision re-reads started_ under the lock (not a value latched
  // at quiesce entry): a user stop()/shutdown() broadcast that landed
  // during the move must win, or the two affected shards would come back up
  // while every other shard obeys the stop.
  try {
    if (phase_ == 2) {
      resume();
    } else if (phase_ < 2 && stop_posted_) {
      // Quiesced (or quiesce failed part-way) but never torn down: just
      // restart the affected shards in place.
      bool restarted = false;
      {
        const std::lock_guard<std::mutex> lk(sr_->ev_mu_);
        if (sr_->started_) {
          for (int s : {from_, to_}) {
            if (Realization* r =
                    sr_->reals_[static_cast<std::size_t>(s)].get())
              r->post_event_external(Event{kEventStart});
          }
          restarted = true;
        }
      }
      // Barrier like resume(): when the destructor returns, the affected
      // drivers have dispatched their restart, so a finished() poll cannot
      // mistake the not-yet-restarted flow for "done".
      if (restarted && sr_->group_->running()) {
        for (int s : {from_, to_}) sr_->group_->run_on(s, [] {});
      }
    }
  } catch (...) {
  }
}

void ShardedRealization::Migration::quiesce(std::chrono::milliseconds timeout) {
  if (phase_ != 0) throw rt::RuntimeError("Migration::quiesce: wrong phase");
  // Tapped at ENTRY: this is the instant the decision to move struck,
  // which is where a replay re-applies it. transfer()/resume() tap at
  // completion, so successive frame timestamps carry the phase timings.
  replay::note_migration(static_cast<std::uint32_t>(section_), from_, to_,
                         replay::MigrationPhase::kQuiesce);
  ShardedRealization& sr = *sr_;
  {
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    stop_posted_ = true;
    for (int s : {from_, to_}) {
      if (Realization* r = sr.reals_[static_cast<std::size_t>(s)].get())
        r->post_event_external(Event{kEventStop});
    }
  }
  const auto both_parked = [&] {
    return sr.shard_finished(from_) && sr.shard_finished(to_);
  };
  if (sr.group_->manual()) {
    // Deterministic drive: step every shard in lockstep at the current
    // (virtual) time until the stop has propagated. One step_until round
    // runs to quiescence, so a handful of rounds always suffices.
    for (int i = 0; i < 64 && !both_parked(); ++i) {
      rt::Time t = 0;
      for (int s = 0; s < sr.group_->size(); ++s) {
        t = std::max(t, sr.group_->runtime(s).now());
      }
      sr.group_->step_until(t);
    }
  } else {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!both_parked()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw rt::RuntimeError(
            "Migration::quiesce: shards did not park within the timeout");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (!both_parked()) {
    throw rt::RuntimeError("Migration::quiesce: shards did not park");
  }
  phase_ = 1;
}

void ShardedRealization::Migration::transfer() {
  if (phase_ != 1) throw rt::RuntimeError("Migration::transfer: wrong phase");
  ShardedRealization& sr = *sr_;

  // 1. Detach the affected realizations. From this point events for these
  // shards queue in pending_.
  std::unique_ptr<Realization> old_from;
  std::unique_ptr<Realization> old_to;
  {
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    sr.migrating_ = true;
    old_from = std::move(sr.reals_[static_cast<std::size_t>(from_)]);
    old_to = std::move(sr.reals_[static_cast<std::size_t>(to_)]);
  }
  // Destroy each on its own shard thread: the dtor kills parked ULTs (which
  // hold no items after the quiesce — everything sits in passive storage)
  // and unbinds the components so they can be realized again.
  if (old_from) {
    sr.run_on_shard(from_, [&old_from] { old_from.reset(); });
  }
  if (old_to) {
    sr.run_on_shard(to_, [&old_to] { old_to.reset(); });
  }

  // 2. Re-assign and re-cut.
  std::vector<int> assign;
  {
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    sr.assign_[section_] = to_;
    assign = sr.assign_;
  }
  const std::vector<Partition::Cut> new_cuts = cuts_for(sr.plan_, assign);
  std::map<const Component*, const Partition::Cut*> new_by_buffer;
  for (const Partition::Cut& c : new_cuts) new_by_buffer[c.buffer] = &c;

  // 2a. Persisting and collapsing cuts. Because only one section moved,
  // every changed cut touches the {from,to} pair — far sides keep flowing
  // and never notice (their endpoint objects and waiter slots are
  // untouched).
  std::set<const Component*> kept;
  for (const auto& link : sr.cuts_) {
    if (link->retired) continue;
    const auto it = new_by_buffer.find(link->buffer);
    if (it != new_by_buffer.end()) {
      kept.insert(link->buffer);
      const int up = assign[link->up_sec];
      const int down = assign[link->down_sec];
      bool rebound = false;
      if (link->chan->from_shard() != up) {
        link->chan->bind_producer(sr.group_->runtime(up), up);
        link->chan->clear_producer_waiter();
        rebound = true;
      }
      if (link->chan->to_shard() != down) {
        sr.remove_cut_collector(*link);
        link->chan->bind_consumer(sr.group_->runtime(down), down);
        link->chan->clear_consumer_waiter();
        // Ring follows the consumer to its new node when possible —
        // place_ring refuses (keeps the old storage) if items are queued,
        // since moving live slots would race the far side.
        link->chan->place_ring(sr.group_->node_of_shard(down));
        sr.add_cut_collector(*link);
        rebound = true;
      }
      if (rebound) ++out_.cuts_rebound;
      continue;
    }
    // Collapse: both sections landed on `to_`; fold the ring back into the
    // original buffer. The endpoints' waiter slots are clear (every wait
    // return clears them) and both sides are quiesced, so a plain drain is
    // race-free.
    auto* b = dynamic_cast<Buffer*>(link->buffer);
    while (std::optional<Item> x = link->chan->try_pop()) {
      b->preload(std::move(*x));
      ++out_.items_moved;
    }
    if (link->chan->eos()) b->mark_eos();
    sr.remove_cut_collector(*link);
    {
      const std::lock_guard<std::mutex> lk(sr.ev_mu_);
      link->retired = true;
    }
    ++out_.cuts_collapsed;
  }

  // 2b. Created cuts: a buffer between two sections that used to share
  // `from_` and are now split. Its queued items move into the fresh ring;
  // the channel is sized to hold them all (a collapse may have left the
  // buffer transiently over capacity).
  for (const Partition::Cut& cut : new_cuts) {
    if (kept.count(cut.buffer) != 0) continue;
    bool already_live = false;
    for (const auto& link : sr.cuts_) {
      if (!link->retired && link->buffer == cut.buffer) already_live = true;
    }
    if (already_live) continue;
    auto* b = dynamic_cast<Buffer*>(cut.buffer);
    if (b == nullptr) {
      throw CompositionError("migrate: cut at '" + cut.buffer->name() +
                             "' which is not a buffer");
    }
    auto link = std::make_unique<CutLink>();
    link->buffer = cut.buffer;
    link->up_sec = cut.upstream_section;
    link->down_sec = cut.downstream_section;
    const int up = assign[cut.upstream_section];
    const int down = assign[cut.downstream_section];
    link->chan = std::make_unique<ShardChannel>(
        b->name(), std::max(b->capacity(), b->fill()), b->full_policy(),
        b->empty_policy(), sr.group_->node_of_shard(down));
    link->chan->bind_producer(sr.group_->runtime(up), up);
    link->chan->bind_consumer(sr.group_->runtime(down), down);
    link->sink = std::make_unique<ChannelSink>(*link->chan);
    link->source =
        std::make_unique<ChannelSource>(*link->chan, sr.cut_spec(*b));
    std::deque<Item> carried = b->drain_for_migration();
    for (Item& x : carried) {
      (void)link->chan->force_push(x);
      ++out_.items_moved;
    }
    if (b->saw_eos()) link->chan->set_eos();
    CutLink* raw = link.get();
    {
      const std::lock_guard<std::mutex> lk(sr.ev_mu_);
      sr.cuts_.push_back(std::move(link));
    }
    sr.add_cut_collector(*raw);
    ++out_.cuts_created;
  }

  // 3. Rebuild and re-realize exactly the affected shards (the cut-set
  // delta property above is what makes touching only two shards sound).
  sr.build_sub_pipes({from_, to_});
  sr.realize_shard(from_);
  sr.realize_shard(to_);
  sr.run_on_shard(to_, [this, &sr] {
    IP_OBS_TRACE(sr.group_->runtime(to_).tracer(), obs::Hop::kMigration,
                 sr.section_name(section_).c_str(), from_, to_);
  });

  // 4. Keep the published partition truthful for introspection.
  sr.part_.shard_of_section = assign;
  sr.part_.cuts = new_cuts;
  replay::note_migration(static_cast<std::uint32_t>(section_), from_, to_,
                         replay::MigrationPhase::kTransfer);
  phase_ = 2;
}

void ShardedRealization::Migration::resume() {
  if (phase_ != 2) throw rt::RuntimeError("Migration::resume: wrong phase");
  ShardedRealization& sr = *sr_;
  std::vector<PendingEvent> replay;
  {
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    sr.migrating_ = false;
    replay.swap(sr.pending_);
    // Restart first, then replay: a queued event must observe the same
    // running flow it would have found had there been no migration. The
    // restart condition is the CURRENT started_, read under the lock — a
    // user stop() that arrived during the move already stopped the other
    // shards directly, and restarting these two would split the flow.
    if (sr.started_) {
      for (int s : {from_, to_}) {
        if (Realization* r = sr.reals_[static_cast<std::size_t>(s)].get())
          r->post_event_external(Event{kEventStart});
      }
    }
  }
  for (PendingEvent& pe : replay) {
    if (pe.target != nullptr) {
      sr.post_event_to_component(*pe.target, pe.event);
      continue;
    }
    const std::lock_guard<std::mutex> lk(sr.ev_mu_);
    if (Realization* r = sr.reals_[static_cast<std::size_t>(pe.shard)].get())
      r->post_event_external(pe.event);
  }
  // Barrier like start(): when resume() returns, the affected drivers have
  // dispatched their restart.
  if (sr.group_->running()) {
    for (int s : {from_, to_}) sr.group_->run_on(s, [] {});
  }
  sr.migrations_.fetch_add(1, std::memory_order_acq_rel);
  // Qualified: resume()'s pending-event vector is also named `replay`.
  infopipe::replay::note_migration(
      static_cast<std::uint32_t>(section_), from_, to_,
      infopipe::replay::MigrationPhase::kResume);
  phase_ = 3;
}

}  // namespace infopipe::shard
