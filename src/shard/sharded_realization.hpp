// ShardedRealization: one pipeline, many cores (ip_shard).
//
// Takes the application's pipeline exactly as a single-runtime Realization
// would, partitions its plan across a ShardGroup (whole sections only —
// partition() cuts exclusively at passive buffer boundaries), replaces each
// cut buffer with a ShardChannel's sink/source endpoint pair, and realizes
// one ordinary Realization per non-empty shard on that shard's runtime. All
// single-runtime machinery — planning, coroutine glue, section locks,
// control dispatch while blocked — runs unchanged inside every shard; the
// only new mechanics are the channels between them.
//
// Control events stay global: a broadcast posted on any shard (a component's
// broadcast(), end-of-stream, a start/stop from outside) is forwarded to
// every other shard through Realization::post_event_external, which enqueues
// it at the remote runtime's dispatch points — so deliver-while-blocked
// semantics (§3.2) hold across shards exactly as within one.
//
// Live migration (ip_balance): a migratable section can be moved to another
// shard while the rest of the flow keeps running. The protocol quiesces the
// two affected shards at their passive-buffer boundaries (every in-flight
// item lands in a Buffer or ShardChannel, which both survive realization
// teardown), re-partitions the cut set for the new assignment — creating,
// re-binding or collapsing channels as sections separate or co-land — and
// re-realizes the affected shards. Control events posted at the affected
// shards during the move are queued and replayed after the restart, in
// order. See begin_migration() and docs/ARCHITECTURE.md §13.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/introspect.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/realization.hpp"
#include "shard/channel.hpp"
#include "shard/shard_group.hpp"

namespace infopipe::shard {

/// What one completed migration did, for logs/metrics/tests.
struct MigrationOutcome {
  std::size_t section = 0;
  int from = -1;
  int to = -1;
  std::uint64_t items_moved = 0;   ///< items carried across storage kinds
  std::size_t cuts_collapsed = 0;  ///< channels folded back into buffers
  std::size_t cuts_created = 0;    ///< buffers newly split into channels
  std::size_t cuts_rebound = 0;    ///< persisting channels with a moved end
};

class ShardedRealization : public RealizationHandle {
 public:
  /// Plans, partitions and realizes `p` across the group's shards. Launches
  /// the group if it is not running yet. The pipeline (and its components)
  /// must outlive this object, as with Realization.
  ShardedRealization(ShardGroup& group, const Pipeline& p);
  ~ShardedRealization() override;

  ShardedRealization(const ShardedRealization&) = delete;
  ShardedRealization& operator=(const ShardedRealization&) = delete;

  [[nodiscard]] ShardGroup& group() noexcept { return *group_; }
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Partition& partition() const noexcept { return part_; }

  /// Cuts ever created (live + retired); retired entries keep their channel
  /// object alive so stale pointers held by samplers stay valid.
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return cuts_.size();
  }
  [[nodiscard]] const ShardChannel& channel(std::size_t i) const {
    return *cuts_.at(i)->chan;
  }
  /// Channels currently carrying the flow (excludes retired ones).
  [[nodiscard]] std::vector<ShardChannel*> live_channels();

  /// The per-shard realization; nullptr for a shard that got no sections.
  /// The pointer is invalidated by migrations touching that shard — cache
  /// the ShardedRealization and re-resolve instead of holding on to it.
  [[nodiscard]] Realization* shard_realization(int shard) {
    return reals_.at(static_cast<std::size_t>(shard)).get();
  }

  /// Where a named component landed after partitioning: the component, the
  /// shard realization hosting it, and the shard number. comp == nullptr if
  /// no shard hosts that name. This is the resolution surface behind the
  /// feedback toolkit's location-transparent endpoints. `real` and `shard`
  /// are a snapshot — a migration can move the component at any time, so
  /// durable references should keep only `comp` and re-resolve.
  struct Located {
    Component* comp = nullptr;
    Realization* real = nullptr;
    int shard = -1;
  };
  [[nodiscard]] Located find_component(std::string_view name);

  /// The cross-shard channel that replaced the cut buffer `name` (channels
  /// keep the buffer's name), or nullptr. Prefers a live channel; falls
  /// back to a retired one so stats of a collapsed cut remain readable.
  [[nodiscard]] ShardChannel* find_channel(std::string_view name);

  /// Like find_channel(), but only a channel currently carrying the flow:
  /// nullptr when no live cut has that name (never a retired channel).
  /// Sensors re-resolve through this on every read so they keep tracking
  /// the cut as migrations collapse and re-create it.
  [[nodiscard]] ShardChannel* find_live_channel(std::string_view name);

  // -- lifecycle (thread-safe: events enqueue onto every shard) ---------------

  /// THE lifecycle entry point (RealizationHandle): a broadcast control
  /// event, delivered to every component on every shard.
  void control(const Event& e) override { post_event(e); }
  using RealizationHandle::control;  // the control(int) spelling

  /// Broadcasts kEventStart, then barriers on every shard's service thread:
  /// when start() returns, each driver has dispatched the event (FIFO among
  /// equal priorities), so a subsequent finished() cannot mistake
  /// "not started yet" for "done".
  void start() override;
  void stop() override { post_event(Event{kEventStop}); }
  void shutdown() override { post_event(Event{kEventShutdown}); }

  /// Broadcast to every component on every shard. Events addressed to a
  /// shard that is mid-migration are queued and replayed, in order, when the
  /// shard's realization is rebuilt.
  void post_event(const Event& e) override;

  /// Thread-safe targeted delivery that survives migrations: resolves which
  /// shard currently hosts `c` under the event lock, so an actuator can keep
  /// steering a component the rebalancer is moving around. Queued and
  /// replayed like post_event() while the hosting shard is mid-migration;
  /// dropped (like rt sends to dead threads) if no shard hosts `c`.
  void post_event_to_component(Component& c, const Event& e);

  /// Observer for broadcast events originating on any shard. Runs on the
  /// originating shard's kernel thread — treat it like a signal handler.
  void set_event_listener(std::function<void(const Event&)> fn) {
    const std::lock_guard<std::mutex> lk(ev_mu_);
    listener_ = std::move(fn);
  }

  // -- live migration (ip_balance) --------------------------------------------

  /// Phased handle over one section move; obtained from begin_migration().
  /// Drive quiesce() → transfer() → resume() in order (migrate_section()
  /// does exactly that). Holds the structural-operations lock for its whole
  /// lifetime, so stats_snapshot()/finished()/teardown block meanwhile and
  /// try_sample_component() returns nullopt. If destroyed part-way, the
  /// destructor restarts whatever still exists so the flow is never left
  /// stopped.
  class Migration {
   public:
    ~Migration();
    Migration(const Migration&) = delete;
    Migration& operator=(const Migration&) = delete;
    Migration(Migration&& o) noexcept;
    Migration& operator=(Migration&&) = delete;

    /// Stops the two affected shards and waits until every driver on them
    /// parked at a passive boundary. Throws rt::RuntimeError on timeout;
    /// the destructor then restarts the affected shards, so a failed move
    /// leaves the flow running in its old placement.
    void quiesce(std::chrono::milliseconds timeout);
    /// Tears down the affected realizations, re-cuts, moves storage, and
    /// re-realizes. No data flows on the affected shards until resume().
    void transfer();
    /// Restarts the affected shards (if the flow was started) and replays
    /// control events queued during the move.
    void resume();

    [[nodiscard]] const MigrationOutcome& outcome() const noexcept {
      return out_;
    }

   private:
    friend class ShardedRealization;
    Migration(ShardedRealization& sr, std::size_t section, int to);

    ShardedRealization* sr_;
    std::unique_lock<std::mutex> lock_;  ///< op_mu_, held for the lifetime
    std::size_t section_;
    int from_;
    int to_;
    int phase_ = 0;  ///< 0 idle, 1 quiesced, 2 transferred, 3 resumed
    bool stop_posted_ = false;  ///< quiesce() reached the shards with a stop
    MigrationOutcome out_;
  };

  /// Starts a migration of `section` to shard `to`. Throws CompositionError
  /// when the section is pinned (Partition::migratable_section), the section
  /// or shard index is out of range, or `to` already hosts it. Only one
  /// migration (or other structural operation) runs at a time.
  [[nodiscard]] Migration begin_migration(std::size_t section, int to);

  /// Convenience: quiesce + transfer + resume.
  MigrationOutcome migrate_section(
      std::size_t section, int to,
      std::chrono::milliseconds quiesce_timeout =
          std::chrono::milliseconds(5000));

  // -- elastic topology (ARCHITECTURE §19) ------------------------------------

  /// Adopts shards the group grew AFTER this realization was built: sizes
  /// the per-shard realization/sub-pipeline tables up to group().size() so
  /// migrations can splice sections onto the new shards. Call after
  /// ShardGroup::add_shard(); migrate_section()/begin_migration() also
  /// self-adopt, so this is only needed when code indexes the new shard
  /// before any move lands on it. Never shrinks — retired shards keep their
  /// slots (and any final realization state) like retired channels do.
  void sync_topology();

  /// Moves every section off `shard` (greedy LPT by section thread count
  /// over the other live shards), leaving it empty so the group can retire
  /// it. Throws CompositionError when a section on the shard is pinned, or
  /// when no other live shard exists. Returns one outcome per move, in
  /// order. The flow keeps running throughout, exactly as for single
  /// migrations.
  std::vector<MigrationOutcome> evacuate_shard(
      int shard, std::chrono::milliseconds quiesce_timeout =
                     std::chrono::milliseconds(5000));

  /// Completed migrations. Bumps exactly once per successful resume();
  /// samplers holding per-shard bindings re-resolve when this changes.
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_acquire);
  }

  // -- section metadata (for the rebalance policy) ----------------------------

  [[nodiscard]] std::size_t section_count() const noexcept {
    return plan_.sections.size();
  }
  [[nodiscard]] int shard_of_section(std::size_t section);
  [[nodiscard]] bool section_migratable(std::size_t section) const {
    return part_.migratable(section);
  }
  /// The section's driver name (sections have no name of their own).
  [[nodiscard]] const std::string& section_name(std::size_t section) const {
    return plan_.sections.at(section).driver->name();
  }
  /// Driver thread + coroutine count — the policy's load-share proxy.
  [[nodiscard]] int section_threads(std::size_t section) const {
    return plan_.sections.at(section).thread_count();
  }

  // -- introspection ----------------------------------------------------------

  /// True once every driver on every shard has stopped.
  [[nodiscard]] bool finished();
  /// Polls finished() until true or the timeout elapses.
  bool wait_finished(std::chrono::milliseconds timeout);

  /// The full plan's decisions as data (RealizationHandle): the global
  /// section structure before partitioning, with threads counted across all
  /// shards. Immutable under migration — moves change placement, never the
  /// plan — so one PlanInfo can be shared by everything stamped from it.
  [[nodiscard]] PlanInfo plan_info() const override;

  /// Merged snapshot: drivers and buffers from every shard plus one
  /// ChannelStats row per live cross-shard channel; `when` is the latest
  /// shard clock. Each shard's counters are read on that shard's kernel
  /// thread.
  [[nodiscard]] StatsSnapshot stats_snapshot() override;

  /// Every shard's registry rows prefixed `shard<i>.` (the channel rows
  /// appear under their consumer shard as `shard<i>.chan.<name>.*`).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() override;

  /// Samples a component's state on whichever shard currently hosts it,
  /// without blocking behind a migration: returns nullopt when a structural
  /// operation is in flight (callers keep their previous value) or when no
  /// shard hosts the component. This — not call_on on a cached shard — is
  /// how the feedback endpoints read fill/stall counters, which also makes
  /// opposite-direction loops across one shard pair deadlock-free.
  std::optional<double> try_sample_component(
      std::string_view name, const std::function<double(Component&)>& fn);

  /// Partition summary plus each shard's plan description.
  [[nodiscard]] std::string describe() const override;

 private:
  /// One cut: the buffer it replaced, its channel and endpoints, and the
  /// shard-side metrics collector. Retired entries (cut collapsed by a
  /// migration) stay allocated so pointers handed out earlier never dangle.
  struct CutLink {
    Component* buffer = nullptr;
    std::size_t up_sec = 0;
    std::size_t down_sec = 0;
    std::unique_ptr<ShardChannel> chan;
    std::unique_ptr<ChannelSink> sink;
    std::unique_ptr<ChannelSource> source;
    int collector_shard = -1;
    obs::MetricsRegistry::CollectorId collector = 0;
    bool retired = false;
  };

  /// A control event that arrived while its destination shard was
  /// mid-migration. target == nullptr: broadcast for `shard`; otherwise a
  /// targeted event whose destination is re-resolved at replay.
  struct PendingEvent {
    int shard = -1;
    Component* target = nullptr;
    Event event;
  };

  void forward_event(int from_shard, const Event& e);
  void teardown() noexcept;
  void run_on_shard(int shard, const std::function<void()>& fn);

  /// Component -> hosting shard for the CURRENT assignment: section members
  /// from assign_, boundary components inherit a mapped neighbour's shard
  /// (all neighbours agree, else the boundary were a cut).
  [[nodiscard]] std::map<const Component*, int> compute_shard_of_comp() const;
  /// Live cut buffer -> index into cuts_.
  [[nodiscard]] std::map<const Component*, std::size_t> live_cut_of() const;
  /// Typespec the full plan propagated onto the buffer's out-edge.
  [[nodiscard]] Typespec cut_spec(const Component& buffer) const;
  /// (Re)builds sub_pipes_[s] for every shard in `shards` from the current
  /// assignment and live cuts.
  void build_sub_pipes(const std::vector<int>& shards);
  /// Realizes sub_pipes_[s] on its shard (skips empty ones) and installs the
  /// pointer under ev_mu_.
  void realize_shard(int shard);
  void add_cut_collector(CutLink& link);
  void remove_cut_collector(CutLink& link) noexcept;
  [[nodiscard]] bool shard_finished(int shard);
  void record_started(const Event& e);
  /// Grows reals_/sub_pipes_ to group_->size(). Requires op_mu_ held
  /// (takes ev_mu_ internally for the reals_ resize).
  void adopt_new_shards_locked();

  ShardGroup* group_;
  const Pipeline* pipe_;
  Plan plan_;
  Partition part_;
  std::vector<int> assign_;  ///< current section -> shard (migrations mutate)
  std::map<const Component*, std::size_t> section_of_;
  std::vector<std::unique_ptr<Pipeline>> sub_pipes_;  // per shard
  std::vector<std::unique_ptr<Realization>> reals_;   // per shard
  std::vector<std::unique_ptr<CutLink>> cuts_;

  /// Guards reals_ pointers, cuts_ vector shape, assign_, pending_,
  /// started_, migrating_, listener_. Never held across run_on (a shard
  /// thread may need it to deliver an event).
  mutable std::mutex ev_mu_;
  /// Serializes structural operations (migration, snapshots, teardown). May
  /// be held across run_on: shard threads never block on it (samplers use
  /// try_lock).
  mutable std::mutex op_mu_;

  bool migrating_ = false;          ///< under ev_mu_
  bool started_ = false;            ///< last lifecycle broadcast was START
  std::vector<PendingEvent> pending_;
  std::atomic<std::uint64_t> migrations_{0};
  std::function<void(const Event&)> listener_;
};

}  // namespace infopipe::shard
