// ShardedRealization: one pipeline, many cores (ip_shard).
//
// Takes the application's pipeline exactly as a single-runtime Realization
// would, partitions its plan across a ShardGroup (whole sections only —
// partition() cuts exclusively at passive buffer boundaries), replaces each
// cut buffer with a ShardChannel's sink/source endpoint pair, and realizes
// one ordinary Realization per non-empty shard on that shard's runtime. All
// single-runtime machinery — planning, coroutine glue, section locks,
// control dispatch while blocked — runs unchanged inside every shard; the
// only new mechanics are the channels between them.
//
// Control events stay global: a broadcast posted on any shard (a component's
// broadcast(), end-of-stream, a start/stop from outside) is forwarded to
// every other shard through Realization::post_event_external, which enqueues
// it at the remote runtime's dispatch points — so deliver-while-blocked
// semantics (§3.2) hold across shards exactly as within one.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/introspect.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/realization.hpp"
#include "shard/channel.hpp"
#include "shard/shard_group.hpp"

namespace infopipe::shard {

class ShardedRealization {
 public:
  /// Plans, partitions and realizes `p` across the group's shards. Launches
  /// the group if it is not running yet. The pipeline (and its components)
  /// must outlive this object, as with Realization.
  ShardedRealization(ShardGroup& group, const Pipeline& p);
  ~ShardedRealization();

  ShardedRealization(const ShardedRealization&) = delete;
  ShardedRealization& operator=(const ShardedRealization&) = delete;

  [[nodiscard]] ShardGroup& group() noexcept { return *group_; }
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Partition& partition() const noexcept { return part_; }

  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const ShardChannel& channel(std::size_t i) const {
    return *channels_.at(i);
  }

  /// The per-shard realization; nullptr for a shard that got no sections.
  [[nodiscard]] Realization* shard_realization(int shard) {
    return reals_.at(static_cast<std::size_t>(shard)).get();
  }

  /// Where a named component landed after partitioning: the component, the
  /// shard realization hosting it, and the shard number. comp == nullptr if
  /// no shard hosts that name. This is the resolution surface behind the
  /// feedback toolkit's location-transparent endpoints.
  struct Located {
    Component* comp = nullptr;
    Realization* real = nullptr;
    int shard = -1;
  };
  [[nodiscard]] Located find_component(std::string_view name);

  /// The cross-shard channel that replaced the cut buffer `name` (channels
  /// keep the buffer's name), or nullptr.
  [[nodiscard]] ShardChannel* find_channel(std::string_view name);

  // -- lifecycle (thread-safe: events enqueue onto every shard) ---------------

  /// Broadcasts kEventStart, then barriers on every shard's service thread:
  /// when start() returns, each driver has dispatched the event (FIFO among
  /// equal priorities), so a subsequent finished() cannot mistake
  /// "not started yet" for "done".
  void start();
  void stop() { post_event(Event{kEventStop}); }
  void shutdown() { post_event(Event{kEventShutdown}); }

  /// Broadcast to every component on every shard.
  void post_event(const Event& e);

  /// Observer for broadcast events originating on any shard. Runs on the
  /// originating shard's kernel thread — treat it like a signal handler.
  void set_event_listener(std::function<void(const Event&)> fn) {
    listener_ = std::move(fn);
  }

  // -- introspection ----------------------------------------------------------

  /// True once every driver on every shard has stopped.
  [[nodiscard]] bool finished();
  /// Polls finished() until true or the timeout elapses.
  bool wait_finished(std::chrono::milliseconds timeout);

  /// Merged snapshot: drivers and buffers from every shard plus one
  /// ChannelStats row per cross-shard channel; `when` is the latest shard
  /// clock. Each shard's counters are read on that shard's kernel thread.
  [[nodiscard]] StatsSnapshot stats_snapshot();

  /// Every shard's registry rows prefixed `shard<i>.` (the channel rows
  /// appear under their consumer shard as `shard<i>.chan.<name>.*`).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

  /// Partition summary plus each shard's plan description.
  [[nodiscard]] std::string describe() const;

 private:
  void forward_event(int from_shard, const Event& e);
  void teardown() noexcept;

  ShardGroup* group_;
  const Pipeline* pipe_;
  Plan plan_;
  Partition part_;
  std::vector<std::unique_ptr<Pipeline>> sub_pipes_;          // per shard
  std::vector<std::unique_ptr<Realization>> reals_;           // per shard
  std::vector<std::unique_ptr<ShardChannel>> channels_;       // per cut
  std::vector<std::unique_ptr<ChannelSink>> sinks_;           // per cut
  std::vector<std::unique_ptr<ChannelSource>> sources_;       // per cut
  /// (consumer shard, collector id) of each channel's metrics collector.
  std::vector<std::pair<int, obs::MetricsRegistry::CollectorId>> collectors_;
  std::function<void(const Event&)> listener_;
};

}  // namespace infopipe::shard
