#include "shard/channel.hpp"

#include <algorithm>

#include "core/realization.hpp"

namespace infopipe::shard {

namespace {
/// Overflow slots beyond capacity for the stopped-flow escape (one in-flight
/// item per stop; a few slots cover repeated stop/restart before a drain).
constexpr std::size_t kOverflowReserve = 4;
}  // namespace

ShardChannel::ShardChannel(std::string name, std::size_t capacity,
                           FullPolicy full, EmptyPolicy empty, int numa_node)
    : name_(std::move(name)),
      name_hash_(replay::fnv1a(name_.data(), name_.size())),
      capacity_(capacity == 0 ? 1 : capacity),
      full_(full),
      empty_(empty) {
  alloc_slots(numa_node);
}

ShardChannel::~ShardChannel() { free_slots(); }

void ShardChannel::alloc_slots(int node) {
  n_slots_ = capacity_ + kOverflowReserve;
  ring_mem_ = mem::numa_alloc(n_slots_ * sizeof(Item), node);
  slots_ = static_cast<Item*>(ring_mem_.ptr);
  for (std::size_t i = 0; i < n_slots_; ++i) ::new (&slots_[i]) Item();
  ring_node_.store(node, std::memory_order_release);
}

void ShardChannel::free_slots() noexcept {
  if (slots_ == nullptr) return;
  for (std::size_t i = 0; i < n_slots_; ++i) slots_[i].~Item();
  slots_ = nullptr;
  n_slots_ = 0;
  mem::numa_free(ring_mem_);
}

void ShardChannel::place_ring(int node) {
  if (node == ring_node_.load(std::memory_order_acquire)) return;
  // Precondition (documented in the header): ring empty, both sides quiet.
  if (depth() != 0) return;
  free_slots();
  alloc_slots(node);
}

bool ShardChannel::try_push(Item& x) {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_seq_cst);
  if (t - h >= capacity_) return false;
  slots_[t % n_slots_] = std::move(x);
  tail_.store(t + 1, std::memory_order_seq_cst);
  pushes_.fetch_add(1, std::memory_order_relaxed);
  note_depth(t + 1 - h);
  // Tap after the tail store: position t is published. The sink check is
  // hoisted so the off path never loads the shard binding.
  if (replay::tap_sink() != nullptr) {
    replay::note_chan_push(this, name_hash_, t, 1, from_shard());
  }
  return true;
}

bool ShardChannel::force_push(Item& x) {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_seq_cst);
  if (t - h >= n_slots_) return false;
  slots_[t % n_slots_] = std::move(x);
  tail_.store(t + 1, std::memory_order_seq_cst);
  pushes_.fetch_add(1, std::memory_order_relaxed);
  note_depth(t + 1 - h);
  if (replay::tap_sink() != nullptr) {
    replay::note_chan_push(this, name_hash_, t, 1, from_shard());
  }
  return true;
}

std::size_t ShardChannel::try_push_span(ItemSpan xs) {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_seq_cst);
  // depth may transiently exceed capacity_ after a stopped-flow force_push;
  // the saturating subtraction keeps `space` at 0 until the drain catches up.
  const std::uint64_t depth = t - h;
  const std::uint64_t space = depth >= capacity_ ? 0 : capacity_ - depth;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(space, xs.size()));
  if (n == 0) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    slots_[(t + i) % n_slots_] = std::move(xs[i]);
  }
  tail_.store(t + n, std::memory_order_seq_cst);
  pushes_.fetch_add(n, std::memory_order_relaxed);
  note_depth(t + n - h);
  if (replay::tap_sink() != nullptr) {
    replay::note_chan_push(this, name_hash_, t, n, from_shard());
  }
  return n;
}

std::size_t ShardChannel::try_pop_span(ItemSpan out) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(t - h, out.size()));
  if (n == 0) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::move(slots_[(h + i) % n_slots_]);
  }
  head_.store(h + n, std::memory_order_seq_cst);
  pops_.fetch_add(n, std::memory_order_relaxed);
  if (replay::tap_sink() != nullptr) {
    replay::note_chan_pop(this, name_hash_, h, n, to_shard());
  }
  return n;
}

std::optional<Item> ShardChannel::try_pop() {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  if (h == tail_.load(std::memory_order_seq_cst)) return std::nullopt;
  // A move, not a copy: the slot is left empty (no payload reference stays
  // behind in the ring), so when the consumer side drops the item the block
  // recycles to the CONSUMER's pool / the bounded return-to-owner stash.
  Item x = std::move(slots_[h % n_slots_]);
  head_.store(h + 1, std::memory_order_seq_cst);
  pops_.fetch_add(1, std::memory_order_relaxed);
  if (replay::tap_sink() != nullptr) {
    replay::note_chan_pop(this, name_hash_, h, 1, to_shard());
  }
  return x;
}

void ShardChannel::wake_producer() {
  const rt::ThreadId w =
      producer_waiter_.exchange(rt::kNoThread, std::memory_order_seq_cst);
  rt::Runtime* rtm = producer_rt_.load(std::memory_order_acquire);
  if (w == rt::kNoThread || rtm == nullptr) return;
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  rt::Message m{detail::kMsgChanSpace, rt::MsgClass::kData};
  m.payload = static_cast<ShardChannel*>(this);
  rtm->post_external(w, std::move(m));
}

void ShardChannel::wake_consumer() {
  const rt::ThreadId w =
      consumer_waiter_.exchange(rt::kNoThread, std::memory_order_seq_cst);
  rt::Runtime* rtm = consumer_rt_.load(std::memory_order_acquire);
  if (w == rt::kNoThread || rtm == nullptr) return;
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  rt::Message m{detail::kMsgChanData, rt::MsgClass::kData};
  m.payload = static_cast<ShardChannel*>(this);
  rtm->post_external(w, std::move(m));
}

ChannelStats ShardChannel::stats() const {
  ChannelStats s;
  s.flow.name = name_;
  s.flow.fill = depth();
  s.flow.capacity = capacity_;
  s.flow.max_fill =
      static_cast<std::size_t>(max_depth_.load(std::memory_order_relaxed));
  s.flow.puts = pushes_.load(std::memory_order_relaxed);
  s.flow.takes = pops_.load(std::memory_order_relaxed);
  s.flow.drops = drops_.load(std::memory_order_relaxed);
  s.flow.nil_returns = nils_.load(std::memory_order_relaxed);
  s.flow.put_blocks = producer_stalls_.load(std::memory_order_relaxed);
  s.flow.take_blocks = consumer_stalls_.load(std::memory_order_relaxed);
  s.from_shard = producer_shard_.load(std::memory_order_acquire);
  s.to_shard = consumer_shard_.load(std::memory_order_acquire);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  return s;
}

// ============================ ChannelSink ===================================

void ChannelSink::consume(Item x) {
  HostContext& host = realization()->current_host();
  ShardChannel& ch = *chan_;
  for (;;) {
    if (ch.try_push(x)) {
      ch.wake_consumer();
      return;
    }
    // Ring full.
    if (ch.full_policy() == FullPolicy::kDropNewest) {
      ch.count_drop();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(), 0,
                   static_cast<std::int64_t>(ch.depth()));
      return;
    }
    ch.count_producer_stall();
    // The section was stopped while this thread was blocked in the push; the
    // item is already in flight, so park it in the overflow reserve rather
    // than lose it across a stop/restart (mirrors Buffer::put).
    if (host.flow_stopped() && ch.force_push(x)) {
      ch.wake_consumer();
      return;
    }
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 0, static_cast<std::int64_t>(ch.depth()));
    ch.register_producer_waiter(host.tid());
    // Dekker recheck: the consumer may have popped (and missed our waiter
    // registration) between our failed try_push and the store above.
    if (ch.try_push(x)) {
      ch.clear_producer_waiter();
      ch.wake_consumer();
      return;
    }
    ShardChannel* self = &ch;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* c = m.get<ShardChannel*>();
      return m.type == detail::kMsgChanSpace && c != nullptr && *c == self;
    });
    // A control event may have woken us instead of a space notification;
    // deregister and re-evaluate.
    ch.clear_producer_waiter();
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 0, static_cast<std::int64_t>(ch.depth()));
  }
}

void ChannelSink::consume_span(ItemSpan xs) {
  HostContext& host = realization()->current_host();
  ShardChannel& ch = *chan_;
  const std::size_t n = xs.size();
  std::size_t i = 0;
  while (i < n) {
    if (!xs[i].is_data()) {
      // Specials never enter the ring: EOS is the sticky flag (set via
      // on_eos so the wake goes out), nils are dropped exactly as the
      // per-item sink glue drops them.
      if (xs[i].is_eos()) on_eos();
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && xs[j].is_data()) ++j;
    ItemSpan run = xs.subspan(i, j - i);
    std::size_t done = 0;
    while (done < run.size()) {
      const std::size_t moved = ch.try_push_span(run.subspan(done));
      if (moved > 0) {
        // One doorbell per published chunk, not per item.
        ch.wake_consumer();
        done += moved;
        continue;
      }
      // Ring full: ONE policy decision for the whole remainder of the run.
      if (ch.full_policy() == FullPolicy::kDropNewest) {
        ch.count_drops(run.size() - done);
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kDrop, name().c_str(),
                     0, static_cast<std::int64_t>(ch.depth()));
        break;
      }
      ch.count_producer_stall();
      if (host.flow_stopped()) {
        // Stopped mid-burst: the remainder is already in flight, so park it
        // in the overflow reserve item by item (mirrors consume()).
        while (done < run.size() && ch.force_push(run[done])) ++done;
        if (done == run.size()) {
          ch.wake_consumer();
          break;
        }
      }
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                   name().c_str(), 0, static_cast<std::int64_t>(ch.depth()));
      ch.register_producer_waiter(host.tid());
      // Dekker recheck with the span op: the consumer may have popped (and
      // missed our waiter registration) between the failed reserve and the
      // store above.
      const std::size_t again = ch.try_push_span(run.subspan(done));
      if (again > 0) {
        ch.clear_producer_waiter();
        ch.wake_consumer();
        done += again;
        continue;
      }
      ShardChannel* self = &ch;
      (void)host.wait_interruptible([self](const rt::Message& m) {
        const auto* c = m.get<ShardChannel*>();
        return m.type == detail::kMsgChanSpace && c != nullptr && *c == self;
      });
      ch.clear_producer_waiter();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                   name().c_str(), 0, static_cast<std::int64_t>(ch.depth()));
    }
    i = j;
  }
}

void ChannelSink::on_eos() {
  chan_->set_eos();
  chan_->wake_consumer();
}

// ============================ ChannelSource =================================

Item ChannelSource::generate() {
  HostContext& host = realization()->current_host();
  ShardChannel& ch = *chan_;
  for (;;) {
    if (std::optional<Item> x = ch.try_pop()) {
      ch.wake_producer();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                   name().c_str(), ch.from_shard(), ch.to_shard());
      return std::move(*x);
    }
    if (ch.eos()) {
      // EOS-drain race: the producer may have pushed an item and THEN set
      // the sticky flag after our failed try_pop loaded the tail. Observing
      // eos_ (seq_cst) orders us after that push, so one re-pop is enough —
      // returning EOS here without it would lose the final items and leave
      // nil_returns/pops inconsistent with the producer's pushes.
      if (std::optional<Item> x = ch.try_pop()) {
        ch.wake_producer();
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                     name().c_str(), ch.from_shard(), ch.to_shard());
        return std::move(*x);
      }
      return Item::eos();
    }
    if (ch.empty_policy() == EmptyPolicy::kNil) {
      ch.count_nil();
      return Item::nil();
    }
    ch.count_consumer_stall();
    if (host.flow_stopped()) throw infopipe::detail::StopFlow{};
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 1, 0);
    ch.register_consumer_waiter(host.tid());
    // Dekker recheck against both the ring and the sticky EOS flag.
    if (std::optional<Item> x = ch.try_pop()) {
      ch.clear_consumer_waiter();
      ch.wake_producer();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                   name().c_str(), ch.from_shard(), ch.to_shard());
      return std::move(*x);
    }
    if (ch.eos()) {
      ch.clear_consumer_waiter();
      // Same EOS-drain re-pop as above: the flag was observed after a
      // failed pop, so drain once more before declaring the end.
      if (std::optional<Item> x = ch.try_pop()) {
        ch.wake_producer();
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                     name().c_str(), ch.from_shard(), ch.to_shard());
        return std::move(*x);
      }
      return Item::eos();
    }
    ShardChannel* self = &ch;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* c = m.get<ShardChannel*>();
      return m.type == detail::kMsgChanData && c != nullptr && *c == self;
    });
    ch.clear_consumer_waiter();
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 1, static_cast<std::int64_t>(ch.depth()));
  }
}

std::size_t ChannelSource::generate_span(ItemSpan out) {
  HostContext& host = realization()->current_host();
  ShardChannel& ch = *chan_;
  for (;;) {
    if (const std::size_t n = ch.try_pop_span(out)) {
      ch.wake_producer();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                   name().c_str(), ch.from_shard(), ch.to_shard());
      return n;
    }
    if (ch.eos()) {
      // EOS-drain re-pop (see generate()): observing the sticky flag orders
      // us after any pre-EOS push, so drain once more before the end.
      if (const std::size_t n = ch.try_pop_span(out)) {
        ch.wake_producer();
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                     name().c_str(), ch.from_shard(), ch.to_shard());
        return n;
      }
      out[0] = Item::eos();
      return 1;
    }
    if (ch.empty_policy() == EmptyPolicy::kNil) {
      ch.count_nil();
      out[0] = Item::nil();
      return 1;
    }
    ch.count_consumer_stall();
    if (host.flow_stopped()) throw infopipe::detail::StopFlow{};
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferBlock,
                 name().c_str(), 1, 0);
    ch.register_consumer_waiter(host.tid());
    // Dekker recheck with the span op (ring first, then the sticky flag).
    if (const std::size_t n = ch.try_pop_span(out)) {
      ch.clear_consumer_waiter();
      ch.wake_producer();
      IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                   name().c_str(), ch.from_shard(), ch.to_shard());
      return n;
    }
    if (ch.eos()) {
      ch.clear_consumer_waiter();
      if (const std::size_t n = ch.try_pop_span(out)) {
        ch.wake_producer();
        IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kShardHop,
                     name().c_str(), ch.from_shard(), ch.to_shard());
        return n;
      }
      out[0] = Item::eos();
      return 1;
    }
    ShardChannel* self = &ch;
    (void)host.wait_interruptible([self](const rt::Message& m) {
      const auto* c = m.get<ShardChannel*>();
      return m.type == detail::kMsgChanData && c != nullptr && *c == self;
    });
    ch.clear_consumer_waiter();
    IP_OBS_TRACE(host.runtime().tracer(), obs::Hop::kBufferUnblock,
                 name().c_str(), 1, static_cast<std::int64_t>(ch.depth()));
  }
}

}  // namespace infopipe::shard
