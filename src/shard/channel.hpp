// Lock-free cross-shard channels (ip_shard).
//
// A ShardChannel bridges one cut edge of a partitioned plan: the buffer the
// planner placed between two sections is replaced by a bounded SPSC ring
// whose producer endpoint (ChannelSink) lives on the upstream shard and
// whose consumer endpoint (ChannelSource) lives on the downstream shard.
// The fast path is wait-free — one atomic load, a slot move, one atomic
// store per item. Only when a side finds the ring full/empty does it fall
// back to the doorbell path: it publishes its thread id in a waiter slot and
// parks in the middleware's control-responsive wait; the other side, after
// every push/pop, exchanges the waiter slot and posts a wakeup message
// through rt::Runtime::post_external (which rings the shard's Doorbell), so
// an idle shard sleeps instead of spinning.
//
// The sleep/wake handshake is a classic Dekker pattern on
// (ring state, waiter slot): the waiter stores its tid and THEN re-checks
// the ring; the other side updates the ring and THEN exchanges the waiter
// slot. All four accesses are seq_cst, so one of the two always observes the
// other's write and no wakeup is lost.
//
// Semantics mirror core::Buffer so a cut is behaviour-preserving:
// end-of-stream is a sticky flag drained after queued items, kDropNewest
// counts drops, EmptyPolicy::kNil returns nils, a stopped flow stashes the
// in-flight item in a small overflow reserve instead of dropping it, and a
// blocked endpoint still dispatches control events (wait_interruptible).
// FullPolicy::kDropOldest cannot be reproduced without racing the consumer;
// partition() colocates such buffers so they are never cut.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/buffer.hpp"
#include "core/introspect.hpp"
#include "core/item.hpp"
#include "core/typespec.hpp"
#include "mem/numa.hpp"
#include "replay/hooks.hpp"
#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe::shard {

namespace detail {
/// rt message types of the cross-shard doorbell path (payload: the
/// ShardChannel*). Values allotted in rt/msg_registry.hpp.
enum ShardMsgType : int {
  kMsgChanData = rt::msg::kChanData,    ///< ring has data; wakes a consumer
  kMsgChanSpace = rt::msg::kChanSpace,  ///< ring has space; wakes a producer
  kMsgRunFn = rt::msg::kRunFn,          ///< ShardGroup::run_on payload
};
}  // namespace detail

/// The bounded SPSC ring plus the cross-shard wakeup protocol. One producer
/// thread (on the bound producer runtime) and one consumer thread (on the
/// bound consumer runtime) at a time; the sharded realization guarantees
/// this by construction (a cut buffer has exactly one upstream and one
/// downstream section).
class ShardChannel {
 public:
  /// `numa_node` >= 0 requests the ring storage on that NUMA node (the
  /// consumer shard's node, normally — the consumer touches every slot
  /// last); < 0 allocates without preference.
  ShardChannel(std::string name, std::size_t capacity,
               FullPolicy full = FullPolicy::kBlock,
               EmptyPolicy empty = EmptyPolicy::kBlock, int numa_node = -1);
  ~ShardChannel();

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// FNV-1a of name(), precomputed at construction: how replay frames
  /// identify this ring without carrying the string.
  [[nodiscard]] std::uint64_t name_hash() const noexcept {
    return name_hash_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] FullPolicy full_policy() const noexcept { return full_; }
  [[nodiscard]] EmptyPolicy empty_policy() const noexcept { return empty_; }
  [[nodiscard]] int from_shard() const noexcept {
    return producer_shard_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int to_shard() const noexcept {
    return consumer_shard_.load(std::memory_order_acquire);
  }

  /// Wiring: which runtime/shard hosts each side. Atomic stores because live
  /// migration re-binds one side of a persisting cut while the FAR side may
  /// be mid-push/pop: the far side only dereferences the rebound pointer in
  /// wake_*(), and the moved side's section is quiesced (its waiter slot is
  /// kNoThread), so the worst case is a wakeup posted to the new runtime for
  /// a thread id that no longer exists there — rt::Runtime::send drops sends
  /// to unknown threads by design.
  void bind_producer(rt::Runtime& rtm, int shard) {
    producer_rt_.store(&rtm, std::memory_order_release);
    producer_shard_.store(shard, std::memory_order_release);
  }
  void bind_consumer(rt::Runtime& rtm, int shard) {
    consumer_rt_.store(&rtm, std::memory_order_release);
    consumer_shard_.store(shard, std::memory_order_release);
  }

  /// Re-allocates the ring storage on `node`. Only legal while the ring is
  /// EMPTY and neither side is mid-push/pop — i.e. at construction/binding
  /// time or under a migration quiesce. A no-op if the ring already sits on
  /// `node`. (A re-bind of a NON-empty ring under migration keeps the old
  /// placement: moving live slots would race the far side.)
  void place_ring(int node);

  /// The NUMA node the ring storage was REQUESTED on (-1: no preference).
  /// This is the placement decision, recorded even where the kernel lacks
  /// NUMA support — what the injected-topology tests verify.
  [[nodiscard]] int ring_node() const noexcept {
    return ring_node_.load(std::memory_order_acquire);
  }

  // -- ring (producer side: try_push/force_push; consumer side: try_pop) -----

  /// Moves `x` into the ring if depth < capacity. Producer shard only.
  bool try_push(Item& x);
  /// Like try_push but may use the small overflow reserve beyond capacity;
  /// the stopped-flow escape hatch mirroring Buffer::put's transient
  /// one-slot overflow. Returns false only when even the reserve is full.
  bool force_push(Item& x);
  /// Takes the oldest item, if any. Consumer shard only.
  std::optional<Item> try_pop();

  /// Batched push (PR 6): claims min(space, xs.size()) slots and publishes
  /// them with ONE tail store. SPSC makes the single store a full N-slot
  /// reservation — the producer is the only tail writer, so the consumer
  /// either sees none or all of the burst; no CAS loop is needed. Never
  /// touches the overflow reserve. Returns how many items moved (0: full).
  std::size_t try_push_span(ItemSpan xs);
  /// Batched pop (PR 6): moves up to out.size() queued items out with ONE
  /// head store. Returns how many (0: empty).
  std::size_t try_pop_span(ItemSpan out);

  /// Sticky end-of-stream: queued items drain first, then the consumer
  /// observes EOS forever (exactly Buffer's eos_ flag).
  void set_eos() noexcept { eos_.store(true, std::memory_order_seq_cst); }
  [[nodiscard]] bool eos() const noexcept {
    return eos_.load(std::memory_order_seq_cst);
  }

  /// Approximate while both shards run; exact when one side is parked.
  [[nodiscard]] std::size_t depth() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  // -- sleep/wake handshake ----------------------------------------------------

  void register_producer_waiter(rt::ThreadId tid) noexcept {
    producer_waiter_.store(tid, std::memory_order_seq_cst);
  }
  void clear_producer_waiter() noexcept {
    producer_waiter_.store(rt::kNoThread, std::memory_order_seq_cst);
  }
  void register_consumer_waiter(rt::ThreadId tid) noexcept {
    consumer_waiter_.store(tid, std::memory_order_seq_cst);
  }
  void clear_consumer_waiter() noexcept {
    consumer_waiter_.store(rt::kNoThread, std::memory_order_seq_cst);
  }

  /// Posts kMsgChanSpace to a parked producer, if one registered. Called by
  /// the consumer after every pop.
  void wake_producer();
  /// Posts kMsgChanData to a parked consumer, if one registered. Called by
  /// the producer after every push (and on EOS).
  void wake_consumer();

  // -- stats (relaxed atomics, sampled by stats()) ----------------------------

  void count_drop() noexcept { drops_.fetch_add(1, std::memory_order_relaxed); }
  void count_drops(std::uint64_t n) noexcept {
    drops_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_nil() noexcept { nils_.fetch_add(1, std::memory_order_relaxed); }
  void count_producer_stall() noexcept {
    producer_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_consumer_stall() noexcept {
    consumer_stalls_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t producer_stalls() const noexcept {
    return producer_stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t consumer_stalls() const noexcept {
    return consumer_stalls_.load(std::memory_order_relaxed);
  }

  /// Rendered in the BufferStats schema (stats().flow): the channel is the
  /// buffer it replaced, so fill==depth, puts==pushes, takes==pops,
  /// put_blocks==producer stalls, take_blocks==consumer stalls.
  [[nodiscard]] ChannelStats stats() const;

 private:
  /// (Re)creates the slot array on `node`; ring must be empty.
  void alloc_slots(int node);
  void free_slots() noexcept;

  std::string name_;
  std::uint64_t name_hash_;
  std::size_t capacity_;
  FullPolicy full_;
  EmptyPolicy empty_;

  // Ring storage: capacity_ + overflow reserve default-constructed Items in
  // raw NUMA-aware storage (mem/numa.hpp) so the slot array — which every
  // item crossing the cut is moved through — can live on the consumer
  // shard's node.
  Item* slots_ = nullptr;
  std::size_t n_slots_ = 0;
  mem::NumaBlock ring_mem_;
  std::atomic<int> ring_node_{-1};

  // Monotonic positions; slot index = position % slots_.size(). 64-bit
  // counters make wraparound a non-issue at any realistic item rate.
  std::atomic<std::uint64_t> head_{0};  ///< next pop position
  std::atomic<std::uint64_t> tail_{0};  ///< next push position
  std::atomic<bool> eos_{false};

  /// High-water mark. Only the producer writes it (right after its own
  /// push), so a plain load-compare-store is enough.
  void note_depth(std::uint64_t d) noexcept {
    if (d > max_depth_.load(std::memory_order_relaxed)) {
      max_depth_.store(d, std::memory_order_relaxed);
    }
  }

  std::atomic<rt::Runtime*> producer_rt_{nullptr};
  std::atomic<rt::Runtime*> consumer_rt_{nullptr};
  std::atomic<int> producer_shard_{0};
  std::atomic<int> consumer_shard_{0};
  std::atomic<rt::ThreadId> producer_waiter_{rt::kNoThread};
  std::atomic<rt::ThreadId> consumer_waiter_{rt::kNoThread};

  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint64_t> producer_stalls_{0};
  std::atomic<std::uint64_t> consumer_stalls_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> nils_{0};
  std::atomic<std::uint64_t> max_depth_{0};  ///< producer-side single writer
};

/// Upstream endpoint of a cut: a passive sink the upstream section's driver
/// pushes into, exactly where it used to push into the cut buffer. Blocking
/// follows Buffer::put — control events are dispatched while blocked, a
/// stopped flow escapes into the overflow reserve instead of losing the
/// in-flight item.
class ChannelSink : public PassiveSink {
 public:
  explicit ChannelSink(ShardChannel& chan)
      : PassiveSink(chan.name() + ".send"), chan_(&chan) {}

  [[nodiscard]] ShardChannel& channel() noexcept { return *chan_; }

 protected:
  void consume(Item x) override;
  /// Batched path: publishes runs of data items through try_push_span — one
  /// ring reservation and one doorbell per chunk instead of per item.
  void consume_span(ItemSpan xs) override;
  void on_eos() override;

 private:
  ShardChannel* chan_;
};

/// Downstream endpoint of a cut: a passive source the downstream section's
/// driver pulls from, exactly where it used to take from the cut buffer.
/// Offers the Typespec the original plan propagated onto the cut edge, so
/// sub-pipeline planning sees the same flow description.
class ChannelSource : public PassiveSource {
 public:
  ChannelSource(ShardChannel& chan, Typespec offer)
      : PassiveSource(chan.name() + ".recv"),
        chan_(&chan),
        offer_(std::move(offer)) {}

  [[nodiscard]] ShardChannel& channel() noexcept { return *chan_; }
  [[nodiscard]] Typespec output_offer(int port) const override {
    (void)port;
    return offer_;
  }

 protected:
  Item generate() override;
  /// Batched path: drains a whole run of queued items in one head move.
  std::size_t generate_span(ItemSpan out) override;

 private:
  ShardChannel* chan_;
  Typespec offer_;
};

}  // namespace infopipe::shard
