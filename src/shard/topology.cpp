#include "shard/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace infopipe::shard {

std::vector<int> Topology::parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::istringstream in(s);
  std::string chunk;
  while (std::getline(in, chunk, ',')) {
    if (chunk.empty()) continue;
    const std::size_t dash = chunk.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(chunk.c_str(), &end, 10);
      if (end != chunk.c_str() && v >= 0) cpus.push_back(static_cast<int>(v));
      continue;
    }
    const long lo = std::strtol(chunk.c_str(), &end, 10);
    const long hi = std::strtol(chunk.c_str() + dash + 1, &end, 10);
    if (lo < 0 || hi < lo || hi - lo > 4096) continue;  // skip garbage
    for (long v = lo; v <= hi; ++v) cpus.push_back(static_cast<int>(v));
  }
  return cpus;
}

Topology Topology::detect() {
  std::vector<int> node_of_cpu;
  bool any = false;
  for (int node = 0; node < 1024; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string line;
    std::getline(f, line);
    for (int cpu : parse_cpulist(line)) {
      if (cpu >= static_cast<int>(node_of_cpu.size())) {
        node_of_cpu.resize(static_cast<std::size_t>(cpu) + 1, 0);
      }
      node_of_cpu[static_cast<std::size_t>(cpu)] = node;
      any = true;
    }
  }
  if (!any) return Topology{};  // no sysfs NUMA info: flat
  return Topology{std::move(node_of_cpu)};
}

int Topology::nodes() const {
  int max_node = 0;
  for (int n : node_of_cpu_) max_node = std::max(max_node, n);
  return max_node + 1;
}

int Topology::node_of_cpu(int cpu) const {
  if (cpu < 0 || cpu >= static_cast<int>(node_of_cpu_.size())) return 0;
  return node_of_cpu_[static_cast<std::size_t>(cpu)];
}

int Topology::node_of_shard(int shard, int n_cpus) const {
  if (n_cpus <= 0) n_cpus = static_cast<int>(node_of_cpu_.size());
  if (n_cpus <= 0) return 0;
  return node_of_cpu(shard % n_cpus);
}

std::string Topology::describe() const {
  std::string out =
      "topology: " + std::to_string(nodes()) + " node(s), " +
      std::to_string(node_of_cpu_.size()) + " cpu(s)";
  if (flat()) return out + " (flat)";
  out += " [";
  for (std::size_t i = 0; i < node_of_cpu_.size(); ++i) {
    if (i != 0) out += ' ';
    out += "cpu" + std::to_string(i) + ":n" + std::to_string(node_of_cpu_[i]);
  }
  return out + "]";
}

}  // namespace infopipe::shard
