// ShardGroup: N runtimes, N kernel threads, one doorbell each (ip_shard).
//
// Everything inside one rt::Runtime stays single-kernel-threaded — that is
// the substrate the whole middleware's no-locks-in-components guarantee
// rests on. A ShardGroup scales out WITHOUT touching that invariant: it owns
// n_shards independent runtimes, each hosted by its own kernel thread
// running Runtime::run_service(), i.e. run-until-quiescent then park on the
// shard's Doorbell. Cross-shard traffic (ShardChannel items, forwarded
// control events, run_on() calls) enters a shard exclusively through
// rt::Runtime::post_external — the one thread-safe Runtime entry point —
// whose external notifier rings the doorbell, so idle shards sleep and
// never spin.
//
// run_on() is the coordination primitive: it executes a function ON a
// shard's kernel thread (inside a dedicated service user-level thread) and
// blocks the caller until it returns. All inspection of a live shard's
// non-atomic state (metrics registries, realization counters) goes through
// it; that is what keeps the whole module clean under TSan.
//
// The topology is ELASTIC (ARCHITECTURE §19): add_shard() spins up one more
// pinned runtime at runtime, retire_shard() halts and joins one. Shard ids
// are never reused or renumbered — a retired shard keeps its slot, its
// runtime object and its final counters (the retired-channel retention rule
// extended to whole shards), so every index that escaped into channels,
// plans or traces stays valid. size() therefore counts every shard ever
// created; is_live()/live_shards() describe the current topology.
// INFOPIPE_ELASTIC=off pins the construction-time topology: both calls
// refuse.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "rt/doorbell.hpp"
#include "rt/runtime.hpp"
#include "shard/topology.hpp"

namespace infopipe::shard {

class ShardGroup {
 public:
  /// Construction knobs beyond the per-runtime options. The defaults give
  /// the production shape: real-time clocks (cross-shard flows need a common
  /// notion of time; free-running virtual clocks would diverge) and one
  /// kernel thread per shard after launch().
  ///
  /// `manual` inverts that for deterministic testing: no kernel threads are
  /// ever started, run_on() executes inline on the caller, and step_until()
  /// drives every shard runtime round-robin in lockstep — combined with a
  /// virtual clock_factory the whole multi-shard execution replays
  /// bit-identically on one kernel thread.
  struct GroupOptions {
    rt::RuntimeOptions runtime;
    /// Clock for each shard runtime; default builds rt::RealClock. Also
    /// used for shards added later — an elastic manual group stays virtual.
    std::function<std::unique_ptr<rt::Clock>()> clock_factory;
    bool manual = false;
    /// NUMA layout used for memory placement (each shard's payload pool and
    /// each cross-shard channel ring land on the consumer shard's node).
    /// Defaults to Topology::detect(); inject a synthetic mapping in tests.
    std::optional<Topology> topology;
  };

  /// Hard cap on shards ever created (initial + added); slots are
  /// preallocated so growth never reallocates under concurrent readers.
  static constexpr int kMaxShards = 64;

  /// Builds n_shards runtimes over real-time clocks. Nothing runs until
  /// launch().
  explicit ShardGroup(int n_shards, rt::RuntimeOptions options = {});
  ShardGroup(int n_shards, GroupOptions options);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Total shards ever created, retired included — the valid index range.
  [[nodiscard]] int size() const noexcept {
    return n_shards_.load(std::memory_order_acquire);
  }
  /// Shards currently accepting work.
  [[nodiscard]] int live_count() const noexcept {
    return live_.load(std::memory_order_acquire);
  }
  [[nodiscard]] rt::Runtime& runtime(int shard) { return *shard_at(shard).rtm; }
  [[nodiscard]] rt::Doorbell& doorbell(int shard) {
    return shard_at(shard).bell;
  }

  /// The NUMA layout this group places memory by (injected or probed).
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Node hosting a shard's pinned kernel thread under this group's pinning
  /// rule (core `shard % hardware_concurrency`); -1 when the topology is
  /// flat, i.e. no placement preference exists.
  [[nodiscard]] int node_of_shard(int shard) const noexcept;

  /// Grows the topology by one shard, returning its id (== old size()).
  /// The new runtime gets the same clock factory and runtime options as its
  /// siblings, its pool lands on its NUMA node, and — when the group is
  /// running — a pinned host kernel thread starts immediately. Existing
  /// realizations do not use it until sections are spliced onto it
  /// (ShardedRealization::sync_topology + migrate_section). Throws when
  /// INFOPIPE_ELASTIC=off or the kMaxShards cap is reached.
  int add_shard();

  /// Retires a shard: marks it dead to new work, halts its runtime and
  /// joins its host thread (when running). The caller must have evacuated
  /// it first (ShardedRealization::evacuate_shard) — retirement is a
  /// thread-lifecycle operation, not a migration. The slot, runtime and
  /// counters are retained; the id is never reused. Throws when
  /// INFOPIPE_ELASTIC=off, the shard is unknown or already retired, or it
  /// is the last live shard.
  void retire_shard(int shard);

  /// False for out-of-range or retired shards.
  [[nodiscard]] bool is_live(int shard) const noexcept;

  /// Ids of the currently live shards, ascending.
  [[nodiscard]] std::vector<int> live_shards() const;

  /// Starts one kernel thread per live shard (idempotent). Each thread pins
  /// itself to core `shard % hardware_concurrency` (best effort, Linux
  /// only) and enters run_service(). No-op in manual mode.
  void launch();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool manual() const noexcept { return manual_; }

  /// Manual mode only: advances every live shard runtime to `t`,
  /// round-robin, until a full round dispatches nothing new — so
  /// cross-shard messages posted during one shard's turn are drained by the
  /// others before the step returns. All live shard clocks end at `t`.
  void step_until(rt::Time t);

  /// Like step_until(t), but each round visits the shards in `order`
  /// (indices into [0, size()); entries may repeat, retired shards are
  /// skipped, live shards absent from the order are appended in index order
  /// so no shard starves). This is the trace/fuzz-driven step mode
  /// (ip_replay): a Replayer reproduces the recorded per-window turn order,
  /// a ScheduleFuzzer perturbs it — and thread transparency says the flow's
  /// output must not care.
  void step_until(rt::Time t, const std::vector<int>& order);

  /// Halts every shard, rings the doorbells, joins the kernel threads.
  /// Idempotent. Rethrows the first exception that escaped a shard's
  /// scheduling loop, if any.
  void stop();

  /// Executes `fn` on the shard's kernel thread (inside the shard's service
  /// user-level thread, so `fn` may use the full Runtime API, spawn
  /// threads, construct Realizations…). Blocks until `fn` returns;
  /// rethrows what it threw. Throws rt::RuntimeError if the group is not
  /// running, the shard is retired, or the shard's host thread has died. In
  /// manual mode `fn` runs inline on the caller (there is only one kernel
  /// thread by design).
  void run_on(int shard, std::function<void()> fn);

  /// run_on returning a value.
  template <typename F>
  auto call_on(int shard, F fn) -> decltype(fn()) {
    using R = decltype(fn());
    std::optional<R> out;
    run_on(shard, [&out, &fn] { out.emplace(fn()); });
    return std::move(*out);
  }

  /// True when the calling kernel thread IS the shard's host thread (set
  /// thread-locally by host_loop). Lets code that may run either from
  /// outside or from a run_on() payload pick direct access over a nested
  /// run_on() — which would deadlock, since the service thread executing the
  /// payload is the one that would have to serve the nested request. Always
  /// false in manual mode (no host threads exist; run_on is inline anyway).
  [[nodiscard]] bool on_shard_thread(int shard) const noexcept;

  /// Aggregates every shard's registry snapshot, each row prefixed
  /// `shard<i>.`; `when` is the latest shard timestamp. Snapshots are taken
  /// on the owning shard threads (run_on) while running, directly when not —
  /// retired shards (host joined) are read directly and still report their
  /// final counters.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

 private:
  struct Shard {
    std::unique_ptr<rt::Runtime> rtm;
    rt::Doorbell bell;
    std::thread host;
    rt::ThreadId service_tid = rt::kNoThread;
    std::atomic<bool> dead{false};     ///< host thread exited (error or halt)
    std::atomic<bool> retired{false};  ///< retired from the live topology
    std::exception_ptr error;          ///< guarded by err_mutex_
  };

  /// Constructs the shard in slot `i` (runtime over the group clock
  /// factory, doorbell notifier, service ULT, NUMA-placed pool). Does not
  /// publish it — the caller stores n_shards_ after any thread start.
  Shard& make_shard(int i);

  /// Bounds-checked slot access against the published count. Slots are
  /// stable for the group's lifetime, so this is safe concurrent with
  /// add_shard() publishing new ones.
  [[nodiscard]] Shard& shard_at(int shard) const {
    if (shard < 0 || shard >= size()) {
      throw std::out_of_range("ShardGroup: shard " + std::to_string(shard) +
                              " out of range");
    }
    return *slots_[static_cast<std::size_t>(shard)];
  }

  void host_loop(int shard);

  /// Fixed slot array (kMaxShards entries): shard publication is the
  /// release store of n_shards_, never a reallocation.
  std::unique_ptr<std::unique_ptr<Shard>[]> slots_;
  std::atomic<int> n_shards_{0};
  std::atomic<int> live_{0};
  std::atomic<bool> running_{false};
  bool manual_ = false;
  Topology topo_;
  std::function<std::unique_ptr<rt::Clock>()> clock_factory_;
  rt::RuntimeOptions runtime_opts_;
  std::mutex err_mutex_;
  std::mutex topo_mu_;  ///< serializes add_shard/retire_shard/launch/stop
};

}  // namespace infopipe::shard
