#include "obs/trace.hpp"

namespace infopipe::obs {

const char* to_string(Hop h) {
  switch (h) {
    case Hop::kPush:
      return "push";
    case Hop::kPull:
      return "pull";
    case Hop::kHandOff:
      return "hand-off";
    case Hop::kBufferBlock:
      return "buffer-block";
    case Hop::kBufferUnblock:
      return "buffer-unblock";
    case Hop::kControlDispatch:
      return "control-dispatch";
    case Hop::kTimerFire:
      return "timer-fire";
    case Hop::kDrop:
      return "drop";
    case Hop::kShardHop:
      return "shard-hop";
    case Hop::kMigration:
      return "migration";
  }
  return "?";
}

std::string TraceEvent::to_json() const {
  std::string out = "{\"t\": " + std::to_string(t) + ", \"hop\": \"";
  out += to_string(hop);
  out += "\", \"site\": \"";
  for (char c : site) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\", \"a\": " + std::to_string(a) + ", \"b\": " + std::to_string(b) +
         "}";
  return out;
}

// ============================ JsonLinesSink =================================

JsonLinesSink::JsonLinesSink(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {}

JsonLinesSink::~JsonLinesSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonLinesSink::on_event(const TraceEvent& e) {
  if (f_ == nullptr) return;
  const std::string line = e.to_json();
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
}

void JsonLinesSink::on_flush() {
  if (f_ != nullptr) std::fflush(f_);
}

// ============================ FlowTracer ====================================

FlowTracer::FlowTracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlowTracer::set_capacity(std::size_t capacity) {
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
}

void FlowTracer::add_sink(std::shared_ptr<TraceSink> sink) {
  if (sink) sinks_.push_back(std::move(sink));
}

void FlowTracer::clear_sinks() { sinks_.clear(); }

void FlowTracer::record_slow(Hop hop, const char* site, std::int64_t a,
                             std::int64_t b) {
  TraceEvent e;
  e.t = now_ ? now_() : 0;
  e.hop = hop;
  e.site = site == nullptr ? "" : site;
  e.a = a;
  e.b = b;
  for (const auto& s : sinks_) s->on_event(e);
  if (size_ == ring_.size()) {
    ++dropped_;  // overwriting the oldest buffered event
  } else {
    ++size_;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<TraceEvent> FlowTracer::drain() {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(std::move(ring_[(start + i) % ring_.size()]));
  }
  size_ = 0;
  head_ = 0;
  for (const auto& s : sinks_) s->on_flush();
  return out;
}

}  // namespace infopipe::obs
