#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace infopipe::obs {

// ============================ Histogram =====================================

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = MetricsRegistry::default_latency_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(std::int64_t sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

// ============================ MetricsSnapshot ===============================

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void MetricsSnapshot::add_counter(std::string name, std::uint64_t value) {
  MetricValue v;
  v.name = std::move(name);
  v.kind = MetricValue::Kind::kCounter;
  v.count = value;
  metrics.push_back(std::move(v));
}

void MetricsSnapshot::add_gauge(std::string name, double value) {
  MetricValue v;
  v.name = std::move(name);
  v.kind = MetricValue::Kind::kGauge;
  v.value = value;
  metrics.push_back(std::move(v));
}

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::string s = std::to_string(v);
  return s;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"when\": " + std::to_string(when) + ", \"metrics\": [";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    json_escape(out, m.name);
    out += "\", ";
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += "\"type\": \"counter\", \"value\": " + std::to_string(m.count);
        break;
      case MetricValue::Kind::kGauge:
        out += "\"type\": \"gauge\", \"value\": " + json_double(m.value);
        break;
      case MetricValue::Kind::kHistogram: {
        out += "\"type\": \"histogram\", \"count\": " +
               std::to_string(m.count) + ", \"sum\": " + std::to_string(m.sum) +
               ", \"min\": " + std::to_string(m.min) +
               ", \"max\": " + std::to_string(m.max) + ", \"bounds\": [";
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i != 0) out += ", ";
          out += std::to_string(m.bounds[i]);
        }
        out += "], \"buckets\": [";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i != 0) out += ", ";
          out += std::to_string(m.buckets[i]);
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ============================ MetricsRegistry ===============================

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricValue::Kind::kCounter) {
      throw std::logic_error("metric '" + name + "' is not a counter");
    }
    return *it->second.c;
  }
  counters_.emplace_back();
  Entry e;
  e.kind = MetricValue::Kind::kCounter;
  e.c = &counters_.back();
  by_name_.emplace(name, e);
  order_.emplace_back(name, e);
  return *e.c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricValue::Kind::kGauge) {
      throw std::logic_error("metric '" + name + "' is not a gauge");
    }
    return *it->second.g;
  }
  gauges_.emplace_back();
  Entry e;
  e.kind = MetricValue::Kind::kGauge;
  e.g = &gauges_.back();
  by_name_.emplace(name, e);
  order_.emplace_back(name, e);
  return *e.g;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> bounds) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricValue::Kind::kHistogram) {
      throw std::logic_error("metric '" + name + "' is not a histogram");
    }
    return *it->second.h;
  }
  histograms_.emplace_back(std::move(bounds));
  Entry e;
  e.kind = MetricValue::Kind::kHistogram;
  e.h = &histograms_.back();
  by_name_.emplace(name, e);
  order_.emplace_back(name, e);
  return *e.h;
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(Collector fn) {
  const CollectorId id = next_collector_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.when = now();
  s.metrics.reserve(order_.size());
  for (const auto& [name, e] : order_) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricValue::Kind::kCounter:
        v.count = e.c->value();
        break;
      case MetricValue::Kind::kGauge:
        v.value = e.g->value();
        break;
      case MetricValue::Kind::kHistogram:
        v.count = e.h->count();
        v.value = e.h->mean();
        v.sum = e.h->sum();
        v.min = e.h->min();
        v.max = e.h->max();
        v.bounds = e.h->bounds();
        v.buckets = e.h->buckets();
        break;
    }
    s.metrics.push_back(std::move(v));
  }
  for (const auto& [id, fn] : collectors_) fn(s);
  return s;
}

std::vector<std::int64_t> MetricsRegistry::default_latency_bounds() {
  using namespace rt;
  return {microseconds(1),    microseconds(5),    microseconds(10),
          microseconds(50),   microseconds(100),  microseconds(500),
          milliseconds(1),    milliseconds(5),    milliseconds(10),
          milliseconds(50),   milliseconds(100),  milliseconds(500),
          seconds(1)};
}

}  // namespace infopipe::obs
