// Flow tracing: per-item hop events in a bounded ring buffer (ip_obs).
//
// Where the metrics registry aggregates, the tracer records *individual*
// hops — an item pushed, pulled, handed to a coroutine, a thread blocking on
// a buffer, a control event delivered — each timestamped by the runtime
// clock. The ring is bounded: when full, the oldest event is overwritten
// and counted in dropped(), so tracing a long run costs constant memory.
//
// Tracing is OFF by default. The facade is built so the disabled path costs
// one predictable branch (`enabled()` test) at each instrumentation point,
// and compiles away entirely when IP_OBS_ENABLE_TRACING is defined to 0 —
// this is what keeps the metrics facade within the <= 5% overhead budget on
// the hot-path benches.
//
// Sinks observe events as they are recorded (in addition to the ring):
// JsonLinesSink streams them as JSON lines to a file for offline analysis,
// MemorySink accumulates them for tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rt/types.hpp"

namespace infopipe::obs {

/// What happened to an item (or to the thread moving it).
enum class Hop : std::uint8_t {
  kPush,             ///< item pushed into a component
  kPull,             ///< item pulled from a component
  kHandOff,          ///< synchronous coroutine channel hand-off
  kBufferBlock,      ///< thread blocked on a full/empty buffer
  kBufferUnblock,    ///< blocked thread resumed
  kControlDispatch,  ///< control event delivered to a component
  kTimerFire,        ///< runtime timer fired
  kDrop,             ///< item dropped (full buffer / switch misroute / link)
  kShardHop,         ///< item crossed shards via a ShardChannel (a=from, b=to)
  kMigration,        ///< a section was migrated between shards (a=from, b=to)
};

[[nodiscard]] const char* to_string(Hop h);

struct TraceEvent {
  rt::Time t = 0;
  Hop hop = Hop::kPush;
  std::string site;     ///< component / subsystem name
  std::int64_t a = 0;   ///< hop-specific (e.g. event type, block ns)
  std::int64_t b = 0;   ///< hop-specific (e.g. buffer fill)

  [[nodiscard]] std::string to_json() const;
};

/// Receives every recorded event, in order. on_flush() is called when the
/// tracer is drained or destroyed.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
  virtual void on_flush() {}
};

/// Accumulates events in memory; the sink for tests.
class MemorySink : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override { events_.push_back(e); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events as JSON lines ({"t":...,"hop":"push",...}\n) to a file.
class JsonLinesSink : public TraceSink {
 public:
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;

  JsonLinesSink(const JsonLinesSink&) = delete;
  JsonLinesSink& operator=(const JsonLinesSink&) = delete;

  [[nodiscard]] bool ok() const noexcept { return f_ != nullptr; }

  void on_event(const TraceEvent& e) override;
  void on_flush() override;

 private:
  std::FILE* f_ = nullptr;
};

class FlowTracer {
 public:
  using TimeSource = std::function<rt::Time()>;

  explicit FlowTracer(std::size_t capacity = 4096);

  void set_time_source(TimeSource fn) { now_ = std::move(fn); }

  /// Turning tracing on/off; record() is a no-op while disabled.
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Resizes the ring (drops buffered events).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Sinks see events as they are recorded, even those later overwritten in
  /// the ring.
  void add_sink(std::shared_ptr<TraceSink> sink);
  void clear_sinks();

  /// Records one hop (timestamped now). Cheap no-op while disabled.
  void record(Hop hop, const char* site, std::int64_t a = 0,
              std::int64_t b = 0) {
    if (!enabled_) return;
    record_slow(hop, site, a, b);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Events recorded since construction / last drain, including overwritten.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Returns the buffered events oldest-first and empties the ring; flushes
  /// sinks.
  std::vector<TraceEvent> drain();

 private:
  void record_slow(Hop hop, const char* site, std::int64_t a, std::int64_t b);

  TimeSource now_;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;  ///< live events in the ring
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

}  // namespace infopipe::obs

// Compile-time facade: instrumentation sites use IP_OBS_TRACE so a build
// with -DIP_OBS_ENABLE_TRACING=0 removes tracing entirely (not even the
// enabled() branch remains).
#ifndef IP_OBS_ENABLE_TRACING
#define IP_OBS_ENABLE_TRACING 1
#endif
#if IP_OBS_ENABLE_TRACING
#define IP_OBS_TRACE(tracer, ...) (tracer).record(__VA_ARGS__)
#else
#define IP_OBS_TRACE(tracer, ...) ((void)0)
#endif
