// Structured observability: the metrics registry (ip_obs).
//
// The paper's thread-transparency claim is only auditable if the platform's
// decisions and their runtime cost are visible as *data*, not prose. This
// registry holds named counters, gauges and fixed-bucket histograms that the
// runtime, the realization glue, buffers and netpipes update on their hot
// paths through handles resolved once at registration — an increment is a
// plain add, never a name lookup.
//
// Components whose hot counters already live in a cheap struct (e.g.
// rt::Runtime::Stats) publish them through a *collector*: a callback invoked
// at snapshot time that appends rows to the snapshot. That keeps the hot
// path untouched while the snapshot still sees every number.
//
// Snapshots are timestamped by the owning runtime's clock, so experiments
// under the virtual clock produce bit-identical metric trajectories run
// after run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rt/types.hpp"

namespace infopipe::obs {

/// Monotonically increasing event count. Handles returned by the registry
/// stay valid for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time level (buffer fill, current rate, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_ = v; }
  void add(double d) noexcept { v_ += d; }
  [[nodiscard]] double value() const noexcept { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram for latency/jitter samples (nanoseconds by
/// convention). Bucket `i` counts samples <= bounds[i]; one implicit
/// overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept { return min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// buckets().size() == bounds().size() + 1 (overflow bucket last).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

 private:
  std::vector<std::int64_t> bounds_;  // ascending upper bounds
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// One row of a snapshot: the value of a metric at snapshot time.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram sample count
  double value = 0.0;       ///< gauge level / histogram mean
  std::int64_t sum = 0;     ///< histogram only
  std::int64_t min = 0;     ///< histogram only
  std::int64_t max = 0;     ///< histogram only
  std::vector<std::int64_t> bounds;    ///< histogram only
  std::vector<std::uint64_t> buckets;  ///< histogram only
};

/// A consistent view of every registered metric, taken at one instant of the
/// runtime clock. Collectors may append further rows.
struct MetricsSnapshot {
  rt::Time when = 0;
  std::vector<MetricValue> metrics;

  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  // Appenders for collectors publishing externally-maintained values.
  void add_counter(std::string name, std::uint64_t value);
  void add_gauge(std::string name, double value);

  /// One JSON object: {"when": ..., "metrics": [{...}, ...]}.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  using TimeSource = std::function<rt::Time()>;
  using Collector = std::function<void(MetricsSnapshot&)>;
  using CollectorId = std::uint64_t;

  /// Sets where timestamps come from (the owning runtime's clock). Defaults
  /// to a constant 0 so a standalone registry still snapshots.
  void set_time_source(TimeSource fn) { now_ = std::move(fn); }
  [[nodiscard]] rt::Time now() const { return now_ ? now_() : 0; }

  /// Finds or creates. The returned reference is stable for the registry's
  /// lifetime; resolve once, increment forever. Requesting an existing name
  /// with a different kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only (ascending upper bounds;
  /// empty = default_latency_bounds()).
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds = {});

  /// Registers a snapshot-time publisher; returns an id for removal.
  /// Collectors whose captured state dies (e.g. a Realization) MUST
  /// remove themselves before it does.
  CollectorId add_collector(Collector fn);
  void remove_collector(CollectorId id);

  /// Reads every metric and runs every collector. Pure reads of registered
  /// metrics — safe at any dispatch point.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t metric_count() const noexcept {
    return order_.size();
  }

  /// 1us..1s in decade/half-decade steps — the scale of hand-off and block
  /// latencies under both clocks.
  [[nodiscard]] static std::vector<std::int64_t> default_latency_bounds();

 private:
  struct Entry {
    MetricValue::Kind kind;
    Counter* c = nullptr;
    Gauge* g = nullptr;
    Histogram* h = nullptr;
  };

  TimeSource now_;
  // Node-based containers: handles stay valid as the registry grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Entry> by_name_;
  std::vector<std::pair<std::string, Entry>> order_;  // registration order
  std::vector<std::pair<CollectorId, Collector>> collectors_;
  CollectorId next_collector_ = 1;
};

}  // namespace infopipe::obs
