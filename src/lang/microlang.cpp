#include "lang/microlang.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/basic.hpp"
#include "core/buffer.hpp"
#include "core/pump.hpp"
#include "core/tee.hpp"
#include "media/audio.hpp"
#include "media/mpeg.hpp"
#include "net/netpipe.hpp"

namespace infopipe::lang {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(trim(cur));
  return out;
}

double arg_num(const std::vector<std::string>& args, std::size_t i,
               double fallback, int line) {
  if (i >= args.size() || args[i].empty()) return fallback;
  try {
    return std::stod(args[i]);
  } catch (...) {
    throw ParseError(line, "expected a number, got '" + args[i] + "'");
  }
}

/// Identifier: [A-Za-z_][A-Za-z0-9_-]*
bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_') {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '-';
  });
}

struct PortRef {
  std::string name;
  int port = 0;
};

PortRef parse_port_ref(const std::string& token, int line) {
  const auto dot = token.rfind('.');
  if (dot == std::string::npos) return PortRef{token, 0};
  const std::string name = token.substr(0, dot);
  const std::string port = token.substr(dot + 1);
  if (port.empty() ||
      !std::all_of(port.begin(), port.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      })) {
    throw ParseError(line, "bad port reference '" + token + "'");
  }
  return PortRef{name, std::stoi(port)};
}

FullPolicy parse_full_policy(const std::string& s, int line) {
  if (s.empty() || s == "block") return FullPolicy::kBlock;
  if (s == "drop-newest") return FullPolicy::kDropNewest;
  if (s == "drop-oldest") return FullPolicy::kDropOldest;
  throw ParseError(line, "unknown full-policy '" + s + "'");
}

EmptyPolicy parse_empty_policy(const std::string& s, int line) {
  if (s.empty() || s == "block") return EmptyPolicy::kBlock;
  if (s == "nil") return EmptyPolicy::kNil;
  throw ParseError(line, "unknown empty-policy '" + s + "'");
}

}  // namespace

MicroLang::MicroLang() {
  using Args = std::vector<std::string>;
  // NOTE on the `line` used in factories: factories receive trimmed args and
  // may throw ParseError(0, ...); parse() rewrites the line number.
  auto num = [](const Args& a, std::size_t i, double fb) {
    return arg_num(a, i, fb, 0);
  };

  register_type("counting_source", [num](const std::string& n, const Args& a) {
    return std::make_unique<CountingSource>(
        n, static_cast<std::uint64_t>(num(a, 0, 100)));
  });
  register_type("identity", [](const std::string& n, const Args&) {
    return std::make_unique<IdentityFunction>(n);
  });
  register_type("pump", [num](const std::string& n, const Args& a) {
    return std::make_unique<ClockedPump>(n, num(a, 0, 30.0));
  });
  register_type("freerunning_pump", [](const std::string& n, const Args&) {
    return std::make_unique<FreeRunningPump>(n);
  });
  register_type("adaptive_pump", [num](const std::string& n, const Args& a) {
    return std::make_unique<AdaptivePump>(n, num(a, 0, 30.0));
  });
  register_type("buffer", [num](const std::string& n, const Args& a) {
    const auto cap = static_cast<std::size_t>(num(a, 0, 8));
    const FullPolicy fp =
        parse_full_policy(a.size() > 1 ? a[1] : std::string{}, 0);
    const EmptyPolicy ep =
        parse_empty_policy(a.size() > 2 ? a[2] : std::string{}, 0);
    return std::make_unique<Buffer>(n, cap, fp, ep);
  });
  register_type("multicast", [num](const std::string& n, const Args& a) {
    return std::make_unique<MulticastTee>(n, static_cast<int>(num(a, 0, 2)));
  });
  register_type("merge", [num](const std::string& n, const Args& a) {
    return std::make_unique<MergeTee>(n, static_cast<int>(num(a, 0, 2)));
  });
  register_type("balance", [num](const std::string& n, const Args& a) {
    return std::make_unique<BalancingSwitch>(n,
                                             static_cast<int>(num(a, 0, 2)));
  });
  register_type("sink", [](const std::string& n, const Args&) {
    return std::make_unique<CountingSink>(n);
  });
  register_type("collector", [](const std::string& n, const Args&) {
    return std::make_unique<CollectorSink>(n);
  });

  // media
  register_type("mpeg_file", [num](const std::string& n, const Args& a) {
    media::StreamConfig cfg;
    const std::string file = a.empty() ? n : a[0];
    cfg.frames = static_cast<std::uint64_t>(num(a, 1, 300));
    cfg.fps = num(a, 2, 30.0);
    return std::make_unique<media::MpegFileSource>(file, cfg);
  });
  register_type("decoder", [](const std::string& n, const Args&) {
    return std::make_unique<media::MpegDecoder>(n);
  });
  register_type("drop_filter", [](const std::string& n, const Args&) {
    return std::make_unique<media::FrameDropFilter>(n);
  });
  register_type("resizer", [num](const std::string& n, const Args& a) {
    return std::make_unique<media::Resizer>(n, static_cast<int>(num(a, 0, 320)),
                                            static_cast<int>(num(a, 1, 240)));
  });
  register_type("display", [num](const std::string& n, const Args& a) {
    return std::make_unique<media::VideoDisplay>(n, num(a, 0, 30.0));
  });
  register_type("tone", [num](const std::string& n, const Args& a) {
    return std::make_unique<media::ToneSource>(
        n, num(a, 0, 440.0), static_cast<std::uint64_t>(num(a, 1, 100)));
  });
  register_type("audio_mixer", [num](const std::string& n, const Args& a) {
    return std::make_unique<media::AudioMixer>(n,
                                               static_cast<int>(num(a, 0, 2)));
  });
  register_type("audio_device", [num](const std::string& n, const Args& a) {
    return std::make_unique<media::AudioDevice>(n, num(a, 0, 100.0));
  });
}

void MicroLang::register_type(std::string type, Factory factory) {
  factories_[std::move(type)] = std::move(factory);
}

std::vector<std::string> MicroLang::types() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

Assembly MicroLang::parse(const std::string& program) const {
  Assembly asmb;
  std::istringstream in(program);
  std::string raw;
  int line_no = 0;

  auto lookup = [&](const std::string& name, int line) -> Component& {
    auto it = asmb.by_name.find(name);
    if (it == asmb.by_name.end()) {
      throw ParseError(line, "unknown component '" + name + "'");
    }
    return *it->second;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string stmt = raw;
    if (const auto hash = stmt.find('#'); hash != std::string::npos) {
      stmt = stmt.substr(0, hash);
    }
    stmt = trim(stmt);
    if (stmt.empty()) continue;

    std::istringstream ls(stmt);
    std::string keyword;
    ls >> keyword;

    if (keyword == "let") {
      // let <name> = <type>(<args>)
      std::string rest;
      std::getline(ls, rest);
      const auto eq = rest.find('=');
      if (eq == std::string::npos) {
        throw ParseError(line_no, "expected 'let <name> = <type>(...)'");
      }
      const std::string name = trim(rest.substr(0, eq));
      std::string ctor = trim(rest.substr(eq + 1));
      if (!valid_name(name)) {
        throw ParseError(line_no, "bad component name '" + name + "'");
      }
      if (asmb.by_name.count(name) != 0) {
        throw ParseError(line_no, "duplicate component '" + name + "'");
      }
      std::string type = ctor;
      std::vector<std::string> args;
      if (const auto open = ctor.find('('); open != std::string::npos) {
        if (ctor.back() != ')') {
          throw ParseError(line_no, "missing ')' in '" + ctor + "'");
        }
        type = trim(ctor.substr(0, open));
        const std::string arg_str =
            ctor.substr(open + 1, ctor.size() - open - 2);
        if (!trim(arg_str).empty()) args = split(arg_str, ',');
      }
      // Transport declarations and the netpipe endpoint types need access
      // to the assembly being built, so they are handled here rather than
      // through the plain factory registry.
      if (type == "link") {
        net::LinkConfig lc;
        lc.bandwidth_bps = arg_num(args, 0, 10e6, line_no);
        lc.base_latency = static_cast<rt::Time>(
            arg_num(args, 1, 20.0, line_no) * 1e6);  // ms
        lc.random_loss = arg_num(args, 2, 0.0, line_no);
        lc.jitter = static_cast<rt::Time>(
            arg_num(args, 3, 0.0, line_no) * 1e6);  // ms
        if (asmb.links.count(name) != 0) {
          throw ParseError(line_no, "duplicate link '" + name + "'");
        }
        asmb.links.emplace(name, std::make_unique<net::SimLink>(lc));
        continue;
      }
      if (type == "net_sender" || type == "net_receiver") {
        if (args.empty() || asmb.links.count(args[0]) == 0) {
          throw ParseError(line_no, type + " needs a declared link name");
        }
        net::SimLink& l = *asmb.links.at(args[0]);
        const std::string where = args.size() > 1 ? args[1] : "remote";
        std::unique_ptr<Component> c;
        if (type == "net_sender") {
          c = std::make_unique<net::NetSender>(name, l, where);
        } else {
          c = std::make_unique<net::NetReceiver>(name, l, where);
        }
        asmb.by_name[name] = c.get();
        asmb.components.push_back(std::move(c));
        continue;
      }
      if (type == "marshal" || type == "unmarshal") {
        const std::string codec = args.empty() ? "video" : args[0];
        if (codec != "video") {
          throw ParseError(line_no, "unknown codec '" + codec + "'");
        }
        std::unique_ptr<Component> c;
        if (type == "marshal") {
          c = std::make_unique<net::MarshalFilter>(
              name, media::encode_frame, codec);
        } else {
          c = std::make_unique<net::UnmarshalFilter>(
              name, media::decode_frame, codec);
        }
        asmb.by_name[name] = c.get();
        asmb.components.push_back(std::move(c));
        continue;
      }

      auto fit = factories_.find(type);
      if (fit == factories_.end()) {
        throw ParseError(line_no, "unknown component type '" + type + "'");
      }
      std::unique_ptr<Component> c;
      try {
        c = fit->second(name, args);
      } catch (const ParseError& e) {
        throw ParseError(line_no, e.what());
      } catch (const std::exception& e) {
        throw ParseError(line_no, std::string("cannot construct: ") +
                                      e.what());
      }
      asmb.by_name[name] = c.get();
      asmb.components.push_back(std::move(c));
      continue;
    }

    if (keyword == "connect" || keyword == "chain") {
      // connect a.P -> b.Q      /     chain a -> b -> c -> ...
      std::string rest;
      std::getline(ls, rest);
      std::vector<std::string> hops;
      for (std::string& part : split(rest, '>')) {
        if (!part.empty() && part.back() == '-') {
          part = trim(part.substr(0, part.size() - 1));
        }
        if (!part.empty()) hops.push_back(part);
      }
      if (hops.size() < 2) {
        throw ParseError(line_no, "expected at least two endpoints");
      }
      if (keyword == "connect" && hops.size() != 2) {
        throw ParseError(line_no, "'connect' takes exactly two endpoints");
      }
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        const PortRef from = parse_port_ref(hops[i], line_no);
        const PortRef to = parse_port_ref(hops[i + 1], line_no);
        try {
          asmb.pipeline.connect(lookup(from.name, line_no), from.port,
                                lookup(to.name, line_no), to.port);
        } catch (const CompositionError& e) {
          throw ParseError(line_no, e.what());
        }
      }
      continue;
    }

    throw ParseError(line_no, "unknown statement '" + keyword + "'");
  }
  return asmb;
}

}  // namespace infopipe::lang
