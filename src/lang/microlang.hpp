// The Infopipe Composition Microlanguage.
//
// The paper (§5, citing the Infosphere project plans) announces "an Infopipe
// Composition and Restructuring Microlanguage" as the successor to C++
// pipeline setup. This is that language, scoped to composition: a
// line-oriented configuration DSL that instantiates components from a
// factory registry and wires them into a Pipeline, with the same
// type-checking as the C++ API (bad polarity or Typespec mismatches are
// reported with line numbers).
//
//   # a local video player (the paper's §4 example)
//   let src     = mpeg_file(test.mpg, 300, 30)
//   let decode  = decoder()
//   let pump    = pump(30)
//   let display = display(30)
//   chain src -> decode -> pump -> display
//
// Multi-port components connect explicitly:
//
//   let tee = multicast(2)
//   connect pump.0 -> tee.0
//   connect tee.0 -> display.0
//   connect tee.1 -> recorder.0
//
// The standard library of types covers the toolkit components; applications
// register their own factories with register_type().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/pipeline.hpp"
#include "net/transport.hpp"

namespace infopipe::lang {

/// Parse or build failure; what() carries "line N: ..." context.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Creates a component. `name` is the instance name from the program;
/// `args` the comma-separated argument list (already trimmed).
using Factory = std::function<std::unique_ptr<Component>(
    const std::string& name, const std::vector<std::string>& args)>;

/// The built program: owns the components, any transports declared with
/// `let l = link(...)`, and the wired pipeline.
struct Assembly {
  std::vector<std::unique_ptr<Component>> components;
  std::map<std::string, Component*> by_name;
  std::map<std::string, std::unique_ptr<net::SimLink>> links;
  Pipeline pipeline;

  [[nodiscard]] net::SimLink& link(const std::string& name) const {
    return *links.at(name);
  }

  /// Typed access to an instance; throws std::out_of_range if absent.
  [[nodiscard]] Component& at(const std::string& name) const {
    return *by_name.at(name);
  }
  template <typename T>
  [[nodiscard]] T& as(const std::string& name) const {
    return dynamic_cast<T&>(at(name));
  }
};

class MicroLang {
 public:
  /// Registers the standard component library (see microlang.cpp for the
  /// full list: counting_source, mpeg_file, decoder, pump, buffer, tees,
  /// sinks, ...).
  MicroLang();

  /// Adds or replaces a component type.
  void register_type(std::string type, Factory factory);

  [[nodiscard]] bool has_type(const std::string& type) const {
    return factories_.count(type) != 0;
  }
  [[nodiscard]] std::vector<std::string> types() const;

  /// Parses and builds a program. Throws ParseError on syntax errors,
  /// unknown types/names, or connection errors (which carry the
  /// CompositionError text plus the line number).
  [[nodiscard]] Assembly parse(const std::string& program) const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace infopipe::lang
