#include "rt/io_bridge.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

namespace infopipe::rt {

namespace {

/// Write end of the signal self-pipe; read from the signal handler, so it
/// must be a lock-free atomic (async-signal-safe access only). Claimed by
/// the first bridge to watch a signal — NOT by every constructed bridge,
/// so multiple bridges (one per shard runtime) can coexist for fd watching.
std::atomic<int> g_signal_pipe_wr{-1};
static_assert(std::atomic<int>::is_always_lock_free);

extern "C" void io_bridge_signal_handler(int signo) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const auto byte = static_cast<std::uint8_t>(signo);
    // write(2) is async-signal-safe; a full pipe just drops the event.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

IoBridge::IoBridge(Runtime& rt) : rt_(&rt) {
  if (::pipe(control_pipe_) != 0) {
    throw std::runtime_error("IoBridge: cannot create control pipe");
  }
  set_nonblocking(control_pipe_[0]);
  set_nonblocking(control_pipe_[1]);
  poller_ = std::thread([this] { poll_loop(); });
}

IoBridge::~IoBridge() {
  // Restore handlers before tearing the pipe down so no signal races the
  // close; then stop the poller. The join is deterministic: either the wake
  // byte lands, or the pipe is full — in which case poll() sees POLLIN
  // anyway, the poller drains it and re-checks stop_.
  for (const auto& [signo, action] : saved_actions_) {
    ::sigaction(signo, &action, nullptr);
  }
  if (owns_signal_pipe_) {
    g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
  }
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
  poller_.join();
  ::close(control_pipe_[0]);
  ::close(control_pipe_[1]);
}

void IoBridge::watch_fd(int fd, ThreadId to) {
  {
    std::lock_guard lk(mutex_);
    fd_targets_[fd] = to;
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
}

void IoBridge::unwatch_fd(int fd) {
  {
    std::lock_guard lk(mutex_);
    fd_targets_.erase(fd);
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
}

void IoBridge::watch_readable_once(int fd, ThreadId to) {
  {
    std::lock_guard lk(mutex_);
    readable_once_[fd] = to;
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
}

void IoBridge::watch_writable_once(int fd, ThreadId to) {
  {
    std::lock_guard lk(mutex_);
    writable_once_[fd] = to;
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
}

void IoBridge::cancel_fd(int fd) {
  {
    std::lock_guard lk(mutex_);
    fd_targets_.erase(fd);
    readable_once_.erase(fd);
    writable_once_.erase(fd);
  }
  const std::uint8_t kWake = 0;
  [[maybe_unused]] ssize_t n = ::write(control_pipe_[1], &kWake, 1);
}

void IoBridge::watch_signal(int signo, ThreadId to) {
  if (!owns_signal_pipe_) {
    int expected = -1;
    if (!g_signal_pipe_wr.compare_exchange_strong(expected, control_pipe_[1],
                                                  std::memory_order_relaxed)) {
      throw RuntimeError(
          "IoBridge::watch_signal: another bridge already owns the signal "
          "self-pipe");
    }
    owns_signal_pipe_ = true;
  }
  {
    std::lock_guard lk(mutex_);
    signal_targets_[signo] = to;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &io_bridge_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  struct sigaction old;
  if (::sigaction(signo, &sa, &old) == 0) {
    saved_actions_.emplace(signo, old);
  }
}

void IoBridge::handle_signal_byte(std::uint8_t signo) {
  if (signo == 0) return;  // plain wake-up byte
  ThreadId to = kNoThread;
  {
    std::lock_guard lk(mutex_);
    auto it = signal_targets_.find(signo);
    if (it != signal_targets_.end()) to = it->second;
  }
  if (to != kNoThread) {
    Message m{kMsgIoSignal, MsgClass::kControl};
    m.payload = static_cast<int>(signo);
    rt_->post_external(to, std::move(m));
  }
}

void IoBridge::poll_loop() {
  // Parallel to the pollfd array: what kind of watch each entry serves.
  enum class Kind : std::uint8_t { kControl, kStream, kReadOnce, kWriteOnce };
  std::vector<pollfd> fds;
  std::vector<Kind> kinds;
  for (;;) {
    fds.clear();
    kinds.clear();
    fds.push_back(pollfd{control_pipe_[0], POLLIN, 0});
    kinds.push_back(Kind::kControl);
    {
      std::lock_guard lk(mutex_);
      if (stop_) return;
      for (const auto& [fd, target] : fd_targets_) {
        fds.push_back(pollfd{fd, POLLIN, 0});
        kinds.push_back(Kind::kStream);
      }
      for (const auto& [fd, target] : readable_once_) {
        fds.push_back(pollfd{fd, POLLIN, 0});
        kinds.push_back(Kind::kReadOnce);
      }
      for (const auto& [fd, target] : writable_once_) {
        fds.push_back(pollfd{fd, POLLOUT, 0});
        kinds.push_back(Kind::kWriteOnce);
      }
    }
    // No timeout: every mutation (watch/unwatch/stop/signal) writes a wake
    // byte, so blocking indefinitely is safe and shutdown is deterministic.
    const int rc = ::poll(fds.data(), fds.size(), /*timeout ms=*/-1);
    if (rc < 0) continue;  // EINTR etc.

    // Control pipe: wake-ups and signal bytes.
    if ((fds[0].revents & POLLIN) != 0) {
      std::uint8_t buf[64];
      ssize_t n;
      while ((n = ::read(control_pipe_[0], buf, sizeof buf)) > 0) {
        for (ssize_t i = 0; i < n; ++i) handle_signal_byte(buf[i]);
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (kinds[i] == Kind::kReadOnce || kinds[i] == Kind::kWriteOnce) {
        // One-shot readiness: notify (if still armed) and drop the watch.
        // POLLERR/POLLHUP/POLLNVAL also fire the notification — the
        // consumer's own read()/write()/getsockopt() sees the error; what
        // must not happen is a silent hang (or, for a cancelled+closed fd,
        // a POLLNVAL busy loop — the map erase below guarantees progress).
        const short want = static_cast<short>(
            (kinds[i] == Kind::kReadOnce ? POLLIN : POLLOUT) | POLLERR |
            POLLHUP | POLLNVAL);
        if ((fds[i].revents & want) == 0) continue;
        auto& map =
            kinds[i] == Kind::kReadOnce ? readable_once_ : writable_once_;
        ThreadId to = kNoThread;
        {
          std::lock_guard lk(mutex_);
          auto it = map.find(fds[i].fd);
          if (it != map.end()) {
            to = it->second;
            map.erase(it);
          }
        }
        if (to == kNoThread) continue;  // cancelled meanwhile
        Message m{kinds[i] == Kind::kReadOnce ? kMsgIoReadable : kMsgIoWritable,
                  MsgClass::kData};
        m.payload = fds[i].fd;
        rt_->post_external(to, std::move(m));
        continue;
      }
      if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      ThreadId to = kNoThread;
      {
        std::lock_guard lk(mutex_);
        auto it = fd_targets_.find(fds[i].fd);
        if (it != fd_targets_.end()) to = it->second;
      }
      if (to == kNoThread) continue;
      std::vector<std::uint8_t> data(64 * 1024);
      const ssize_t n = ::read(fds[i].fd, data.data(), data.size());
      if (n > 0) {
        data.resize(static_cast<std::size_t>(n));
        Message m{kMsgIoData, MsgClass::kData};
        m.payload = std::move(data);
        rt_->post_external(to, std::move(m));
      } else if (n == 0) {
        Message m{kMsgIoEof, MsgClass::kData};
        m.payload = fds[i].fd;
        rt_->post_external(to, std::move(m));
        std::lock_guard lk(mutex_);
        fd_targets_.erase(fds[i].fd);
      }
    }
  }
}

}  // namespace infopipe::rt
