#include "rt/clock.hpp"

#include <chrono>
#include <thread>

namespace infopipe::rt {

namespace {
Time steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : epoch_(steady_now_ns()) {}

Time RealClock::now() const { return steady_now_ns() - epoch_; }

void RealClock::wait_until(Time t) {
  std::unique_lock lk(m_);
  const Time delta = t - now();
  if (delta > 0) {
    cv_.wait_for(lk, std::chrono::nanoseconds(delta),
                 [this] { return interrupted_; });
  }
  interrupted_ = false;
}

void RealClock::interrupt_wait() {
  {
    std::lock_guard lk(m_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

}  // namespace infopipe::rt
