// Inter-thread messages.
//
// All interaction between user-level threads is message passing (§4 of the
// paper): network packets, timer expirations and control events are all
// mapped onto this one interface. Messages may carry a scheduling
// Constraint; while a thread processes a constrained message, the
// constraint's priority — not the thread's static priority — determines the
// thread's effective priority, and the constraint is inherited by messages
// the handler sends (the paper: "messages between coroutines inherit the
// constraint from the message received by the sending component, applying
// the constraint to the entire coroutine set").
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <utility>

#include "rt/types.hpp"

namespace infopipe::rt {

/// Broad delivery class of a message; receive() filters use it to implement
/// "block in a pull but stay responsive to control events" (§3.2/§4).
enum class MsgClass : std::uint8_t {
  kData,     ///< data items travelling through the pipeline
  kControl,  ///< control events; dispatched ahead of queued data
  kReply,    ///< reply to a synchronous call()
  kTimer,    ///< timer expiry injected by the runtime
  kSystem,   ///< runtime-internal (thread start/stop bookkeeping)
};

/// Scheduling constraint attached to a message (deadline-style).
/// `priority` overrides the processing thread's static priority while the
/// message is being handled; `deadline` breaks ties between equal-priority
/// ready threads (earliest first).
struct Constraint {
  Priority priority = kPriorityData;
  Time deadline = kTimeNever;

  friend bool operator==(const Constraint&, const Constraint&) = default;
};

/// A message. Cheap to move; payload is type-erased.
struct Message {
  /// Application-defined discriminator (e.g. event kind, port index).
  int type = 0;
  MsgClass cls = MsgClass::kData;
  ThreadId sender = kNoThread;
  /// Correlates call() requests with their replies; 0 for one-way sends.
  std::uint64_t request_id = 0;
  std::optional<Constraint> constraint;
  std::any payload;

  Message() = default;
  Message(int t, MsgClass c) : type(t), cls(c) {}
  Message(int t, MsgClass c, std::any p)
      : type(t), cls(c), payload(std::move(p)) {}

  /// Convenience typed access; returns nullptr if the payload holds a
  /// different type (or nothing).
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    return std::any_cast<T>(&payload);
  }
  template <typename T>
  [[nodiscard]] T* get() noexcept {
    return std::any_cast<T>(&payload);
  }

  /// Move the payload out, asserting its type. Throws std::bad_any_cast on
  /// mismatch.
  template <typename T>
  [[nodiscard]] T take() {
    return std::any_cast<T>(std::move(payload));
  }
};

}  // namespace infopipe::rt
