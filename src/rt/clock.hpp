// Clock abstraction: the scheduler is written against this interface so the
// whole middleware can run either against the machine's monotonic clock or
// against a deterministic virtual clock (discrete-event simulation).
//
// The paper evaluated on real hardware with a real clock; we default to the
// virtual clock so every experiment in bench/ is deterministic and fast, and
// provide RealClock for wall-clock runs (see DESIGN.md §3, substitutions).
#pragma once

#include <condition_variable>
#include <mutex>

#include "rt/types.hpp"

namespace infopipe::rt {

/// Interface used by the Runtime for all time queries and idle waits.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time.
  [[nodiscard]] virtual Time now() const = 0;

  /// Returns true if the clock can be advanced programmatically (virtual
  /// time). The scheduler uses this to decide whether an idle period should
  /// jump the clock forward or block the hosting OS thread.
  [[nodiscard]] virtual bool is_virtual() const = 0;

  /// Wait until `t`. VirtualClock jumps immediately; RealClock sleeps the
  /// hosting OS thread. Called by the scheduler only when no user-level
  /// thread is runnable.
  virtual void wait_until(Time t) = 0;

  /// Wakes a wait_until() in progress (thread-safe). Used when external
  /// messages are posted from other OS threads (rt::IoBridge); a virtual
  /// clock never blocks, so the default is a no-op.
  virtual void interrupt_wait() {}
};

/// Deterministic discrete-event clock. Time advances only via wait_until()
/// (from the idle scheduler) or advance_to() (from tests).
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Time start = 0) : now_(start) {}

  [[nodiscard]] Time now() const override { return now_; }
  [[nodiscard]] bool is_virtual() const override { return true; }
  void wait_until(Time t) override { advance_to(t); }

  /// Move time forward. Moving backwards is a programming error and is
  /// ignored (time is monotonic).
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }
  void advance_by(Time d) { advance_to(now_ + d); }

 private:
  Time now_;
};

/// Monotonic wall-clock. now() is steady_clock relative to construction so
/// that timestamps are small and comparable with VirtualClock traces.
class RealClock final : public Clock {
 public:
  RealClock();

  [[nodiscard]] Time now() const override;
  [[nodiscard]] bool is_virtual() const override { return false; }
  void wait_until(Time t) override;
  void interrupt_wait() override;

 private:
  Time epoch_;  // steady_clock time at construction, in ns
  std::mutex m_;
  std::condition_variable cv_;
  bool interrupted_ = false;
};

}  // namespace infopipe::rt
