// User-level threads: a code function plus a queue of incoming messages.
//
// Unlike conventional threads, the code function is not called at thread
// creation time but each time a message is received; after processing a
// message the code function returns, and the thread is terminated only when
// the return code says so. Code functions thus resemble event handlers, but
// may also suspend mid-message (receive(), sleep) or be preempted — the
// "extended finite state machine" model of §4.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "rt/context.hpp"
#include "rt/message.hpp"
#include "rt/stack.hpp"
#include "rt/types.hpp"

namespace infopipe::rt {

class Runtime;

/// The per-message body of a thread. Invoked by the runtime once per
/// dequeued message; may call back into the Runtime to send, call, receive
/// or sleep (all of which are suspension points).
using CodeFunction = std::function<CodeResult(Runtime&, Message)>;

/// Thread states, visible for tests and diagnostics.
enum class ThreadState : std::uint8_t {
  kReady,       ///< runnable, waiting for the CPU
  kRunning,     ///< currently executing
  kWaitingMsg,  ///< suspended in receive() / between messages
  kSleeping,    ///< suspended in sleep_until()
  kDone,        ///< code function returned kTerminate
};

/// One user-level thread. Owned by the Runtime; applications refer to
/// threads only by ThreadId.
class UThread {
 public:
  UThread(ThreadId id, std::string name, Priority priority, CodeFunction code,
          std::size_t stack_size);

  UThread(const UThread&) = delete;
  UThread& operator=(const UThread&) = delete;

  [[nodiscard]] ThreadId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ThreadState state() const noexcept { return state_; }
  [[nodiscard]] Priority static_priority() const noexcept {
    return static_priority_;
  }

  /// Effective priority: the maximum of the static priority, the constraint
  /// of the message currently being processed (or, when waiting for the CPU
  /// with a non-empty queue, of the first queued message), and any priority
  /// inherited from callers blocked on a synchronous call to this thread.
  [[nodiscard]] Priority effective_priority() const noexcept;

  /// Deadline used to break priority ties (earlier wins); from the same
  /// source as effective_priority().
  [[nodiscard]] Time effective_deadline() const noexcept;

 private:
  friend class Runtime;

  ThreadId id_;
  std::string name_;
  Priority static_priority_;
  CodeFunction code_;
  Stack stack_;
  Context context_;
  ThreadState state_ = ThreadState::kWaitingMsg;
  bool started_ = false;  ///< context initialized and entered at least once

  std::deque<Message> mailbox_;
  /// Number of control-class messages currently queued; lets the dispatcher
  /// skip the control-first scan in the (dominant) no-control case.
  std::size_t queued_control_ = 0;
  /// Constraint of the message currently being processed, if any.
  std::optional<Constraint> active_constraint_;
  /// Priorities donated by callers blocked in call() on this thread.
  std::vector<Priority> inherited_;
  /// Wake-up time when kSleeping.
  Time wake_time_ = kTimeNever;
  /// Monotone sequence for FIFO order among equal-priority ready threads.
  std::uint64_t ready_seq_ = 0;
};

}  // namespace infopipe::rt
