// Execution stacks for user-level threads.
//
// Stacks are mmap-allocated with an inaccessible guard page below the usable
// region, so a stack overflow in component code faults immediately instead of
// silently corrupting a neighbouring thread's stack — the classic failure
// mode of user-level thread packages.
#pragma once

#include <cstddef>

namespace infopipe::rt {

/// RAII mmap'd stack with a PROT_NONE guard page at the low end.
/// Move-only; the mapping is released on destruction.
class Stack {
 public:
  static constexpr std::size_t kDefaultSize = 128 * 1024;

  /// Allocates `usable_size` bytes of stack (rounded up to the page size)
  /// plus one guard page. Throws std::bad_alloc on mmap failure.
  explicit Stack(std::size_t usable_size = kDefaultSize);
  ~Stack();

  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  /// Highest usable address (stacks grow down on all supported targets).
  /// 16-byte aligned.
  [[nodiscard]] void* top() const noexcept;

  /// Lowest usable address (just above the guard page).
  [[nodiscard]] void* base() const noexcept { return usable_base_; }

  [[nodiscard]] std::size_t usable_size() const noexcept {
    return usable_size_;
  }

 private:
  void release() noexcept;

  void* map_base_ = nullptr;    // start of the whole mapping (guard page)
  void* usable_base_ = nullptr; // first usable byte
  std::size_t map_size_ = 0;
  std::size_t usable_size_ = 0;
};

}  // namespace infopipe::rt
