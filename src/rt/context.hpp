// Low-level execution-context switching for user-level threads.
//
// Two implementations are provided:
//  * a hand-rolled System-V x86-64 switch (~tens of nanoseconds) that saves
//    exactly the callee-saved register set — this is what lets the package
//    reproduce the paper's "context switch takes about 1 microsecond; a mere
//    function call is two orders of magnitude shorter" measurement shape on
//    modern hardware, and
//  * a portable ucontext(3) fallback (selected on other architectures or via
//    -DIP_RT_FORCE_UCONTEXT), which is slower because every swapcontext
//    performs a sigprocmask system call.
//
// Under AddressSanitizer, every switch is bracketed with the sanitizer's
// fiber annotations (__sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber) so that ASan tracks the active stack
// correctly across user-level threads; without them the Sanitize build
// reports false stack-buffer overflows the moment a pipeline thread runs.
// Under ThreadSanitizer the equivalent fiber API (__tsan_create_fiber /
// __tsan_switch_to_fiber / __tsan_destroy_fiber) is used so that TSan
// attributes happens-before edges to the right logical thread across
// user-level switches; without it the Thread build reports false races
// between every pair of fibers sharing a kernel thread.
#pragma once

#include <cstddef>

#if !defined(__x86_64__) || defined(IP_RT_FORCE_UCONTEXT)
#define IP_RT_UCONTEXT 1
#include <ucontext.h>
#else
#define IP_RT_UCONTEXT 0
#endif

namespace infopipe::rt {

/// An entry point for a fresh context. Receives the opaque argument given to
/// Context::init(). Must never return: the final act of a thread must be a
/// switch away from its context.
using ContextEntry = void (*)(void* arg);

/// A suspended (or not-yet-started) flow of control. POD-ish: no ownership
/// of the stack, which must outlive the context. A Context must not move
/// after init() (the prepared frame points back into it).
class Context {
 public:
  Context() = default;
  /// Releases the TSan fiber created by init(), if any (no-op elsewhere).
  ~Context();

  /// Prepare this context to run `entry(arg)` on the stack whose highest
  /// usable, 16-byte-aligned address is `stack_top` (stack grows down).
  void init(void* stack_top, std::size_t stack_size, ContextEntry entry,
            void* arg);

  /// Suspend `from`, resume `to`. Returns when some other context switches
  /// back to `from`.
  static void switch_to(Context& from, Context& to);

  /// Internal: first C++ code on a fresh context; completes the sanitizer
  /// fiber switch, then runs the user entry. `self` is the Context.
  static void entry_shim(void* self);

 private:
#if IP_RT_UCONTEXT
  ucontext_t uctx_{};
#else
  void* sp_ = nullptr;  // saved stack pointer; everything else lives on-stack
#endif
  ContextEntry entry_ = nullptr;
  void* arg_ = nullptr;
  // Stack bounds for the sanitizer fiber annotations. Contexts that were
  // never init()ed (the scheduler running on the OS thread stack) learn
  // their bounds lazily from the first switch away.
  void* stack_bottom_ = nullptr;
  std::size_t stack_size_ = 0;
  void* fake_stack_ = nullptr;  // ASan fake-stack save slot
  // TSan fiber handle. init()ed contexts own a created fiber; contexts that
  // were never init()ed (the scheduler on the OS-thread stack) borrow the
  // kernel thread's implicit fiber at the first switch away.
  void* tsan_fiber_ = nullptr;
  bool tsan_fiber_owned_ = false;
};

}  // namespace infopipe::rt
