#include "rt/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "replay/hooks.hpp"

namespace infopipe::rt {

namespace {
/// The runtime whose run() is active on this OS thread. Set for the duration
/// of run()/run_until() so thread entry functions can find their scheduler.
thread_local Runtime* g_active_runtime = nullptr;

struct ActiveRuntimeScope {
  explicit ActiveRuntimeScope(Runtime* rt) : prev(g_active_runtime) {
    g_active_runtime = rt;
  }
  ~ActiveRuntimeScope() { g_active_runtime = prev; }
  Runtime* prev;
};
}  // namespace

Runtime::Runtime(std::unique_ptr<Clock> clock, Options options)
    : clock_(clock ? std::move(clock) : std::make_unique<VirtualClock>()),
      options_(options),
      pool_(&mem::Pool::create("rt")) {
  metrics_.set_time_source([this] { return clock_->now(); });
  tracer_.set_time_source([this] { return clock_->now(); });
  // The scheduler's hot-path counters live in the plain Stats struct (an
  // increment costs one add); this collector publishes them into snapshots.
  // The pool's counters ride along, so every --metrics-out dump shows the
  // item path's allocation behaviour.
  metrics_.add_collector([this](obs::MetricsSnapshot& s) {
    s.add_counter("rt.context_switches", stats_.context_switches);
    s.add_counter("rt.messages_sent", stats_.messages_sent);
    s.add_counter("rt.messages_dropped", stats_.messages_dropped);
    s.add_counter("rt.timer_wakeups", stats_.timer_wakeups);
    s.add_counter("rt.threads_spawned", stats_.threads_spawned);
    s.add_counter("rt.preemptions", stats_.preemptions);
    s.add_counter("rt.dispatches", stats_.dispatches);
    s.add_gauge("rt.live_threads", static_cast<double>(live_threads()));
    const mem::Pool::Stats ps = pool_->stats();
    s.add_counter("mem.pool.hits", ps.hits);
    s.add_counter("mem.pool.misses", ps.misses);
    s.add_counter("mem.pool.recycled", ps.recycled);
    s.add_counter("mem.pool.foreign_returned", ps.foreign_returned);
    s.add_counter("mem.pool.foreign_adopted", ps.foreign_adopted);
    s.add_counter("mem.pool.oversize", ps.oversize);
    s.add_gauge("mem.pool.slab_bytes", static_cast<double>(ps.slab_bytes));
    s.add_gauge("mem.pool.numa_node", static_cast<double>(pool_->numa_node()));
  });
}

Runtime::~Runtime() {
  // The pool is immortal (payloads may outlive this runtime), but its owner
  // thread is gone: foreign returns must adopt from now on.
  pool_->detach();
}

// ---- Thread management -----------------------------------------------------

ThreadId Runtime::spawn(std::string name, Priority priority, CodeFunction code,
                        std::size_t stack_size) {
  const ThreadId id = next_id_++;
  auto t = std::make_unique<UThread>(id, std::move(name), priority,
                                     std::move(code), stack_size);
  threads_.emplace(id, std::move(t));
  ++stats_.threads_spawned;
  return id;
}

bool Runtime::alive(ThreadId id) const noexcept {
  auto it = threads_.find(id);
  return it != threads_.end() && it->second->state_ != ThreadState::kDone;
}

ThreadId Runtime::current() const noexcept { return current_; }

UThread* Runtime::thread(ThreadId id) noexcept {
  auto it = threads_.find(id);
  return it == threads_.end() ? nullptr : it->second.get();
}

UThread* Runtime::current_thread() noexcept {
  return current_ == kNoThread ? nullptr : thread(current_);
}

UThread& Runtime::require_current(const char* op) {
  UThread* t = current_thread();
  if (t == nullptr) {
    throw RuntimeError(std::string(op) +
                       " may only be called from inside a user-level thread");
  }
  return *t;
}

void Runtime::kill(ThreadId id) {
  UThread* t = thread(id);
  if (t == nullptr || t->state_ == ThreadState::kDone) return;
  t->state_ = ThreadState::kDone;
  t->mailbox_.clear();
  t->queued_control_ = 0;
  if (id == current_) suspend_current();  // never returns to the killed thread
}

std::size_t Runtime::live_threads() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, t] : threads_) {
    if (t->state_ != ThreadState::kDone) ++n;
  }
  return n;
}

// ---- Messaging ---------------------------------------------------------------

void Runtime::send(ThreadId to, Message m) {
  UThread* target = thread(to);
  if (target == nullptr || target->state_ == ThreadState::kDone) {
    ++stats_.messages_dropped;
    return;
  }
  if (UThread* me = current_thread()) {
    if (m.sender == kNoThread) m.sender = me->id();
    // Constraint inheritance (§4): a message sent while processing a
    // constrained message carries that constraint onwards, so a pump's
    // constraint governs its whole coroutine set.
    if (!m.constraint && me->active_constraint_) {
      m.constraint = me->active_constraint_;
    }
  }
  if (m.cls == MsgClass::kControl) ++target->queued_control_;
  target->mailbox_.push_back(std::move(m));
  ++stats_.messages_sent;
  make_ready(*target);
  maybe_preempt(*target);
}

void Runtime::post_external(ThreadId to, Message m) {
  {
    std::lock_guard lk(external_mutex_);
    external_.emplace_back(to, std::move(m));
    external_pending_.store(true, std::memory_order_release);
  }
  clock_->interrupt_wait();
  if (notifier_) notifier_();
}

void Runtime::send_at(Time t, ThreadId to, Message m) {
  timers_.push_back(TimerEntry{t, next_seq_++, to, std::move(m)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
}

std::size_t Runtime::cancel_timers(ThreadId to, int type) {
  const auto dead = [&](const TimerEntry& e) {
    return e.target == to && e.message.has_value() && e.message->type == type;
  };
  const auto it = std::remove_if(timers_.begin(), timers_.end(), dead);
  const auto n = static_cast<std::size_t>(timers_.end() - it);
  if (n > 0) {
    timers_.erase(it, timers_.end());
    std::make_heap(timers_.begin(), timers_.end(), TimerLater{});
  }
  return n;
}

Message Runtime::call(ThreadId to, Message m) {
  UThread& me = require_current("call");
  UThread* target = thread(to);
  if (target == nullptr || target->state_ == ThreadState::kDone) {
    throw RuntimeError("call() to dead thread");
  }
  m.sender = me.id();
  m.request_id = next_request_id_++;
  const std::uint64_t rid = m.request_id;

  // One-level priority inheritance: boost the callee to our effective
  // priority until the reply arrives.
  const Priority donated = me.effective_priority();
  if (options_.priority_inheritance) target->inherited_.push_back(donated);

  send(to, std::move(m));
  Message rep = receive_matching([rid](const Message& x) {
    return x.cls == MsgClass::kReply && x.request_id == rid;
  });

  if (options_.priority_inheritance) {
    if (UThread* t2 = thread(to)) {
      auto it =
          std::find(t2->inherited_.begin(), t2->inherited_.end(), donated);
      if (it != t2->inherited_.end()) t2->inherited_.erase(it);
    }
  }
  return rep;
}

void Runtime::reply(const Message& request, Message response) {
  response.cls = MsgClass::kReply;
  response.request_id = request.request_id;
  send(request.sender, std::move(response));
}

// ---- Blocking primitives ------------------------------------------------------

Message Runtime::pop_next_message(UThread& t) {
  // Control events overtake queued data (§2.2: handlers for control events
  // "are executed with higher priority than potentially long-running data
  // processing"). The queued_control_ counter keeps the common no-control
  // case O(1) even with huge backlogs.
  if (options_.control_overtakes_data && t.queued_control_ > 0) {
    for (auto it = t.mailbox_.begin(); it != t.mailbox_.end(); ++it) {
      if (it->cls == MsgClass::kControl) {
        Message m = std::move(*it);
        t.mailbox_.erase(it);
        --t.queued_control_;
        return m;
      }
    }
  }
  Message m = std::move(t.mailbox_.front());
  t.mailbox_.pop_front();
  if (m.cls == MsgClass::kControl) --t.queued_control_;
  return m;
}

Message Runtime::receive() {
  UThread& me = require_current("receive");
  for (;;) {
    if (!me.mailbox_.empty()) return pop_next_message(me);
    me.state_ = ThreadState::kWaitingMsg;
    suspend_current();
  }
}

Message Runtime::receive_matching(const MsgPredicate& pred) {
  UThread& me = require_current("receive_matching");
  for (;;) {
    for (auto it = me.mailbox_.begin(); it != me.mailbox_.end(); ++it) {
      if (pred(*it)) {
        Message m = std::move(*it);
        if (m.cls == MsgClass::kControl) --me.queued_control_;
        me.mailbox_.erase(it);
        return m;
      }
    }
    me.state_ = ThreadState::kWaitingMsg;
    suspend_current();
  }
}

std::optional<Message> Runtime::try_receive(const MsgPredicate& pred) {
  UThread& me = require_current("try_receive");
  for (auto it = me.mailbox_.begin(); it != me.mailbox_.end(); ++it) {
    if (pred(*it)) {
      Message m = std::move(*it);
      if (m.cls == MsgClass::kControl) --me.queued_control_;
      me.mailbox_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Runtime::has_message(const MsgPredicate& pred) {
  UThread& me = require_current("has_message");
  return std::any_of(me.mailbox_.begin(), me.mailbox_.end(), pred);
}

void Runtime::sleep_until(Time t) {
  UThread& me = require_current("sleep_until");
  if (t <= now()) {
    yield();
    return;
  }
  me.wake_time_ = t;
  me.state_ = ThreadState::kSleeping;
  timers_.push_back(TimerEntry{t, next_seq_++, me.id(), std::nullopt});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  suspend_current();
}

void Runtime::set_active_constraint(std::optional<Constraint> c) {
  UThread& me = require_current("set_active_constraint");
  me.active_constraint_ = std::move(c);
}

void Runtime::yield() {
  UThread& me = require_current("yield");
  me.state_ = ThreadState::kReady;
  me.ready_seq_ = next_seq_++;
  suspend_current();
}

// ---- Scheduling internals ------------------------------------------------------

void Runtime::thread_entry(void* arg) {
  auto* t = static_cast<UThread*>(arg);
  Runtime* rt = g_active_runtime;
  assert(rt != nullptr && "thread resumed outside an active Runtime::run()");
  rt->thread_main(*t);
  // thread_main never returns (it ends with a suspend in state kDone), but
  // keep the compiler honest:
  std::terminate();
}

void Runtime::thread_main(UThread& t) {
  for (;;) {
    if (t.mailbox_.empty()) {
      t.state_ = ThreadState::kWaitingMsg;
      suspend_current();
      continue;
    }
    Message m = pop_next_message(t);
    ++stats_.dispatches;
    // The dispatch choice IS the per-runtime schedule (ARCHITECTURE §18);
    // one relaxed load + branch when no recorder is installed.
    replay::note_dispatch(this, t.id(), m.type);
    t.active_constraint_ = m.constraint;
    CodeResult r = CodeResult::kTerminate;
    try {
      r = t.code_(*this, std::move(m));
    } catch (...) {
      errors_.emplace_back(t.name(), std::current_exception());
    }
    t.active_constraint_.reset();
    if (r == CodeResult::kTerminate) break;
    if (t.state_ == ThreadState::kDone) break;  // killed from within
  }
  t.state_ = ThreadState::kDone;
  suspend_current();
  std::terminate();  // unreachable: the scheduler never resumes a dead thread
}

void Runtime::suspend_current() {
  UThread* me = current_thread();
  assert(me != nullptr);
  current_ = kNoThread;
  ++stats_.context_switches;
  Context::switch_to(me->context_, sched_ctx_);
}

void Runtime::make_ready(UThread& t) {
  if (t.state_ == ThreadState::kWaitingMsg) {
    t.state_ = ThreadState::kReady;
    t.ready_seq_ = next_seq_++;
  }
  // Sleeping threads are not interruptible by messages; they pick the
  // message up when their timer fires. Running/ready threads need nothing.
}

void Runtime::maybe_preempt(const UThread& t) {
  if (!options_.preemption) return;
  UThread* me = current_thread();
  if (me == nullptr || me->id() == t.id()) return;
  if (t.state_ != ThreadState::kReady) return;
  if (t.effective_priority() > me->effective_priority()) {
    me->state_ = ThreadState::kReady;
    me->ready_seq_ = next_seq_++;
    ++stats_.preemptions;
    suspend_current();
  }
}

void Runtime::fire_due_timers() {
  const Time t_now = now();
  while (!timers_.empty() && timers_.front().when <= t_now) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    TimerEntry e = std::move(timers_.back());
    timers_.pop_back();
    ++stats_.timer_wakeups;
    IP_OBS_TRACE(tracer_, obs::Hop::kTimerFire, "rt",
                 static_cast<std::int64_t>(e.target));
    replay::note_timer(this, e.when, e.target);
    if (e.message) {
      send(e.target, std::move(*e.message));
    } else if (UThread* t = thread(e.target);
               t != nullptr && t->state_ == ThreadState::kSleeping &&
               t->wake_time_ == e.when) {
      t->wake_time_ = kTimeNever;
      t->state_ = ThreadState::kReady;
      t->ready_seq_ = next_seq_++;
    }
  }
}

UThread* Runtime::pick_next() {
  UThread* best = nullptr;
  for (auto& [id, t] : threads_) {
    if (t->state_ != ThreadState::kReady) continue;
    if (best == nullptr) {
      best = t.get();
      continue;
    }
    const Priority pb = best->effective_priority();
    const Priority pt = t->effective_priority();
    if (pt != pb) {
      if (pt > pb) best = t.get();
      continue;
    }
    const Time db = best->effective_deadline();
    const Time dt = t->effective_deadline();
    if (dt != db) {
      if (dt < db) best = t.get();
      continue;
    }
    if (t->ready_seq_ < best->ready_seq_) best = t.get();
  }
  return best;
}

bool Runtime::step(Time horizon) {
  // Externally injected messages (thread-safe path) enter the normal
  // delivery machinery here, on the scheduler's own OS thread.
  if (external_pending_.load(std::memory_order_acquire)) {
    std::vector<std::pair<ThreadId, Message>> batch;
    {
      std::lock_guard lk(external_mutex_);
      batch.swap(external_);
      external_pending_.store(false, std::memory_order_release);
    }
    for (auto& [to, msg] : batch) send(to, std::move(msg));
  }

  // Reap terminated threads.
  for (auto it = threads_.begin(); it != threads_.end();) {
    if (it->second->state_ == ThreadState::kDone && it->second->started_) {
      it = threads_.erase(it);
    } else if (it->second->state_ == ThreadState::kDone) {
      it = threads_.erase(it);  // never started; nothing on its stack
    } else {
      ++it;
    }
  }

  fire_due_timers();

  if (UThread* t = pick_next()) {
    if (!t->started_) {
      t->context_.init(t->stack_.top(), t->stack_.usable_size(),
                       &Runtime::thread_entry, t);
      t->started_ = true;
    }
    t->state_ = ThreadState::kRunning;
    current_ = t->id();
    ++stats_.context_switches;
    Context::switch_to(sched_ctx_, t->context_);
    current_ = kNoThread;
    return true;
  }

  // Idle: advance to the earliest timer within the horizon.
  if (!timers_.empty() && timers_.front().when <= horizon) {
    clock_->wait_until(timers_.front().when);
    fire_due_timers();
    return true;
  }
  return false;
}

void Runtime::run() { run_until(kTimeNever); }

void Runtime::run_until(Time t) {
  if (in_run_) throw RuntimeError("Runtime::run() is not reentrant");
  in_run_ = true;
  stop_requested_ = false;
  ActiveRuntimeScope scope(this);
  // Item::of inside hosted threads allocates from this runtime's pool; the
  // scope also marks this kernel thread as the pool's owner for recycling.
  mem::PoolScope pool_scope(pool_);
  for (;;) {
    while (!stop_requested_ && !halted() && step(t)) {
    }
    if (stop_requested_ || halted() || t == kTimeNever ||
        clock_->is_virtual() || now() >= t) {
      break;
    }
    // Real clock with a finite horizon: quiescent but early. Block until
    // the horizon — interruptibly, so post_external() resumes stepping.
    clock_->wait_until(t);
  }
  in_run_ = false;
  if (t != kTimeNever && clock_->is_virtual() && now() < t) {
    static_cast<VirtualClock&>(*clock_).advance_to(t);
  }
  if (!errors_.empty()) {
    auto [name, ep] = errors_.front();
    errors_.clear();
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      throw RuntimeError("uncaught exception in thread '" + name +
                         "': " + e.what());
    }
  }
}

void Runtime::run_service(Doorbell& bell) {
  using SteadyClock = std::chrono::steady_clock;
  while (!halted()) {
    // Wall-clock busy/idle split for the load accountant (ip_balance): time
    // inside run() is busy, time parked on the bell is idle. Measured with
    // the OS steady clock — NOT this runtime's (possibly virtual) clock —
    // because the question is how loaded the hosting kernel thread is.
    const auto t0 = SteadyClock::now();
    run();
    const auto t1 = SteadyClock::now();
    service_busy_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        std::memory_order_relaxed);
    if (halted()) break;
    // Quiescent. Work injected between run() returning and wait() parks is
    // not lost: post_external rings the bell (sticky counter), and
    // request_halt() is followed by a ring from the caller.
    bell.wait();
    service_idle_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - t1)
            .count(),
        std::memory_order_relaxed);
  }
}

}  // namespace infopipe::rt
