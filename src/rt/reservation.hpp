// CPU reservations (§3.1): "At setup, [pumps] can make reservations, if
// supported, according to estimated or worst case execution times of the
// pipeline stages they run."
//
// Classic rate-monotonic style admission control over (period, budget)
// pairs: a reservation claims budget/period of the CPU; the manager admits
// a new claim only while the total utilization stays within capacity.
// Enforcement is by admission — the cooperative scheduler cannot revoke a
// running slice — which matches the paper's "if supported" framing: the
// pump's contract with the scheduler is declared and checked at setup time.
#pragma once

#include <map>

#include "rt/types.hpp"

namespace infopipe::rt {

struct Reservation {
  Time period = 0;  ///< cycle period, ns
  Time budget = 0;  ///< worst-case execution time per cycle, ns

  [[nodiscard]] double utilization() const {
    return period > 0 ? static_cast<double>(budget) /
                            static_cast<double>(period)
                      : 0.0;
  }
};

class ReservationManager {
 public:
  /// `capacity` in CPU fractions; 1.0 = one processor's worth.
  explicit ReservationManager(double capacity = 1.0) : capacity_(capacity) {}

  /// Attempts to reserve for `owner`. Replaces any existing reservation of
  /// the same owner. Returns false (leaving prior state intact) when the
  /// total utilization would exceed the capacity.
  bool admit(ThreadId owner, Reservation r) {
    if (r.period <= 0 || r.budget < 0 || r.budget > r.period) return false;
    double others = 0.0;
    for (const auto& [id, res] : table_) {
      if (id != owner) others += res.utilization();
    }
    if (others + r.utilization() > capacity_ + 1e-12) return false;
    table_[owner] = r;
    return true;
  }

  void release(ThreadId owner) { table_.erase(owner); }

  [[nodiscard]] bool holds(ThreadId owner) const {
    return table_.count(owner) != 0;
  }

  [[nodiscard]] double utilization() const {
    double u = 0.0;
    for (const auto& [id, res] : table_) u += res.utilization();
    return u;
  }

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t count() const noexcept { return table_.size(); }

 private:
  double capacity_;
  std::map<ThreadId, Reservation> table_;
};

}  // namespace infopipe::rt
