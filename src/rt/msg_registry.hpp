// Central registry of rt message-type constants.
//
// Every subsystem that speaks through the Runtime's mailboxes discriminates
// its messages with a plain `int type`. Those constants used to be scattered
// across headers (kMsgNetDeliver=100 in net/transport.hpp,
// kMsgTypespecQuery=101 in net/node.hpp, the IoBridge 300s, the shard 400s),
// which made a silent collision between two subsystems a matter of time.
// This header is now the single place where ranges are allotted and values
// assigned; subsystem headers alias these constants under their traditional
// names, so call sites did not have to change.
//
// Range plan (a new subsystem claims the next free hundred here):
//   1..99     ipcore realization glue (core/realization.hpp)
//   100..199  ip_net: netpipe data plane, node protocol, ARQ, sockets
//   200..299  ip_feedback loops
//   300..399  rt::IoBridge OS-event mapping
//   400..499  ip_shard cross-shard doorbells
#pragma once

namespace infopipe::rt::msg {

// ---- ipcore realization glue (1..99) --------------------------------------
inline constexpr int kCoreControl = 1;    ///< control event dispatch
inline constexpr int kCoreCoPull = 2;     ///< request one item from a coroutine
inline constexpr int kCoreCoItem = 3;     ///< item hand-off (either direction)
inline constexpr int kCoreCoDone = 4;     ///< coroutine ready for next input
inline constexpr int kCoreBufNotify = 5;  ///< buffer space/data available
inline constexpr int kCoreTick = 6;       ///< pump timer tick
inline constexpr int kCoreLockGrant = 7;  ///< section lock transferred

// ---- ip_net (100..199) ----------------------------------------------------
inline constexpr int kNetDeliver = 100;          ///< packet to a NetReceiver
inline constexpr int kNetTypespecQuery = 101;    ///< node agent query
inline constexpr int kNetCreateComponent = 102;  ///< node agent factory call
inline constexpr int kNetArqSubmit = 110;        ///< pipeline -> ARQ sender
inline constexpr int kNetArqTimer = 111;         ///< ARQ retransmission check
inline constexpr int kNetSocketRetry = 120;      ///< connect backoff expired
inline constexpr int kNetControlReply = 121;     ///< socket control-link reply
inline constexpr int kNetControlTimeout = 122;   ///< socket control-call timer

// ---- ip_feedback (200..299) -----------------------------------------------
inline constexpr int kFeedbackLoopTick = 200;  ///< PeriodicTask step

// ---- rt::IoBridge (300..399) ----------------------------------------------
inline constexpr int kIoData = 300;      ///< payload: std::vector<uint8_t>
inline constexpr int kIoSignal = 301;    ///< payload: int (signal number)
inline constexpr int kIoEof = 302;       ///< payload: int (the fd)
inline constexpr int kIoReadable = 303;  ///< payload: int (the fd); one-shot
inline constexpr int kIoWritable = 304;  ///< payload: int (the fd); one-shot

// ---- ip_shard (400..499) --------------------------------------------------
inline constexpr int kChanData = 400;   ///< ring has data; wakes a consumer
inline constexpr int kChanSpace = 401;  ///< ring has space; wakes a producer
inline constexpr int kRunFn = 410;      ///< ShardGroup::run_on payload

}  // namespace infopipe::rt::msg
