// Central registry of rt message-type constants.
//
// Every subsystem that speaks through the Runtime's mailboxes discriminates
// its messages with a plain `int type`. Those constants used to be scattered
// across headers (kMsgNetDeliver=100 in net/transport.hpp,
// kMsgTypespecQuery=101 in net/node.hpp, the IoBridge 300s, the shard 400s),
// which made a silent collision between two subsystems a matter of time.
// This header is now the single place where ranges are allotted and values
// assigned; subsystem headers alias these constants under their traditional
// names, so call sites did not have to change.
//
// Range plan (a new subsystem claims the next free hundred here):
//   1..99     ipcore realization glue (core/realization.hpp)
//   100..199  ip_net: netpipe data plane, node protocol, ARQ, sockets
//   200..299  ip_feedback loops
//   300..399  rt::IoBridge OS-event mapping
//   400..499  ip_shard cross-shard doorbells
//   500..599  ip_replay record/replay control
//   600..699  ip_balance scale/plan control
//
// The band bounds below exist so the partitioning is checkable: every
// constant carries a static_assert in tests/msg_registry_test.cpp pinning
// it inside its subsystem's band, and a new band must be claimed here
// before its first constant lands.
#pragma once

namespace infopipe::rt::msg {

// ---- ipcore realization glue (1..99) --------------------------------------
inline constexpr int kCoreControl = 1;    ///< control event dispatch
inline constexpr int kCoreCoPull = 2;     ///< request one item from a coroutine
inline constexpr int kCoreCoItem = 3;     ///< item hand-off (either direction)
inline constexpr int kCoreCoDone = 4;     ///< coroutine ready for next input
inline constexpr int kCoreBufNotify = 5;  ///< buffer space/data available
inline constexpr int kCoreTick = 6;       ///< pump timer tick
inline constexpr int kCoreLockGrant = 7;  ///< section lock transferred

// ---- ip_net (100..199) ----------------------------------------------------
inline constexpr int kNetDeliver = 100;          ///< packet to a NetReceiver
inline constexpr int kNetTypespecQuery = 101;    ///< node agent query
inline constexpr int kNetCreateComponent = 102;  ///< node agent factory call
inline constexpr int kNetArqSubmit = 110;        ///< pipeline -> ARQ sender
inline constexpr int kNetArqTimer = 111;         ///< ARQ retransmission check
inline constexpr int kNetSocketRetry = 120;      ///< connect backoff expired
inline constexpr int kNetControlReply = 121;     ///< socket control-link reply
inline constexpr int kNetControlTimeout = 122;   ///< socket control-call timer

// ---- ip_feedback (200..299) -----------------------------------------------
inline constexpr int kFeedbackLoopTick = 200;  ///< PeriodicTask step

// ---- rt::IoBridge (300..399) ----------------------------------------------
inline constexpr int kIoData = 300;      ///< payload: std::vector<uint8_t>
inline constexpr int kIoSignal = 301;    ///< payload: int (signal number)
inline constexpr int kIoEof = 302;       ///< payload: int (the fd)
inline constexpr int kIoReadable = 303;  ///< payload: int (the fd); one-shot
inline constexpr int kIoWritable = 304;  ///< payload: int (the fd); one-shot

// ---- ip_shard (400..499) --------------------------------------------------
inline constexpr int kChanData = 400;   ///< ring has data; wakes a consumer
inline constexpr int kChanSpace = 401;  ///< ring has space; wakes a producer
inline constexpr int kRunFn = 410;      ///< ShardGroup::run_on payload

// ---- ip_replay (500..599) -------------------------------------------------
inline constexpr int kReplayStep = 500;  ///< trace-driven step barrier
inline constexpr int kReplayMark = 501;  ///< timeline marker injection

// ---- ip_balance (600..699) ------------------------------------------------
inline constexpr int kBalanceScaleUp = 600;    ///< scaler ULT: grow the group
inline constexpr int kBalanceScaleDown = 601;  ///< scaler ULT: drain + retire
inline constexpr int kBalanceApplyPlan = 602;  ///< run one scheduled move batch

// ---- band bounds (for the overlap static_asserts) -------------------------
inline constexpr int kCoreBandFirst = 1, kCoreBandLast = 99;
inline constexpr int kNetBandFirst = 100, kNetBandLast = 199;
inline constexpr int kFeedbackBandFirst = 200, kFeedbackBandLast = 299;
inline constexpr int kIoBandFirst = 300, kIoBandLast = 399;
inline constexpr int kShardBandFirst = 400, kShardBandLast = 499;
inline constexpr int kReplayBandFirst = 500, kReplayBandLast = 599;
inline constexpr int kBalanceBandFirst = 600, kBalanceBandLast = 699;

}  // namespace infopipe::rt::msg
