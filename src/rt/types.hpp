// Basic vocabulary types for the message-based user-level thread package.
//
// The package follows the substrate described in Koster & Kramp
// ("A multithreading platform for multimedia applications", MMCN 2001;
// "Flexible event-based threading for QoS-supporting middleware", DAIS 1999):
// each thread consists of a code function and a queue of incoming messages.
// The code function is invoked once per received message, may suspend while
// waiting for further messages, and may be preempted at dispatch points in
// favour of higher-priority threads.
#pragma once

#include <cstdint>
#include <limits>

namespace infopipe::rt {

/// Monotonic time in nanoseconds since an arbitrary epoch.
/// Under a VirtualClock the epoch is 0 and time advances only when the
/// scheduler is otherwise idle (discrete-event style); under a RealClock it
/// tracks std::chrono::steady_clock.
using Time = std::int64_t;

inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

constexpr Time microseconds(std::int64_t us) { return us * 1000; }
constexpr Time milliseconds(std::int64_t ms) { return ms * 1000 * 1000; }
constexpr Time seconds(std::int64_t s) { return s * 1000 * 1000 * 1000; }

/// Identifies a user-level thread within one Runtime. Never reused.
using ThreadId = std::uint64_t;

inline constexpr ThreadId kNoThread = 0;

/// Static scheduling priority. Larger values are more urgent.
/// Messages may carry a Constraint that raises the *effective* priority of
/// the thread processing them (see Message::constraint).
using Priority = int;

inline constexpr Priority kPriorityIdle = 0;
inline constexpr Priority kPriorityData = 10;     ///< bulk data processing
inline constexpr Priority kPriorityControl = 20;  ///< control-event handling
inline constexpr Priority kPriorityTimer = 30;    ///< clock-driven pumps

/// Result of one invocation of a thread's code function.
enum class CodeResult {
  kContinue,   ///< keep the thread alive, wait for the next message
  kTerminate,  ///< destroy the thread
};

}  // namespace infopipe::rt
