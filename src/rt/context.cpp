#include "rt/context.hpp"

#include <cstdint>

namespace infopipe::rt {

#if IP_RT_UCONTEXT

namespace {
// makecontext() only forwards int arguments portably, so split the pointers.
void trampoline(unsigned hi_entry, unsigned lo_entry, unsigned hi_arg,
                unsigned lo_arg) {
  auto entry = reinterpret_cast<ContextEntry>(
      (static_cast<std::uintptr_t>(hi_entry) << 32) | lo_entry);
  auto* arg = reinterpret_cast<void*>(
      (static_cast<std::uintptr_t>(hi_arg) << 32) | lo_arg);
  entry(arg);
}
}  // namespace

void Context::init(void* stack_top, std::size_t stack_size, ContextEntry entry,
                   void* arg) {
  getcontext(&uctx_);
  uctx_.uc_stack.ss_sp = static_cast<char*>(stack_top) - stack_size;
  uctx_.uc_stack.ss_size = stack_size;
  uctx_.uc_link = nullptr;  // threads must switch away, never fall off
  const auto e = reinterpret_cast<std::uintptr_t>(entry);
  const auto a = reinterpret_cast<std::uintptr_t>(arg);
  makecontext(&uctx_, reinterpret_cast<void (*)()>(trampoline), 4,
              static_cast<unsigned>(e >> 32), static_cast<unsigned>(e),
              static_cast<unsigned>(a >> 32), static_cast<unsigned>(a));
}

void Context::switch_to(Context& from, Context& to) {
  swapcontext(&from.uctx_, &to.uctx_);
}

#else  // hand-rolled x86-64 System V implementation

// Layout of a suspended frame, from the saved stack pointer upwards:
//   [r15][r14][r13][r12][rbx][rbp][return address]
// ip_rt_ctx_switch pushes the six callee-saved registers of the *from*
// context, stores rsp, loads the *to* stack pointer, pops its six registers
// and returns into it. Floating-point state: the SysV ABI makes all xmm/ymm
// registers caller-saved across a call, and mxcsr/x87-control are
// callee-saved but the scheduler never changes them, so nothing FP needs to
// be saved here.
extern "C" void ip_rt_ctx_switch(void** save_sp, void* load_sp);

asm(R"(
    .text
    .globl ip_rt_ctx_switch
    .type ip_rt_ctx_switch, @function
    .align 16
ip_rt_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
    .size ip_rt_ctx_switch, .-ip_rt_ctx_switch
)");

namespace {

// First code executed on a fresh context. The entry function pointer and its
// argument are parked in r12/r13 by the initial frame built in init().
extern "C" void ip_rt_ctx_entry_thunk();
asm(R"(
    .text
    .globl ip_rt_ctx_entry_thunk
    .type ip_rt_ctx_entry_thunk, @function
    .align 16
ip_rt_ctx_entry_thunk:
    movq %r13, %rdi      # arg
    callq *%r12          # entry(arg); must never return
    ud2                  # trap if it does
    .size ip_rt_ctx_entry_thunk, .-ip_rt_ctx_entry_thunk
)");

}  // namespace

void Context::init(void* stack_top, std::size_t /*stack_size*/,
                   ContextEntry entry, void* arg) {
  // Build the frame that ip_rt_ctx_switch expects to pop. stack_top is
  // 16-byte aligned; after the six pops and the retq, rsp == top-16, which is
  // 16-byte aligned. The thunk's `callq` then pushes the return address, so
  // the entry function starts with rsp ≡ 8 (mod 16), exactly as the SysV ABI
  // requires at function entry.
  auto** frame = static_cast<void**>(stack_top);
  frame -= 2;  // keep top 16 bytes as scratch / alignment padding
  *--frame = reinterpret_cast<void*>(&ip_rt_ctx_entry_thunk);  // return addr
  *--frame = nullptr;                        // rbp
  *--frame = nullptr;                        // rbx
  *--frame = reinterpret_cast<void*>(entry); // r12
  *--frame = arg;                            // r13
  *--frame = nullptr;                        // r14
  *--frame = nullptr;                        // r15
  sp_ = frame;
}

void Context::switch_to(Context& from, Context& to) {
  ip_rt_ctx_switch(&from.sp_, to.sp_);
}

#endif  // IP_RT_UCONTEXT

}  // namespace infopipe::rt
