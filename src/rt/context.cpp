#include "rt/context.hpp"

#include <cstdint>

#if defined(__SANITIZE_ADDRESS__)
#define IP_RT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IP_RT_ASAN 1
#endif
#endif
#ifndef IP_RT_ASAN
#define IP_RT_ASAN 0
#endif

#if IP_RT_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define IP_RT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IP_RT_TSAN 1
#endif
#endif
#ifndef IP_RT_TSAN
#define IP_RT_TSAN 0
#endif

#if IP_RT_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace infopipe::rt {

namespace {

#if IP_RT_ASAN
/// The context most recently switched away from on this OS thread; lets the
/// resumed side back-fill the bounds of stacks we did not allocate (the
/// scheduler's OS-thread stack).
thread_local Context* g_leaving = nullptr;
#endif

}  // namespace

// The sanitizer protocol: before switching stacks, announce the target stack
// and save the current fake stack; immediately after gaining control on the
// new stack (both on ordinary resume and on first entry), finish the switch.
// These helpers compile to nothing in non-ASan builds.
namespace {

struct AsanSwitch {
#if IP_RT_ASAN
  static void start(Context& from, void* to_bottom, std::size_t to_size,
                    void** fake_slot) {
    g_leaving = &from;
    __sanitizer_start_switch_fiber(fake_slot, to_bottom, to_size);
  }
  static void finish(void* fake_stack, void** prev_bottom,
                     std::size_t* prev_size) {
    const void* bottom = nullptr;
    std::size_t size = 0;
    __sanitizer_finish_switch_fiber(fake_stack, &bottom, &size);
    if (prev_bottom != nullptr) *prev_bottom = const_cast<void*>(bottom);
    if (prev_size != nullptr) *prev_size = size;
  }
#else
  static void start(Context&, void*, std::size_t, void**) {}
  static void finish(void*, void**, std::size_t*) {}
#endif
};

// The fields are passed by address (same style as AsanSwitch's fake-stack
// slot) because Context's members are private to these translation-unit
// helpers.
struct TsanSwitch {
#if IP_RT_TSAN
  static void create(void** fiber, bool* owned) {
    *fiber = __tsan_create_fiber(0);
    *owned = true;
  }
  static void destroy(void** fiber, bool* owned) {
    if (*owned && *fiber != nullptr) __tsan_destroy_fiber(*fiber);
    *fiber = nullptr;
    *owned = false;
  }
  static void start(void** from_fiber, void* to_fiber) {
    // A context that was never init()ed runs on the kernel thread's own
    // stack; adopt that thread's implicit fiber at the first switch away.
    if (*from_fiber == nullptr) *from_fiber = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(to_fiber, 0);
  }
#else
  static void create(void**, bool*) {}
  static void destroy(void**, bool*) {}
  static void start(void**, void*) {}
#endif
};

}  // namespace

Context::~Context() { TsanSwitch::destroy(&tsan_fiber_, &tsan_fiber_owned_); }

void Context::entry_shim(void* self) {
  auto* ctx = static_cast<Context*>(self);
#if IP_RT_ASAN
  // First code on the fresh stack: complete the fiber switch and back-fill
  // the bounds of the stack we came from (lazily learned for the scheduler's
  // OS-thread stack, harmlessly re-confirmed for init()ed ones).
  void* prev_bottom = nullptr;
  std::size_t prev_size = 0;
  AsanSwitch::finish(nullptr, &prev_bottom, &prev_size);
  if (g_leaving != nullptr && g_leaving->stack_bottom_ == nullptr) {
    g_leaving->stack_bottom_ = prev_bottom;
    g_leaving->stack_size_ = prev_size;
  }
#endif
  ctx->entry_(ctx->arg_);
}

#if IP_RT_UCONTEXT

namespace {
// makecontext() only forwards int arguments portably, so split the pointer.
void trampoline(unsigned hi_arg, unsigned lo_arg) {
  auto* ctx = reinterpret_cast<Context*>(
      (static_cast<std::uintptr_t>(hi_arg) << 32) | lo_arg);
  Context::entry_shim(ctx);  // never returns
}
}  // namespace

void Context::init(void* stack_top, std::size_t stack_size, ContextEntry entry,
                   void* arg) {
  entry_ = entry;
  arg_ = arg;
  stack_bottom_ = static_cast<char*>(stack_top) - stack_size;
  stack_size_ = stack_size;
  TsanSwitch::create(&tsan_fiber_, &tsan_fiber_owned_);
  getcontext(&uctx_);
  uctx_.uc_stack.ss_sp = static_cast<char*>(stack_top) - stack_size;
  uctx_.uc_stack.ss_size = stack_size;
  uctx_.uc_link = nullptr;  // threads must switch away, never fall off
  const auto a = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&uctx_, reinterpret_cast<void (*)()>(trampoline), 2,
              static_cast<unsigned>(a >> 32), static_cast<unsigned>(a));
}

void Context::switch_to(Context& from, Context& to) {
  AsanSwitch::start(from, to.stack_bottom_, to.stack_size_, &from.fake_stack_);
  TsanSwitch::start(&from.tsan_fiber_, to.tsan_fiber_);
  swapcontext(&from.uctx_, &to.uctx_);
  AsanSwitch::finish(from.fake_stack_, nullptr, nullptr);
}

#else  // hand-rolled x86-64 System V implementation

// Layout of a suspended frame, from the saved stack pointer upwards:
//   [r15][r14][r13][r12][rbx][rbp][return address]
// ip_rt_ctx_switch pushes the six callee-saved registers of the *from*
// context, stores rsp, loads the *to* stack pointer, pops its six registers
// and returns into it. Floating-point state: the SysV ABI makes all xmm/ymm
// registers caller-saved across a call, and mxcsr/x87-control are
// callee-saved but the scheduler never changes them, so nothing FP needs to
// be saved here.
extern "C" void ip_rt_ctx_switch(void** save_sp, void* load_sp);

asm(R"(
    .text
    .globl ip_rt_ctx_switch
    .type ip_rt_ctx_switch, @function
    .align 16
ip_rt_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
    .size ip_rt_ctx_switch, .-ip_rt_ctx_switch
)");

namespace {

// First code executed on a fresh context. The entry function pointer and its
// argument are parked in r12/r13 by the initial frame built in init().
extern "C" void ip_rt_ctx_entry_thunk();
asm(R"(
    .text
    .globl ip_rt_ctx_entry_thunk
    .type ip_rt_ctx_entry_thunk, @function
    .align 16
ip_rt_ctx_entry_thunk:
    movq %r13, %rdi      # arg
    callq *%r12          # entry(arg); must never return
    ud2                  # trap if it does
    .size ip_rt_ctx_entry_thunk, .-ip_rt_ctx_entry_thunk
)");

}  // namespace

void Context::init(void* stack_top, std::size_t stack_size, ContextEntry entry,
                   void* arg) {
  entry_ = entry;
  arg_ = arg;
  stack_bottom_ = static_cast<char*>(stack_top) - stack_size;
  stack_size_ = stack_size;
  TsanSwitch::create(&tsan_fiber_, &tsan_fiber_owned_);
  // Build the frame that ip_rt_ctx_switch expects to pop. stack_top is
  // 16-byte aligned; after the six pops and the retq, rsp == top-16, which is
  // 16-byte aligned. The thunk's `callq` then pushes the return address, so
  // the entry function starts with rsp ≡ 8 (mod 16), exactly as the SysV ABI
  // requires at function entry.
  auto** frame = static_cast<void**>(stack_top);
  frame -= 2;  // keep top 16 bytes as scratch / alignment padding
  *--frame = reinterpret_cast<void*>(&ip_rt_ctx_entry_thunk);  // return addr
  *--frame = nullptr;                                      // rbp
  *--frame = nullptr;                                      // rbx
  *--frame = reinterpret_cast<void*>(&Context::entry_shim);  // r12
  *--frame = this;                                         // r13
  *--frame = nullptr;                                      // r14
  *--frame = nullptr;                                      // r15
  sp_ = frame;
}

void Context::switch_to(Context& from, Context& to) {
  AsanSwitch::start(from, to.stack_bottom_, to.stack_size_, &from.fake_stack_);
  TsanSwitch::start(&from.tsan_fiber_, to.tsan_fiber_);
  ip_rt_ctx_switch(&from.sp_, to.sp_);
  AsanSwitch::finish(from.fake_stack_, nullptr, nullptr);
}

#endif  // IP_RT_UCONTEXT

}  // namespace infopipe::rt
