// The Runtime: scheduler and message switch for user-level threads.
//
// All pipeline activity in the Infopipe middleware runs on user-level
// threads hosted by one OS thread and scheduled here. Scheduling is
// cooperative with preemption at dispatch points (send, receive, yield,
// sleep, timer expiry): when an operation makes a strictly
// higher-effective-priority thread runnable, the running thread is preempted
// immediately. This mirrors the paper's substrate, where "threads can be
// preempted in favor of threads driven by other pumps" while a component
// still never has two threads active inside it at once (§3.2).
//
// Priorities: each thread has a static priority; messages may carry
// Constraints whose priority overrides it while the message is processed
// ("the effective priority of a thread is derived by the scheduler from the
// constraint of the message that the thread is currently processing or, if
// the thread is waiting for the CPU, on the constraint of the first message
// in its incoming queue" — §4). A one-level priority-inheritance scheme
// boosts the callee of a synchronous call() to the caller's effective
// priority, avoiding priority inversion.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/clock.hpp"
#include "rt/doorbell.hpp"
#include "rt/reservation.hpp"
#include "rt/message.hpp"
#include "rt/uthread.hpp"

namespace infopipe::rt {

/// Thrown for API misuse (e.g. blocking operations outside a thread) and for
/// calls to dead threads.
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Scheduler policy switches. Defaults reproduce the paper's design; each
/// can be disabled for the ablation experiments (bench_ablation.cpp) that
/// show why the design needs it.
struct RuntimeOptions {
  /// §2.2: control-class messages overtake queued data.
  bool control_overtakes_data = true;
  /// §4: synchronous callees inherit the caller's effective priority.
  bool priority_inheritance = true;
  /// Preempt at dispatch points when a higher-priority thread wakes.
  bool preemption = true;
};

class Runtime {
 public:
  using Options = RuntimeOptions;

  /// Constructs a runtime over the given clock (defaults to a deterministic
  /// VirtualClock starting at t=0).
  explicit Runtime(std::unique_ptr<Clock> clock = nullptr,
                   Options options = Options());
  ~Runtime();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- Thread management -------------------------------------------------

  /// Creates a thread. Its code function runs once per received message; the
  /// thread is destroyed when the code function returns kTerminate.
  ThreadId spawn(std::string name, Priority priority, CodeFunction code,
                 std::size_t stack_size = Stack::kDefaultSize);

  /// True while the thread exists and has not terminated.
  [[nodiscard]] bool alive(ThreadId id) const noexcept;

  /// Id of the currently executing thread, or kNoThread when called from the
  /// scheduler / outside run().
  [[nodiscard]] ThreadId current() const noexcept;

  /// Direct access for tests and diagnostics; nullptr if dead.
  [[nodiscard]] UThread* thread(ThreadId id) noexcept;

  /// Forcibly terminates a thread. The thread's stack is NOT unwound (no
  /// destructors on its stack run); intended for failure-injection tests and
  /// last-resort teardown only. Prefer sending a message that makes the code
  /// function return kTerminate.
  void kill(ThreadId id);

  // ---- Messaging ---------------------------------------------------------

  /// Asynchronous send. May be called from inside any thread or from outside
  /// the runtime (to stimulate it between run() calls). Sends to dead
  /// threads are counted in stats().messages_dropped and otherwise ignored.
  void send(ThreadId to, Message m);

  /// Deliver `m` to `to` when the clock reaches `t`.
  void send_at(Time t, ThreadId to, Message m);

  /// Removes pending send_at() timers addressed to `to` whose message type
  /// is `type`; returns how many were dropped. Protocol code uses this to
  /// retire a timeout whose operation completed — a pending timer otherwise
  /// keeps run() from going quiescent, which under a RealClock is a
  /// real-time stall until the dead timeout fires.
  std::size_t cancel_timers(ThreadId to, int type);

  /// Thread-safe injection from OUTSIDE the scheduler's OS thread (â the
  /// only Runtime entry point with that property). Used by rt::IoBridge to
  /// map OS events onto platform messages (§4); wakes an idle RealClock
  /// wait. The message is delivered at the next scheduling step.
  void post_external(ThreadId to, Message m);

  /// Hook invoked (on the posting kernel thread) after every
  /// post_external(). A runtime hosted on a dedicated kernel thread sets
  /// this to ring its Doorbell so a quiescent run_service() loop resumes.
  /// Must be installed before the host thread starts; the hook itself must
  /// be thread-safe.
  void set_external_notifier(std::function<void()> fn) {
    notifier_ = std::move(fn);
  }

  /// Synchronous call: sends `m` with a fresh request_id and blocks until
  /// the matching kReply arrives. While blocked, the callee inherits the
  /// caller's effective priority. Control-class messages addressed to the
  /// caller are NOT consumed (they stay queued; use ipcore's blocking
  /// hand-off for control-responsive waits). Only callable from a thread.
  Message call(ThreadId to, Message m);

  /// Sends a kReply correlated with `request` back to its sender.
  void reply(const Message& request, Message response);

  // ---- Blocking primitives (only from inside a thread) --------------------

  using MsgPredicate = std::function<bool(const Message&)>;

  /// Blocks until any message is available and returns it. Control-class
  /// messages are delivered ahead of older data-class ones.
  Message receive();

  /// Blocks until a message matching `pred` is available; non-matching
  /// messages remain queued in order.
  Message receive_matching(const MsgPredicate& pred);

  /// Non-blocking: extracts the first queued message matching `pred`.
  std::optional<Message> try_receive(const MsgPredicate& pred);

  /// True if any queued message matches `pred`.
  [[nodiscard]] bool has_message(const MsgPredicate& pred);

  void sleep_until(Time t);
  void sleep_for(Time d) { sleep_until(now() + d); }

  /// Replaces the constraint governing the current thread's effective
  /// priority (normally the constraint of the message being processed).
  /// Pumps use this to refresh their deadline each cycle; because sends
  /// inherit the active constraint, the whole coroutine set follows (§4).
  void set_active_constraint(std::optional<Constraint> c);

  /// Preemption point: lets any thread of >= effective priority run.
  void yield();

  // ---- Clock ---------------------------------------------------------------

  [[nodiscard]] Time now() const { return clock_->now(); }
  [[nodiscard]] Clock& clock() noexcept { return *clock_; }

  // ---- Scheduling loop (from the hosting OS thread) ------------------------

  /// Runs until quiescent: no runnable thread and no pending timer. Threads
  /// blocked in receive() stay alive; a later send()+run() resumes them.
  /// Rethrows the first exception that escaped a code function, if any.
  void run();

  /// Runs until the clock reaches `t` (inclusive of timers at `t`) or until
  /// quiescence, whichever is later in processing terms; under a virtual
  /// clock the clock is advanced to exactly `t` before returning.
  void run_until(Time t);

  /// Makes run() return at the next dispatch point.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Thread-safe, STICKY variant of request_stop() for runtimes hosted on a
  /// dedicated kernel thread: run()/run_until()/run_service() return at the
  /// next dispatch point and every subsequent run() returns immediately
  /// until clear_halt(). Unlike request_stop() (reset on run entry, so a
  /// cross-thread request can be lost to the race with a starting run), a
  /// halt posted from any thread is never missed. Also interrupts an idle
  /// RealClock wait.
  void request_halt() noexcept {
    halt_.store(true, std::memory_order_release);
    clock_->interrupt_wait();
  }
  [[nodiscard]] bool halted() const noexcept {
    return halt_.load(std::memory_order_acquire);
  }
  /// Re-arms a halted runtime (call from the host thread, between runs).
  void clear_halt() noexcept { halt_.store(false, std::memory_order_release); }

  /// Host loop for a runtime owned by a dedicated kernel thread: run() until
  /// quiescent, park on `bell`, repeat — until request_halt(). Work injected
  /// through post_external() resumes a parked loop provided the external
  /// notifier rings the bell (ShardGroup wires this up). Rethrows the first
  /// exception that escaped a code function, like run().
  void run_service(Doorbell& bell);

  // ---- Introspection -------------------------------------------------------

  struct Stats {
    std::uint64_t context_switches = 0;  ///< Context::switch_to invocations
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_dropped = 0;  ///< sends to dead threads
    std::uint64_t timer_wakeups = 0;
    std::uint64_t threads_spawned = 0;
    std::uint64_t preemptions = 0;   ///< involuntary suspensions
    std::uint64_t dispatches = 0;    ///< code-function invocations
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Structured observability (src/obs/): counters/gauges/histograms
  /// timestamped by this runtime's clock. The runtime's own hot-path
  /// counters (the Stats struct above) are published into every snapshot as
  /// `rt.*` rows by a built-in collector, so the scheduler loop pays no
  /// extra cost for them.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Per-item hop tracer (disabled by default; see obs/trace.hpp).
  [[nodiscard]] obs::FlowTracer& tracer() noexcept { return tracer_; }

  /// This runtime's payload pool (src/mem/): installed as the thread's
  /// current pool while the scheduling loop runs, so Item::of inside any
  /// hosted user-level thread allocates here. Immortal (detached, not
  /// destroyed, when the runtime dies) so payloads may outlive the runtime.
  /// Its counters appear as mem.pool.* rows in every metrics snapshot.
  [[nodiscard]] mem::Pool& pool() noexcept { return *pool_; }

  /// CPU reservation table (admission control for pumps, §3.1).
  [[nodiscard]] ReservationManager& reservations() noexcept {
    return reservations_;
  }

  /// Number of live (not yet terminated) threads.
  [[nodiscard]] std::size_t live_threads() const noexcept;

  /// Cumulative wall-clock time run_service() spent stepping (busy) vs
  /// parked on its doorbell (idle), in nanoseconds of the OS steady clock.
  /// Thread-safe reads; the load accountant (ip_balance) differences
  /// successive samples into a busy fraction per shard. Zero until the
  /// runtime is hosted via run_service().
  [[nodiscard]] std::uint64_t service_busy_ns() const noexcept {
    return service_busy_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t service_idle_ns() const noexcept {
    return service_idle_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct TimerEntry {
    Time when;
    std::uint64_t seq;  // FIFO among equal times
    ThreadId target;
    std::optional<Message> message;  // nullopt => wake sleeping thread
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  static void thread_entry(void* arg);
  void thread_main(UThread& t);

  /// Extracts the next message honouring control-before-data ordering.
  Message pop_next_message(UThread& t);

  /// Switches from the current thread back to the scheduler with the given
  /// state already set on the thread.
  void suspend_current();

  /// Marks a thread runnable (idempotent).
  void make_ready(UThread& t);

  /// If `t` now outranks the running thread, preempt at this dispatch point.
  void maybe_preempt(const UThread& t);

  /// Fires all timers that are due at `now()`.
  void fire_due_timers();

  /// Picks the runnable thread with the highest (effective priority,
  /// earliest deadline, FIFO) rank; nullptr if none.
  UThread* pick_next();

  /// Runs one scheduling step; returns false when quiescent.
  bool step(Time horizon);

  UThread* current_thread() noexcept;
  UThread& require_current(const char* op);

  std::unique_ptr<Clock> clock_;
  Options options_;
  mem::Pool* pool_;  ///< immortal; see pool()
  ReservationManager reservations_;
  obs::MetricsRegistry metrics_;
  obs::FlowTracer tracer_;
  std::mutex external_mutex_;
  std::vector<std::pair<ThreadId, Message>> external_;
  std::atomic<bool> external_pending_{false};
  std::atomic<bool> halt_{false};
  std::atomic<std::uint64_t> service_busy_ns_{0};
  std::atomic<std::uint64_t> service_idle_ns_{0};
  std::function<void()> notifier_;  ///< see set_external_notifier()
  std::unordered_map<ThreadId, std::unique_ptr<UThread>> threads_;
  std::vector<TimerEntry> timers_;  // min-heap via TimerLater
  Context sched_ctx_;
  ThreadId current_ = kNoThread;
  ThreadId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_request_id_ = 1;
  bool in_run_ = false;
  bool stop_requested_ = false;
  Stats stats_;
  std::vector<std::pair<std::string, std::exception_ptr>> errors_;
};

}  // namespace infopipe::rt
