// OS event mapping (§4): "Network packets and signals from the operating
// system are mapped to messages by the platform allowing all types of
// events to be handled by a uniform message interface."
//
// The IoBridge runs one background poller OS thread. File descriptors
// registered with watch_fd() deliver their readable data as kMsgIoData
// messages; POSIX signals registered with watch_signal() arrive as
// kMsgIoSignal messages. Everything funnels through Runtime::post_external,
// the package's one thread-safe entry point, so user-level threads handle
// network input, timers and signals through the same mailbox.
//
// Only meaningful with a RealClock runtime (a virtual-clock run has no OS
// time to align with); the signal path uses the classic self-pipe trick, so
// handlers stay async-signal-safe.
//
// Lifecycle: any number of bridges may coexist (one per runtime is the
// sharded-execution pattern); each owns its control pipe and poller. The
// poller blocks in poll() with no timeout — every state change (watch,
// unwatch, destruction) writes a wake byte, so shutdown joins
// deterministically instead of waiting out a poll tick. The process-wide
// signal self-pipe is claimed by the first bridge that calls watch_signal()
// and released when that bridge is destroyed; a second bridge calling
// watch_signal() while the first still owns it throws. The Runtime must
// outlive its bridge.
#pragma once

#include <csignal>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "rt/msg_registry.hpp"
#include "rt/runtime.hpp"

namespace infopipe::rt {

/// Message types delivered by the bridge (values in rt/msg_registry.hpp).
inline constexpr int kMsgIoData = msg::kIoData;      ///< vector<uint8_t>
inline constexpr int kMsgIoSignal = msg::kIoSignal;  ///< int (signal number)
inline constexpr int kMsgIoEof = msg::kIoEof;        ///< int (the fd)
inline constexpr int kMsgIoReadable = msg::kIoReadable;  ///< int (the fd)
inline constexpr int kMsgIoWritable = msg::kIoWritable;  ///< int (the fd)

class IoBridge {
 public:
  explicit IoBridge(Runtime& rt);
  ~IoBridge();

  IoBridge(const IoBridge&) = delete;
  IoBridge& operator=(const IoBridge&) = delete;

  /// Delivers each readable chunk of `fd` (up to 64 KiB) to `to` as a
  /// kMsgIoData message; a kMsgIoEof message when the peer closes.
  void watch_fd(int fd, ThreadId to);
  void unwatch_fd(int fd);

  /// One-shot READINESS notification: when `fd` becomes readable (POLLIN /
  /// POLLHUP / POLLERR) a kMsgIoReadable message (payload: int fd) is
  /// delivered to `to` and the watch is dropped; re-arm after draining.
  /// Unlike watch_fd(), the bridge never read()s the fd itself — this is
  /// the registration for fds that are not plain byte streams (listening
  /// sockets, connect-in-progress sockets) and for consumers that do their
  /// own nonblocking I/O, like net::SocketTransport's framing loop.
  void watch_readable_once(int fd, ThreadId to);

  /// One-shot writability notification (POLLOUT / POLLERR / POLLHUP →
  /// kMsgIoWritable). Used for connect-in-progress completion and for
  /// resuming a partially written output queue.
  void watch_writable_once(int fd, ThreadId to);

  /// Drops any pending one-shot watches for `fd` (call before closing it;
  /// a queued notification that already left the bridge may still arrive).
  void cancel_fd(int fd);

  /// Delivers each occurrence of `signo` to `to` as kMsgIoSignal. Installs
  /// a process-wide handler for that signal (restored on destruction).
  /// One bridge at a time may watch signals (the handler's self-pipe is a
  /// process-wide singleton); a second concurrent claimant throws
  /// RuntimeError.
  void watch_signal(int signo, ThreadId to);

 private:
  void poll_loop();
  void handle_signal_byte(std::uint8_t signo);

  Runtime* rt_;
  int control_pipe_[2] = {-1, -1};  ///< wakes/stops the poller
  std::thread poller_;
  std::mutex mutex_;
  std::map<int, ThreadId> fd_targets_;
  std::map<int, ThreadId> readable_once_;  ///< one-shot readiness watches
  std::map<int, ThreadId> writable_once_;  ///< one-shot writability watches
  std::map<int, ThreadId> signal_targets_;
  std::map<int, struct sigaction> saved_actions_;
  bool stop_ = false;
  bool owns_signal_pipe_ = false;  ///< claimed the process-wide self-pipe
};

}  // namespace infopipe::rt
