// Doorbell: the sleep/wake primitive for runtimes hosted on dedicated
// kernel threads (ip_shard).
//
// A Runtime's host thread sits in run() while there is work; when the
// runtime goes quiescent the host loop parks on a Doorbell instead of
// spinning. Any kernel thread that injects work (Runtime::post_external,
// rt::IoBridge, a cross-shard channel) rings the bell to resume it. The
// counter makes ring() sticky: a ring that arrives between the runtime
// going quiescent and the host reaching wait() is not lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace infopipe::rt {

class Doorbell {
 public:
  /// Wakes the waiter (now or, thanks to the counter, at its next wait()).
  /// Thread-safe; callable from any kernel thread and cheap enough for the
  /// external-post notification hook.
  void ring() {
    {
      std::lock_guard lk(mutex_);
      ++rings_;
    }
    cv_.notify_all();
  }

  /// Blocks until ring() has been called more often than wait() has
  /// consumed. Intended for a single waiter (the runtime's host thread).
  void wait() {
    std::unique_lock lk(mutex_);
    cv_.wait(lk, [this] { return rings_ > consumed_; });
    ++consumed_;
  }

  /// Number of rings so far (diagnostics).
  [[nodiscard]] std::uint64_t rings() const {
    std::lock_guard lk(mutex_);
    return rings_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t rings_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace infopipe::rt
