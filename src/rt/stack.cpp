#include "rt/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <utility>

namespace infopipe::rt {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

Stack::Stack(std::size_t usable_size) {
  const std::size_t ps = page_size();
  usable_size_ = round_up(usable_size, ps);
  map_size_ = usable_size_ + ps;  // one guard page at the low end

  void* mem = ::mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc{};
  if (::mprotect(mem, ps, PROT_NONE) != 0) {
    ::munmap(mem, map_size_);
    throw std::bad_alloc{};
  }
  map_base_ = mem;
  usable_base_ = static_cast<char*>(mem) + ps;
}

Stack::~Stack() { release(); }

Stack::Stack(Stack&& other) noexcept
    : map_base_(std::exchange(other.map_base_, nullptr)),
      usable_base_(std::exchange(other.usable_base_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      usable_size_(std::exchange(other.usable_size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    release();
    map_base_ = std::exchange(other.map_base_, nullptr);
    usable_base_ = std::exchange(other.usable_base_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    usable_size_ = std::exchange(other.usable_size_, 0);
  }
  return *this;
}

void* Stack::top() const noexcept {
  auto addr = reinterpret_cast<std::uintptr_t>(usable_base_) + usable_size_;
  addr &= ~std::uintptr_t{15};  // 16-byte alignment for the SysV ABI
  return reinterpret_cast<void*>(addr);
}

void Stack::release() noexcept {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_size_);
    map_base_ = nullptr;
  }
}

}  // namespace infopipe::rt
