#include "rt/uthread.hpp"

#include <algorithm>
#include <utility>

namespace infopipe::rt {

UThread::UThread(ThreadId id, std::string name, Priority priority,
                 CodeFunction code, std::size_t stack_size)
    : id_(id),
      name_(std::move(name)),
      static_priority_(priority),
      code_(std::move(code)),
      stack_(stack_size) {}

Priority UThread::effective_priority() const noexcept {
  Priority p = static_priority_;
  if (active_constraint_) {
    p = std::max(p, active_constraint_->priority);
  } else if (!mailbox_.empty() && mailbox_.front().constraint) {
    p = std::max(p, mailbox_.front().constraint->priority);
  }
  for (Priority donated : inherited_) p = std::max(p, donated);
  return p;
}

Time UThread::effective_deadline() const noexcept {
  if (active_constraint_) return active_constraint_->deadline;
  if (!mailbox_.empty() && mailbox_.front().constraint) {
    return mailbox_.front().constraint->deadline;
  }
  return kTimeNever;
}

}  // namespace infopipe::rt
