// Paper-style component aliases (§4):
//
//     mpeg_file source("test.mpg");
//     mpeg_decoder decode;
//     clocked_pump pump(30); // 30 Hz
//     video_display sink;
//     source >> decode >> pump >> sink;
//     real.control(START);
//
// Thin adapters over the full-featured classes, so the paper's setup code
// compiles as written (modulo the explicit Realization, which the paper left
// implicit in its platform global, and the paper's send_event(real, START)
// free function, which is spelled real.control(START) — THE lifecycle entry
// point on every RealizationHandle).
#pragma once

#include <string>

#include "core/pump.hpp"
#include "core/realization.hpp"
#include "media/mpeg.hpp"

namespace infopipe::media {

class mpeg_file : public MpegFileSource {
 public:
  explicit mpeg_file(const std::string& filename, StreamConfig cfg = {})
      : MpegFileSource(filename, cfg) {}
};

class mpeg_decoder : public MpegDecoder {
 public:
  mpeg_decoder() : MpegDecoder("decode") {}
};

class clocked_pump : public ClockedPump {
 public:
  explicit clocked_pump(double rate_hz) : ClockedPump("pump", rate_hz) {}
};

class video_display : public VideoDisplay {
 public:
  explicit video_display(double nominal_fps = 30.0)
      : VideoDisplay("display", nominal_fps) {}
};

inline constexpr int START = kEventStart;
inline constexpr int STOP = kEventStop;

}  // namespace infopipe::media
