// Paper-style component aliases (§4):
//
//     mpeg_file source("test.mpg");
//     mpeg_decoder decode;
//     clocked_pump pump(30); // 30 Hz
//     video_display sink;
//     source >> decode >> pump >> sink;
//     send_event(real, START);
//
// Thin adapters over the full-featured classes, so the paper's setup code
// compiles as written (modulo the explicit Realization, which the paper left
// implicit in its platform global).
#pragma once

#include <string>

#include "core/pump.hpp"
#include "core/realization.hpp"
#include "media/mpeg.hpp"

namespace infopipe::media {

class mpeg_file : public MpegFileSource {
 public:
  explicit mpeg_file(const std::string& filename, StreamConfig cfg = {})
      : MpegFileSource(filename, cfg) {}
};

class mpeg_decoder : public MpegDecoder {
 public:
  mpeg_decoder() : MpegDecoder("decode") {}
};

class clocked_pump : public ClockedPump {
 public:
  explicit clocked_pump(double rate_hz) : ClockedPump("pump", rate_hz) {}
};

class video_display : public VideoDisplay {
 public:
  explicit video_display(double nominal_fps = 30.0)
      : VideoDisplay("display", nominal_fps) {}
};

inline constexpr int START = kEventStart;
inline constexpr int STOP = kEventStop;

/// Paper-verbatim shim: `send_event(real, START)` forwards to
/// `Realization::control(START)`, THE documented lifecycle entry point.
/// `real.start()` / `real.stop()` / `real.shutdown()` are spellings of the
/// same call; this free function exists only so the paper's setup code
/// compiles as written.
inline void send_event(Realization& real, int type) { real.control(type); }

}  // namespace infopipe::media
