// Synthetic video substrate (DESIGN.md §3 substitution for real MPEG).
//
// The middleware claims under test concern control flow, threading and
// timing, not pixel math. VideoFrame therefore models exactly the properties
// those claims depend on: GOP structure (I/P/B dependency), per-frame
// compressed size (drives netpipe cost and decode cost), and presentation
// timestamps (drives jitter measurements).
#pragma once

#include <cstdint>
#include <string>

#include "rt/types.hpp"

namespace infopipe::media {

enum class FrameType : char { kI = 'I', kP = 'P', kB = 'B' };

[[nodiscard]] constexpr char to_char(FrameType t) {
  return static_cast<char>(t);
}

struct VideoFrame {
  static constexpr std::uint64_t kNoRef = ~std::uint64_t{0};

  std::uint64_t frame_no = 0;
  FrameType type = FrameType::kI;
  int width = 0;
  int height = 0;
  rt::Time pts = 0;                  ///< nominal presentation time
  std::size_t compressed_bytes = 0;  ///< synthetic coded size
  std::uint32_t content_id = 0;      ///< stands in for the pixel data
  /// frame_no of the reference frame this frame predicts from (kNoRef for
  /// I frames). Real bitstreams carry this implicitly; making it explicit
  /// lets the decoder detect missing references exactly.
  std::uint64_t ref = kNoRef;
  bool decoded = false;
  /// Set by the decoder when the reference frame this frame depends on was
  /// missing or itself corrupt (dropped upstream or in the network).
  bool corrupt = false;
};

/// Item::kind values for video items so type-unaware components (drop
/// filters, switches) can see the frame class without the payload.
enum VideoKind : int {
  kKindI = 1,
  kKindP = 2,
  kKindB = 3,
};

[[nodiscard]] constexpr int kind_of(FrameType t) {
  switch (t) {
    case FrameType::kI:
      return kKindI;
    case FrameType::kP:
      return kKindP;
    case FrameType::kB:
      return kKindB;
  }
  return 0;
}

/// Configuration of the synthetic coded stream.
struct StreamConfig {
  std::uint64_t frames = 300;
  double fps = 30.0;
  std::string gop = "IBBPBBPBBPBB";  ///< repeating frame-type pattern
  int width = 320;
  int height = 240;
  std::size_t i_bytes = 12000;
  std::size_t p_bytes = 4000;
  std::size_t b_bytes = 1500;
  /// Deterministic +-variation applied to sizes (fraction of nominal).
  double size_jitter = 0.2;
  std::uint64_t seed = 1;
};

}  // namespace infopipe::media
