#include "media/mpeg.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "core/realization.hpp"

namespace infopipe::media {

namespace {

std::size_t nominal_size(const StreamConfig& c, FrameType t) {
  switch (t) {
    case FrameType::kI:
      return c.i_bytes;
    case FrameType::kP:
      return c.p_bytes;
    case FrameType::kB:
      return c.b_bytes;
  }
  return 0;
}

}  // namespace

// ---- MpegFileSource -----------------------------------------------------------

MpegFileSource::MpegFileSource(std::string name, StreamConfig cfg)
    : PassiveSource(std::move(name)),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed ^ std::hash<std::string>{}(this->name())) {}

Typespec MpegFileSource::output_offer(int) const {
  return Typespec{{props::kItemType, std::string("video")},
                  {props::kFormats, StringSet{"mpeg"}},
                  {props::kFrameRate, cfg_.fps},
                  {props::kWidth, Range::exactly(cfg_.width)},
                  {props::kHeight, Range::exactly(cfg_.height)}};
}

void MpegFileSource::handle_event(const Event& e) {
  if (e.type != kEventSeek) return;
  const auto* target = e.get<std::uint64_t>();
  if (target == nullptr) return;
  // Snap to the GOP boundary so the first frame after the seek is an I
  // frame — the decoder needs a reference to restart from.
  const auto gop = static_cast<std::uint64_t>(cfg_.gop.size());
  next_ = std::min(*target - *target % gop, cfg_.frames);
  last_ref_emitted_ = VideoFrame::kNoRef;
}

Item MpegFileSource::generate() {
  if (next_ >= cfg_.frames) return Item::eos();
  const std::uint64_t no = next_++;
  const FrameType t =
      static_cast<FrameType>(cfg_.gop[no % cfg_.gop.size()]);
  VideoFrame f;
  f.frame_no = no;
  f.type = t;
  if (t == FrameType::kI) {
    last_ref_emitted_ = no;
  } else {
    f.ref = last_ref_emitted_;  // P/B predict from the latest reference
    if (t == FrameType::kP) last_ref_emitted_ = no;
  }
  f.width = cfg_.width;
  f.height = cfg_.height;
  f.pts = static_cast<rt::Time>(std::llround(
      static_cast<double>(no) * 1e9 / cfg_.fps));
  const double nominal = static_cast<double>(nominal_size(cfg_, t));
  std::uniform_real_distribution<double> u(1.0 - cfg_.size_jitter,
                                           1.0 + cfg_.size_jitter);
  f.compressed_bytes = static_cast<std::size_t>(nominal * u(rng_));
  f.content_id = static_cast<std::uint32_t>(no * 2654435761u);

  Item x = Item::of<VideoFrame>(f);
  x.seq = no;
  x.timestamp = pipeline_now();
  x.kind = kind_of(t);
  x.size_bytes = f.compressed_bytes;
  return x;
}

// ---- MpegDecoder ---------------------------------------------------------------

MpegDecoder::MpegDecoder(std::string name)
    : FunctionComponent(std::move(name)) {}

Typespec MpegDecoder::input_requirement(int) const {
  return Typespec{{props::kFormats, StringSet{"mpeg"}}};
}

Typespec MpegDecoder::transform_downstream(const Typespec& in, int,
                                           int) const {
  Typespec out = in;
  out.set(props::kFormats, StringSet{"raw"});
  return out;
}

void MpegDecoder::handle_event(const Event& e) {
  if (e.type == kEventFrameRelease) {
    if (const int* upto = e.get<int>()) {
      const auto seq = static_cast<std::uint64_t>(*upto);
      std::erase_if(refs_, [seq](const Item& f) { return f.seq <= seq; });
    }
  }
}

Item MpegDecoder::convert(Item x) {
  const VideoFrame* in = x.payload<VideoFrame>();
  if (in == nullptr) return Item::nil();

  // Simulated decode cost: a long-running, preemptible data function.
  if (cost_per_kb_ > 0 && realization() != nullptr) {
    const rt::Time cost = static_cast<rt::Time>(
        static_cast<double>(cost_per_kb_) *
        (static_cast<double>(in->compressed_bytes) / 1024.0));
    realization()->runtime().sleep_for(cost);
  }

  VideoFrame out = *in;
  out.decoded = true;

  // Reference tracking: each P/B names the frame it predicts from. If that
  // reference was never decoded OK (dropped upstream, lost in the network,
  // or itself corrupt), this frame decodes corrupt.
  switch (in->type) {
    case FrameType::kI:
      ok_refs_.clear();  // a new GOP: older references are obsolete
      ok_refs_.insert(in->frame_no);
      refs_.clear();
      break;
    case FrameType::kP:
      out.corrupt = in->ref == VideoFrame::kNoRef ||
                    ok_refs_.count(in->ref) == 0;
      if (!out.corrupt) ok_refs_.insert(in->frame_no);
      break;
    case FrameType::kB:
      out.corrupt = in->ref == VideoFrame::kNoRef ||
                    ok_refs_.count(in->ref) == 0;
      break;
  }

  ++stats_.decoded;
  if (out.corrupt) ++stats_.corrupt;
  ++stats_.per_type[static_cast<std::size_t>(kind_of(in->type))];

  Item y = Item::of<VideoFrame>(out);
  y.seq = x.seq;
  y.timestamp = x.timestamp;
  y.kind = x.kind;
  y.size_bytes = static_cast<std::size_t>(out.width) *
                 static_cast<std::size_t>(out.height) * 3 / 2;  // raw YUV420

  // Keep decoded I/P frames as references (shared with downstream) until a
  // kEventFrameRelease or the next I frame (§2.2's decoder example).
  if (in->type != FrameType::kB && !out.corrupt) refs_.push_back(y);
  return y;
}

// ---- FrameDropFilter ------------------------------------------------------------

void FrameDropFilter::set_level(int level) noexcept {
  level_ = std::clamp(level, 0, 3);
}

void FrameDropFilter::handle_event(const Event& e) {
  if (e.type == kEventDropLevel) {
    if (const int* l = e.get<int>()) set_level(*l);
  } else if (e.type == kEventQualityHint) {
    if (const double* q = e.get<double>()) {
      set_level(3 - static_cast<int>(std::lround(std::clamp(*q, 0.0, 1.0) * 3)));
    }
  }
}

void FrameDropFilter::push(Item x) {
  bool drop = false;
  switch (x.kind) {
    case kKindB:
      drop = level_ >= 1;
      break;
    case kKindP:
      drop = level_ >= 2;
      break;
    case kKindI:
      drop = level_ >= 3;
      break;
    default:
      break;
  }
  if (drop) {
    ++stats_.dropped[static_cast<std::size_t>(
        std::clamp(x.kind, 0, 3))];
    return;
  }
  ++stats_.passed;
  push_next(std::move(x));
}

// ---- Resizer --------------------------------------------------------------------

void Resizer::handle_event(const Event& e) {
  if (e.type == kEventWindowResize) {
    if (const auto* wh = e.get<std::pair<int, int>>()) {
      width_ = wh->first;
      height_ = wh->second;
    }
  }
}

Item Resizer::convert(Item x) {
  const VideoFrame* in = x.payload<VideoFrame>();
  if (in == nullptr || (in->width == width_ && in->height == height_)) {
    return x;
  }
  VideoFrame out = *in;
  out.width = width_;
  out.height = height_;
  Item y = Item::of<VideoFrame>(out);
  y.seq = x.seq;
  y.timestamp = x.timestamp;
  y.kind = x.kind;
  y.size_bytes = static_cast<std::size_t>(width_) *
                 static_cast<std::size_t>(height_) * 3 / 2;
  return y;
}

// ---- VideoDisplay ----------------------------------------------------------------

void VideoDisplay::consume(Item x) {
  arrivals_.push_back(pipeline_now());
  const VideoFrame* f = x.payload<VideoFrame>();
  if (f != nullptr) {
    if (f->corrupt) ++corrupt_;
    ++per_type_[static_cast<std::size_t>(std::clamp(x.kind, 0, 3))];
    latency_sum_ms_ +=
        static_cast<double>(pipeline_now() - f->pts) / 1e6;
    // Tell the decoder that frames up to this one are no longer needed
    // (the §2.2 shared-reference-frame protocol). The decoder may be
    // several components upstream; broadcast reaches it wherever it is.
    broadcast(Event{kEventFrameRelease, static_cast<int>(x.seq)});
  }
}

void VideoDisplay::user_resize(int width, int height) {
  control_upstream(Event{kEventWindowResize, std::make_pair(width, height)});
}

VideoDisplay::Stats VideoDisplay::stats() const {
  Stats s;
  s.displayed = arrivals_.size();
  s.corrupt = corrupt_;
  std::copy(std::begin(per_type_), std::end(per_type_),
            std::begin(s.per_type));
  if (arrivals_.size() >= 2) {
    const double nominal_ms = 1e3 / nominal_fps_;
    double sum = 0.0;
    double mx = 0.0;
    for (std::size_t i = 1; i < arrivals_.size(); ++i) {
      const double dt_ms =
          static_cast<double>(arrivals_[i] - arrivals_[i - 1]) / 1e6;
      const double dev = std::abs(dt_ms - nominal_ms);
      sum += dev;
      mx = std::max(mx, dev);
    }
    s.mean_abs_jitter_ms = sum / static_cast<double>(arrivals_.size() - 1);
    s.max_abs_jitter_ms = mx;
  }
  if (!arrivals_.empty()) {
    s.mean_latency_ms = latency_sum_ms_ / static_cast<double>(arrivals_.size());
  }
  return s;
}

// ---- wire codec ------------------------------------------------------------------

namespace {
constexpr std::size_t kHeaderBytes = 48;
constexpr std::uint32_t kMagic = 0x49504631;  // "IPF1"

template <typename T>
void put(std::vector<std::uint8_t>& b, std::size_t at, T v) {
  std::memcpy(b.data() + at, &v, sizeof v);
}
template <typename T>
T get(const std::vector<std::uint8_t>& b, std::size_t at) {
  T v;
  std::memcpy(&v, b.data() + at, sizeof v);
  return v;
}
}  // namespace

std::vector<std::uint8_t> encode_frame(const Item& x) {
  const VideoFrame* f = x.payload<VideoFrame>();
  if (f == nullptr) return {};
  std::vector<std::uint8_t> b(
      std::max(kHeaderBytes, f->compressed_bytes), 0);
  put(b, 0, kMagic);
  put(b, 4, static_cast<std::uint32_t>(f->content_id));
  put(b, 8, f->frame_no);
  put(b, 16, f->pts);
  put(b, 24, static_cast<std::int32_t>(f->width));
  put(b, 28, static_cast<std::int32_t>(f->height));
  put(b, 32, static_cast<std::uint32_t>(f->compressed_bytes));
  put(b, 36, static_cast<std::uint8_t>(to_char(f->type)));
  put(b, 40, f->ref);
  return b;
}

Item decode_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes || get<std::uint32_t>(bytes, 0) != kMagic) {
    return Item::nil();
  }
  VideoFrame f;
  f.content_id = get<std::uint32_t>(bytes, 4);
  f.frame_no = get<std::uint64_t>(bytes, 8);
  f.pts = get<rt::Time>(bytes, 16);
  f.width = get<std::int32_t>(bytes, 24);
  f.height = get<std::int32_t>(bytes, 28);
  f.compressed_bytes = get<std::uint32_t>(bytes, 32);
  f.type = static_cast<FrameType>(get<std::uint8_t>(bytes, 36));
  f.ref = get<std::uint64_t>(bytes, 40);
  Item x = Item::of<VideoFrame>(f);
  x.kind = kind_of(f.type);
  x.size_bytes = f.compressed_bytes;
  return x;
}

}  // namespace infopipe::media
