// MIDI components: the paper's motivating small-item workload ("pipelines
// that handle many control events or many small data items such as a MIDI
// mixer", §4) — each event is three bytes, so per-item middleware overhead
// dominates and the thread-minimizing planner matters most here.
#pragma once

#include <cstdint>
#include <vector>

#include "core/basic.hpp"
#include "core/component.hpp"
#include "core/tee.hpp"
#include "core/typespec.hpp"

namespace infopipe::media {

struct MidiEvent {
  std::uint8_t status = 0x90;  ///< note-on, channel 0
  std::uint8_t note = 60;
  std::uint8_t velocity = 64;
};

/// Deterministic note generator (a simple arpeggio).
class MidiSource : public PassiveSource {
 public:
  MidiSource(std::string name, std::uint64_t count, std::uint8_t channel,
             std::uint8_t base_note = 60)
      : PassiveSource(std::move(name)),
        count_(count),
        channel_(channel),
        base_note_(base_note) {}

  [[nodiscard]] Typespec output_offer(int) const override {
    return Typespec{{props::kItemType, std::string("midi")}};
  }

 protected:
  Item generate() override {
    if (next_ >= count_) return Item::eos();
    MidiEvent e;
    e.status = static_cast<std::uint8_t>(0x90 | (channel_ & 0x0F));
    e.note = static_cast<std::uint8_t>(base_note_ + next_ % 12);
    e.velocity = static_cast<std::uint8_t>(40 + next_ % 80);
    Item x = Item::of<MidiEvent>(e);
    x.seq = next_++;
    x.kind = channel_;
    x.size_bytes = 3;
    x.timestamp = pipeline_now();
    return x;
  }

 private:
  std::uint64_t count_;
  std::uint8_t channel_;
  std::uint8_t base_note_;
  std::uint64_t next_ = 0;
};

/// Transposes notes by a (control-event-adjustable) interval.
class MidiTranspose : public FunctionComponent {
 public:
  MidiTranspose(std::string name, int semitones)
      : FunctionComponent(std::move(name)), semitones_(semitones) {}

  [[nodiscard]] int semitones() const noexcept { return semitones_; }

  void handle_event(const Event& e) override {
    if (e.type == kEventQualityHint) {
      if (const int* s = e.get<int>()) semitones_ = *s;
    }
  }

 protected:
  Item convert(Item x) override {
    const MidiEvent* in = x.payload<MidiEvent>();
    if (in == nullptr) return x;
    MidiEvent out = *in;
    out.note = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(out.note) + semitones_, 0, 127));
    Item y = Item::of<MidiEvent>(out);
    y.seq = x.seq;
    y.kind = x.kind;
    y.timestamp = x.timestamp;
    y.size_bytes = 3;
    return y;
  }

 private:
  int semitones_;
};

/// Arrival-order mixer: a MergeTee with a MIDI-flavoured name. Channels keep
/// their identity in Item::kind.
class MidiMixer : public MergeTee {
 public:
  MidiMixer(std::string name, int inputs) : MergeTee(std::move(name), inputs) {}
};

/// Velocity-scaling gain stage (consumer style, drops silent notes).
class MidiGain : public Consumer {
 public:
  MidiGain(std::string name, double gain)
      : Consumer(std::move(name)), gain_(gain) {}

 protected:
  void push(Item x) override {
    const MidiEvent* in = x.payload<MidiEvent>();
    if (in == nullptr) return;
    const int v = static_cast<int>(in->velocity * gain_);
    if (v <= 0) return;  // gated out
    MidiEvent out = *in;
    out.velocity = static_cast<std::uint8_t>(std::min(v, 127));
    Item y = Item::of<MidiEvent>(out);
    y.seq = x.seq;
    y.kind = x.kind;
    y.timestamp = x.timestamp;
    y.size_bytes = 3;
    push_next(std::move(y));
  }

 private:
  double gain_;
};

}  // namespace infopipe::media
