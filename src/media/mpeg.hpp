// Synthetic MPEG-style pipeline components: file source, decoder with
// reference-frame tracking and simulated decode cost, frame-type-aware drop
// filter, resizer, display sink with jitter statistics, and the wire codec
// for netpipes. Together these reproduce the component population of the
// paper's Figure 1 video pipeline.
#pragma once

#include <deque>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "core/basic.hpp"
#include "core/component.hpp"
#include "core/typespec.hpp"
#include "media/video.hpp"

namespace infopipe::media {

/// Additional control event types used by the video components.
enum MediaEventType : int {
  kEventDropLevel = kEventUser + 50,  ///< int payload: 0..3
  /// VCR seek, payload: std::uint64_t target frame. The source snaps to the
  /// enclosing GOP's I frame so the decoder restarts from a reference.
  kEventSeek = kEventUser + 51,
};

/// "mpeg_file source("test.mpg")" — a passive source producing a synthetic
/// compressed video stream with the configured GOP structure. Deterministic
/// for a given config (the filename seeds the size variation).
class MpegFileSource : public PassiveSource {
 public:
  MpegFileSource(std::string name, StreamConfig cfg);

  [[nodiscard]] const StreamConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t produced() const noexcept { return next_; }
  void rewind() noexcept {
    next_ = 0;
    last_ref_emitted_ = VideoFrame::kNoRef;
  }

  [[nodiscard]] Typespec output_offer(int) const override;

  /// VCR control: kEventSeek jumps to the GOP containing the target frame
  /// (paused/playing state is the pump's business — STOP/START).
  void handle_event(const Event& e) override;

 protected:
  Item generate() override;

 private:
  StreamConfig cfg_;
  std::mt19937_64 rng_;
  std::uint64_t next_ = 0;
  std::uint64_t last_ref_emitted_ = VideoFrame::kNoRef;
};

/// Decoder: transforms the compressed flow into a raw video flow. Simulates
/// decode cost (the thread sleeps proportionally to the coded size — a
/// preemptible, long-running data processing function, exactly the §3.2
/// scenario), tracks reference frames (I/P are kept until the next I or
/// until a downstream kEventFrameRelease), and marks frames whose references
/// were lost upstream as corrupt.
class MpegDecoder : public FunctionComponent {
 public:
  explicit MpegDecoder(std::string name);

  /// ns of simulated decode work per compressed kilobyte (0 = instant).
  void set_cost_per_kb(rt::Time ns) noexcept { cost_per_kb_ = ns; }

  struct Stats {
    std::uint64_t decoded = 0;
    std::uint64_t corrupt = 0;  ///< decoded with missing references
    std::uint64_t per_type[4] = {0, 0, 0, 0};  ///< indexed by VideoKind
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Reference frames currently held (shared payloads).
  [[nodiscard]] std::size_t held_references() const noexcept {
    return refs_.size();
  }

  [[nodiscard]] Typespec input_requirement(int) const override;
  [[nodiscard]] Typespec transform_downstream(const Typespec& in, int,
                                              int) const override;

  void handle_event(const Event& e) override;

 protected:
  Item convert(Item x) override;

 private:
  rt::Time cost_per_kb_ = 0;
  Stats stats_;
  std::vector<Item> refs_;  ///< decoded reference frames still needed
  /// frame_no of references decoded OK since the last I frame; a P/B whose
  /// ref is not in this set decodes corrupt.
  std::set<std::uint64_t> ok_refs_;
};

/// Frame-type-aware drop filter — the Figure 1 "filter [that] drops when
/// the network is congested. ... This lets us control which data is dropped
/// rather than incurring arbitrary dropping in the network."
///   level 0: pass everything     level 2: drop B and P (I only)
///   level 1: drop B frames       level 3: drop everything (pause)
/// The level is set by control events (kEventDropLevel int, or
/// kEventQualityHint double in [0,1] mapped inversely to a level), so a
/// consumer-side feedback sensor can steer it across the network.
class FrameDropFilter : public Consumer {
 public:
  explicit FrameDropFilter(std::string name) : Consumer(std::move(name)) {}

  [[nodiscard]] int level() const noexcept { return level_; }
  void set_level(int level) noexcept;

  struct Stats {
    std::uint64_t passed = 0;
    std::uint64_t dropped[4] = {0, 0, 0, 0};  ///< by VideoKind
    [[nodiscard]] std::uint64_t total_dropped() const {
      return dropped[1] + dropped[2] + dropped[3];
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void handle_event(const Event& e) override;

 protected:
  void push(Item x) override;

 private:
  int level_ = 0;
  Stats stats_;
};

/// Resizer: scales decoded frames to the display's window, which it learns
/// about through kEventWindowResize control events from downstream (§2.2's
/// second local-control example).
class Resizer : public FunctionComponent {
 public:
  Resizer(std::string name, int width, int height)
      : FunctionComponent(std::move(name)), width_(width), height_(height) {}

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  void handle_event(const Event& e) override;

  /// The resizer is inoperable unless something (normally the display)
  /// announces window sizes (§2.3 control capabilities).
  [[nodiscard]] StringSet control_requires() const override {
    return {"window-resize"};
  }

 protected:
  Item convert(Item x) override;

 private:
  int width_;
  int height_;
};

/// "video_display sink" — records presentation timing and quality
/// statistics, releases the decoder's reference frames, and can announce
/// window resizes upstream.
class VideoDisplay : public PassiveSink {
 public:
  explicit VideoDisplay(std::string name, double nominal_fps = 30.0)
      : PassiveSink(std::move(name)), nominal_fps_(nominal_fps) {}

  struct Stats {
    std::uint64_t displayed = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t per_type[4] = {0, 0, 0, 0};  ///< by VideoKind
    double mean_abs_jitter_ms = 0.0;  ///< |inter-arrival - nominal period|
    double max_abs_jitter_ms = 0.0;
    double mean_latency_ms = 0.0;  ///< arrival - pts
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] bool eos() const noexcept { return eos_; }
  [[nodiscard]] const std::vector<rt::Time>& arrival_times() const noexcept {
    return arrivals_;
  }

  /// Simulate the user resizing the window: informs the upstream component.
  void user_resize(int width, int height);

  [[nodiscard]] StringSet control_emits() const override {
    return {"window-resize", "frame-release"};
  }

 protected:
  void consume(Item x) override;
  void on_eos() override { eos_ = true; }

 private:
  double nominal_fps_;
  std::vector<rt::Time> arrivals_;
  std::uint64_t corrupt_ = 0;
  std::uint64_t per_type_[4] = {0, 0, 0, 0};
  double latency_sum_ms_ = 0.0;
  bool eos_ = false;
};

// ---- wire codec for netpipes -----------------------------------------------------

/// Encode a video frame for transmission: a fixed header plus padding up to
/// the frame's synthetic compressed size, so the link sees realistic bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Item& x);

/// Decode; returns Item::nil() for malformed packets.
[[nodiscard]] Item decode_frame(const std::vector<std::uint8_t>& bytes);

}  // namespace infopipe::media
