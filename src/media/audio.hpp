// Audio substrate: tone sources, a mixing tee, and the paper's canonical
// active sink — "Audio devices that have their own timing control can be
// implemented as a clock-driven active sink" (§3.1).
//
// Samples are synthesized (sine tones); what matters to the middleware is
// the chunk cadence, the pull-driven device timing, and underrun behaviour.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "core/basic.hpp"
#include "core/buffer.hpp"
#include "core/component.hpp"
#include "core/pump.hpp"
#include "core/tee.hpp"
#include "core/typespec.hpp"

namespace infopipe::media {

struct AudioChunk {
  std::uint64_t chunk_no = 0;
  int sample_rate = 8000;
  rt::Time pts = 0;
  std::vector<float> samples;
};

/// Events broadcast by the audio device (media clock for A/V sync).
enum AudioEventType : int {
  kEventAudioPosition = kEventUser + 60,  ///< payload: rt::Time (media time)
};

/// Generates sine-tone chunks. Deterministic.
class ToneSource : public PassiveSource {
 public:
  ToneSource(std::string name, double freq_hz, std::uint64_t chunks,
             int samples_per_chunk = 80, int sample_rate = 8000)
      : PassiveSource(std::move(name)),
        freq_(freq_hz),
        chunks_(chunks),
        samples_(samples_per_chunk),
        rate_(sample_rate) {}

  [[nodiscard]] Typespec output_offer(int) const override {
    return Typespec{{props::kItemType, std::string("audio")}};
  }

 protected:
  Item generate() override {
    if (next_ >= chunks_) return Item::eos();
    AudioChunk c;
    c.chunk_no = next_;
    c.sample_rate = rate_;
    c.pts = static_cast<rt::Time>(next_) * samples_ * rt::seconds(1) / rate_;
    c.samples.resize(static_cast<std::size_t>(samples_));
    for (int i = 0; i < samples_; ++i) {
      const double t =
          static_cast<double>(next_ * static_cast<std::uint64_t>(samples_) +
                              static_cast<std::uint64_t>(i)) /
          rate_;
      c.samples[static_cast<std::size_t>(i)] = static_cast<float>(
          std::sin(2.0 * std::numbers::pi * freq_ * t));
    }
    Item x = Item::of<AudioChunk>(std::move(c));
    x.seq = next_++;
    x.kind = 0;
    x.size_bytes = static_cast<std::size_t>(samples_) * sizeof(float);
    return x;
  }

 private:
  double freq_;
  std::uint64_t chunks_;
  int samples_;
  int rate_;
  std::uint64_t next_ = 0;
};

/// Pull-driven mixer: one pull on the output pulls one chunk from EVERY
/// input and sums the samples (§2.1's merge-by-combining tee).
class AudioMixer : public CombineTee {
 public:
  AudioMixer(std::string name, int inputs)
      : CombineTee(std::move(name), inputs) {}

 protected:
  Item combine(std::vector<Item> xs) override {
    const AudioChunk* first = xs.front().payload<AudioChunk>();
    if (first == nullptr) return Item::nil();
    AudioChunk out = *first;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      const AudioChunk* c = xs[i].payload<AudioChunk>();
      if (c == nullptr) continue;
      const std::size_t n = std::min(out.samples.size(), c->samples.size());
      for (std::size_t s = 0; s < n; ++s) out.samples[s] += c->samples[s];
    }
    const float scale = 1.0f / static_cast<float>(xs.size());
    for (float& s : out.samples) s *= scale;
    Item y = Item::of<AudioChunk>(std::move(out));
    y.seq = xs.front().seq;
    y.timestamp = xs.front().timestamp;
    y.size_bytes = xs.front().size_bytes;
    return y;
  }
};

/// The clock-driven active sink of §3.1: pulls one chunk per period at its
/// own hardware rate, counts underruns when the upstream buffer is empty,
/// and broadcasts its media position for A/V synchronization.
class AudioDevice : public ClockedSinkBase {
 public:
  /// `chunk_rate_hz`: chunks per second the "hardware" consumes. A real
  /// device's crystal deviates from the nominal rate; pass e.g. 100.07 to
  /// model clock drift (the distributed-player scenario the paper cites).
  AudioDevice(std::string name, double chunk_rate_hz,
              std::uint64_t position_report_every = 0)
      : ClockedSinkBase(std::move(name), chunk_rate_hz),
        report_every_(position_report_every) {
    set_nil_policy(NilPolicy::kForward);  // an empty buffer is an underrun
  }

  struct Stats {
    std::uint64_t played = 0;
    std::uint64_t underruns = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Media time: how much audio has actually been played.
  [[nodiscard]] rt::Time position() const noexcept {
    return played_media_ns_;
  }

  /// Models a hardware device with its own crystal: pinned to its shard.
  [[nodiscard]] bool migratable() const override { return false; }

 protected:
  void consume(Item x) override {
    if (x.is_nil()) {
      ++stats_.underruns;  // the hardware played silence
      return;
    }
    const AudioChunk* c = x.payload<AudioChunk>();
    if (c == nullptr) return;
    ++stats_.played;
    played_media_ns_ += static_cast<rt::Time>(c->samples.size()) *
                        rt::seconds(1) / c->sample_rate;
    if (report_every_ > 0 && stats_.played % report_every_ == 0) {
      broadcast(Event{kEventAudioPosition, played_media_ns_});
    }
  }

 private:
  std::uint64_t report_every_;
  Stats stats_;
  rt::Time played_media_ns_ = 0;
};

}  // namespace infopipe::media
