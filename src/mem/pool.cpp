#include "mem/pool.hpp"

// Manual ASan poisoning: a parked block's payload is off-limits until the
// pool hands it out again, and we want a stale PayloadRef dereference to
// fault under the Sanitize build exactly like a heap-use-after-free would.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IP_MEM_ASAN 1
#endif
#endif
#if !defined(IP_MEM_ASAN) && defined(__SANITIZE_ADDRESS__)
#define IP_MEM_ASAN 1
#endif

#ifdef IP_MEM_ASAN
#include <sanitizer/asan_interface.h>
#define IP_MEM_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define IP_MEM_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define IP_MEM_POISON(p, n) ((void)0)
#define IP_MEM_UNPOISON(p, n) ((void)0)
#endif

#include "replay/hooks.hpp"

namespace infopipe::mem {

namespace {

/// Payload capacities per size class. Multiples of the header alignment so
/// carving a slab keeps every header aligned; 64 bytes minimum puts header
/// + payload of the common small items inside two cache lines.
constexpr std::uint32_t kClassCap[] = {64, 128, 256, 512, 1024, 2048, 4096};
constexpr std::uint32_t kNumClasses =
    static_cast<std::uint32_t>(sizeof(kClassCap) / sizeof(kClassCap[0]));
constexpr std::uint32_t kOversizeClass = ~std::uint32_t{0};

constexpr std::size_t kSlabBytes = 64 * 1024;

/// How many blocks a foreign thread may park in an owner's return stash
/// before releases start adopting instead. Bounds the memory one direction
/// of a producer->consumer flow can strand on the producer's pool.
constexpr std::uint32_t kForeignBound = 256;

std::uint32_t class_for(std::size_t payload_bytes) {
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    if (payload_bytes <= kClassCap[c]) return c;
  }
  return kOversizeClass;
}

thread_local Pool* t_current_pool = nullptr;

}  // namespace

// ---- lifecycle --------------------------------------------------------------

Pool::Pool(std::string name, bool shared)
    : name_(std::move(name)), shared_(shared), free_(kNumClasses, nullptr) {}

Pool::~Pool() {
  for (NumaBlock& s : slabs_) numa_free(s);
}

Pool& Pool::create(std::string name) {
  // The registry is deliberately leaked: it is the LSan root that keeps
  // immortal pools (and every block parked in them) reachable.
  static std::mutex* reg_mu = new std::mutex;
  static std::vector<Pool*>* reg = new std::vector<Pool*>;
  auto* p = new Pool(std::move(name));
  const std::lock_guard<std::mutex> lk(*reg_mu);
  reg->push_back(p);
  return *p;
}

Pool* Pool::current() noexcept { return t_current_pool; }

Pool& Pool::global() {
  static Pool* g = new Pool("global", /*shared=*/true);
  return *g;
}

PoolScope::PoolScope(Pool* p) noexcept : prev_(t_current_pool) {
  t_current_pool = p;
}
PoolScope::~PoolScope() { t_current_pool = prev_; }

Pool& active_pool() noexcept {
  Pool* p = Pool::current();
  return p != nullptr ? *p : Pool::global();
}

// ---- acquire ----------------------------------------------------------------

BlockHeader* Pool::acquire(std::size_t payload_bytes) {
  const std::uint32_t cls = class_for(payload_bytes);
  if (cls == kOversizeClass) {
    // Above the largest class: a plain heap block with no home pool; the
    // last release frees it. Rare by construction (media frames fit 4K
    // after encoding; anything bigger is not a pooling target).
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    stats_.oversize.fetch_add(1, std::memory_order_relaxed);
    void* raw = ::operator new(sizeof(BlockHeader) + payload_bytes);
    auto* h = ::new (raw) BlockHeader{};
    h->capacity = static_cast<std::uint32_t>(payload_bytes);
    h->size_class = kOversizeClass;
    h->home = nullptr;
    return h;
  }

  std::unique_lock<std::mutex> lk(mutex_, std::defer_lock);
  if (shared_) lk.lock();

  BlockHeader* h = free_[cls];
  if (h == nullptr) {
    drain_foreign();
    h = free_[cls];
  }
  if (h != nullptr) {
    free_[cls] = h->next_free;
    IP_MEM_UNPOISON(block_payload(h), h->capacity);
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    h = carve(cls);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
  }
  h->type = nullptr;
  h->destroy = nullptr;
  h->used = 0;
  h->refs.store(0, std::memory_order_relaxed);
  return h;
}

BlockHeader* Pool::carve(std::uint32_t cls) {
  const std::size_t need = sizeof(BlockHeader) + kClassCap[cls];
  if (slab_left_ < need) {
    NumaBlock slab =
        numa_alloc(kSlabBytes, numa_node_.load(std::memory_order_relaxed));
    slab_cur_ = static_cast<char*>(slab.ptr);
    slab_left_ = slab.bytes;
    stats_.slab_bytes.fetch_add(slab.bytes, std::memory_order_relaxed);
    slabs_.push_back(slab);
  }
  auto* h = ::new (static_cast<void*>(slab_cur_)) BlockHeader{};
  slab_cur_ += need;
  slab_left_ -= need;
  h->capacity = kClassCap[cls];
  h->size_class = cls;
  h->home = this;
  return h;
}

// ---- release ----------------------------------------------------------------

void release_block(BlockHeader* h) noexcept {
  if (h->destroy != nullptr) {
    h->destroy(block_payload(h));
    h->destroy = nullptr;
  }
  h->type = nullptr;
  Pool* home = h->home;
  if (home == nullptr) {
    h->~BlockHeader();
    ::operator delete(h);
    return;
  }
  home->return_block(h);
}

void Pool::park(BlockHeader* h) noexcept {
  IP_MEM_POISON(block_payload(h), h->capacity);
  h->next_free = free_[h->size_class];
  free_[h->size_class] = h;
}

void Pool::return_block(BlockHeader* h) noexcept {
  if (shared_) {
    const std::lock_guard<std::mutex> lk(mutex_);
    park(h);
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Pool::current() == this) {
    park(h);
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Foreign thread. Return-to-owner while the stash is bounded and the
  // owner can still drain it; otherwise the block changes home to the
  // releasing side's pool — cross-shard traffic thereby settles its working
  // set on the consumer shard (and its NUMA node), which is where the
  // payloads are last touched.
  if (!detached() &&
      foreign_depth_.load(std::memory_order_relaxed) < kForeignBound) {
    IP_MEM_POISON(block_payload(h), h->capacity);
    BlockHeader* head = foreign_head_.load(std::memory_order_relaxed);
    do {
      h->next_free = head;
    } while (!foreign_head_.compare_exchange_weak(
        head, h, std::memory_order_release, std::memory_order_relaxed));
    foreign_depth_.fetch_add(1, std::memory_order_relaxed);
    stats_.foreign_returned.fetch_add(1, std::memory_order_relaxed);
    // HB edge: the releasing thread's history rides the stash until the
    // owner drains it (replay/hb.hpp).
    replay::note_stash(this, replay::StashEdge::kReturn, 1);
    return;
  }
  Pool* cur = Pool::current();
  Pool* adopter = (cur != nullptr && !cur->shared_) ? cur : &Pool::global();
  h->home = adopter;
  adopter->adopt_foreign(h);
}

void Pool::adopt_foreign(BlockHeader* h) noexcept {
  if (shared_) {
    const std::lock_guard<std::mutex> lk(mutex_);
    park(h);
  } else {
    // Only reached with this == current(): the adopter IS the releasing
    // thread's pool, so the free list is owner-accessed.
    park(h);
  }
  stats_.foreign_adopted.fetch_add(1, std::memory_order_relaxed);
  replay::note_stash(this, replay::StashEdge::kAdopt, 1);
}

void Pool::drain_foreign() noexcept {
  BlockHeader* h = foreign_head_.exchange(nullptr, std::memory_order_acquire);
  if (h == nullptr) return;
  foreign_depth_.store(0, std::memory_order_relaxed);
  std::uint64_t n = 0;
  while (h != nullptr) {
    BlockHeader* next = h->next_free;
    h->next_free = free_[h->size_class];
    free_[h->size_class] = h;
    h = next;
    ++n;
  }
  replay::note_stash(this, replay::StashEdge::kDrain, n);
}

Pool::Stats Pool::stats() const noexcept {
  Stats s;
  s.hits = stats_.hits.load(std::memory_order_relaxed);
  s.misses = stats_.misses.load(std::memory_order_relaxed);
  s.recycled = stats_.recycled.load(std::memory_order_relaxed);
  s.foreign_returned =
      stats_.foreign_returned.load(std::memory_order_relaxed);
  s.foreign_adopted = stats_.foreign_adopted.load(std::memory_order_relaxed);
  s.oversize = stats_.oversize.load(std::memory_order_relaxed);
  s.slab_bytes = stats_.slab_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace infopipe::mem
