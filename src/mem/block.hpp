// Pooled payload blocks (ip_mem).
//
// The unit the item path allocates is a Block: one contiguous extent holding
// a small header (intrusive refcount, capacity, type identity, destructor)
// followed immediately by the payload bytes. One block == one allocation ==
// one cache-line-friendly object that can be recycled through a free list
// without ever touching the general-purpose allocator again — the
// counterpart of the two-allocation shared_ptr<const any> representation it
// replaces (control block + any box, each type-erased one hop apart).
//
// Ownership is an intrusive refcount manipulated only through PayloadRef
// (copy = acquire, move = steal, all noexcept). The LAST release returns the
// block to its home pool — from any thread; pool.hpp documents the
// return-to-owner / adopt protocol that keeps that safe and bounded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <typeinfo>

namespace infopipe::mem {

class Pool;
struct BlockHeader;

/// Runs the payload destructor (if any) and returns the block to its home
/// pool — or frees it, for unpooled blocks. Thread-safe; defined in pool.cpp.
void release_block(BlockHeader* h) noexcept;

/// Tag type identifying raw-byte payloads (serialization scratch); their
/// length lives in BlockHeader::used rather than in a typed object.
struct Bytes {};

/// The in-band header preceding every pooled payload. kept to 48 bytes (one
/// cache line covers header + a small payload) and aligned so the payload
/// that follows is suitably aligned for any standard type.
struct alignas(alignof(std::max_align_t)) BlockHeader {
  std::atomic<std::uint32_t> refs{0};  ///< PayloadRef owners
  std::uint32_t capacity = 0;          ///< payload bytes following the header
  std::uint32_t used = 0;              ///< live payload bytes (Bytes blocks)
  std::uint32_t size_class = 0;        ///< pool class index; pool.cpp's table
  Pool* home = nullptr;                ///< owning pool; nullptr = plain heap
  void (*destroy)(void*) noexcept = nullptr;  ///< payload dtor; may be null
  union {
    const std::type_info* type = nullptr;  ///< live block: payload identity
    BlockHeader* next_free;                ///< parked block: free-list link
  };
};

[[nodiscard]] inline void* block_payload(BlockHeader* h) noexcept {
  return h + 1;
}
[[nodiscard]] inline const void* block_payload(const BlockHeader* h) noexcept {
  return h + 1;
}

/// Intrusive smart pointer over a payload block. Copy bumps the refcount,
/// move steals it; both are noexcept, which is what lets Item's move ops be
/// noexcept and every ring/deque hop along the item path move instead of
/// copy.
class PayloadRef {
 public:
  constexpr PayloadRef() noexcept = default;

  /// Takes ownership of one already-counted reference.
  [[nodiscard]] static PayloadRef adopt(BlockHeader* h) noexcept {
    PayloadRef r;
    r.h_ = h;
    return r;
  }

  PayloadRef(const PayloadRef& o) noexcept : h_(o.h_) {
    if (h_ != nullptr) h_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& o) noexcept : h_(o.h_) { o.h_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    PayloadRef(o).swap(*this);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    PayloadRef(static_cast<PayloadRef&&>(o)).swap(*this);
    return *this;
  }
  ~PayloadRef() { reset(); }

  void swap(PayloadRef& o) noexcept {
    BlockHeader* t = h_;
    h_ = o.h_;
    o.h_ = t;
  }

  void reset() noexcept {
    if (h_ != nullptr &&
        h_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      release_block(h_);
    }
    h_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return h_ != nullptr;
  }
  [[nodiscard]] BlockHeader* header() const noexcept { return h_; }

  /// Owners of this payload right now (approximate under concurrency, exact
  /// once a flow is quiescent — same contract shared_ptr::use_count gives).
  [[nodiscard]] long use_count() const noexcept {
    return h_ == nullptr
               ? 0
               : static_cast<long>(h_->refs.load(std::memory_order_relaxed));
  }

  /// Typed access; nullptr on empty ref, raw-bytes block or type mismatch.
  template <typename T>
  [[nodiscard]] const T* get_if() const noexcept {
    if (h_ == nullptr || h_->type == nullptr || *h_->type != typeid(T)) {
      return nullptr;
    }
    return static_cast<const T*>(block_payload(h_));
  }

  [[nodiscard]] bool is_bytes() const noexcept {
    return h_ != nullptr && h_->type != nullptr && *h_->type == typeid(Bytes);
  }
  [[nodiscard]] const std::uint8_t* bytes() const noexcept {
    return static_cast<const std::uint8_t*>(block_payload(h_));
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return h_ == nullptr ? 0 : h_->used;
  }

 private:
  BlockHeader* h_ = nullptr;
};

}  // namespace infopipe::mem
