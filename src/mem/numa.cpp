#include "mem/numa.hpp"

#include <new>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace infopipe::mem {

namespace {

#ifdef __linux__
constexpr int kMpolPreferred = 1;  // MPOL_PREFERRED from <linux/mempolicy.h>

std::size_t page_round(std::size_t bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (bytes + page - 1) / page * page;
}
#endif

}  // namespace

NumaBlock numa_alloc(std::size_t bytes, int node) {
  NumaBlock b;
  if (bytes == 0) return b;
  b.node = node;
#ifdef __linux__
  const std::size_t len = page_round(bytes);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    b.ptr = p;
    b.bytes = len;
    b.mapped = true;
#ifdef SYS_mbind
    if (node >= 0 && node < 64) {
      // Best effort: a machine with one node (or a kernel without NUMA)
      // rejects or ignores this, and that is fine — the preference is an
      // optimization, never a requirement.
      const unsigned long mask = 1UL << node;
      (void)::syscall(SYS_mbind, p, len, kMpolPreferred, &mask,
                      sizeof(mask) * 8 + 1, 0U);
    }
#endif
    return b;
  }
#endif
  b.ptr = ::operator new(bytes);
  b.bytes = bytes;
  b.mapped = false;
  return b;
}

void numa_free(NumaBlock& b) noexcept {
  if (b.ptr == nullptr) return;
#ifdef __linux__
  if (b.mapped) {
    (void)::munmap(b.ptr, b.bytes);
    b = NumaBlock{};
    return;
  }
#endif
  ::operator delete(b.ptr);
  b = NumaBlock{};
}

}  // namespace infopipe::mem
