// Per-runtime payload pools (ip_mem).
//
// Every rt::Runtime owns one Pool; the runtime makes it the thread's
// *current* pool (PoolScope) for the duration of its scheduling loop, so
// Item::of running inside any user-level thread allocates from the pool of
// the runtime hosting it — no context argument threads through the item
// path. Off-runtime code (tests, setup) falls back to the shared global
// pool.
//
// Threading contract:
//   * acquire() runs only on the pool's owner thread — the kernel thread
//     that currently has it installed as PoolScope current. A runtime runs
//     on one kernel thread at a time, so the free lists need no locks.
//     (The global pool is the exception: it is `shared` and takes a mutex.)
//   * return_block() runs on ANY thread, because the last PayloadRef to a
//     block can die anywhere — typically on the consumer shard of a channel
//     hop. Three cases:
//       - releasing thread owns this pool     -> push to the free list;
//       - foreign thread, owner stash bounded -> lock-free MPSC return
//         stack, drained by the owner on its next free-list miss;
//       - stash full or owner detached        -> the block is ADOPTED by the
//         releasing thread's own pool (home pointer rewritten) — this is
//         what makes cross-shard recycling settle on the consumer's pool
//         instead of growing an unbounded return queue.
//
// Pools created through Pool::create() are immortal (registered in a leaked
// global list, detached — never destroyed — when their runtime dies), so a
// payload outliving its runtime can still return its block somewhere safe.
//
// Slabs are allocated NUMA-node-aware (mem/numa.hpp): ShardGroup points
// each shard's pool at the node its kernel thread is pinned to, so recycled
// blocks — which gravitate to the consumer side — stay node-local to the
// code touching them.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mem/block.hpp"
#include "mem/numa.hpp"

namespace infopipe::mem {

class Pool {
 public:
  /// Allocation/recycling counters (relaxed atomics; safe to sample from
  /// any thread). hits+misses == acquires; a hit costs no allocator call.
  struct Stats {
    std::uint64_t hits = 0;          ///< served from a free list
    std::uint64_t misses = 0;        ///< carved from a slab / heap
    std::uint64_t recycled = 0;      ///< returned on the owner thread
    std::uint64_t foreign_returned = 0;  ///< returned via the owner stash
    std::uint64_t foreign_adopted = 0;   ///< adopted from another pool
    std::uint64_t oversize = 0;      ///< above the largest class (unpooled)
    std::uint64_t slab_bytes = 0;    ///< total slab storage owned
  };

  /// `shared` pools serialize every operation on an internal mutex and may
  /// be used from any thread (the global pool); per-runtime pools are not
  /// shared and rely on the threading contract above.
  explicit Pool(std::string name = {}, bool shared = false);

  /// Destroying a pool requires every block it ever handed out to be dead
  /// or adopted elsewhere; prefer create() for pools whose payloads can
  /// escape (per-runtime pools are created that way and never destroyed).
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// An immortal pool: registered in a process-lifetime list (so its slabs
  /// and parked blocks stay reachable — clean under LeakSanitizer) and
  /// never destroyed.
  [[nodiscard]] static Pool& create(std::string name);

  /// The calling thread's current pool (innermost PoolScope), or nullptr.
  [[nodiscard]] static Pool* current() noexcept;

  /// Shared fallback pool for off-runtime allocation. Immortal.
  [[nodiscard]] static Pool& global();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Node future slabs are bound to (< 0: no preference). Existing slabs
  /// are not moved.
  void set_numa_node(int node) noexcept {
    numa_node_.store(node, std::memory_order_relaxed);
  }
  [[nodiscard]] int numa_node() const noexcept {
    return numa_node_.load(std::memory_order_relaxed);
  }

  /// Marks the owner gone: foreign returns stop targeting the stash (they
  /// adopt instead). Called by the owning runtime's destructor.
  void detach() noexcept {
    detached_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool detached() const noexcept {
    return detached_.load(std::memory_order_acquire);
  }

  /// A zeroed-header block with >= payload_bytes of payload capacity. Owner
  /// thread only (any thread for shared pools). The caller fills type/
  /// destroy/used and the refcount before wrapping it in a PayloadRef.
  [[nodiscard]] BlockHeader* acquire(std::size_t payload_bytes);

  /// Returns a block whose payload has already been destroyed. Any thread;
  /// normally reached through release_block().
  void return_block(BlockHeader* h) noexcept;

  [[nodiscard]] Stats stats() const noexcept;

 private:
  friend void release_block(BlockHeader* h) noexcept;

  BlockHeader* carve(std::uint32_t cls);
  void park(BlockHeader* h) noexcept;     // push to free list (owner/locked)
  void drain_foreign() noexcept;          // stash -> free lists (owner/locked)
  void adopt_foreign(BlockHeader* h) noexcept;

  std::string name_;
  const bool shared_;
  std::mutex mutex_;  ///< taken only when shared_
  std::atomic<int> numa_node_{-1};
  std::atomic<bool> detached_{false};

  std::vector<BlockHeader*> free_;  ///< head per size class (next_free links)
  std::vector<NumaBlock> slabs_;
  char* slab_cur_ = nullptr;
  std::size_t slab_left_ = 0;

  std::atomic<BlockHeader*> foreign_head_{nullptr};  ///< MPSC return stash
  std::atomic<std::uint32_t> foreign_depth_{0};

  struct {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> recycled{0};
    std::atomic<std::uint64_t> foreign_returned{0};
    std::atomic<std::uint64_t> foreign_adopted{0};
    std::atomic<std::uint64_t> oversize{0};
    std::atomic<std::uint64_t> slab_bytes{0};
  } stats_;
};

/// RAII: installs `p` as the calling thread's current pool. The runtime
/// wraps its scheduling loop in one of these, next to its active-runtime
/// scope.
class PoolScope {
 public:
  explicit PoolScope(Pool* p) noexcept;
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  Pool* prev_;
};

/// The pool Item::of allocates from: the thread's current pool, else global.
[[nodiscard]] Pool& active_pool() noexcept;

/// A typed payload block holding `value`, refcount 1.
template <typename T>
[[nodiscard]] PayloadRef make_typed(T value) {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned payload types are not supported by the pooled "
                "item path; disable pooling for them");
  BlockHeader* h = active_pool().acquire(sizeof(T));
  try {
    ::new (block_payload(h)) T(std::move(value));
  } catch (...) {
    release_block(h);  // no payload constructed: plain return to the pool
    throw;
  }
  h->used = static_cast<std::uint32_t>(sizeof(T));
  h->type = &typeid(T);
  if constexpr (!std::is_trivially_destructible_v<T>) {
    h->destroy = [](void* q) noexcept { static_cast<T*>(q)->~T(); };
  }
  h->refs.store(1, std::memory_order_relaxed);
  return PayloadRef::adopt(h);
}

/// A raw-bytes payload block (serialization scratch), refcount 1. The pool
/// hands back a class-rounded block, so successive wire messages of similar
/// size reuse the same storage instead of running vector's grow dance.
[[nodiscard]] inline PayloadRef make_bytes(const void* data, std::size_t n) {
  BlockHeader* h = active_pool().acquire(n);
  if (n != 0) std::memcpy(block_payload(h), data, n);
  h->used = static_cast<std::uint32_t>(n);
  h->type = &typeid(Bytes);
  h->refs.store(1, std::memory_order_relaxed);
  return PayloadRef::adopt(h);
}

}  // namespace infopipe::mem
