// NUMA-aware raw storage (ip_mem).
//
// One primitive: "give me `bytes` of zeroed storage, preferably resident on
// NUMA node `node`". On Linux the storage is mmap'd and bound with a raw
// mbind(2) syscall (MPOL_PREFERRED — a binding must never make an
// allocation fail, only steer it), so neither libnuma nor any new package is
// required; everywhere else — and whenever the syscall is unavailable — it
// degrades to plain operator new. The *decision* (which node was requested)
// is recorded in the returned descriptor regardless of whether the kernel
// honoured it, because tests with an injected shard::Topology must be able
// to verify placement policy on machines with one physical node.
#pragma once

#include <cstddef>

namespace infopipe::mem {

/// A raw storage extent plus how it was obtained and where it was aimed.
struct NumaBlock {
  void* ptr = nullptr;
  std::size_t bytes = 0;
  bool mapped = false;  ///< true: munmap on free; false: operator delete
  int node = -1;        ///< requested NUMA node (-1 = no preference)
};

/// Allocates `bytes` (rounded up to the page size when mmap'd), requesting
/// residency on `node` (< 0 for no preference). Never returns nullptr for
/// bytes > 0 — failures fall back to the heap; throws std::bad_alloc only if
/// even that fails.
[[nodiscard]] NumaBlock numa_alloc(std::size_t bytes, int node);

/// Releases storage from numa_alloc(); safe on a default-constructed block.
void numa_free(NumaBlock& b) noexcept;

}  // namespace infopipe::mem
