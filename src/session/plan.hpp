// ip_session shared plan: analyze the engine pipeline ONCE, stamp sessions
// out of it forever after.
//
// The middleware's classic path charges every flow a full plan + realize:
// graph analysis, section/coroutine allocation, thread creation. For a
// server holding 100k live flows that per-use cost is the scalability
// ceiling, and it is pure waste — every session runs the SAME pipeline
// shape. SharedPlan hoists that work: analyze() builds the engine pipeline
// prototype, runs the planner over it, and caches the resulting PlanInfo as
// one immutable value. SessionTable then realizes one engine per shard from
// this spec (n_shards planner runs total, at construction), and every
// open() after that is a constant-time stamp: a wheel entry plus a session
// record, sharing the one PlanInfo. plan_info() is what every session's
// introspection reports — there is exactly one plan, by construction.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/component.hpp"
#include "core/introspect.hpp"
#include "rt/types.hpp"

namespace infopipe::session {

/// Builds the application's mid-stages for one shard engine (filters,
/// transforms — whatever the flow does between source and sink). Called
/// once per shard at table construction with the shard index, and once
/// with shard = -1 for the plan-analysis prototype; every invocation must
/// produce the same pipeline shape (same count and styles), which is what
/// makes the single shared PlanInfo honest. May be empty (no mid-stages).
using StageFactory =
    std::function<std::vector<std::unique_ptr<Component>>(int shard)>;

/// Everything that parameterizes a shard engine, fixed at analyze() time.
struct EngineSpec {
  StageFactory stages;  ///< optional application mid-stages

  /// Ceiling on how long an idle engine sleeps between wheel checks — and
  /// therefore on admission latency, since the driver protocol does not
  /// wake for the acceptor's queue pushes.
  double idle_poll_hz = 200.0;

  /// Per-shard QoS loop (SessionTable::start_loops): hold the engine's
  /// item lag (LatencySensor "sess.lag", due-to-arrival, milliseconds) at
  /// the setpoint by actuating the ClassGovernor's hint in
  /// [min_mult, 1.0]. Gold never degrades; bronze follows the hint.
  double lag_setpoint_ms = 5.0;
  rt::Time loop_period = rt::milliseconds(20);
  double loop_kp = 0.02;
  double loop_ki = 0.05;
  double min_mult = 0.1;
};

/// The one immutable plan all sessions share. Create via analyze(); hold by
/// shared_ptr<const ...> — the table keeps it alive, sessions reference it.
class SharedPlan {
 public:
  /// Plans the engine pipeline this spec describes (prototype components
  /// are built, planned and discarded — nothing is realized) and caches
  /// the PlanInfo. Throws CompositionError when the stage factory yields a
  /// shape the planner rejects.
  [[nodiscard]] static std::shared_ptr<const SharedPlan> analyze(
      EngineSpec spec);

  /// What the planner decided, as data — identical for every session.
  [[nodiscard]] const PlanInfo& info() const noexcept { return info_; }
  [[nodiscard]] const EngineSpec& spec() const noexcept { return spec_; }

 private:
  SharedPlan(EngineSpec spec, PlanInfo info)
      : spec_(std::move(spec)), info_(std::move(info)) {}

  EngineSpec spec_;
  PlanInfo info_;
};

}  // namespace infopipe::session
