// ip_session value types: sessions, QoS classes, jitter accounting.
//
// A *session* is one lightweight live flow stamped out of the session
// layer's shared plan (plan.hpp): a few dozen bytes of state — identity,
// QoS class, emission cadence, sequence counter — on a per-shard engine
// that was planned and realized exactly once. Everything in this header is
// plain data shared between the table (table.hpp), the acceptor
// (acceptor.hpp) and their tests; nothing here touches threads.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace infopipe::session {

/// Service classes in strict priority order. Under pressure the per-shard
/// governor steals pump cadence from the lower classes first: gold keeps
/// its full rate, silver degrades half as fast as bronze.
enum class QosClass : int { kGold = 0, kSilver = 1, kBronze = 2 };

inline constexpr int kNumClasses = 3;

[[nodiscard]] std::string to_string(QosClass c);

/// Parses "gold" / "silver" / "bronze" (the wire spelling of the session
/// control protocol, net/wire.hpp kSessionOpen). Returns false on anything
/// else and leaves `out` untouched.
[[nodiscard]] bool parse_qos(const std::string& s, QosClass& out);

/// What a client asks for when opening a session.
struct SessionParams {
  QosClass qos = QosClass::kBronze;
  double rate_hz = 10.0;          ///< nominal emission cadence
  std::size_t payload_bytes = 64; ///< deterministic payload size per item
};

/// Session identity. The home shard is folded into the low byte so routing
/// a close (or a data item, whose kind carries the id) never needs a
/// table lookup: shard_of_session(id) is a mask. The counter part is kept
/// below 2^23 so the whole id also fits the int32 `kind` field of an Item.
using SessionId = std::uint64_t;

[[nodiscard]] inline constexpr SessionId make_session_id(
    std::uint64_t counter, int shard) {
  return (counter << 8) | static_cast<std::uint64_t>(shard & 0xFF);
}
[[nodiscard]] inline constexpr int shard_of_session(SessionId id) {
  return static_cast<int>(id & 0xFF);
}

// ---- jitter accounting ------------------------------------------------------

/// Lock-free log2-bucketed histogram of inter-item jitter (nanoseconds).
/// record() is wait-free from any shard thread; snapshots merge across
/// shards by plain addition, so the table can report one fleet-wide p99
/// while 100k sessions keep emitting.
class JitterHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t ns) noexcept {
    int b = 0;
    while (b < kBuckets - 1 && ns >= (std::uint64_t{1} << b)) ++b;
    buckets_[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Adds this histogram's counts into `out` (a merge accumulator).
  void merge_into(std::array<std::uint64_t, kBuckets>& out) const noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      out[static_cast<std::size_t>(b)] +=
          buckets_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Merged jitter picture across every shard's histogram.
struct JitterSnapshot {
  std::uint64_t samples = 0;
  std::uint64_t p50_ns = 0;  ///< upper bound of the bucket holding p50
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;  ///< upper bound of the highest non-empty bucket
};

/// Quantile over merged bucket counts: the upper bound (2^b ns) of the
/// bucket containing the q-th sample. q in [0,1].
[[nodiscard]] std::uint64_t quantile_ns(
    const std::array<std::uint64_t, JitterHistogram::kBuckets>& counts,
    double q);

// ---- stream digest ----------------------------------------------------------

/// FNV-1a 64 over a session's item stream, hashed per item in sequence
/// order: payload bytes, then seq and kind as explicit big-endian words.
/// Timestamps are deliberately NOT hashed — they are clock-dependent while
/// the information content is not (the distributed_player convention).
/// Per-session digests are interleaving-independent: the only ordering that
/// matters is each session's own seq order, which both the shared-engine
/// path and the INFOPIPE_SESSIONS=off solo path produce identically.
struct StreamDigest {
  std::uint64_t h = 1469598103934665603ull;

  void update(const void* p, std::size_t n) noexcept {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void update_u64(std::uint64_t v) noexcept {
    std::uint8_t b[8];
    for (int i = 7; i >= 0; --i) {
      b[i] = static_cast<std::uint8_t>(v & 0xFF);
      v >>= 8;
    }
    update(b, 8);
  }
};

}  // namespace infopipe::session
