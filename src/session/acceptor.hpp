// ip_session SessionAcceptor: admission against measured load, and the
// many-connection network front door.
//
// The table stamps any session it is asked for; the acceptor is where
// policy lives. decide() scores every shard by its *effective* load — the
// max of the LoadAccountant's measured busy share (EWMA of the shard
// kernel thread's busy/idle split) and the acceptor's own planned load
// (sum of admitted sessions' rate x cost_per_item, which covers sessions
// admitted so recently the EWMA has not seen them yet) — picks the least
// loaded shard deterministically (ties break to the lowest index), and
// admits only below the requesting class's watermark. Gold's watermark is
// highest: when the fleet fills up, bronze is refused first, which is the
// admission-side half of the class QoS story (the run-time half is the
// governor's rate stealing, table.hpp).
//
// listen() opens the network path: a net::SocketAcceptor hands every
// connecting peer its OWN SocketTransport (own agent thread, own frame
// reader — no serializing on one connection slot), and each peer drives
// kSessionOpen / kSessionClose control frames against this acceptor.
// Sessions die with their peer: sweep_peers() closes whatever a vanished
// peer left open.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "balance/accountant.hpp"
#include "net/socket_transport.hpp"
#include "session/session.hpp"
#include "session/table.hpp"

namespace infopipe::session {

struct AdmissionPolicy {
  /// Planned busy-share per (item/second) of session cadence — the a
  /// priori cost of a session until the measured EWMA catches up.
  double cost_per_item = 1e-5;
  /// Admission ceilings per class (effective load + session cost must stay
  /// below). Indexed by QosClass; gold highest, bronze lowest.
  std::array<double, kNumClasses> watermark{0.95, 0.85, 0.70};
  /// Hard cap on sessions per shard regardless of load.
  std::size_t max_per_shard = std::size_t{1} << 20;
};

/// Outcome of one admission check. `reason` is human-readable and travels
/// verbatim in the wire error reply on rejection.
struct Decision {
  bool admitted = false;
  int shard = -1;
  double load = 0.0;  ///< effective load of the chosen shard, pre-admission
  std::string reason;
};

class SessionAcceptor {
 public:
  SessionAcceptor(SessionTable& table, balance::LoadAccountant& acct,
                  AdmissionPolicy policy = AdmissionPolicy());
  ~SessionAcceptor();

  SessionAcceptor(const SessionAcceptor&) = delete;
  SessionAcceptor& operator=(const SessionAcceptor&) = delete;

  /// Pure admission check — no side effects, deterministic for a given
  /// accountant snapshot, planned-load state and live shard set. The
  /// candidate shards are re-resolved from the table's group on EVERY call
  /// (elastic topology: shards added after this acceptor was built are
  /// candidates immediately, retired ones never are).
  [[nodiscard]] Decision decide(const SessionParams& p) const;

  struct OpenResult {
    bool ok = false;
    SessionId id = 0;
    int shard = -1;
    std::string reason;  ///< set on rejection
  };

  /// decide() + stamp: admits against the current load picture, opens the
  /// session on the chosen shard, and accounts its planned load. Thread-
  /// safe; rejections only touch the counter.
  OpenResult open(const SessionParams& p);

  /// Closes an admitted session and releases its planned load. Unknown ids
  /// are ignored (a peer may close twice; the table is never double-hit).
  void close(SessionId id);

  /// Sum of admitted sessions' planned load on a shard.
  [[nodiscard]] double planned_load(int shard) const;
  [[nodiscard]] std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

  // ---- network front door ---------------------------------------------------

  /// Binds the many-connection listener on `rt` (the control runtime the
  /// caller drives; NOT a shard runtime). Each accepted peer gets its own
  /// transport whose kSessionOpen/kSessionClose control frames route here.
  void listen(rt::Runtime& rt, rt::IoBridge& io, net::SocketConfig cfg);
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] std::size_t peers() const;

  /// Closes every session belonging to a peer whose connection died and
  /// drops the peer. Call from the listening runtime's driving thread
  /// (transports are destroyed here).
  void sweep_peers();

 private:
  struct Planned {
    int shard = -1;
    double load = 0.0;
  };
  struct Peer {
    std::unique_ptr<net::SocketTransport> transport;
    std::vector<SessionId> sessions;
  };

  void handle_control(net::SocketTransport* t, std::uint64_t request_id,
                      net::wire::ControlOp op, const std::string& text);

  SessionTable* table_;
  balance::LoadAccountant* acct_;
  AdmissionPolicy policy_;

  mutable std::mutex mu_;  ///< planned-load bookkeeping
  std::unordered_map<SessionId, Planned> planned_;
  std::vector<double> planned_load_;     ///< per shard
  std::vector<std::size_t> count_;       ///< per shard
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};

  std::unique_ptr<net::SocketAcceptor> listener_;
  mutable std::mutex peers_mu_;
  std::map<net::SocketTransport*, Peer> peers_;
};

}  // namespace infopipe::session
