// ip_session engine internals: the components every shard engine is built
// from, shared between the plan analysis (plan.cpp — which realizes nothing
// but must plan the exact pipeline shape) and the table (table.cpp — which
// realizes one engine per shard and stamps sessions onto them).
//
// Middleware-internal: applications talk to SessionTable / SessionAcceptor;
// tests may reach in for white-box assertions.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/component.hpp"
#include "core/item.hpp"
#include "core/pump.hpp"
#include "session/session.hpp"

namespace infopipe::session {

/// Per-shard state shared between the engine components, the table's query
/// surface and the feedback loop: everything cross-thread-readable is an
/// atomic or the lock-free histogram; nothing here is touched under a lock
/// on the emission path.
struct ShardState {
  std::array<std::atomic<double>, kNumClasses> mult;  ///< class rate multiplier
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> live{0};
  JitterHistogram jitter;

  ShardState() {
    for (auto& m : mult) m.store(1.0, std::memory_order_relaxed);
  }
};

/// Deterministic payload for (id, seq): both the shared-engine path and the
/// INFOPIPE_SESSIONS=off solo path fill from this one function, which is
/// what makes their per-session digests bit-identical.
inline void fill_payload(std::uint8_t* b, std::size_t n, SessionId id,
                         std::uint64_t seq) {
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(
        (id >> ((i % 8) * 8)) ^ ((seq + i) * 131u) ^ 0x5Au);
  }
}

/// The session item: payload = fill_payload(id, seq), kind = id (fits — see
/// make_session_id), timestamp = scheduled due time (so a downstream
/// LatencySensor measures lag against the cadence, not arrival-to-arrival).
/// `scratch` avoids a per-item allocation for payloads beyond the inline
/// capacity.
[[nodiscard]] inline Item make_session_item(std::vector<std::uint8_t>& scratch,
                                            SessionId id, std::uint64_t seq,
                                            rt::Time due, std::size_t bytes) {
  scratch.resize(bytes);
  fill_payload(scratch.data(), bytes, id, seq);
  Item x = Item::of_bytes(scratch.data(), bytes);
  x.seq = seq;
  x.kind = static_cast<int>(id);
  x.timestamp = due;
  return x;
}

/// One step of the per-session stream digest (see StreamDigest).
inline void digest_item(StreamDigest& d, const Item& x) {
  d.update(x.bytes_data(), x.bytes_size());
  d.update_u64(x.seq);
  d.update_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(x.kind)));
}

// ---- the engine components --------------------------------------------------

/// The shard engine's one driver: a timing wheel of live sessions over ONE
/// thread. Each session is a wheel entry (due time, id) plus a Sess record;
/// opening a session is a queue push + heap insert — no planning, no
/// realization, no thread creation. That is the whole point of ip_session.
///
/// Timing: next_fire() returns min(earliest due, now + idle_poll). The
/// driver protocol sleeps until exactly the returned instant and does not
/// re-evaluate on control traffic, so the idle-poll bound is what puts a
/// ceiling on admission latency when the wheel is empty or far in the
/// future. One cycle() emits every session due at the fire time (bounded by
/// kMaxEmitPerCycle to stay responsive to control events).
///
/// Cadence under pressure: the effective period of a session is
/// nominal_period / mult[class], with mult written by the ClassGovernor
/// below (gold stays at 1.0; silver and bronze shrink when the shard's lag
/// grows). Emission order between sessions due at the same instant is heap
/// order on (due, id) — deterministic, so manual-mode runs replay exactly.
class SessionSource : public ActiveSource {
 public:
  SessionSource(std::string name, ShardState* st, double idle_poll_hz,
                double min_mult);

  // External (any thread): admission/close ops enqueue under a mutex and
  // are drained onto the wheel at the next prepare()/next_fire() on the
  // driver thread — wheel and Sess records themselves are driver-only.
  void enqueue_open(SessionId id, SessionParams p);
  void enqueue_close(SessionId id);

  /// Live sessions on this shard (maintained by the table at open/close,
  /// so it is accurate immediately, not at the next wheel drain).
  [[nodiscard]] std::uint64_t live() const noexcept {
    return st_->live.load(std::memory_order_relaxed);
  }

 protected:
  void prepare(rt::Time now) override;
  [[nodiscard]] rt::Time next_fire(rt::Time now) override;
  void cycle() override;
  /// Unused: cycle() is overridden wholesale (a wheel fire may emit zero or
  /// many items, which the one-item generate() contract cannot express).
  [[nodiscard]] Item generate() override { return Item::eos(); }

 private:
  static constexpr std::size_t kMaxEmitPerCycle = 1024;

  struct Sess {
    SessionParams params;
    rt::Time period = 0;  ///< nominal, from params.rate_hz
    rt::Time due = 0;
    std::uint64_t seq = 0;
  };
  struct WheelEntry {
    rt::Time due = 0;
    SessionId id = 0;
    bool operator>(const WheelEntry& o) const {
      return due != o.due ? due > o.due : id > o.id;
    }
  };
  struct PendingOp {
    bool open = false;
    SessionId id = 0;
    SessionParams params;
  };

  void drain_pending(rt::Time now);

  ShardState* st_;
  rt::Time idle_poll_;
  double min_mult_;
  std::priority_queue<WheelEntry, std::vector<WheelEntry>,
                      std::greater<WheelEntry>>
      wheel_;
  std::unordered_map<SessionId, Sess> sessions_;
  std::vector<std::uint8_t> scratch_;

  std::mutex pending_mu_;
  std::vector<PendingOp> pending_;
};

/// Identity pass-through holding the per-class cadence multipliers. The
/// per-shard feedback loop actuates it by name with kEventQualityHint(h),
/// h in [min_mult, 1]: gold keeps 1.0, silver degrades half as far as
/// bronze — under pressure the controller lowers h and gold sessions
/// effectively steal pump rate from bronze ones. Handlers run on the shard
/// thread; the multipliers are atomics only because the table's query
/// surface reads them from outside.
class ClassGovernor : public FunctionComponent {
 public:
  ClassGovernor(std::string name, ShardState* st, double min_mult)
      : FunctionComponent(std::move(name)), st_(st), min_mult_(min_mult) {}

  void handle_event(const Event& e) override;

  [[nodiscard]] int hints_applied() const noexcept {
    return hints_.load(std::memory_order_relaxed);
  }

 protected:
  Item convert(Item x) override { return x; }

 private:
  ShardState* st_;
  double min_mult_;
  std::atomic<int> hints_{0};
};

/// Terminal sink: per-session stream digest plus inter-item jitter — the
/// absolute difference between the actual arrival gap and the scheduled
/// gap, |(now - prev_arrival) - (due - prev_due)| — recorded into the
/// shard's lock-free histogram. The record map is driver-thread-only (the
/// sink shares the source's section); the table routes external digest
/// queries through the shard thread.
class SessionSink : public PassiveSink {
 public:
  SessionSink(std::string name, ShardState* st)
      : PassiveSink(std::move(name)), st_(st) {}

  void consume(Item x) override;

  /// Per-session digest so far; 0 for an unknown session. Driver-thread
  /// (or stopped-engine) access only.
  [[nodiscard]] std::uint64_t digest_of(SessionId id) const;
  [[nodiscard]] std::uint64_t items_of(SessionId id) const;

 private:
  struct Rec {
    StreamDigest digest;
    std::uint64_t seen = 0;
    rt::Time prev_due = 0;
    rt::Time prev_arrival = 0;
  };

  ShardState* st_;
  std::unordered_map<SessionId, Rec> recs_;
};

}  // namespace infopipe::session
