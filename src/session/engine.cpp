#include "session/engine.hpp"

#include <algorithm>
#include <cmath>

#include "core/event.hpp"

namespace infopipe::session {

SessionSource::SessionSource(std::string name, ShardState* st,
                             double idle_poll_hz, double min_mult)
    : ActiveSource(std::move(name), rt::kPriorityTimer),
      st_(st),
      idle_poll_(idle_poll_hz > 0.0
                     ? static_cast<rt::Time>(1e9 / idle_poll_hz)
                     : rt::milliseconds(5)),
      min_mult_(min_mult) {}

void SessionSource::enqueue_open(SessionId id, SessionParams p) {
  const std::lock_guard<std::mutex> lk(pending_mu_);
  pending_.push_back(PendingOp{true, id, p});
}

void SessionSource::enqueue_close(SessionId id) {
  const std::lock_guard<std::mutex> lk(pending_mu_);
  pending_.push_back(PendingOp{false, id, SessionParams{}});
}

void SessionSource::drain_pending(rt::Time now) {
  std::vector<PendingOp> ops;
  {
    const std::lock_guard<std::mutex> lk(pending_mu_);
    ops.swap(pending_);
  }
  for (PendingOp& op : ops) {
    if (op.open) {
      Sess s;
      s.params = op.params;
      const double hz = op.params.rate_hz > 0.0 ? op.params.rate_hz : 1.0;
      s.period = static_cast<rt::Time>(1e9 / hz);
      // First fire at the drain instant, then every period — the same
      // schedule ClockedSourceBase gives the INFOPIPE_SESSIONS=off solo
      // flows, so both modes emit the same item count at any horizon.
      s.due = now;
      sessions_.emplace(op.id, s);
      wheel_.push(WheelEntry{s.due, op.id});
    } else {
      // The wheel entry stays behind and is lazily discarded when it
      // surfaces (ids are never reused, so a stale entry is unambiguous).
      sessions_.erase(op.id);
    }
  }
}

void SessionSource::prepare(rt::Time now) { drain_pending(now); }

rt::Time SessionSource::next_fire(rt::Time now) {
  drain_pending(now);
  // Discard stale wheel heads (closed sessions) so an empty engine really
  // idles at the poll cadence instead of firing on ghosts.
  while (!wheel_.empty() && sessions_.count(wheel_.top().id) == 0) {
    wheel_.pop();
  }
  // The driver protocol sleeps until exactly this instant without
  // re-evaluating on control traffic — the idle-poll bound is what keeps
  // admissions (which arrive as external queue pushes, not as wake-ups)
  // from waiting behind a far-future or empty wheel.
  const rt::Time poll = now + idle_poll_;
  if (wheel_.empty()) return poll;
  return std::min(wheel_.top().due, poll);
}

void SessionSource::cycle() {
  const rt::Time now = pipeline_now();
  std::size_t emitted = 0;
  while (!wheel_.empty() && emitted < kMaxEmitPerCycle) {
    const WheelEntry top = wheel_.top();
    if (top.due > now) break;
    wheel_.pop();
    auto it = sessions_.find(top.id);
    // Stale entry (closed session) or superseded entry (cadence changed
    // while an older due was still queued): skip without emitting.
    if (it == sessions_.end() || it->second.due != top.due) continue;
    Sess& s = it->second;
    push_next(make_session_item(scratch_, top.id, s.seq, s.due,
                                s.params.payload_bytes));
    ++items_pumped_;
    ++emitted;
    st_->emitted.fetch_add(1, std::memory_order_relaxed);
    ++s.seq;
    const double m = std::clamp(
        st_->mult[static_cast<std::size_t>(s.params.qos)].load(
            std::memory_order_relaxed),
        min_mult_, 1.0);
    // Drift-free per session: the next due advances from the scheduled
    // time, not from `now`, scaled by the class multiplier.
    s.due += static_cast<rt::Time>(static_cast<double>(s.period) / m);
    wheel_.push(WheelEntry{s.due, top.id});
  }
}

void ClassGovernor::handle_event(const Event& e) {
  if (e.type != kEventQualityHint) return;
  const double* h = e.get<double>();
  if (h == nullptr) return;
  const double v = std::clamp(*h, min_mult_, 1.0);
  // Gold is never degraded; silver sits halfway between gold and bronze.
  st_->mult[static_cast<std::size_t>(QosClass::kGold)].store(
      1.0, std::memory_order_relaxed);
  st_->mult[static_cast<std::size_t>(QosClass::kSilver)].store(
      std::clamp((1.0 + v) / 2.0, min_mult_, 1.0),
      std::memory_order_relaxed);
  st_->mult[static_cast<std::size_t>(QosClass::kBronze)].store(
      v, std::memory_order_relaxed);
  hints_.fetch_add(1, std::memory_order_relaxed);
}

void SessionSink::consume(Item x) {
  if (!x.is_data()) return;
  const rt::Time now = pipeline_now();
  const auto id = static_cast<SessionId>(static_cast<std::uint32_t>(x.kind));
  Rec& r = recs_[id];
  digest_item(r.digest, x);
  if (r.seen > 0) {
    const auto expected =
        static_cast<std::int64_t>(x.timestamp - r.prev_due);
    const auto actual = static_cast<std::int64_t>(now - r.prev_arrival);
    st_->jitter.record(static_cast<std::uint64_t>(
        actual > expected ? actual - expected : expected - actual));
  }
  r.prev_due = x.timestamp;
  r.prev_arrival = now;
  ++r.seen;
}

std::uint64_t SessionSink::digest_of(SessionId id) const {
  auto it = recs_.find(id);
  return it == recs_.end() ? 0 : it->second.digest.h;
}

std::uint64_t SessionSink::items_of(SessionId id) const {
  auto it = recs_.find(id);
  return it == recs_.end() ? 0 : it->second.seen;
}

}  // namespace infopipe::session
