#include "session/session.hpp"

namespace infopipe::session {

std::string to_string(QosClass c) {
  switch (c) {
    case QosClass::kGold: return "gold";
    case QosClass::kSilver: return "silver";
    case QosClass::kBronze: return "bronze";
  }
  return "?";
}

bool parse_qos(const std::string& s, QosClass& out) {
  if (s == "gold") { out = QosClass::kGold; return true; }
  if (s == "silver") { out = QosClass::kSilver; return true; }
  if (s == "bronze") { out = QosClass::kBronze; return true; }
  return false;
}

std::uint64_t quantile_ns(
    const std::array<std::uint64_t, JitterHistogram::kBuckets>& counts,
    double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; walk buckets until it is covered.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < JitterHistogram::kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen >= rank) return std::uint64_t{1} << b;
  }
  return std::uint64_t{1} << (JitterHistogram::kBuckets - 1);
}

}  // namespace infopipe::session
