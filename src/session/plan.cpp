#include "session/plan.hpp"

#include <utility>

#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "feedback/toolkit.hpp"
#include "session/engine.hpp"

namespace infopipe::session {

std::shared_ptr<const SharedPlan> SharedPlan::analyze(EngineSpec spec) {
  // Prototype engine: built, planned, discarded. The table builds the real
  // engines from the same spec, so the PlanInfo cached here describes every
  // one of them — and every session stamped onto them.
  ShardState st;
  SessionSource src("sess.src", &st, spec.idle_poll_hz, spec.min_mult);
  ClassGovernor gov("sess.governor", &st, spec.min_mult);
  fb::LatencySensor lag("sess.lag", 0.2, /*report_every=*/0);
  SessionSink sink("sess.sink", &st);

  std::vector<std::unique_ptr<Component>> stages;
  if (spec.stages) stages = spec.stages(-1);

  Pipeline p;
  Component* prev = &src;
  p.connect(*prev, gov);
  prev = &gov;
  for (auto& stage : stages) {
    p.connect(*prev, *stage);
    prev = stage.get();
  }
  p.connect(*prev, lag);
  p.connect(lag, sink);

  const Plan pl = plan(p);
  PlanInfo info =
      plan_info_of(p, pl, static_cast<std::size_t>(pl.total_threads()));
  return std::shared_ptr<const SharedPlan>(
      new SharedPlan(std::move(spec), std::move(info)));
}

}  // namespace infopipe::session
