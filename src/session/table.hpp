// ip_session SessionTable: 100k live flows out of one shared plan.
//
// The table owns one *engine* per shard — SessionSource (a timing wheel
// over ONE driver thread) >> ClassGovernor >> application stages >>
// LatencySensor >> SessionSink — realized exactly once, at construction,
// from the SharedPlan's spec. Opening a session is then a *stamp*: a
// counter increment, a queue push onto the home shard's wheel, a session
// record. No planning, no realization, no thread creation — which is why
// open_on() is orders of magnitude cheaper than a per-flow Pipeline
// realize, and why tens of thousands of concurrent sessions fit where the
// classic path holds dozens (bench/bench_sessions.cpp measures both
// claims).
//
// Per-class QoS: start_loops() binds one feedback loop per shard over the
// existing endpoint layer — probe_value("sess.lag") → PI →
// quality_hint("sess.governor") — holding the engine's due-to-arrival lag
// at the spec's setpoint by degrading bronze (and, half as fast, silver)
// cadence while gold stays untouched: gold sessions steal pump rate from
// bronze under pressure, through ordinary control events.
//
// INFOPIPE_SESSIONS=off is the kill switch: the table falls back to the
// classic one-realization-per-flow path (a solo clocked source + sink per
// session, planned and realized on open_on), emitting bit-identical
// per-session item streams — digest(id) matches across modes — at the
// classic cost. The lockstep suites run both ways.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/introspect.hpp"
#include "session/plan.hpp"
#include "session/session.hpp"
#include "shard/shard_group.hpp"

namespace infopipe {
class Pipeline;
class Realization;
}  // namespace infopipe
namespace infopipe::fb {
class FeedbackLoop;
class LatencySensor;
}  // namespace infopipe::fb

namespace infopipe::session {

class ClassGovernor;
class SessionSink;
class SessionSource;

class SessionTable {
 public:
  /// Realizes one engine per shard of `group` from the shared plan (routed
  /// through run_on when the group is running; inline in manual mode) and
  /// starts them pumping. The group must outlive the table.
  SessionTable(shard::ShardGroup& group,
               std::shared_ptr<const SharedPlan> plan);
  ~SessionTable();

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  [[nodiscard]] const SharedPlan& shared_plan() const noexcept {
    return *plan_;
  }
  /// The ONE plan every session shares (cached at analyze(); never
  /// recomputed per session).
  [[nodiscard]] const PlanInfo& plan_info() const noexcept {
    return plan_->info();
  }
  /// False when INFOPIPE_SESSIONS=off selected the per-flow fallback.
  [[nodiscard]] bool shared_mode() const noexcept { return shared_mode_; }
  /// Engines ever built (grows with the elastic topology, never shrinks —
  /// a retired shard keeps its engine slot and final counters).
  [[nodiscard]] int shards() const;
  /// The group this table realizes over (for live-topology queries).
  [[nodiscard]] shard::ShardGroup& group() const noexcept { return *group_; }
  /// Ids of shards currently accepting sessions: the group's live set.
  [[nodiscard]] std::vector<int> live_shards() const;

  // ---- elastic topology -----------------------------------------------------

  /// Adopts shards the group grew after this table was built: realizes one
  /// engine per new live shard (shared mode; fallback mode just grows the
  /// bookkeeping). Idempotent. Call after ShardGroup::add_shard().
  void sync_topology();

  /// Tears down a shard's engine ahead of ShardGroup::retire_shard():
  /// stops its loop, posts shutdown and destroys the realization ON the
  /// shard's still-live kernel thread. Sessions still open there are
  /// force-closed (their planned load is the acceptor's business; its
  /// close() path tolerates already-gone ids). open_on() refuses the shard
  /// afterwards. Must run BEFORE the group retires the shard — run_on
  /// needs the host thread alive.
  void retire_shard(int shard);

  // ---- the stamp path -------------------------------------------------------

  /// Opens a session on `shard`. Shared mode: thread-safe, constant-time,
  /// callable from any thread while the engines run. Fallback mode: plans
  /// and realizes a solo flow for the session (the classic cost, routed
  /// onto the shard thread). Admission policy lives in SessionAcceptor —
  /// the table itself never refuses.
  [[nodiscard]] SessionId open_on(int shard, SessionParams p);

  /// Closes an open session. Each id must be closed at most once.
  void close(SessionId id);

  // ---- query surface --------------------------------------------------------

  [[nodiscard]] std::size_t live() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t live_on(int shard) const;
  /// Items emitted across all engines (shared mode; 0 in fallback mode —
  /// use items_of per session there).
  [[nodiscard]] std::uint64_t items_total() const;
  /// Items delivered / stream digest of one session (sampled on the home
  /// shard's thread while running). Digest covers payload+seq+kind per the
  /// distributed_player convention and is identical in both modes.
  [[nodiscard]] std::uint64_t items_of(SessionId id);
  [[nodiscard]] std::uint64_t digest(SessionId id);
  /// Current cadence multiplier of a class on a shard (1.0 untouched).
  [[nodiscard]] double mult(int shard, QosClass c) const;
  /// Merged inter-item jitter across every shard's histogram.
  [[nodiscard]] JitterSnapshot jitter() const;
  /// Planner+realize runs so far: n_shards in shared mode, n_shards + one
  /// per open in fallback mode. The bench's >= 10x stamp-out claim is the
  /// ratio this exposes.
  [[nodiscard]] std::uint64_t realizations() const noexcept {
    return realizations_.load(std::memory_order_relaxed);
  }

  // ---- per-class QoS --------------------------------------------------------

  /// Binds and starts one lag-holding feedback loop per shard (shared mode;
  /// no-op in fallback mode). Call while the group is running.
  void start_loops();
  void stop_loops();
  /// Deterministic substitute for the loops: applies one quality hint to a
  /// shard's governor exactly as an actuation would (lockstep tests drive
  /// class stealing through this, bit-identically across runs).
  void inject_hint(int shard, double h);

  /// Posts shutdown to every engine (and solo flow). Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  struct Engine;
  struct Solo;

  void on_shard(int shard, const std::function<void()>& fn);
  void build_engine(int shard);
  /// Bounds-checked engine lookup; the Engine objects are heap-stable, so
  /// the returned reference survives concurrent growth of engines_.
  [[nodiscard]] Engine& engine_at(int shard) const;
  [[nodiscard]] std::size_t engine_count() const;

  shard::ShardGroup* group_;
  std::shared_ptr<const SharedPlan> plan_;
  bool shared_mode_;
  /// Guards the engines_ vector's SHAPE (elastic growth); the Engines
  /// themselves are reached through stable unique_ptrs.
  mutable std::mutex engines_mu_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::atomic<std::uint64_t> next_counter_{1};
  std::atomic<std::uint64_t> realizations_{0};
  std::atomic<std::uint64_t> live_{0};
  bool stopped_ = false;

  std::mutex solo_mu_;  ///< fallback mode: id -> solo flow
  std::unordered_map<SessionId, std::unique_ptr<Solo>> solos_;
};

}  // namespace infopipe::session
