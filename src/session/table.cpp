#include "session/table.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/config.hpp"
#include "core/event.hpp"
#include "core/pipeline.hpp"
#include "core/realization.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"
#include "session/engine.hpp"

namespace infopipe::session {

namespace {

/// INFOPIPE_SESSIONS=off fallback: the classic one-flow-one-realization
/// source, emitting exactly the items the shared engine would stamp for
/// this session (same fill_payload, same seq/kind), so per-session digests
/// are bit-identical across modes.
class SoloSource : public ClockedSourceBase {
 public:
  SoloSource(std::string name, SessionId id, const SessionParams& p)
      : ClockedSourceBase(std::move(name),
                          p.rate_hz > 0.0 ? p.rate_hz : 1.0),
        id_(id),
        bytes_(p.payload_bytes) {}

 protected:
  [[nodiscard]] Item generate() override {
    return make_session_item(scratch_, id_, seq_++, pipeline_now(), bytes_);
  }

 private:
  SessionId id_;
  std::size_t bytes_;
  std::uint64_t seq_ = 0;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace

/// One shard's engine (shared mode). In fallback mode only `state` is used
/// (for the per-shard jitter histogram and counters the solo flows share).
struct SessionTable::Engine {
  ShardState state;
  std::unique_ptr<SessionSource> src;
  std::unique_ptr<ClassGovernor> gov;
  std::unique_ptr<fb::LatencySensor> lag;
  std::unique_ptr<SessionSink> sink;
  std::vector<std::unique_ptr<Component>> stages;
  std::shared_ptr<Pipeline> pipe;
  std::unique_ptr<Realization> real;
  std::unique_ptr<fb::FeedbackLoop> loop;
  /// Torn down ahead of the shard's retirement; counters stay readable.
  bool retired = false;
};

/// One fallback-mode session: its own pipeline, its own realization — the
/// classic per-flow cost the shared path exists to avoid.
struct SessionTable::Solo {
  int shard = 0;
  std::unique_ptr<SoloSource> src;
  std::vector<std::unique_ptr<Component>> stages;
  std::unique_ptr<SessionSink> sink;
  std::shared_ptr<Pipeline> pipe;
  std::unique_ptr<Realization> real;
};

void SessionTable::on_shard(int shard, const std::function<void()>& fn) {
  if (group_->running() && !group_->on_shard_thread(shard)) {
    group_->run_on(shard, fn);
  } else {
    fn();
  }
}

SessionTable::SessionTable(shard::ShardGroup& group,
                           std::shared_ptr<const SharedPlan> plan)
    : group_(&group),
      plan_(std::move(plan)),
      shared_mode_(config().sessions) {
  engines_.resize(static_cast<std::size_t>(group.size()));
  for (int s = 0; s < group.size(); ++s) {
    engines_[static_cast<std::size_t>(s)] = std::make_unique<Engine>();
    if (shared_mode_) build_engine(s);
  }
}

int SessionTable::shards() const {
  return static_cast<int>(engine_count());
}

std::vector<int> SessionTable::live_shards() const {
  return group_->live_shards();
}

SessionTable::Engine& SessionTable::engine_at(int shard) const {
  const std::lock_guard<std::mutex> lk(engines_mu_);
  if (shard < 0 || static_cast<std::size_t>(shard) >= engines_.size()) {
    throw std::out_of_range("session: shard " + std::to_string(shard) +
                            " out of range");
  }
  return *engines_[static_cast<std::size_t>(shard)];
}

std::size_t SessionTable::engine_count() const {
  const std::lock_guard<std::mutex> lk(engines_mu_);
  return engines_.size();
}

void SessionTable::sync_topology() {
  // Grow the slot vector under the lock, then realize the new engines
  // outside it (realization routes through run_on — never hold a lock
  // across that).
  std::vector<int> fresh;
  {
    const std::lock_guard<std::mutex> lk(engines_mu_);
    const auto n = static_cast<std::size_t>(group_->size());
    while (engines_.size() < n) {
      fresh.push_back(static_cast<int>(engines_.size()));
      engines_.push_back(std::make_unique<Engine>());
    }
  }
  for (const int s : fresh) {
    if (shared_mode_ && group_->is_live(s)) build_engine(s);
  }
}

void SessionTable::retire_shard(int shard) {
  Engine& e = engine_at(shard);
  if (e.retired) return;
  e.retired = true;
  if (e.loop) {
    on_shard(shard, [&e] {
      e.loop->stop();
      e.loop.reset();
    });
  }
  if (e.real) {
    on_shard(shard, [&e] {
      e.real->post_event(Event{kEventShutdown});
      e.real.reset();
    });
  }
  // Sessions that were still open here die with the engine; the aggregate
  // live count must not keep counting them.
  const auto orphaned = e.state.live.exchange(0, std::memory_order_relaxed);
  live_.fetch_sub(orphaned, std::memory_order_relaxed);
}

void SessionTable::build_engine(int shard) {
  Engine& e = engine_at(shard);
  const EngineSpec& sp = plan_->spec();
  e.src = std::make_unique<SessionSource>("sess.src", &e.state,
                                          sp.idle_poll_hz, sp.min_mult);
  e.gov = std::make_unique<ClassGovernor>("sess.governor", &e.state,
                                          sp.min_mult);
  e.lag = std::make_unique<fb::LatencySensor>("sess.lag", 0.2,
                                              /*report_every=*/0);
  e.sink = std::make_unique<SessionSink>("sess.sink", &e.state);
  if (sp.stages) e.stages = sp.stages(shard);

  e.pipe = std::make_shared<Pipeline>();
  Component* prev = e.src.get();
  e.pipe->connect(*prev, *e.gov);
  prev = e.gov.get();
  for (auto& stage : e.stages) {
    e.pipe->connect(*prev, *stage);
    prev = stage.get();
  }
  e.pipe->connect(*prev, *e.lag);
  e.pipe->connect(*e.lag, *e.sink);

  // Realization (thread creation) happens on the owning shard's kernel
  // thread; everything above is pure graph construction.
  on_shard(shard, [this, shard, &e] {
    e.real = std::make_unique<Realization>(group_->runtime(shard), e.pipe);
    realizations_.fetch_add(1, std::memory_order_relaxed);
    e.real->post_event(Event{kEventStart});
  });
}

SessionTable::~SessionTable() {
  stop();
  for (std::size_t s = 0; s < engine_count(); ++s) {
    Engine& e = engine_at(static_cast<int>(s));
    if (e.real) {
      on_shard(static_cast<int>(s), [&e] { e.real.reset(); });
    }
  }
  const std::lock_guard<std::mutex> lk(solo_mu_);
  for (auto& [id, solo] : solos_) {
    if (solo->real) {
      Solo* sp = solo.get();
      on_shard(sp->shard, [sp] { sp->real.reset(); });
    }
  }
  solos_.clear();
}

SessionId SessionTable::open_on(int shard, SessionParams p) {
  Engine& e = engine_at(shard);
  if (e.retired || !group_->is_live(shard)) {
    throw std::out_of_range("session: shard " + std::to_string(shard) +
                            " is retired");
  }
  const std::uint64_t c = next_counter_.fetch_add(1, std::memory_order_relaxed);
  const SessionId id = make_session_id(c, shard);

  if (shared_mode_) {
    // The stamp: one queue push. The wheel picks it up at the engine's
    // next fire (bounded by idle_poll_hz).
    e.src->enqueue_open(id, p);
  } else {
    auto solo = std::make_unique<Solo>();
    solo->shard = shard;
    solo->src = std::make_unique<SoloSource>("solo.src", id, p);
    if (plan_->spec().stages) solo->stages = plan_->spec().stages(shard);
    solo->sink = std::make_unique<SessionSink>("solo.sink", &e.state);
    solo->pipe = std::make_shared<Pipeline>();
    Component* prev = solo->src.get();
    for (auto& stage : solo->stages) {
      solo->pipe->connect(*prev, *stage);
      prev = stage.get();
    }
    solo->pipe->connect(*prev, *solo->sink);
    Solo* sp = solo.get();
    on_shard(shard, [this, shard, sp] {
      sp->real = std::make_unique<Realization>(group_->runtime(shard),
                                               sp->pipe);
      realizations_.fetch_add(1, std::memory_order_relaxed);
      sp->real->post_event(Event{kEventStart});
    });
    const std::lock_guard<std::mutex> lk(solo_mu_);
    solos_.emplace(id, std::move(solo));
  }

  live_.fetch_add(1, std::memory_order_relaxed);
  e.state.live.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SessionTable::close(SessionId id) {
  const int shard = shard_of_session(id);
  if (shard < 0 || static_cast<std::size_t>(shard) >= engine_count()) return;
  Engine& e = engine_at(shard);
  if (e.retired) return;  // force-closed with its shard already

  if (shared_mode_) {
    e.src->enqueue_close(id);
  } else {
    std::unique_ptr<Solo> solo;
    {
      const std::lock_guard<std::mutex> lk(solo_mu_);
      auto it = solos_.find(id);
      if (it == solos_.end()) return;
      solo = std::move(it->second);
      solos_.erase(it);
    }
    Solo* sp = solo.get();
    on_shard(shard, [sp] {
      sp->real->post_event(Event{kEventShutdown});
      sp->real.reset();
    });
  }

  live_.fetch_sub(1, std::memory_order_relaxed);
  e.state.live.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t SessionTable::live_on(int shard) const {
  return engine_at(shard).state.live.load(std::memory_order_relaxed);
}

std::uint64_t SessionTable::items_total() const {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < engine_count(); ++s) {
    n += engine_at(static_cast<int>(s))
             .state.emitted.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t SessionTable::items_of(SessionId id) {
  const int shard = shard_of_session(id);
  std::uint64_t out = 0;
  if (shared_mode_) {
    Engine& e = engine_at(shard);
    if (e.retired) return 0;
    on_shard(shard, [&out, &e, id] { out = e.sink->items_of(id); });
  } else {
    const std::lock_guard<std::mutex> lk(solo_mu_);
    auto it = solos_.find(id);
    if (it == solos_.end()) return 0;
    SessionSink* sink = it->second->sink.get();
    on_shard(shard, [&out, sink, id] { out = sink->items_of(id); });
  }
  return out;
}

std::uint64_t SessionTable::digest(SessionId id) {
  const int shard = shard_of_session(id);
  std::uint64_t out = 0;
  if (shared_mode_) {
    Engine& e = engine_at(shard);
    if (e.retired) return 0;
    on_shard(shard, [&out, &e, id] { out = e.sink->digest_of(id); });
  } else {
    const std::lock_guard<std::mutex> lk(solo_mu_);
    auto it = solos_.find(id);
    if (it == solos_.end()) return 0;
    SessionSink* sink = it->second->sink.get();
    on_shard(shard, [&out, sink, id] { out = sink->digest_of(id); });
  }
  return out;
}

double SessionTable::mult(int shard, QosClass c) const {
  return engine_at(shard)
      .state.mult[static_cast<std::size_t>(c)]
      .load(std::memory_order_relaxed);
}

JitterSnapshot SessionTable::jitter() const {
  std::array<std::uint64_t, JitterHistogram::kBuckets> counts{};
  for (std::size_t s = 0; s < engine_count(); ++s) {
    engine_at(static_cast<int>(s)).state.jitter.merge_into(counts);
  }
  JitterSnapshot snap;
  for (int b = 0; b < JitterHistogram::kBuckets; ++b) {
    const std::uint64_t n = counts[static_cast<std::size_t>(b)];
    snap.samples += n;
    if (n > 0) snap.max_ns = std::uint64_t{1} << b;
  }
  if (snap.samples > 0) {
    snap.p50_ns = quantile_ns(counts, 0.50);
    snap.p99_ns = quantile_ns(counts, 0.99);
  }
  return snap;
}

void SessionTable::start_loops() {
  if (!shared_mode_) return;
  const EngineSpec& sp = plan_->spec();
  for (std::size_t s = 0; s < engine_count(); ++s) {
    Engine& e = engine_at(static_cast<int>(s));
    if (e.retired || !e.real) continue;
    on_shard(static_cast<int>(s), [&e, &sp, s] {
      fb::LoopSpec spec;
      spec.name = "sess.gov" + std::to_string(s);
      spec.period = sp.loop_period;
      spec.sensor = fb::probe_value("sess.lag");
      spec.setpoint = sp.lag_setpoint_ms;
      spec.controller = fb::PIController(sp.loop_kp, sp.loop_ki,
                                         sp.min_mult, 1.0);
      spec.actuator = fb::quality_hint("sess.governor");
      e.loop = fb::make_loop(*e.real, std::move(spec));
      e.loop->start();
    });
  }
}

void SessionTable::stop_loops() {
  for (std::size_t s = 0; s < engine_count(); ++s) {
    Engine& e = engine_at(static_cast<int>(s));
    if (!e.loop) continue;
    on_shard(static_cast<int>(s), [&e] {
      e.loop->stop();
      e.loop.reset();
    });
  }
}

void SessionTable::inject_hint(int shard, double h) {
  if (!shared_mode_) return;
  Engine& e = engine_at(shard);
  if (e.retired || !e.real) return;
  const Event hint{kEventQualityHint, h};
  if (group_->running() && !group_->on_shard_thread(shard)) {
    e.real->post_event_to_external(*e.gov, hint);
  } else {
    e.real->post_event_to(*e.gov, hint);
  }
}

void SessionTable::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_loops();
  for (std::size_t s = 0; s < engine_count(); ++s) {
    Engine& e = engine_at(static_cast<int>(s));
    if (!e.real) continue;
    on_shard(static_cast<int>(s),
             [&e] { e.real->post_event(Event{kEventShutdown}); });
  }
  const std::lock_guard<std::mutex> lk(solo_mu_);
  for (auto& [id, solo] : solos_) {
    if (!solo->real) continue;
    Solo* sp = solo.get();
    on_shard(sp->shard,
             [sp] { sp->real->post_event(Event{kEventShutdown}); });
  }
}

}  // namespace infopipe::session
