#include "session/acceptor.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace infopipe::session {

namespace {

constexpr char kSep = '\x1F';

std::vector<std::string> split_fields(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(kSep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

SessionAcceptor::SessionAcceptor(SessionTable& table,
                                 balance::LoadAccountant& acct,
                                 AdmissionPolicy policy)
    : table_(&table), acct_(&acct), policy_(policy) {
  planned_load_.resize(static_cast<std::size_t>(table.shards()), 0.0);
  count_.resize(static_cast<std::size_t>(table.shards()), 0);
}

SessionAcceptor::~SessionAcceptor() = default;

Decision SessionAcceptor::decide(const SessionParams& p) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const balance::LoadSnapshot snap = acct_->snapshot();

  // The candidate set is the LIVE shard set, re-resolved on every decision
  // — never the count at construction. An elastic group may have grown
  // (new shards score 0 planned load until the bookkeeping catches up in
  // open()) or retired shards this acceptor once admitted onto.
  Decision d;
  double best = std::numeric_limits<double>::infinity();
  for (const int shard : table_->live_shards()) {
    const auto s = static_cast<std::size_t>(shard);
    const double measured = s < snap.busy.size() ? snap.busy[s] : 0.0;
    // Effective load: whichever of the measured EWMA and the planned sum
    // is higher — planned covers the admissions the EWMA has not seen
    // yet, measured covers cost the plan under-estimated.
    const double planned = s < planned_load_.size() ? planned_load_[s] : 0.0;
    const double eff = std::max(measured, planned);
    if (eff < best) {  // strict: ties break to the lowest shard index
      best = eff;
      d.shard = shard;
    }
  }
  if (d.shard < 0) {
    d.reason = "no shards";
    return d;
  }
  d.load = best;

  const auto cls = static_cast<std::size_t>(p.qos);
  const double cost = std::max(p.rate_hz, 0.0) * policy_.cost_per_item;
  const double wm = policy_.watermark[cls];
  const std::size_t on_shard =
      static_cast<std::size_t>(d.shard) < count_.size()
          ? count_[static_cast<std::size_t>(d.shard)]
          : 0;
  if (on_shard >= policy_.max_per_shard) {
    d.reason = "shard " + std::to_string(d.shard) + " at session cap (" +
               std::to_string(policy_.max_per_shard) + ")";
    return d;
  }
  if (best + cost > wm) {
    d.reason = to_string(p.qos) + " watermark " + std::to_string(wm) +
               " exceeded: shard " + std::to_string(d.shard) + " at " +
               std::to_string(best) + " + session cost " +
               std::to_string(cost);
    return d;
  }
  d.admitted = true;
  return d;
}

SessionAcceptor::OpenResult SessionAcceptor::open(const SessionParams& p) {
  const Decision d = decide(p);
  OpenResult r;
  r.shard = d.shard;
  if (!d.admitted) {
    r.reason = d.reason;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  r.id = table_->open_on(d.shard, p);
  r.ok = true;
  const double cost = std::max(p.rate_hz, 0.0) * policy_.cost_per_item;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto s = static_cast<std::size_t>(d.shard);
    if (s >= planned_load_.size()) {  // first admission onto a grown shard
      planned_load_.resize(s + 1, 0.0);
      count_.resize(s + 1, 0);
    }
    planned_.emplace(r.id, Planned{d.shard, cost});
    planned_load_[s] += cost;
    ++count_[s];
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

void SessionAcceptor::close(SessionId id) {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto it = planned_.find(id);
    if (it == planned_.end()) return;
    const auto s = static_cast<std::size_t>(it->second.shard);
    planned_load_[s] = std::max(0.0, planned_load_[s] - it->second.load);
    if (count_[s] > 0) --count_[s];
    planned_.erase(it);
  }
  table_->close(id);
}

double SessionAcceptor::planned_load(int shard) const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (shard < 0 || static_cast<std::size_t>(shard) >= planned_load_.size()) {
    return 0.0;  // a grown shard nothing was admitted onto yet
  }
  return planned_load_[static_cast<std::size_t>(shard)];
}

// ---- network front door -----------------------------------------------------

void SessionAcceptor::listen(rt::Runtime& rt, rt::IoBridge& io,
                             net::SocketConfig cfg) {
  listener_ = std::make_unique<net::SocketAcceptor>(
      rt, io, cfg, [this](std::unique_ptr<net::SocketTransport> t) {
        net::SocketTransport* tp = t.get();
        tp->set_control_handler(
            [this, tp](std::uint64_t request_id, net::wire::ControlOp op,
                       const std::string& text) {
              handle_control(tp, request_id, op, text);
            });
        const std::lock_guard<std::mutex> lk(peers_mu_);
        peers_.emplace(tp, Peer{std::move(t), {}});
      });
}

std::uint16_t SessionAcceptor::port() const {
  return listener_ ? listener_->local_port() : 0;
}

std::size_t SessionAcceptor::peers() const {
  const std::lock_guard<std::mutex> lk(peers_mu_);
  return peers_.size();
}

void SessionAcceptor::handle_control(net::SocketTransport* t,
                                     std::uint64_t request_id,
                                     net::wire::ControlOp op,
                                     const std::string& text) {
  switch (op) {
    case net::wire::ControlOp::kSessionOpen: {
      const std::vector<std::string> f = split_fields(text);
      SessionParams p;
      if (f.size() != 3 || !parse_qos(f[0], p.qos)) {
        t->send_control_reply(request_id, false,
                              "bad open request: want qos\\x1Frate\\x1Fbytes");
        return;
      }
      try {
        p.rate_hz = std::stod(f[1]);
        p.payload_bytes = static_cast<std::size_t>(std::stoul(f[2]));
      } catch (const std::exception&) {
        t->send_control_reply(request_id, false, "bad open request: numbers");
        return;
      }
      const OpenResult r = open(p);
      if (!r.ok) {
        t->send_control_reply(request_id, false, r.reason);
        return;
      }
      {
        const std::lock_guard<std::mutex> lk(peers_mu_);
        auto it = peers_.find(t);
        if (it != peers_.end()) it->second.sessions.push_back(r.id);
      }
      t->send_control_reply(request_id, true,
                            std::to_string(r.id) + std::string(1, kSep) +
                                std::to_string(r.shard));
      return;
    }
    case net::wire::ControlOp::kSessionClose: {
      SessionId id = 0;
      try {
        id = std::stoull(text);
      } catch (const std::exception&) {
        t->send_control_reply(request_id, false, "bad close request");
        return;
      }
      {
        const std::lock_guard<std::mutex> lk(peers_mu_);
        auto it = peers_.find(t);
        if (it != peers_.end()) {
          auto& v = it->second.sessions;
          v.erase(std::remove(v.begin(), v.end(), id), v.end());
        }
      }
      close(id);
      t->send_control_reply(request_id, true, "");
      return;
    }
    default:
      t->send_control_reply(request_id, false,
                            "unsupported op on a session link");
      return;
  }
}

void SessionAcceptor::sweep_peers() {
  std::vector<Peer> dead;
  {
    const std::lock_guard<std::mutex> lk(peers_mu_);
    for (auto it = peers_.begin(); it != peers_.end();) {
      if (it->second.transport->peer_closed()) {
        dead.push_back(std::move(it->second));
        it = peers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Peer& p : dead) {
    for (SessionId id : p.sessions) close(id);
    // The transport (and its agent thread) dies here, on the caller's
    // runtime-driving thread.
    p.transport.reset();
  }
}

}  // namespace infopipe::session
