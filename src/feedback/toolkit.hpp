// The feedback toolkit: sensors, actuators and periodic control loops wired
// through the platform (§2.1, §3.1).
//
// Sensors are ordinary pipeline components (or probes of buffers); control
// values travel as control events through the event service, so a feedback
// loop can span "remote" ends of a pipeline exactly like the Figure 1
// configuration: a sensor on the consumer side steers a drop filter on the
// producer side.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/buffer.hpp"
#include "core/component.hpp"
#include "core/pump.hpp"
#include "core/realization.hpp"
#include "feedback/controller.hpp"
#include "obs/metrics.hpp"
#include "rt/runtime.hpp"

namespace infopipe::fb {

/// Payload of kEventSensorReport events.
struct SensorReport {
  std::string sensor;
  double value = 0.0;
};

/// A recurring task on its own middleware thread: the scaffold for
/// controllers that sample sensors and drive actuators. The callback runs at
/// the given period until stop() (or destruction).
class PeriodicTask {
 public:
  PeriodicTask(rt::Runtime& rt, std::string name, rt::Time period,
               std::function<void(rt::Time now)> body,
               rt::Priority priority = rt::kPriorityControl);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  /// Like stop(), but additionally makes the ticking thread destroy ITSELF
  /// when it notices (returning kTerminate from its code function instead of
  /// parking). For a task that must be torn down from inside its own tick —
  /// re-homing a feedback loop onto another shard, say — where kill() is
  /// impossible: a thread cannot kill itself mid-dispatch. After retire()
  /// the task must not be start()ed again; destroy it once convenient (the
  /// destructor's kill degrades to a no-op when the thread already exited).
  void retire();
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  rt::Runtime* rt_;
  rt::ThreadId tid_ = rt::kNoThread;
  rt::Time period_;
  std::function<void(rt::Time)> body_;
  bool active_ = false;
  bool stop_requested_ = false;
  bool retired_ = false;
};

/// Pass-through pipeline component measuring the flow rate. Arrivals are
/// counted over fixed windows (count/elapsed — unbiased even for bursty
/// flows) and the per-window rates are low-pass filtered. At every window
/// boundary the sensor broadcasts a kEventSensorReport with the smoothed
/// rate, so controllers anywhere in the pipeline can react (Figure 1's
/// consumer-side sensor).
class RateSensor : public FunctionComponent {
 public:
  RateSensor(std::string name, double alpha = 0.2,
             rt::Time window = rt::milliseconds(500), bool report = true)
      : FunctionComponent(std::move(name)),
        filter_(alpha),
        window_(window),
        report_(report) {}

  [[nodiscard]] double rate_hz() const noexcept { return filter_.value(); }
  [[nodiscard]] std::uint64_t observed() const noexcept { return seen_; }
  [[nodiscard]] int reports_sent() const noexcept { return reports_; }

 protected:
  Item convert(Item x) override {
    const rt::Time now = pipeline_now();
    if (seen_ == 0) window_start_ = now;
    ++seen_;
    ++in_window_;
    if (now - window_start_ >= window_ && now > window_start_) {
      const double rate = static_cast<double>(in_window_) * 1e9 /
                          static_cast<double>(now - window_start_);
      filter_.update(rate);
      window_start_ = now;
      in_window_ = 0;
      if (report_) {
        ++reports_;
        broadcast(Event{kEventSensorReport,
                        SensorReport{name(), filter_.value()}});
      }
    }
    return x;
  }

 private:
  LowPassFilter filter_;
  rt::Time window_;
  bool report_;
  std::uint64_t seen_ = 0;
  std::uint64_t in_window_ = 0;
  rt::Time window_start_ = 0;
  int reports_ = 0;
};

/// Measures per-item latency (now - item.timestamp) instead of rate;
/// otherwise like RateSensor. Reports smoothed latency in milliseconds.
class LatencySensor : public FunctionComponent {
 public:
  LatencySensor(std::string name, double alpha = 0.2,
                std::uint64_t report_every = 10)
      : FunctionComponent(std::move(name)),
        filter_(alpha),
        report_every_(report_every) {}

  [[nodiscard]] double latency_ms() const noexcept { return filter_.value(); }

 protected:
  Item convert(Item x) override {
    // Item::timestamp defaults to 0 = "never stamped"; such an item would
    // read as the whole pipeline-clock epoch (multi-second bogus latency)
    // and poison the filter, so it contributes no sample.
    if (x.timestamp != 0) {
      const double lat_ms =
          static_cast<double>(pipeline_now() - x.timestamp) / 1e6;
      filter_.update(lat_ms);
    }
    ++seen_;
    if (report_every_ > 0 && seen_ % report_every_ == 0) {
      broadcast(Event{kEventSensorReport,
                      SensorReport{name(), filter_.value()}});
    }
    return x;
  }

 private:
  LowPassFilter filter_;
  std::uint64_t report_every_;
  std::uint64_t seen_ = 0;
};

/// A feedback loop: samples a reading, runs a controller, drives an
/// actuator — on its own thread at a fixed period. This is the generic
/// shape of §3.1's "more elaborate approaches [that] adjust CPU allocations
/// among pipeline stages according to feedback from buffer fill levels".
///
/// Readings and actuations are usually bound by NAME through the endpoint
/// layer (endpoint.hpp) — resolve a SensorRef/ActuatorRef against a
/// Realization or a shard::ShardedRealization — rather than by constructing
/// the std::functions by hand.
///
/// The loop publishes itself through the home runtime's MetricsRegistry:
/// `fb.loop.<name>.output` and `.error` gauges, `.steps` and `.actuations`
/// counters, so a registry snapshot shows every loop's trajectory (prefixed
/// `shard<i>.` when the loop lives on a shard).
///
/// Thread ownership: the loop's periodic task lives on the runtime passed
/// in. Construct/destroy it ON that runtime's kernel thread; `exec` routes
/// start()/stop()/destruction there for callers on other kernel threads
/// (the sharded binder passes ShardGroup::run_on). Default: run inline.
class FeedbackLoop {
 public:
  using Reading = std::function<double()>;
  using Actuate = std::function<void(double)>;
  using Exec = std::function<void(const std::function<void()>&)>;

  /// A new home for the loop, produced by a HomeCheck: the runtime to move
  /// to plus the endpoint functions re-resolved for it (readings that cache
  /// per-shard state — rate windows, remote-probe tasks — must be rebuilt
  /// for the new vantage point) and the Exec that routes onto it.
  struct Rebind {
    rt::Runtime* rt = nullptr;
    Reading read;
    Actuate act;
    Exec exec;
  };
  /// Consulted at the top of every step (i.e. on the loop's current home
  /// thread). Returning a Rebind moves the loop there: the current periodic
  /// task retires (it cannot be destroyed from its own tick), a fresh task
  /// spawns on the new runtime — through the new Exec — and the metric
  /// handles re-resolve against the new registry. The binder installs an
  /// epoch check against ShardedRealization::migrations() here so a loop
  /// follows its sensor when the rebalancer moves the observed section.
  using HomeCheck = std::function<std::optional<Rebind>()>;

  /// The controller maps (setpoint - reading) to an absolute actuation
  /// value via a PI controller bounded to [out_min, out_max].
  FeedbackLoop(rt::Runtime& rt, std::string name, rt::Time period,
               Reading read, double setpoint, PIController controller,
               Actuate actuate, Exec exec = {});
  ~FeedbackLoop();

  FeedbackLoop(const FeedbackLoop&) = delete;
  FeedbackLoop& operator=(const FeedbackLoop&) = delete;

  void start();
  void stop();
  void set_setpoint(double s) noexcept {
    setpoint_.store(s, std::memory_order_relaxed);
  }

  /// Installs (or clears) the migration-aware homing hook. Call before
  /// start(), or from the loop's own home thread.
  void set_home_check(HomeCheck hc) { home_check_ = std::move(hc); }
  /// Homes the loop has moved through (0 until the first rebind).
  [[nodiscard]] int rehomes() const noexcept {
    return rehomes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double last_output() const noexcept {
    return last_out_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double last_error() const noexcept {
    return last_err_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int steps() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int actuations() const noexcept {
    return actuations_.load(std::memory_order_relaxed);
  }

 private:
  void step();
  /// Re-resolves the fb.loop.* metric handles against `rt`'s registry. Must
  /// run on `rt`'s kernel thread.
  void bind_metrics(rt::Runtime& rt);
  /// Moves the loop to `rb`. Runs from step(), i.e. inside the current
  /// task's own tick — which is why the old task retires (self-terminates)
  /// instead of being destroyed, and is kept in retired_ until the loop
  /// dies: its code function (and captured `this`) is still on the old
  /// shard's stack when this returns.
  void apply_rebind(Rebind rb);

  std::string name_;
  PIController controller_;
  Reading read_;
  Actuate actuate_;
  std::atomic<double> setpoint_;
  rt::Time period_;
  std::atomic<double> last_out_{0.0};
  std::atomic<double> last_err_{0.0};
  std::atomic<int> steps_{0};
  std::atomic<int> actuations_{0};
  std::atomic<int> rehomes_{0};
  obs::Gauge* out_gauge_ = nullptr;
  obs::Gauge* err_gauge_ = nullptr;
  obs::Counter* steps_ctr_ = nullptr;
  obs::Counter* act_ctr_ = nullptr;
  Exec exec_;
  std::unique_ptr<PeriodicTask> task_;
  HomeCheck home_check_;
  /// Retired tasks with the Exec that reaches their home runtime; destroyed
  /// at loop teardown, each on its own shard.
  std::vector<std::pair<std::unique_ptr<PeriodicTask>, Exec>> retired_;
};

// The old by-reference helpers fill_fraction(const Buffer&) and
// pump_rate_actuator(Realization&, AdaptivePump&) are gone: they bound by
// C++ reference, so they could not cross a shard cut and dangled if the
// component died first. Bind by name instead (endpoint.hpp):
//   resolve_reading(real, fill_fraction("<buffer>"))
//   resolve_actuate(real, pump_rate("<pump>"))

}  // namespace infopipe::fb
