// The feedback toolkit: sensors, actuators and periodic control loops wired
// through the platform (§2.1, §3.1).
//
// Sensors are ordinary pipeline components (or probes of buffers); control
// values travel as control events through the event service, so a feedback
// loop can span "remote" ends of a pipeline exactly like the Figure 1
// configuration: a sensor on the consumer side steers a drop filter on the
// producer side.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "core/buffer.hpp"
#include "core/component.hpp"
#include "core/pump.hpp"
#include "core/realization.hpp"
#include "feedback/controller.hpp"
#include "rt/runtime.hpp"

namespace infopipe::fb {

/// Payload of kEventSensorReport events.
struct SensorReport {
  std::string sensor;
  double value = 0.0;
};

/// A recurring task on its own middleware thread: the scaffold for
/// controllers that sample sensors and drive actuators. The callback runs at
/// the given period until stop() (or destruction).
class PeriodicTask {
 public:
  PeriodicTask(rt::Runtime& rt, std::string name, rt::Time period,
               std::function<void(rt::Time now)> body,
               rt::Priority priority = rt::kPriorityControl);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  rt::Runtime* rt_;
  rt::ThreadId tid_ = rt::kNoThread;
  rt::Time period_;
  std::function<void(rt::Time)> body_;
  bool active_ = false;
  bool stop_requested_ = false;
};

/// Pass-through pipeline component measuring the flow rate. Arrivals are
/// counted over fixed windows (count/elapsed — unbiased even for bursty
/// flows) and the per-window rates are low-pass filtered. At every window
/// boundary the sensor broadcasts a kEventSensorReport with the smoothed
/// rate, so controllers anywhere in the pipeline can react (Figure 1's
/// consumer-side sensor).
class RateSensor : public FunctionComponent {
 public:
  RateSensor(std::string name, double alpha = 0.2,
             rt::Time window = rt::milliseconds(500), bool report = true)
      : FunctionComponent(std::move(name)),
        filter_(alpha),
        window_(window),
        report_(report) {}

  [[nodiscard]] double rate_hz() const noexcept { return filter_.value(); }
  [[nodiscard]] std::uint64_t observed() const noexcept { return seen_; }
  [[nodiscard]] int reports_sent() const noexcept { return reports_; }

 protected:
  Item convert(Item x) override {
    const rt::Time now = pipeline_now();
    if (seen_ == 0) window_start_ = now;
    ++seen_;
    ++in_window_;
    if (now - window_start_ >= window_ && now > window_start_) {
      const double rate = static_cast<double>(in_window_) * 1e9 /
                          static_cast<double>(now - window_start_);
      filter_.update(rate);
      window_start_ = now;
      in_window_ = 0;
      if (report_) {
        ++reports_;
        broadcast(Event{kEventSensorReport,
                        SensorReport{name(), filter_.value()}});
      }
    }
    return x;
  }

 private:
  LowPassFilter filter_;
  rt::Time window_;
  bool report_;
  std::uint64_t seen_ = 0;
  std::uint64_t in_window_ = 0;
  rt::Time window_start_ = 0;
  int reports_ = 0;
};

/// Measures per-item latency (now - item.timestamp) instead of rate;
/// otherwise like RateSensor. Reports smoothed latency in milliseconds.
class LatencySensor : public FunctionComponent {
 public:
  LatencySensor(std::string name, double alpha = 0.2,
                std::uint64_t report_every = 10)
      : FunctionComponent(std::move(name)),
        filter_(alpha),
        report_every_(report_every) {}

  [[nodiscard]] double latency_ms() const noexcept { return filter_.value(); }

 protected:
  Item convert(Item x) override {
    const double lat_ms =
        static_cast<double>(pipeline_now() - x.timestamp) / 1e6;
    filter_.update(lat_ms);
    ++seen_;
    if (report_every_ > 0 && seen_ % report_every_ == 0) {
      broadcast(Event{kEventSensorReport,
                      SensorReport{name(), filter_.value()}});
    }
    return x;
  }

 private:
  LowPassFilter filter_;
  std::uint64_t report_every_;
  std::uint64_t seen_ = 0;
};

/// A feedback loop: samples a reading, runs a controller, drives an
/// actuator — on its own thread at a fixed period. This is the generic
/// shape of §3.1's "more elaborate approaches [that] adjust CPU allocations
/// among pipeline stages according to feedback from buffer fill levels".
class FeedbackLoop {
 public:
  using Reading = std::function<double()>;
  using Actuate = std::function<void(double)>;

  /// The controller maps (setpoint - reading) to an absolute actuation
  /// value via a PI controller bounded to [out_min, out_max].
  FeedbackLoop(rt::Runtime& rt, std::string name, rt::Time period,
               Reading read, double setpoint, PIController controller,
               Actuate actuate)
      : controller_(std::move(controller)),
        read_(std::move(read)),
        actuate_(std::move(actuate)),
        setpoint_(setpoint),
        period_(period),
        task_(rt, std::move(name), period, [this](rt::Time) { step(); }) {}

  void start() { task_.start(); }
  void stop() { task_.stop(); }
  void set_setpoint(double s) noexcept { setpoint_ = s; }
  [[nodiscard]] double last_output() const noexcept { return last_out_; }
  [[nodiscard]] int steps() const noexcept { return steps_; }

 private:
  void step() {
    const double error = setpoint_ - read_();
    last_out_ =
        controller_.update(error, static_cast<double>(period_) / 1e9);
    actuate_(last_out_);
    ++steps_;
  }

  PIController controller_;
  Reading read_;
  Actuate actuate_;
  double setpoint_;
  rt::Time period_;
  double last_out_ = 0.0;
  int steps_ = 0;
  PeriodicTask task_;
};

/// Reading helper: a buffer's fill level as a fraction of capacity.
[[nodiscard]] inline FeedbackLoop::Reading fill_fraction(const Buffer& b) {
  return [&b]() {
    return static_cast<double>(b.fill()) / static_cast<double>(b.capacity());
  };
}

/// Actuation helper: set an adaptive pump's rate through the event service
/// (kEventQualityHint), i.e. via the platform rather than a direct call.
[[nodiscard]] FeedbackLoop::Actuate pump_rate_actuator(Realization& real,
                                                       AdaptivePump& pump);

}  // namespace infopipe::fb
